// The append-only delta store of the live corpus layer
// (live/live_corpus.h): upserted entities land here between
// compactions, pre-evaluated for the deployed rule so queries score
// them exactly as the value-store path scores base entities.
//
// Storage shape: fixed-capacity chunks referenced by shared_ptr. The
// writer appends into the tail chunk's next free slot; a published
// snapshot holds the chunk pointers plus a count and only ever reads
// slots below that count, so the writer never mutates memory a reader
// can see — the same immutable-prefix discipline as the value store's
// append-only PlanIds. Publication of the enclosing snapshot
// (std::atomic_store on a shared_ptr) is the release barrier that
// makes a freshly written entry visible.

#ifndef GENLINK_LIVE_DELTA_STORE_H_
#define GENLINK_LIVE_DELTA_STORE_H_

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "model/entity.h"
#include "model/value.h"

namespace genlink {

/// One upserted entity as the live layer stores it: the record itself
/// (under the corpus schema), its target-side value sets evaluated once
/// per comparison site of the deployed rule (in pre-order — the same
/// site order the query scorer walks), and its blocking keys. All
/// immutable once appended; a rule swap re-appends into a fresh log.
struct DeltaEntry {
  Entity entity;
  /// site_values[k] = rule comparison site k's target subtree evaluated
  /// on `entity`; scoring feeds these to DistanceViews exactly as the
  /// base index feeds interned store spans, which is what keeps delta
  /// scores bit-identical to a fresh build.
  std::vector<ValueSet> site_values;
  /// Unweighted blocking keys (matcher/blocking.h EntityBlockingKeys);
  /// empty when blocking is off.
  std::vector<std::string> tokens;
  /// Approximate heap bytes (strings + vectors), for /varz accounting.
  size_t approx_bytes = 0;
};

/// Chunked append-only log of DeltaEntry. Not thread-safe by itself:
/// the live corpus serializes all writers under its writer lock and
/// hands readers immutable View prefixes.
class DeltaLog {
 public:
  static constexpr size_t kChunkCapacity = 256;
  struct Chunk {
    std::array<DeltaEntry, kChunkCapacity> entries;
  };

  /// Entries appended so far.
  size_t size() const { return count_; }

  /// Appends `entry` and returns its slot index.
  size_t Append(DeltaEntry entry);

  /// The entry at `slot` (< size()).
  const DeltaEntry& entry(size_t slot) const {
    return chunks_[slot / kChunkCapacity]->entries[slot % kChunkCapacity];
  }

  /// Drops every entry (compaction / rule swap installs a fresh log by
  /// move-assignment; Reset exists for the compaction path that reuses
  /// the member).
  void Reset() {
    chunks_.clear();
    count_ = 0;
  }

  /// An immutable prefix of the log: the chunk references plus the
  /// count at snapshot time. Entries below `count` are frozen; the
  /// writer only ever constructs into slots >= count, so concurrent
  /// reads through a View are race-free.
  struct View {
    std::vector<std::shared_ptr<const Chunk>> chunks;
    size_t count = 0;

    const DeltaEntry& entry(size_t slot) const {
      return chunks[slot / kChunkCapacity]->entries[slot % kChunkCapacity];
    }
  };

  /// The current prefix as an immutable view.
  View MakeView() const;

 private:
  std::vector<std::shared_ptr<Chunk>> chunks_;
  size_t count_ = 0;
};

/// Approximate heap footprint of an entry (id + property values +
/// evaluated site values + tokens), used for delta_store_bytes.
size_t ApproxDeltaEntryBytes(const DeltaEntry& entry);

}  // namespace genlink

#endif  // GENLINK_LIVE_DELTA_STORE_H_
