#include "live/delta_store.h"

namespace genlink {

size_t DeltaLog::Append(DeltaEntry entry) {
  const size_t slot = count_;
  if (slot % kChunkCapacity == 0) {
    chunks_.push_back(std::make_shared<Chunk>());
  }
  chunks_.back()->entries[slot % kChunkCapacity] = std::move(entry);
  ++count_;
  return slot;
}

DeltaLog::View DeltaLog::MakeView() const {
  View view;
  view.chunks.assign(chunks_.begin(), chunks_.end());
  view.count = count_;
  return view;
}

size_t ApproxDeltaEntryBytes(const DeltaEntry& entry) {
  size_t bytes = sizeof(DeltaEntry) + entry.entity.id().size();
  for (size_t p = 0; p < entry.entity.NumPropertySlots(); ++p) {
    for (const std::string& value : entry.entity.Values(p)) {
      bytes += sizeof(std::string) + value.size();
    }
  }
  for (const ValueSet& values : entry.site_values) {
    bytes += sizeof(ValueSet);
    for (const std::string& value : values) {
      bytes += sizeof(std::string) + value.size();
    }
  }
  for (const std::string& token : entry.tokens) {
    bytes += sizeof(std::string) + token.size();
  }
  return bytes;
}

}  // namespace genlink
