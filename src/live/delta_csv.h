// Delta CSV: the on-disk interchange format for streaming mutation
// batches. `genlink gen --out-deltas` writes it, `genlink apply
// --deltas` (and the serve daemon's test tooling) reads it back into
// LiveOps for LiveCorpus::ApplyBatch.
//
// Layout: RFC 4180 CSV (io/csv.h quoting rules). The header is
// `op,id,<property>...`; each following row is one mutation in stream
// order. `op` is "upsert" (the property cells hold the entity's new
// values; an empty cell is a missing value) or "delete" (the property
// cells are ignored and written empty). Rows shorter than the header
// are padded with missing values; longer rows are a parse error.

#ifndef GENLINK_LIVE_DELTA_CSV_H_
#define GENLINK_LIVE_DELTA_CSV_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "live/live_corpus.h"
#include "model/schema.h"

namespace genlink {

/// A parsed delta file: the header's property columns (everything after
/// `op,id`) as a schema, plus one LiveOp per row, in file order. Feed
/// contiguous chunks straight into LiveCorpus::ApplyBatch(ops, schema).
struct DeltaBatch {
  Schema schema;
  std::vector<LiveOp> ops;
};

/// Parses delta CSV text. ParseError on a malformed header ("op" and
/// "id" must be the first two columns), an unknown op keyword, a
/// missing id, or a row wider than the header.
Result<DeltaBatch> ReadDeltaCsv(std::string_view text);

/// Serializes `ops` (upsert values under `schema`) as delta CSV,
/// inverse of ReadDeltaCsv. Multi-valued properties write their first
/// value (the synthetic generator only emits single-valued records).
std::string WriteDeltaCsv(const Schema& schema, std::span<const LiveOp> ops);

}  // namespace genlink

#endif  // GENLINK_LIVE_DELTA_CSV_H_
