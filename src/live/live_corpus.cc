#include "live/live_corpus.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "distance/distance_measure.h"
#include "io/corpus_artifact.h"
#include "matcher/blocking.h"
#include "rule/operators.h"
#include "text/case_fold.h"
#include "text/tokenizer.h"

namespace genlink {
namespace {

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Pre-order comparison sites of a rule — the SAME walk order as the
/// scoring recursion below and as MatcherIndex's query sites, which is
/// what lets site index k name one comparison in both places.
void CollectSites(const SimilarityOperator& node,
                  std::vector<const ComparisonOperator*>& out) {
  if (node.kind() == OperatorKind::kComparison) {
    out.push_back(static_cast<const ComparisonOperator*>(&node));
    return;
  }
  const auto& agg = static_cast<const AggregationOperator&>(node);
  for (const auto& operand : agg.operands()) CollectSites(*operand, out);
}

}  // namespace

/// The deployed rule compiled for the delta side: the rule tree (the
/// snapshot owns its clone — base index, delta scorer and delta entries
/// must agree on operator identity), its comparison sites in pre-order,
/// and the target-side property names delta blocking keys come from.
struct LiveCorpus::RuleProgram {
  LinkageRule rule;
  std::vector<const ComparisonOperator*> sites;
  std::vector<std::string> blocking_properties;
};

/// One published, immutable epoch: everything a query needs, reachable
/// from a single atomic pointer load. All members are shared with (not
/// copied from) the master state where immutability already holds —
/// only the dead mask and the delta posting map are rebuilt per
/// publish, so they can be read without any filtering or locking.
struct LiveCorpus::Snapshot {
  uint64_t epoch = 0;
  /// Keeps the dataset behind `base` alive (null over a mapped base,
  /// where the index owns the mapping).
  std::shared_ptr<const Dataset> base_data;
  std::shared_ptr<const MatcherIndex> base;
  /// Tombstone mask over base slots, one byte per slot (the
  /// MatchEntityMasked surface).
  std::shared_ptr<const std::vector<uint8_t>> base_dead;
  /// Immutable prefix of the delta log at publish time.
  DeltaLog::View delta;
  /// The LIVE delta slots, ascending — the full-scan candidate list
  /// when blocking is off. Dead entries are filtered at publish, never
  /// at query time.
  std::shared_ptr<const std::vector<uint32_t>> delta_live;
  /// token -> live delta slots, rebuilt per publish from the entries'
  /// stored keys; null when blocking is off. Probed by key only —
  /// iteration order never reaches output.
  std::shared_ptr<const std::unordered_map<std::string, std::vector<uint32_t>>>
      postings;
  std::shared_ptr<const RuleProgram> program;
  /// The user's options: threshold and best_match_only applied to the
  /// merged links.
  MatchOptions options;
};

namespace {

/// Scores one delta entry against a query entity: the delta-side mirror
/// of MatcherIndex::QueryNode. The target side reads the entry's
/// pre-evaluated site values instead of interned store spans — same
/// bytes, same multiset order, same DistanceViews call with the
/// comparison threshold as bound, same empty-side convention — so delta
/// scores are bit-identical to what a fresh build would compute for the
/// same pair (the correctness gate of this subsystem).
double ScoreDeltaNode(const SimilarityOperator& node,
                      const std::vector<const ComparisonOperator*>& sites,
                      const std::vector<ValueSet>& query_values,
                      const DeltaEntry& entry, size_t& next_site) {
  if (node.kind() == OperatorKind::kComparison) {
    const size_t k = next_site++;
    const ComparisonOperator& cmp = *sites[k];
    const ValueSet& source = query_values[k];
    const ValueSet& target = entry.site_values[k];
    double distance;
    if (source.empty() || target.empty()) {
      // PairDistance's empty-side convention: similarity 0.
      distance = kInfiniteDistance;
    } else {
      thread_local std::vector<std::string_view> source_views;
      thread_local std::vector<std::string_view> target_views;
      source_views.clear();
      target_views.clear();
      for (const std::string& value : source) source_views.push_back(value);
      for (const std::string& value : target) target_views.push_back(value);
      distance = cmp.measure()->DistanceViews(
          std::span<const std::string_view>(source_views),
          std::span<const std::string_view>(target_views), cmp.threshold());
    }
    return ThresholdedScore(distance, cmp.threshold());
  }
  const auto& agg = static_cast<const AggregationOperator&>(node);
  return AggregateOperandScores(
      *agg.function(), agg.operands(), [&](const SimilarityOperator& op) {
        return ScoreDeltaNode(op, sites, query_values, entry, next_site);
      });
}

}  // namespace

LiveCorpus::LiveCorpus() = default;
LiveCorpus::~LiveCorpus() = default;

Status LiveCorpus::ValidateConfig(const LinkageRule& rule,
                                  const MatchOptions& options) {
  if (rule.empty()) {
    return Status::InvalidArgument(
        "LiveCorpus requires a non-empty rule: an empty rule has no "
        "comparison sites to pre-evaluate delta entries for");
  }
  if (options.blocking_max_tokens != 0 || options.blocking_min_token_df > 1) {
    return Status::InvalidArgument(
        "LiveCorpus requires the df-independent blocking configuration "
        "(blocking_max_tokens=0, blocking_min_token_df=1): weighted key "
        "selection ranks tokens by corpus-wide document frequency, which "
        "changes with every mutation, so a mutated index could not stay "
        "bit-identical to a fresh build");
  }
  return Status::Ok();
}

MatchOptions LiveCorpus::BaseOptions(const MatchOptions& options) {
  MatchOptions base = options;
  // Best-match reduction must see the merged base+delta links; the base
  // index returns every link reaching the threshold and the merge
  // applies the reduction (MatchOne). Cancellation is per-call state,
  // never part of a deployed configuration.
  base.best_match_only = false;
  base.cancel = nullptr;
  return base;
}

Result<std::unique_ptr<LiveCorpus>> LiveCorpus::CreateImpl(
    const Dataset* base, std::shared_ptr<const MappedCorpus> mapped,
    const LinkageRule& rule, const MatchOptions& options,
    const LiveCorpusOptions& live_options) {
  GENLINK_RETURN_IF_ERROR(ValidateConfig(rule, options));
  auto program = std::make_shared<RuleProgram>();
  program->rule = rule.Clone();
  CollectSites(*program->rule.root(), program->sites);
  program->blocking_properties = TargetProperties(program->rule);

  std::unique_ptr<LiveCorpus> live(new LiveCorpus());
  live->mapped_ = mapped;
  live->live_options_ = live_options;
  live->pool_ = std::make_unique<ThreadPool>(options.num_threads);

  WriterMutexLock lock(live->mutex_);
  live->user_options_ = options;
  live->user_options_.cancel = nullptr;
  live->program_ = program;
  if (mapped != nullptr) {
    live->schema_ = mapped->schema();
    auto built =
        MatcherIndex::Build(mapped, program->rule, BaseOptions(options));
    if (!built.ok()) return built.status();
    live->base_index_ = std::move(built).value();
    live->base_dead_.assign(mapped->size(), 0);
    for (size_t i = 0; i < mapped->size(); ++i) {
      live->locations_[std::string(mapped->entity_id(i))] =
          Location{Location::Where::kBase, static_cast<uint32_t>(i)};
    }
    live->live_entities_ = mapped->size();
  } else {
    live->schema_ = base->schema();
    // Own a copy: compaction rewrites the corpus, and the index's
    // dataset must outlive every snapshot that serves it.
    auto owned = std::make_shared<const Dataset>(*base);
    live->base_data_ = owned;
    live->base_index_ =
        MatcherIndex::Build(*owned, program->rule, BaseOptions(options));
    live->base_dead_.assign(owned->size(), 0);
    for (size_t i = 0; i < owned->size(); ++i) {
      live->locations_[owned->entity(i).id()] =
          Location{Location::Where::kBase, static_cast<uint32_t>(i)};
    }
    live->live_entities_ = owned->size();
  }
  live->PublishLocked();
  return live;
}

Result<std::unique_ptr<LiveCorpus>> LiveCorpus::Create(
    const Dataset& base, const LinkageRule& rule, const MatchOptions& options,
    const LiveCorpusOptions& live_options) {
  return CreateImpl(&base, nullptr, rule, options, live_options);
}

Result<std::unique_ptr<LiveCorpus>> LiveCorpus::Create(
    std::shared_ptr<const MappedCorpus> base, const LinkageRule& rule,
    const MatchOptions& options, const LiveCorpusOptions& live_options) {
  if (base == nullptr) {
    return Status::InvalidArgument("LiveCorpus::Create: null mapped corpus");
  }
  return CreateImpl(nullptr, std::move(base), rule, options, live_options);
}

Result<Entity> LiveCorpus::RemapEntity(const Entity& entity,
                                       const Schema& schema) const {
  if (entity.id().empty()) {
    return Status::InvalidArgument("upsert requires a non-empty entity id");
  }
  Entity out(entity.id());
  const size_t slots =
      std::min<size_t>(entity.NumPropertySlots(), schema.NumProperties());
  for (PropertyId p = 0; p < entity.NumPropertySlots(); ++p) {
    const ValueSet& values = entity.Values(p);
    if (values.empty()) continue;
    if (p >= slots) {
      return Status::InvalidArgument(
          "upsert entity '" + entity.id() +
          "' has values in a property slot beyond its schema");
    }
    const std::string& name = schema.PropertyName(p);
    const auto id = schema_.FindProperty(name);
    if (!id.has_value()) {
      return Status::InvalidArgument("upsert entity '" + entity.id() +
                                     "' uses property '" + name +
                                     "' unknown to the corpus schema");
    }
    out.SetValues(*id, values);
  }
  return out;
}

DeltaEntry LiveCorpus::BuildDeltaEntry(Entity entity,
                                       const RuleProgram& program,
                                       bool use_blocking) const {
  DeltaEntry entry;
  entry.site_values.resize(program.sites.size());
  for (size_t k = 0; k < program.sites.size(); ++k) {
    entry.site_values[k] = program.sites[k]->target()->Evaluate(entity, schema_);
  }
  if (use_blocking) {
    entry.tokens =
        EntityBlockingKeys(entity, schema_, program.blocking_properties);
  }
  entry.entity = std::move(entity);
  entry.approx_bytes = ApproxDeltaEntryBytes(entry);
  return entry;
}

void LiveCorpus::KillLocked(const std::string& id) {
  const auto it = locations_.find(id);
  if (it == locations_.end()) return;
  if (it->second.where == Location::Where::kBase) {
    base_dead_[it->second.slot] = 1;
    ++tombstones_;
  } else {
    delta_dead_[it->second.slot] = 1;
  }
}

Status LiveCorpus::ApplyBatchLocked(std::span<const LiveOp> ops,
                                    const Schema& schema) {
  if (ops.empty()) return Status::Ok();

  // Phase 1 — validate and stage every op before touching any state, so
  // a bad row anywhere in the batch rejects the whole batch with
  // nothing applied. Liveness for removes is checked against the
  // current locations overlaid with the batch's own earlier ops (a
  // batch may upsert an id and remove it again).
  struct Staged {
    LiveOp::Kind kind;
    Entity entity;  // kUpsert: remapped into the corpus schema
    std::string id;
  };
  std::vector<Staged> staged;
  staged.reserve(ops.size());
  std::unordered_map<std::string, bool> staged_alive;
  const auto alive = [&](const std::string& id) {
    const auto it = staged_alive.find(id);
    if (it != staged_alive.end()) return it->second;
    return locations_.find(id) != locations_.end();
  };
  for (const LiveOp& op : ops) {
    if (op.kind == LiveOp::Kind::kUpsert) {
      auto remapped = RemapEntity(op.entity, schema);
      if (!remapped.ok()) return remapped.status();
      const std::string id = remapped->id();
      staged.push_back(
          Staged{LiveOp::Kind::kUpsert, std::move(remapped).value(), id});
      staged_alive[id] = true;
    } else {
      if (op.id.empty()) {
        return Status::InvalidArgument("delete requires a non-empty id");
      }
      if (!alive(op.id)) {
        return Status::NotFound("delete of unknown or already-removed id '" +
                                op.id + "'");
      }
      staged.push_back(Staged{LiveOp::Kind::kRemove, Entity(), op.id});
      staged_alive[op.id] = false;
    }
  }

  // Phase 2 — apply everything, then publish ONE epoch for the batch.
  for (Staged& op : staged) {
    if (op.kind == LiveOp::Kind::kUpsert) {
      const bool replaces = locations_.find(op.id) != locations_.end();
      KillLocked(op.id);
      DeltaEntry entry =
          BuildDeltaEntry(std::move(op.entity), *program_,
                          user_options_.use_blocking);
      delta_bytes_ += entry.approx_bytes;
      const size_t slot = delta_.Append(std::move(entry));
      delta_dead_.push_back(0);
      locations_[op.id] =
          Location{Location::Where::kDelta, static_cast<uint32_t>(slot)};
      if (!replaces) ++live_entities_;
      ++upserts_;
    } else {
      KillLocked(op.id);
      locations_.erase(op.id);
      --live_entities_;
      ++removes_;
    }
  }
  ++epoch_;
  PublishLocked();

  // Online compaction: bound the delta log (and with it per-publish
  // rebuild cost and per-query delta scans). The writer pays; readers
  // keep serving the epoch just published until the compacted one
  // lands. A mapped base cannot compact — the log just grows until the
  // caller rebuilds the artifact.
  if (live_options_.compact_delta_threshold > 0 && mapped_ == nullptr &&
      delta_.size() >= live_options_.compact_delta_threshold) {
    return CompactLocked(nullptr);
  }
  return Status::Ok();
}

Status LiveCorpus::ApplyBatch(std::span<const LiveOp> ops,
                              const Schema& schema) {
  WriterMutexLock lock(mutex_);
  return ApplyBatchLocked(ops, schema);
}

Status LiveCorpus::Upsert(const Entity& entity, const Schema& schema) {
  LiveOp op;
  op.kind = LiveOp::Kind::kUpsert;
  op.entity = entity;
  WriterMutexLock lock(mutex_);
  return ApplyBatchLocked(std::span<const LiveOp>(&op, 1), schema);
}

Status LiveCorpus::Remove(std::string_view id) {
  LiveOp op;
  op.kind = LiveOp::Kind::kRemove;
  op.id = std::string(id);
  WriterMutexLock lock(mutex_);
  return ApplyBatchLocked(std::span<const LiveOp>(&op, 1), schema_);
}

Result<Dataset> LiveCorpus::MaterializeLogicalLocked() const {
  if (mapped_ != nullptr) {
    return Status::FailedPrecondition(
        "a mapped corpus artifact stores transformed value spans, not raw "
        "property values; the logical corpus cannot be rematerialized from "
        "it — rebuild from the original dataset (genlink index)");
  }
  Dataset out(base_data_->name());
  for (const std::string& name : schema_.property_names()) {
    out.schema().AddProperty(name);
  }
  // Base order, then delta order. Link results never depend on corpus
  // order (candidates are re-sorted, scores are per-pair), so any
  // stable order works; this one makes compaction reproducible.
  for (size_t i = 0; i < base_data_->size(); ++i) {
    if (base_dead_[i] != 0) continue;
    GENLINK_RETURN_IF_ERROR(out.AddEntity(base_data_->entity(i)));
  }
  for (size_t slot = 0; slot < delta_.size(); ++slot) {
    if (delta_dead_[slot] != 0) continue;
    GENLINK_RETURN_IF_ERROR(out.AddEntity(delta_.entry(slot).entity));
  }
  return out;
}

Result<Dataset> LiveCorpus::MaterializeLogical() const {
  ReaderMutexLock lock(mutex_);
  return MaterializeLogicalLocked();
}

Status LiveCorpus::CompactLocked(const std::string* artifact_path) {
  const auto start = std::chrono::steady_clock::now();
  auto logical = MaterializeLogicalLocked();
  if (!logical.ok()) return logical.status();
  // Persist BEFORE mutating any live state: a failed write (full disk,
  // io.write_error fault) must leave the previous snapshot serving and
  // the delta log intact. The atomic writer guarantees no torn file and
  // no stray temp file at the destination either way.
  if (artifact_path != nullptr) {
    GENLINK_RETURN_IF_ERROR(WriteCorpusArtifact(
        *artifact_path, *logical, program_->rule, BaseOptions(user_options_),
        pool_.get()));
  }
  auto owned = std::make_shared<const Dataset>(std::move(logical).value());
  base_index_ =
      MatcherIndex::Build(*owned, program_->rule, BaseOptions(user_options_));
  base_data_ = owned;
  base_dead_.assign(owned->size(), 0);
  delta_.Reset();
  delta_dead_.clear();
  delta_bytes_ = 0;
  tombstones_ = 0;
  locations_.clear();
  for (size_t i = 0; i < owned->size(); ++i) {
    locations_[owned->entity(i).id()] =
        Location{Location::Where::kBase, static_cast<uint32_t>(i)};
  }
  ++compactions_;
  last_compact_seconds_ = Elapsed(start);
  ++epoch_;
  PublishLocked();
  return Status::Ok();
}

Status LiveCorpus::Compact() {
  WriterMutexLock lock(mutex_);
  return CompactLocked(nullptr);
}

Status LiveCorpus::CompactTo(const std::string& artifact_path) {
  WriterMutexLock lock(mutex_);
  return CompactLocked(&artifact_path);
}

Status LiveCorpus::DeployRule(const LinkageRule& rule,
                              const MatchOptions& options) {
  GENLINK_RETURN_IF_ERROR(ValidateConfig(rule, options));
  auto program = std::make_shared<RuleProgram>();
  program->rule = rule.Clone();
  CollectSites(*program->rule.root(), program->sites);
  program->blocking_properties = TargetProperties(program->rule);

  WriterMutexLock lock(mutex_);
  // Rebuild the base index first — over a mapped base this can fail
  // (artifact missing the new rule's plans), and then nothing may
  // change: the old rule keeps serving.
  auto built = base_index_->TryWithRule(program->rule, BaseOptions(options));
  if (!built.ok()) return built.status();

  MatchOptions next = options;
  next.cancel = nullptr;
  // Corpus-lifetime knobs stay pinned, as with TryWithRule itself.
  next.num_threads = user_options_.num_threads;
  next.use_value_store = user_options_.use_value_store;

  // Re-evaluate the live delta entries under the new rule into a fresh
  // log (site values and blocking keys are rule-dependent). Dead
  // entries are dropped on the way — a rule swap is also a delta-log
  // garbage collection.
  DeltaLog fresh;
  std::vector<uint8_t> fresh_dead;
  size_t fresh_bytes = 0;
  for (size_t slot = 0; slot < delta_.size(); ++slot) {
    if (delta_dead_[slot] != 0) continue;
    DeltaEntry entry = BuildDeltaEntry(Entity(delta_.entry(slot).entity),
                                       *program, next.use_blocking);
    fresh_bytes += entry.approx_bytes;
    const size_t fresh_slot = fresh.Append(std::move(entry));
    fresh_dead.push_back(0);
    locations_[fresh.entry(fresh_slot).entity.id()] =
        Location{Location::Where::kDelta, static_cast<uint32_t>(fresh_slot)};
  }
  base_index_ = std::move(built).value();
  program_ = program;
  user_options_ = next;
  delta_ = std::move(fresh);
  delta_dead_ = std::move(fresh_dead);
  delta_bytes_ = fresh_bytes;
  ++epoch_;
  PublishLocked();
  return Status::Ok();
}

void LiveCorpus::PublishLocked() {
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = epoch_;
  snap->base_data = base_data_;
  snap->base = base_index_;
  snap->base_dead = std::make_shared<const std::vector<uint8_t>>(base_dead_);
  snap->delta = delta_.MakeView();
  auto live = std::make_shared<std::vector<uint32_t>>();
  for (size_t slot = 0; slot < snap->delta.count; ++slot) {
    if (delta_dead_[slot] == 0) live->push_back(static_cast<uint32_t>(slot));
  }
  if (user_options_.use_blocking) {
    auto postings = std::make_shared<
        std::unordered_map<std::string, std::vector<uint32_t>>>();
    for (uint32_t slot : *live) {
      for (const std::string& token : snap->delta.entry(slot).tokens) {
        (*postings)[token].push_back(slot);
      }
    }
    snap->postings = std::move(postings);
  }
  snap->delta_live = std::move(live);
  snap->program = program_;
  snap->options = user_options_;
  std::atomic_store(&snapshot_, std::shared_ptr<const Snapshot>(snap));
}

std::shared_ptr<const LiveCorpus::Snapshot> LiveCorpus::snapshot() const {
  return std::atomic_load(&snapshot_);
}

uint64_t LiveCorpus::epoch() const { return snapshot()->epoch; }

std::vector<GeneratedLink> LiveCorpus::MatchOne(const Snapshot& snap,
                                                const Entity& entity,
                                                const Schema& schema,
                                                const CancelToken* cancel) const {
  // Base side: the immutable index with the snapshot's tombstone mask.
  std::vector<GeneratedLink> links = snap.base->MatchEntityMasked(
      entity, schema, snap.base_dead->data(), cancel);

  // Delta side. Query source values evaluated once per site (same bytes
  // the fresh-build query scorer would feed each comparison).
  const RuleProgram& program = *snap.program;
  std::vector<ValueSet> query_values(program.sites.size());
  for (size_t k = 0; k < program.sites.size(); ++k) {
    query_values[k] = program.sites[k]->source()->Evaluate(entity, schema);
  }

  // Candidates: probe the delta postings with the tokens of every
  // property of the query (the ProbePostings contract — the query
  // schema generally differs from the indexed one), or scan every live
  // entry when blocking is off. Sorted-unique so enumeration order can
  // never reach the output.
  std::vector<uint32_t> candidates;
  if (snap.postings != nullptr) {
    for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
      for (const auto& value : entity.Values(p)) {
        for (auto& token : TokenizeAlnum(ToLowerAscii(value))) {
          const auto it = snap.postings->find(token);
          if (it == snap.postings->end()) continue;
          candidates.insert(candidates.end(), it->second.begin(),
                            it->second.end());
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  } else {
    candidates = *snap.delta_live;
  }

  size_t scanned = 0;
  for (uint32_t slot : candidates) {
    if (cancel != nullptr && (++scanned & 63) == 0 && cancel->Cancelled()) {
      break;
    }
    const DeltaEntry& entry = snap.delta.entry(slot);
    // Serving-only semantics, as on the base side: a record is never
    // its own duplicate.
    if (entry.entity.id() == entity.id()) continue;
    size_t next_site = 0;
    const double score = ScoreDeltaNode(*program.rule.root(), program.sites,
                                        query_values, entry, next_site);
    if (score >= snap.options.threshold) {
      links.push_back({entity.id(), entry.entity.id(), score});
    }
  }

  // Merge under the one documented order — score descending, id_b
  // ascending (a strict total order here: every live id occurs exactly
  // once across base and delta) — then best-match reduce, exactly as a
  // fresh build over the logical corpus would.
  std::sort(links.begin(), links.end(), [](const auto& x, const auto& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.id_b < y.id_b;
  });
  if (snap.options.best_match_only && links.size() > 1) links.resize(1);
  return links;
}

std::vector<GeneratedLink> LiveCorpus::MatchEntity(const Entity& entity,
                                                   const Schema& schema) const {
  const auto snap = snapshot();
  return MatchOne(*snap, entity, schema, nullptr);
}

std::vector<GeneratedLink> LiveCorpus::MatchEntity(const Entity& entity) const {
  return MatchEntity(entity, schema_);
}

std::vector<GeneratedLink> LiveCorpus::MatchBatch(
    std::span<const Entity> entities, const Schema& schema,
    const CancelToken* cancel) const {
  // One snapshot for the whole batch: every entity scores against the
  // same epoch no matter how writers race the call.
  const auto snap = snapshot();
  const size_t n = entities.size();
  std::vector<std::vector<GeneratedLink>> per_entity(n);
  pool_->ParallelFor(n, [&](size_t i) {
    if (cancel != nullptr && cancel->Cancelled()) return;
    per_entity[i] = MatchOne(*snap, entities[i], schema, cancel);
  });
  std::vector<GeneratedLink> links;
  for (auto& list : per_entity) {
    links.insert(links.end(), std::make_move_iterator(list.begin()),
                 std::make_move_iterator(list.end()));
  }
  return links;
}

LiveCorpusStats LiveCorpus::stats() const {
  ReaderMutexLock lock(mutex_);
  LiveCorpusStats out;
  out.epoch = epoch_;
  out.base_entities = base_dead_.size();
  out.live_entities = live_entities_;
  out.delta_log_entries = delta_.size();
  size_t dead = 0;
  for (uint8_t flag : delta_dead_) dead += flag != 0 ? 1 : 0;
  out.delta_entities = delta_.size() - dead;
  out.tombstones = tombstones_;
  out.delta_store_bytes = delta_bytes_;
  out.upserts = upserts_;
  out.removes = removes_;
  out.compactions = compactions_;
  out.last_compact_seconds = last_compact_seconds_;
  return out;
}

}  // namespace genlink
