#include "live/delta_csv.h"

#include <utility>

#include "io/csv.h"

namespace genlink {

Result<DeltaBatch> ReadDeltaCsv(std::string_view text) {
  Result<std::vector<std::vector<std::string>>> rows = ParseCsv(text);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return Status::ParseError("delta CSV: missing header");
  const std::vector<std::string>& header = (*rows)[0];
  if (header.size() < 2 || header[0] != "op" || header[1] != "id") {
    return Status::ParseError(
        "delta CSV: header must start with 'op,id' (got '" +
        (header.empty() ? std::string() : header[0]) + ",...')");
  }
  DeltaBatch batch;
  for (size_t c = 2; c < header.size(); ++c) {
    batch.schema.AddProperty(header[c]);
  }
  batch.ops.reserve(rows->size() - 1);
  for (size_t r = 1; r < rows->size(); ++r) {
    const std::vector<std::string>& row = (*rows)[r];
    // A blank line parses as one empty field; skip it like
    // CsvEntityStream does.
    if (row.size() == 1 && row[0].empty()) continue;
    const std::string where = "delta CSV row " + std::to_string(r + 1);
    if (row.size() > header.size()) {
      return Status::ParseError(where + ": wider than the header");
    }
    if (row.size() < 2 || row[1].empty()) {
      return Status::ParseError(where + ": missing id");
    }
    LiveOp op;
    if (row[0] == "upsert") {
      op.kind = LiveOp::Kind::kUpsert;
      Entity entity(row[1]);
      for (size_t c = 2; c < row.size(); ++c) {
        if (!row[c].empty()) {
          entity.AddValue(static_cast<PropertyId>(c - 2), row[c]);
        }
      }
      op.entity = std::move(entity);
    } else if (row[0] == "delete") {
      op.kind = LiveOp::Kind::kRemove;
      op.id = row[1];
    } else {
      return Status::ParseError(where + ": unknown op '" + row[0] +
                                "' (expected 'upsert' or 'delete')");
    }
    batch.ops.push_back(std::move(op));
  }
  return batch;
}

std::string WriteDeltaCsv(const Schema& schema, std::span<const LiveOp> ops) {
  std::string out;
  std::vector<std::string> row;
  row.push_back("op");
  row.push_back("id");
  for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
    row.push_back(schema.PropertyName(p));
  }
  out += WriteCsv({row});
  for (const LiveOp& op : ops) {
    row.clear();
    if (op.kind == LiveOp::Kind::kRemove) {
      row.push_back("delete");
      row.push_back(op.id);
      row.resize(2 + schema.NumProperties());
    } else {
      row.push_back("upsert");
      row.push_back(op.entity.id());
      for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
        const ValueSet& values = op.entity.Values(p);
        row.push_back(values.empty() ? std::string() : values.front());
      }
    }
    out += WriteCsv({row});
  }
  return out;
}

}  // namespace genlink
