// Streaming corpora: mutable serving layered over the immutable
// MatcherIndex (ROADMAP item 1).
//
// The corpus a MatcherIndex serves is frozen at Build; any entity
// change used to mean a full reparse + rebuild. LiveCorpus makes the
// corpus mutable without giving up the immutable index underneath:
//
//   base  — an ordinary MatcherIndex over the last compacted corpus
//           (dataset-backed, or a zero-copy mapped v2 artifact);
//   delta — an append-only log of upserted entities (live/delta_store.h),
//           each pre-evaluated for the deployed rule and indexed in
//           delta blocking postings;
//   tombstones — a per-slot dead mask over the base corpus (removed or
//           superseded entities) plus dead marks on overwritten delta
//           entries.
//
// Every mutation publishes a new immutable, epoch-stamped Snapshot via
// std::atomic_store on a shared_ptr — the exact discipline ServingState
// uses for rule generations — so queries run against a consistent
// `base ⊎ delta − tombstones` view with ZERO reader locking: readers
// load the snapshot pointer and never touch the writer mutex. Writers
// (Upsert/Remove/ApplyBatch/Compact/DeployRule) serialize on a
// writer-priority lock; stats() takes its reader side.
//
// Correctness gate (tests/live_corpus_test.cc): after ANY interleaving
// of upserts, removes and compactions, MatchEntity/MatchBatch answer
// bit-identically — same ids, same doubles, same order — to a fresh
// MatcherIndex::Build over the logical corpus, at any thread count.
// Two ingredients make that hold:
//
//   * per-pair scores are corpus-independent: delta entities are scored
//     by the same DistanceViews walk the query scorer uses, over the
//     same value multisets in the same evaluation order;
//   * candidate sets are corpus-independent ONLY for the df-independent
//     blocking configuration (index every token: blocking_max_tokens
//     == 0, blocking_min_token_df <= 1). Weighted key selection ranks
//     tokens by corpus-wide document frequency, which shifts with every
//     mutation, so Create/DeployRule refuse those knobs with a named
//     error rather than serving near-identical links.
//
// Compaction rewrites base ⊎ delta − tombstones into a fresh owned
// corpus (and optionally a v2 corpus artifact via the crash-safe
// AtomicFileWriter path) while the previous snapshot keeps serving;
// the new base index is built off to the side and published as the
// next epoch. An interrupted artifact write (io.write_error failpoint)
// leaves the previous snapshot serving and no temp files behind.
//
// docs/STREAMING.md covers the snapshot lifecycle, epoch semantics,
// compaction policy and failure modes; docs/ARCHITECTURE.md walks the
// lifetime of an upsert end to end.

#ifndef GENLINK_LIVE_LIVE_CORPUS_H_
#define GENLINK_LIVE_LIVE_CORPUS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "api/matcher_index.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "live/delta_store.h"
#include "matcher/matcher.h"
#include "model/dataset.h"
#include "rule/linkage_rule.h"

namespace genlink {

class MappedCorpus;
class ThreadPool;

/// Policy knobs of the live layer.
struct LiveCorpusOptions {
  /// Online compaction trigger: when > 0, a mutation that leaves the
  /// delta log holding at least this many entries (live or superseded)
  /// runs Compact() before returning — the writer pays the rebuild,
  /// readers keep serving the previous snapshot throughout. 0 =
  /// compaction is manual (Compact/CompactTo only). Ignored over a
  /// mapped-corpus base, which cannot compact (see Compact).
  size_t compact_delta_threshold = 0;
};

/// Counters of one live corpus, exposed on /varz by the serve daemon.
struct LiveCorpusStats {
  /// Snapshot publications so far (0 = the initial build).
  uint64_t epoch = 0;
  /// Slots in the current base corpus (live and tombstoned).
  size_t base_entities = 0;
  /// Entities in the logical corpus (base ⊎ delta − tombstones).
  size_t live_entities = 0;
  /// Live entries in the delta log.
  size_t delta_entities = 0;
  /// All delta log entries, including superseded/removed ones — what
  /// the auto-compaction threshold compares against.
  size_t delta_log_entries = 0;
  /// Dead base slots (removed or superseded by an upsert).
  size_t tombstones = 0;
  /// Approximate heap bytes held by the delta log.
  size_t delta_store_bytes = 0;
  uint64_t upserts = 0;
  uint64_t removes = 0;
  uint64_t compactions = 0;
  double last_compact_seconds = 0.0;
};

/// One mutation of an ApplyBatch (the `genlink apply` delta-CSV row and
/// the POST /upsert / POST /delete body shape).
struct LiveOp {
  enum class Kind { kUpsert, kRemove };
  Kind kind = Kind::kUpsert;
  /// kUpsert: the new record, with values under the schema passed to
  /// ApplyBatch (remapped to the corpus schema by property name).
  Entity entity;
  /// kRemove: the id to tombstone.
  std::string id;
};

/// A mutable, epoch-snapshotted serving corpus. Thread-safe: any number
/// of query threads may call MatchEntity/MatchBatch while one writer
/// mutates; queries never block on writers (they read the published
/// snapshot), writers serialize among themselves.
class LiveCorpus {
 public:
  /// Builds the live layer over a copy of `base` (the corpus owns its
  /// data so compaction can rewrite it) and deploys `rule`. Fails with
  /// a named error on an empty rule or a df-dependent blocking
  /// configuration (file comment). `options.best_match_only` and
  /// `options.threshold` apply to the merged base+delta links exactly
  /// as a fresh Build would apply them.
  static Result<std::unique_ptr<LiveCorpus>> Create(
      const Dataset& base, const LinkageRule& rule,
      const MatchOptions& options = {},
      const LiveCorpusOptions& live_options = {});

  /// Live layer over a zero-copy mapped v2 corpus artifact: upserts and
  /// removes work (the delta side evaluates its own values), queries
  /// stay bit-identical, but Compact/CompactTo fail — the artifact
  /// stores transformed value spans, not raw property values, so the
  /// logical corpus cannot be rematerialized from it. Blocking knobs
  /// must additionally match what the artifact carries
  /// (api/matcher_index.h mapped Build contract).
  static Result<std::unique_ptr<LiveCorpus>> Create(
      std::shared_ptr<const MappedCorpus> base, const LinkageRule& rule,
      const MatchOptions& options = {},
      const LiveCorpusOptions& live_options = {});

  ~LiveCorpus();
  LiveCorpus(const LiveCorpus&) = delete;
  LiveCorpus& operator=(const LiveCorpus&) = delete;

  /// Inserts or replaces the entity with `entity.id()`. Values are
  /// remapped from `schema` to the corpus schema by property name; a
  /// non-empty property the corpus schema lacks is a named error (and
  /// nothing is applied). Publishes one new epoch.
  Status Upsert(const Entity& entity, const Schema& schema);

  /// Tombstones the entity with `id`. NotFound when no live entity
  /// carries it (removing twice is an error; upserting again after a
  /// remove is not). Publishes one new epoch.
  Status Remove(std::string_view id);

  /// Applies `ops` in order and publishes ONE new epoch for the whole
  /// batch — the bulk-ingest shape. Validation runs first over the
  /// entire batch (schema remaps, remove-of-live-id checked against
  /// the batch's own earlier ops); any invalid op rejects the batch
  /// with nothing applied.
  Status ApplyBatch(std::span<const LiveOp> ops, const Schema& schema);

  /// Rewrites base ⊎ delta − tombstones into a fresh owned corpus and
  /// builds a new base index over it while the previous snapshot keeps
  /// serving; the delta log and tombstone set reset to empty in the
  /// published epoch. FailedPrecondition over a mapped-corpus base.
  Status Compact();

  /// Compact, additionally persisting the compacted corpus as a v2
  /// artifact at `artifact_path` (crash-safe: same-dir temp + fsync +
  /// rename via io/atomic_write.h). On a write failure the previous
  /// snapshot keeps serving, no live state changes, and no temp file
  /// survives (tests/live_corpus_test.cc arms io.write_error at every
  /// write site).
  Status CompactTo(const std::string& artifact_path);

  /// Hot-swaps the deployed rule (the serve /reload shape): rebuilds
  /// the base index via TryWithRule against the shared corpus stores
  /// and re-evaluates every live delta entry under the new rule, then
  /// publishes one new epoch. On failure (e.g. a mapped artifact
  /// missing the new rule's plans) the previous rule keeps serving
  /// untouched. num_threads and use_value_store stay pinned to their
  /// Create-time values, as with MatcherIndex::TryWithRule.
  Status DeployRule(const LinkageRule& rule, const MatchOptions& options);

  /// Scores one query entity against the logical corpus: links
  /// reaching the threshold, sorted by descending score then ascending
  /// id_b, best-match reduced when configured — bit-identical to
  /// MatcherIndex::MatchEntity on a fresh serving-only Build of the
  /// logical corpus. Lock-free with respect to writers.
  std::vector<GeneratedLink> MatchEntity(const Entity& entity,
                                         const Schema& schema) const;

  /// MatchEntity with the corpus schema.
  std::vector<GeneratedLink> MatchEntity(const Entity& entity) const;

  /// MatchEntity for every entity, scored in parallel on the live
  /// layer's pool; the concatenation of per-entity link lists in input
  /// order. Every entity of one batch is scored against the SAME
  /// snapshot — a concurrent mutation becomes visible only to later
  /// calls. `cancel` follows the MatcherIndex::MatchBatch contract
  /// (truncated results when fired).
  std::vector<GeneratedLink> MatchBatch(std::span<const Entity> entities,
                                        const Schema& schema,
                                        const CancelToken* cancel = nullptr) const;

  /// The logical corpus as a Dataset (base order, then delta order —
  /// link results never depend on corpus order). FailedPrecondition
  /// over a mapped-corpus base. Used by verification paths
  /// (`genlink apply --verify`, tests).
  Result<Dataset> MaterializeLogical() const;

  /// The corpus schema upserts are remapped into.
  const Schema& schema() const { return schema_; }

  /// The epoch of the currently published snapshot.
  uint64_t epoch() const;

  LiveCorpusStats stats() const;

 private:
  struct RuleProgram;
  struct Snapshot;

  /// Where the live entity with some id currently lives. Dead ids are
  /// simply absent from locations_ (a re-upsert after a remove starts
  /// fresh in the delta log).
  struct Location {
    enum class Where : uint8_t { kBase, kDelta };
    Where where = Where::kBase;
    uint32_t slot = 0;
  };

  LiveCorpus();

  static Result<std::unique_ptr<LiveCorpus>> CreateImpl(
      const Dataset* base, std::shared_ptr<const MappedCorpus> mapped,
      const LinkageRule& rule, const MatchOptions& options,
      const LiveCorpusOptions& live_options);

  /// Rejects rules/options the live layer cannot serve bit-identically
  /// (empty rule, df-dependent blocking).
  static Status ValidateConfig(const LinkageRule& rule,
                               const MatchOptions& options);

  /// `options` with best_match_only stripped (applied after the merge)
  /// and cancellation cleared — what the base index is built with.
  static MatchOptions BaseOptions(const MatchOptions& options);

  /// Remaps `entity`'s values into the corpus schema by property name.
  Result<Entity> RemapEntity(const Entity& entity, const Schema& schema) const;

  /// Evaluates `entity` (already under the corpus schema) for the
  /// program's comparison sites and blocking keys.
  DeltaEntry BuildDeltaEntry(Entity entity, const RuleProgram& program,
                             bool use_blocking) const;

  Status ApplyBatchLocked(std::span<const LiveOp> ops, const Schema& schema)
      GENLINK_REQUIRES(mutex_);
  Result<Dataset> MaterializeLogicalLocked() const
      GENLINK_REQUIRES_SHARED(mutex_);
  /// Marks the live entity `id` dead (base tombstone or delta dead
  /// mark). The caller already verified it is live.
  void KillLocked(const std::string& id) GENLINK_REQUIRES(mutex_);
  Status CompactLocked(const std::string* artifact_path)
      GENLINK_REQUIRES(mutex_);
  /// Builds and atomically publishes the next snapshot from the master
  /// state (the only place snapshot_ is written).
  void PublishLocked() GENLINK_REQUIRES(mutex_);

  std::shared_ptr<const Snapshot> snapshot() const;
  std::vector<GeneratedLink> MatchOne(const Snapshot& snap,
                                      const Entity& entity,
                                      const Schema& schema,
                                      const CancelToken* cancel) const;

  /// Set once by CreateImpl, immutable afterwards.
  std::shared_ptr<const MappedCorpus> mapped_;
  LiveCorpusOptions live_options_;
  Schema schema_;
  std::unique_ptr<ThreadPool> pool_;

  /// Writer-priority lock over the master state below: mutations hold
  /// the writer side, stats() the reader side. Query paths never touch
  /// it — they read the published snapshot.
  mutable WriterPriorityMutex mutex_;
  MatchOptions user_options_ GENLINK_GUARDED_BY(mutex_);
  std::shared_ptr<const RuleProgram> program_ GENLINK_GUARDED_BY(mutex_);
  /// Owned base corpus (null over a mapped base). Snapshots share it.
  std::shared_ptr<const Dataset> base_data_ GENLINK_GUARDED_BY(mutex_);
  std::shared_ptr<const MatcherIndex> base_index_ GENLINK_GUARDED_BY(mutex_);
  /// base_dead_[slot] != 0 — removed or superseded by a delta entry.
  std::vector<uint8_t> base_dead_ GENLINK_GUARDED_BY(mutex_);
  DeltaLog delta_ GENLINK_GUARDED_BY(mutex_);
  /// delta_dead_[slot] != 0 — superseded by a later upsert or removed.
  std::vector<uint8_t> delta_dead_ GENLINK_GUARDED_BY(mutex_);
  /// id -> current location (base slot / delta slot / dead).
  std::unordered_map<std::string, Location> locations_
      GENLINK_GUARDED_BY(mutex_);
  uint64_t epoch_ GENLINK_GUARDED_BY(mutex_) = 0;
  size_t live_entities_ GENLINK_GUARDED_BY(mutex_) = 0;
  size_t tombstones_ GENLINK_GUARDED_BY(mutex_) = 0;
  size_t delta_bytes_ GENLINK_GUARDED_BY(mutex_) = 0;
  uint64_t upserts_ GENLINK_GUARDED_BY(mutex_) = 0;
  uint64_t removes_ GENLINK_GUARDED_BY(mutex_) = 0;
  uint64_t compactions_ GENLINK_GUARDED_BY(mutex_) = 0;
  double last_compact_seconds_ GENLINK_GUARDED_BY(mutex_) = 0.0;

  /// Published with std::atomic_store by PublishLocked; read anywhere
  /// with std::atomic_load. Never null after CreateImpl.
  std::shared_ptr<const Snapshot> snapshot_;
};

}  // namespace genlink

#endif  // GENLINK_LIVE_LIVE_CORPUS_H_
