// Token/set-based distances: Jaccard (Table 2), Dice and Cosine. These
// treat the whole value set as a bag of tokens; chains like
// `tokenize -> jaccard` give token-level matching as described in
// Section 3 of the paper.

#ifndef GENLINK_DISTANCE_TOKEN_DISTANCES_H_
#define GENLINK_DISTANCE_TOKEN_DISTANCES_H_

#include "distance/distance_measure.h"

namespace genlink {

/// Jaccard distance: 1 - |A ∩ B| / |A ∪ B| over distinct values.
class JaccardDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "jaccard"; }
  double Distance(const ValueSet& a, const ValueSet& b) const override;
  double MaxThreshold() const override { return 1.0; }
  bool IsSetMeasure() const override { return true; }
};

/// Dice distance: 1 - 2|A ∩ B| / (|A| + |B|) over distinct values.
class DiceDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "dice"; }
  double Distance(const ValueSet& a, const ValueSet& b) const override;
  double MaxThreshold() const override { return 1.0; }
  bool IsSetMeasure() const override { return true; }
};

/// Cosine distance: 1 - cosine similarity of token count vectors.
class CosineDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "cosine"; }
  double Distance(const ValueSet& a, const ValueSet& b) const override;
  double MaxThreshold() const override { return 1.0; }
  bool IsSetMeasure() const override { return true; }
};

}  // namespace genlink

#endif  // GENLINK_DISTANCE_TOKEN_DISTANCES_H_
