// Token/set-based distances: Jaccard (Table 2), Dice and Cosine. These
// treat the whole value set as a bag of tokens; chains like
// `tokenize -> jaccard` give token-level matching as described in
// Section 3 of the paper.

#ifndef GENLINK_DISTANCE_TOKEN_DISTANCES_H_
#define GENLINK_DISTANCE_TOKEN_DISTANCES_H_

#include "distance/distance_measure.h"

namespace genlink {

/// Jaccard distance: 1 - |A ∩ B| / |A ∪ B| over distinct values.
class JaccardDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "jaccard"; }
  double Distance(const ValueSet& a, const ValueSet& b) const override;
  double MaxThreshold() const override { return 1.0; }
  bool IsSetMeasure() const override { return true; }
  bool SupportsTokenIds() const override { return true; }
  double TokenIdDistance(std::span<const uint32_t> ids_a,
                         std::span<const uint32_t> counts_a,
                         std::span<const uint32_t> ids_b,
                         std::span<const uint32_t> counts_b) const override;
};

/// Dice distance: 1 - 2|A ∩ B| / (|A| + |B|) over distinct values.
class DiceDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "dice"; }
  double Distance(const ValueSet& a, const ValueSet& b) const override;
  double MaxThreshold() const override { return 1.0; }
  bool IsSetMeasure() const override { return true; }
  bool SupportsTokenIds() const override { return true; }
  double TokenIdDistance(std::span<const uint32_t> ids_a,
                         std::span<const uint32_t> counts_a,
                         std::span<const uint32_t> ids_b,
                         std::span<const uint32_t> counts_b) const override;
};

/// Cosine distance: 1 - cosine similarity of token count vectors.
class CosineDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "cosine"; }
  double Distance(const ValueSet& a, const ValueSet& b) const override;
  double MaxThreshold() const override { return 1.0; }
  bool IsSetMeasure() const override { return true; }
  bool SupportsTokenIds() const override { return true; }
  double TokenIdDistance(std::span<const uint32_t> ids_a,
                         std::span<const uint32_t> counts_a,
                         std::span<const uint32_t> ids_b,
                         std::span<const uint32_t> counts_b) const override;
};

/// Number of common ids of two strictly increasing id spans (merge walk;
/// shared by the TokenIdDistance implementations).
size_t SortedIdIntersectionSize(std::span<const uint32_t> a,
                                std::span<const uint32_t> b);

}  // namespace genlink

#endif  // GENLINK_DISTANCE_TOKEN_DISTANCES_H_
