#include "distance/numeric_distances.h"

#include <cmath>

#include "common/string_util.h"

namespace genlink {

double NumericDistance::ValueDistance(std::string_view a, std::string_view b) const {
  double da, db;
  if (!ParseDouble(a, &da) || !ParseDouble(b, &db)) return kInfiniteDistance;
  return std::abs(da - db);
}

std::optional<GeoPoint> ParseGeoPoint(std::string_view text) {
  std::string_view t = TrimView(text);
  bool wkt = false;
  if (StartsWith(t, "POINT(") && EndsWith(t, ")")) {
    t = t.substr(6, t.size() - 7);
    wkt = true;
  } else if (StartsWith(t, "POINT (") && EndsWith(t, ")")) {
    t = t.substr(7, t.size() - 8);
    wkt = true;
  }
  std::string buf(t);
  for (char& c : buf) {
    if (c == ',') c = ' ';
  }
  auto parts = SplitWhitespace(buf);
  if (parts.size() != 2) return std::nullopt;
  double first, second;
  if (!ParseDouble(parts[0], &first) || !ParseDouble(parts[1], &second)) {
    return std::nullopt;
  }
  GeoPoint p;
  if (wkt) {  // WKT order is lon lat
    p.lon = first;
    p.lat = second;
  } else {  // plain order is lat lon
    p.lat = first;
    p.lon = second;
  }
  if (p.lat < -90.0 || p.lat > 90.0 || p.lon < -180.0 || p.lon > 180.0) {
    return std::nullopt;
  }
  return p;
}

double HaversineMeters(const GeoPoint& a, const GeoPoint& b) {
  constexpr double kEarthRadiusMeters = 6371000.0;
  constexpr double kDegToRad = M_PI / 180.0;
  double lat1 = a.lat * kDegToRad;
  double lat2 = b.lat * kDegToRad;
  double dlat = (b.lat - a.lat) * kDegToRad;
  double dlon = (b.lon - a.lon) * kDegToRad;
  double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double GeographicDistance::ValueDistance(std::string_view a, std::string_view b) const {
  auto pa = ParseGeoPoint(a);
  auto pb = ParseGeoPoint(b);
  if (!pa || !pb) return kInfiniteDistance;
  return HaversineMeters(*pa, *pb);
}

int64_t DaysFromCivil(int year, unsigned month, unsigned day) {
  // Howard Hinnant's algorithm, days since 1970-01-01.
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);            // [0, 399]
  const unsigned doy = (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;              // [0, 146096]
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) - 719468;
}

std::optional<int64_t> ParseDateToDays(std::string_view text) {
  std::string_view t = TrimView(text);
  // Accept "YYYY-MM-DD" with optional time suffix, or bare "YYYY".
  int64_t year = 0, month = 1, day = 1;
  size_t dash1 = t.find('-', 1);  // skip a possible leading minus
  if (dash1 == std::string_view::npos) {
    if (!ParseInt64(t, &year)) return std::nullopt;
  } else {
    if (!ParseInt64(t.substr(0, dash1), &year)) return std::nullopt;
    std::string_view rest = t.substr(dash1 + 1);
    size_t dash2 = rest.find('-');
    if (dash2 == std::string_view::npos) {
      if (!ParseInt64(rest, &month)) return std::nullopt;
    } else {
      if (!ParseInt64(rest.substr(0, dash2), &month)) return std::nullopt;
      std::string_view day_part = rest.substr(dash2 + 1);
      size_t time_sep = day_part.find_first_of("T ");
      if (time_sep != std::string_view::npos) day_part = day_part.substr(0, time_sep);
      if (!ParseInt64(day_part, &day)) return std::nullopt;
    }
  }
  if (month < 1 || month > 12 || day < 1 || day > 31) return std::nullopt;
  return DaysFromCivil(static_cast<int>(year), static_cast<unsigned>(month),
                       static_cast<unsigned>(day));
}

double DateDistance::ValueDistance(std::string_view a, std::string_view b) const {
  auto da = ParseDateToDays(a);
  auto db = ParseDateToDays(b);
  if (!da || !db) return kInfiniteDistance;
  return std::abs(static_cast<double>(*da - *db));
}

}  // namespace genlink
