#include "distance/registry.h"

#include "distance/numeric_distances.h"
#include "distance/string_distances.h"
#include "distance/token_distances.h"

namespace genlink {

DistanceRegistry::DistanceRegistry() {
  Register(std::make_unique<LevenshteinDistance>());
  Register(std::make_unique<JaccardDistance>());
  Register(std::make_unique<NumericDistance>());
  Register(std::make_unique<GeographicDistance>());
  Register(std::make_unique<DateDistance>());
  Register(std::make_unique<JaroDistance>());
  Register(std::make_unique<JaroWinklerDistance>());
  Register(std::make_unique<DiceDistance>());
  Register(std::make_unique<CosineDistance>());
  Register(std::make_unique<EqualityDistance>());
}

const DistanceRegistry& DistanceRegistry::Default() {
  static const DistanceRegistry* registry = new DistanceRegistry();
  return *registry;
}

const DistanceMeasure* DistanceRegistry::Find(std::string_view name) const {
  for (const auto* m : views_) {
    if (m->name() == name) return m;
  }
  return nullptr;
}

void DistanceRegistry::Register(std::unique_ptr<DistanceMeasure> measure) {
  views_.push_back(measure.get());
  measures_.push_back(std::move(measure));
}

}  // namespace genlink
