// Character-based string distances: Levenshtein (Table 2), Jaro,
// Jaro-Winkler, and exact equality.
//
// The kernels behind these measures are the hot path of both fitness
// evaluation (cold distance rows) and full-dataset matching, so they
// are written allocation-free:
//
//   * Levenshtein runs Myers' bit-parallel algorithm (O(n) words) when
//     the shorter string fits in one 64-bit word — which covers nearly
//     every property value in the evaluation datasets — and a
//     scratch-buffer dynamic program beyond that.
//   * When a caller only needs distances up to a known threshold (the
//     matcher's compiled comparisons), BoundedValueDistance runs a
//     banded dynamic program with early exit that returns some value
//     > bound instead of the exact distance beyond it; ThresholdedScore
//     maps both to the same similarity, keeping results bit-identical.
//   * Jaro tracks matched characters in two 64-bit masks (stack bytes
//     for longer strings) instead of std::vector<bool>.
//
// The pre-optimization implementations are kept as *Reference functions:
// tests/distance_kernels_test.cc asserts kernel equivalence on random
// pairs and bench/micro_distances.cc benchmarks old vs new side by side.

#ifndef GENLINK_DISTANCE_STRING_DISTANCES_H_
#define GENLINK_DISTANCE_STRING_DISTANCES_H_

#include "distance/distance_measure.h"

namespace genlink {

/// Levenshtein edit distance in characters (insert/delete/substitute,
/// unit costs).
class LevenshteinDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "levenshtein"; }
  double ValueDistance(std::string_view a, std::string_view b) const override;
  double BoundedValueDistance(std::string_view a, std::string_view b,
                              double bound) const override;
  double MaxThreshold() const override { return 5.0; }
};

/// Jaro distance = 1 - Jaro similarity.
class JaroDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "jaro"; }
  double ValueDistance(std::string_view a, std::string_view b) const override;
  double MaxThreshold() const override { return 0.5; }
};

/// Jaro-Winkler distance = 1 - Jaro-Winkler similarity (prefix scale 0.1,
/// max prefix 4).
class JaroWinklerDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "jaroWinkler"; }
  double ValueDistance(std::string_view a, std::string_view b) const override;
  double MaxThreshold() const override { return 0.5; }
};

/// 0 when equal, 1 otherwise.
class EqualityDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "equality"; }
  double ValueDistance(std::string_view a, std::string_view b) const override {
    return a == b ? 0.0 : 1.0;
  }
  double MaxThreshold() const override { return 0.9; }
};

/// Raw Levenshtein edit distance between two strings (shared helper).
/// Myers bit-parallel when min(|a|,|b|) <= 64, dynamic program beyond.
int LevenshteinEditDistance(std::string_view a, std::string_view b);

// ---------------------------------------------------------------------------
// Candidate-loop prefilters: O(1)/O(bound) rejection tests that run
// before the Levenshtein kernels. Both are SOUND: they return false
// only when the edit distance provably exceeds `bound`, so skipping a
// filtered pair (treating its distance as > bound) is bit-identical to
// running the kernel — ThresholdedScore maps every distance > bound to
// similarity 0 either way. Fuzzed against the reference kernel by
// tests/blocking_soundness_test.cc.

/// Length filter: ed(a, b) >= ||a| - |b||, so a pair whose lengths
/// differ by more than `bound` cannot pass. Returns true when the pair
/// may still be within `bound`.
bool PassesLevenshteinLengthFilter(std::string_view a, std::string_view b,
                                   double bound);

/// Prefix filter: if ed(a, b) <= t (t = floor(bound)) and both strings
/// are longer than t, then among the first t+1 characters of either
/// string at least one was copied unedited from the first 2t+1
/// characters of the other — editing all t+1 would need more than t
/// edits, and a character copied to position j comes from a position
/// at most j + t away (at most t deletions precede it). The filter
/// checks both directions with 64-bit character-class masks; mask
/// collisions only make it more permissive, never unsound.
/// Returns true when the pair may still be within `bound` (always true
/// when either string has <= t characters, where the argument fails).
bool PassesLevenshteinPrefixFilter(std::string_view a, std::string_view b,
                                   double bound);

/// Levenshtein with a cutoff: returns the exact distance when it is
/// <= `bound`, and some value > `bound` (not necessarily the distance)
/// otherwise. `bound` < 0 behaves like bound 0.
int BoundedLevenshteinEditDistance(std::string_view a, std::string_view b,
                                   int bound);

/// Jaro similarity in [0,1].
double JaroSimilarity(std::string_view a, std::string_view b);

// ---------------------------------------------------------------------------
// Reference kernels: the straightforward implementations the optimized
// kernels must agree with bit for bit. Used by tests and the paired
// micro benches; not on any hot path.

/// Two-row dynamic-program Levenshtein.
int LevenshteinEditDistanceReference(std::string_view a, std::string_view b);

/// Jaro with heap-allocated match flags.
double JaroSimilarityReference(std::string_view a, std::string_view b);

}  // namespace genlink

#endif  // GENLINK_DISTANCE_STRING_DISTANCES_H_
