// Character-based string distances: Levenshtein (Table 2), Jaro,
// Jaro-Winkler, and exact equality.

#ifndef GENLINK_DISTANCE_STRING_DISTANCES_H_
#define GENLINK_DISTANCE_STRING_DISTANCES_H_

#include "distance/distance_measure.h"

namespace genlink {

/// Levenshtein edit distance in characters (insert/delete/substitute,
/// unit costs).
class LevenshteinDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "levenshtein"; }
  double ValueDistance(std::string_view a, std::string_view b) const override;
  double MaxThreshold() const override { return 5.0; }
};

/// Jaro distance = 1 - Jaro similarity.
class JaroDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "jaro"; }
  double ValueDistance(std::string_view a, std::string_view b) const override;
  double MaxThreshold() const override { return 0.5; }
};

/// Jaro-Winkler distance = 1 - Jaro-Winkler similarity (prefix scale 0.1,
/// max prefix 4).
class JaroWinklerDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "jaroWinkler"; }
  double ValueDistance(std::string_view a, std::string_view b) const override;
  double MaxThreshold() const override { return 0.5; }
};

/// 0 when equal, 1 otherwise.
class EqualityDistance : public DistanceMeasure {
 public:
  std::string_view name() const override { return "equality"; }
  double ValueDistance(std::string_view a, std::string_view b) const override {
    return a == b ? 0.0 : 1.0;
  }
  double MaxThreshold() const override { return 0.9; }
};

/// Raw Levenshtein edit distance between two strings (shared helper).
int LevenshteinEditDistance(std::string_view a, std::string_view b);

/// Jaro similarity in [0,1].
double JaroSimilarity(std::string_view a, std::string_view b);

}  // namespace genlink

#endif  // GENLINK_DISTANCE_STRING_DISTANCES_H_
