#include "distance/token_distances.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace genlink {
namespace {

std::unordered_set<std::string_view> DistinctView(const ValueSet& values) {
  std::unordered_set<std::string_view> set;
  set.reserve(values.size());
  for (const auto& v : values) set.insert(v);
  return set;
}

size_t IntersectionSize(const std::unordered_set<std::string_view>& a,
                        const std::unordered_set<std::string_view>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t n = 0;
  for (const auto& v : small) {
    if (large.count(v)) ++n;
  }
  return n;
}

}  // namespace

double JaccardDistance::Distance(const ValueSet& a, const ValueSet& b) const {
  if (a.empty() || b.empty()) return kInfiniteDistance;
  auto sa = DistinctView(a);
  auto sb = DistinctView(b);
  size_t inter = IntersectionSize(sa, sb);
  size_t uni = sa.size() + sb.size() - inter;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceDistance::Distance(const ValueSet& a, const ValueSet& b) const {
  if (a.empty() || b.empty()) return kInfiniteDistance;
  auto sa = DistinctView(a);
  auto sb = DistinctView(b);
  size_t inter = IntersectionSize(sa, sb);
  return 1.0 - 2.0 * static_cast<double>(inter) /
                   static_cast<double>(sa.size() + sb.size());
}

size_t SortedIdIntersectionSize(std::span<const uint32_t> a,
                                std::span<const uint32_t> b) {
  size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

// The token-id paths reproduce the ValueSet paths bit for bit: the
// intersection/union cardinalities are the same integers (distinct
// interned ids = distinct strings), and cosine's dot product and norms
// are sums of integer products, which are exact in double no matter the
// summation order — so hash-map iteration order in the reference and
// merge order here cannot diverge.

double JaccardDistance::TokenIdDistance(std::span<const uint32_t> ids_a,
                                        std::span<const uint32_t> /*counts_a*/,
                                        std::span<const uint32_t> ids_b,
                                        std::span<const uint32_t> /*counts_b*/) const {
  size_t inter = SortedIdIntersectionSize(ids_a, ids_b);
  size_t uni = ids_a.size() + ids_b.size() - inter;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceDistance::TokenIdDistance(std::span<const uint32_t> ids_a,
                                     std::span<const uint32_t> /*counts_a*/,
                                     std::span<const uint32_t> ids_b,
                                     std::span<const uint32_t> /*counts_b*/) const {
  size_t inter = SortedIdIntersectionSize(ids_a, ids_b);
  return 1.0 - 2.0 * static_cast<double>(inter) /
                   static_cast<double>(ids_a.size() + ids_b.size());
}

double CosineDistance::TokenIdDistance(std::span<const uint32_t> ids_a,
                                       std::span<const uint32_t> counts_a,
                                       std::span<const uint32_t> ids_b,
                                       std::span<const uint32_t> counts_b) const {
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < ids_a.size() && j < ids_b.size()) {
    if (ids_a[i] < ids_b[j]) {
      ++i;
    } else if (ids_b[j] < ids_a[i]) {
      ++j;
    } else {
      dot += static_cast<double>(counts_a[i]) * counts_b[j];
      ++i;
      ++j;
    }
  }
  double norm_a = 0.0, norm_b = 0.0;
  for (size_t k = 0; k < counts_a.size(); ++k) {
    norm_a += static_cast<double>(counts_a[k]) * counts_a[k];
  }
  for (size_t k = 0; k < counts_b.size(); ++k) {
    norm_b += static_cast<double>(counts_b[k]) * counts_b[k];
  }
  double sim = dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
  return 1.0 - sim;
}

double CosineDistance::Distance(const ValueSet& a, const ValueSet& b) const {
  if (a.empty() || b.empty()) return kInfiniteDistance;
  std::unordered_map<std::string_view, int> ca, cb;
  for (const auto& v : a) ++ca[v];
  for (const auto& v : b) ++cb[v];
  double dot = 0.0;
  // Hash-order accumulation: libstdc++ iteration order is a pure
  // function of the insertion sequence (no per-process hash seed), so
  // the sums are reproducible for a given input and standard library;
  // the golden tables pin the resulting scores. Sorting the tokens
  // first would change the float sum order and every cosine golden.
  // lint:ordered -- insertion-order-deterministic on libstdc++; goldens pin the scores
  for (const auto& [token, count] : ca) {
    auto it = cb.find(token);
    if (it != cb.end()) dot += static_cast<double>(count) * it->second;
  }
  double norm_a = 0.0, norm_b = 0.0;
  // lint:ordered -- insertion-order-deterministic on libstdc++; goldens pin the scores
  for (const auto& [token, count] : ca) norm_a += static_cast<double>(count) * count;
  // lint:ordered -- insertion-order-deterministic on libstdc++; goldens pin the scores
  for (const auto& [token, count] : cb) norm_b += static_cast<double>(count) * count;
  double sim = dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
  return 1.0 - sim;
}

}  // namespace genlink
