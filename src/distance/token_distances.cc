#include "distance/token_distances.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace genlink {
namespace {

std::unordered_set<std::string_view> DistinctView(const ValueSet& values) {
  std::unordered_set<std::string_view> set;
  set.reserve(values.size());
  for (const auto& v : values) set.insert(v);
  return set;
}

size_t IntersectionSize(const std::unordered_set<std::string_view>& a,
                        const std::unordered_set<std::string_view>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t n = 0;
  for (const auto& v : small) {
    if (large.count(v)) ++n;
  }
  return n;
}

}  // namespace

double JaccardDistance::Distance(const ValueSet& a, const ValueSet& b) const {
  if (a.empty() || b.empty()) return kInfiniteDistance;
  auto sa = DistinctView(a);
  auto sb = DistinctView(b);
  size_t inter = IntersectionSize(sa, sb);
  size_t uni = sa.size() + sb.size() - inter;
  return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceDistance::Distance(const ValueSet& a, const ValueSet& b) const {
  if (a.empty() || b.empty()) return kInfiniteDistance;
  auto sa = DistinctView(a);
  auto sb = DistinctView(b);
  size_t inter = IntersectionSize(sa, sb);
  return 1.0 - 2.0 * static_cast<double>(inter) /
                   static_cast<double>(sa.size() + sb.size());
}

double CosineDistance::Distance(const ValueSet& a, const ValueSet& b) const {
  if (a.empty() || b.empty()) return kInfiniteDistance;
  std::unordered_map<std::string_view, int> ca, cb;
  for (const auto& v : a) ++ca[v];
  for (const auto& v : b) ++cb[v];
  double dot = 0.0;
  for (const auto& [token, count] : ca) {
    auto it = cb.find(token);
    if (it != cb.end()) dot += static_cast<double>(count) * it->second;
  }
  double norm_a = 0.0, norm_b = 0.0;
  for (const auto& [token, count] : ca) norm_a += static_cast<double>(count) * count;
  for (const auto& [token, count] : cb) norm_b += static_cast<double>(count) * count;
  double sim = dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
  return 1.0 - sim;
}

}  // namespace genlink
