// Numeric, geographic and date distances (Table 2 of the paper).

#ifndef GENLINK_DISTANCE_NUMERIC_DISTANCES_H_
#define GENLINK_DISTANCE_NUMERIC_DISTANCES_H_

#include <cstdint>
#include <optional>

#include "distance/distance_measure.h"

namespace genlink {

/// Absolute numeric difference |a - b| of values parseable as doubles.
class NumericDistance : public DistanceMeasure {
 public:
  /// `max_threshold` bounds the thresholds the learner may pick; the
  /// default of 100 suits year-like and count-like properties.
  explicit NumericDistance(double max_threshold = 100.0)
      : max_threshold_(max_threshold) {}

  std::string_view name() const override { return "numeric"; }
  double ValueDistance(std::string_view a, std::string_view b) const override;
  double MaxThreshold() const override { return max_threshold_; }

 private:
  double max_threshold_;
};

/// A WGS84 coordinate.
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// Parses "lat lon", "lat,lon" or WKT "POINT(lon lat)".
std::optional<GeoPoint> ParseGeoPoint(std::string_view text);

/// Great-circle distance in meters (haversine, mean earth radius).
double HaversineMeters(const GeoPoint& a, const GeoPoint& b);

/// Geographical distance in meters between coordinate-valued properties.
class GeographicDistance : public DistanceMeasure {
 public:
  /// Thresholds are sampled up to `max_threshold_meters` (default 100 km).
  explicit GeographicDistance(double max_threshold_meters = 100000.0)
      : max_threshold_(max_threshold_meters) {}

  std::string_view name() const override { return "geographic"; }
  double ValueDistance(std::string_view a, std::string_view b) const override;
  double MaxThreshold() const override { return max_threshold_; }

 private:
  double max_threshold_;
};

/// Days since civil epoch 1970-01-01 for a proleptic Gregorian date.
int64_t DaysFromCivil(int year, unsigned month, unsigned day);

/// Parses ISO "YYYY-MM-DD" (also accepts a bare "YYYY", treated as Jan 1).
std::optional<int64_t> ParseDateToDays(std::string_view text);

/// Distance between two dates in days.
class DateDistance : public DistanceMeasure {
 public:
  /// Thresholds are sampled up to `max_threshold_days` (default 10 years).
  explicit DateDistance(double max_threshold_days = 3650.0)
      : max_threshold_(max_threshold_days) {}

  std::string_view name() const override { return "date"; }
  double ValueDistance(std::string_view a, std::string_view b) const override;
  double MaxThreshold() const override { return max_threshold_; }

 private:
  double max_threshold_;
};

}  // namespace genlink

#endif  // GENLINK_DISTANCE_NUMERIC_DISTANCES_H_
