// Distance measures f_d: Σ × Σ → R (Definition 7 of the paper).
//
// A measure computes the distance between two *value sets*. Most measures
// are defined per value and lift to sets by taking the minimum over all
// value pairs (an entity matches if any of its values matches — RDF
// properties are multi-valued). Token-based measures (Jaccard, Dice,
// Cosine) compare the sets as a whole.
//
// Two call surfaces exist for every measure:
//   * Distance(const ValueSet&, const ValueSet&) — owning strings; the
//     reference path used by per-pair operator-tree evaluation.
//   * DistanceViews(span<string_view>, span<string_view>) — non-owning
//     views into the value store's interned pool (eval/value_store.h);
//     the hot path. Set measures additionally accept pre-sorted
//     interned token-id spans via TokenIdDistance.
// Both surfaces MUST return bit-identical doubles for equal inputs; the
// engine and matcher rely on it (tests/engine_test.cc,
// tests/matcher_test.cc).

#ifndef GENLINK_DISTANCE_DISTANCE_MEASURE_H_
#define GENLINK_DISTANCE_DISTANCE_MEASURE_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>

#include "model/value.h"

namespace genlink {

/// Distance returned when a distance is undefined for the given input
/// (e.g. empty value sets, unparseable numbers). Comparisons treat it as
/// "beyond any threshold", yielding similarity 0.
inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Abstract distance measure over value sets.
class DistanceMeasure {
 public:
  virtual ~DistanceMeasure() = default;

  /// Stable identifier used in serialized rules (e.g. "levenshtein").
  virtual std::string_view name() const = 0;

  /// Distance between two value sets. Returns kInfiniteDistance when
  /// either set is empty or no pair of values is comparable. The default
  /// implementation takes the minimum of ValueDistance over all pairs.
  virtual double Distance(const ValueSet& a, const ValueSet& b) const;

  /// Same contract over non-owning views (the interned hot path).
  /// `bound`: the caller only distinguishes distances <= bound; any
  /// value > bound may stand in for a larger true distance (pass
  /// kInfiniteDistance — the default — for the exact distance). The
  /// base implementation min-lifts BoundedValueDistance with early exit
  /// at 0, visiting pairs in the same order as the ValueSet overload;
  /// set measures fall back to materializing ValueSets.
  virtual double DistanceViews(std::span<const std::string_view> a,
                               std::span<const std::string_view> b,
                               double bound = kInfiniteDistance) const;

  /// Distance between two individual values. Measures that only operate
  /// on whole sets (see IsSetMeasure) need not override this.
  virtual double ValueDistance(std::string_view a, std::string_view b) const;

  /// ValueDistance with a cutoff: when the true distance exceeds
  /// `bound`, any return value > bound is allowed (kernels may stop
  /// early). Default: the exact ValueDistance.
  virtual double BoundedValueDistance(std::string_view a, std::string_view b,
                                      double bound) const {
    (void)bound;
    return ValueDistance(a, b);
  }

  /// Largest threshold θ that makes sense for this measure; the rule
  /// generator samples thresholds from (0, MaxThreshold()].
  virtual double MaxThreshold() const = 0;

  /// True when Distance() compares the value sets as a whole rather than
  /// lifting a per-value distance.
  virtual bool IsSetMeasure() const { return false; }

  /// True when TokenIdDistance is implemented: the measure can consume
  /// the value store's sorted-unique interned token ids directly.
  virtual bool SupportsTokenIds() const { return false; }

  /// Set distance over interned token ids. `ids_*` are strictly
  /// increasing; `counts_*[k]` is the multiplicity of `ids_*[k]` in the
  /// original value set. Ids from the same pool, so id equality is
  /// string equality. Only called when SupportsTokenIds() is true, with
  /// both spans non-empty.
  virtual double TokenIdDistance(std::span<const uint32_t> ids_a,
                                 std::span<const uint32_t> counts_a,
                                 std::span<const uint32_t> ids_b,
                                 std::span<const uint32_t> counts_b) const;
};

/// Similarity score of a comparison operator (Definition 7):
///   1 - d/θ  if d <= θ, else 0.
/// θ == 0 degenerates to exact match (1 if d == 0 else 0).
double ThresholdedScore(double distance, double threshold);

}  // namespace genlink

#endif  // GENLINK_DISTANCE_DISTANCE_MEASURE_H_
