// Distance measures f_d: Σ × Σ → R (Definition 7 of the paper).
//
// A measure computes the distance between two *value sets*. Most measures
// are defined per value and lift to sets by taking the minimum over all
// value pairs (an entity matches if any of its values matches — RDF
// properties are multi-valued). Token-based measures (Jaccard, Dice,
// Cosine) compare the sets as a whole.

#ifndef GENLINK_DISTANCE_DISTANCE_MEASURE_H_
#define GENLINK_DISTANCE_DISTANCE_MEASURE_H_

#include <limits>
#include <string_view>

#include "model/value.h"

namespace genlink {

/// Distance returned when a distance is undefined for the given input
/// (e.g. empty value sets, unparseable numbers). Comparisons treat it as
/// "beyond any threshold", yielding similarity 0.
inline constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Abstract distance measure over value sets.
class DistanceMeasure {
 public:
  virtual ~DistanceMeasure() = default;

  /// Stable identifier used in serialized rules (e.g. "levenshtein").
  virtual std::string_view name() const = 0;

  /// Distance between two value sets. Returns kInfiniteDistance when
  /// either set is empty or no pair of values is comparable. The default
  /// implementation takes the minimum of ValueDistance over all pairs.
  virtual double Distance(const ValueSet& a, const ValueSet& b) const;

  /// Distance between two individual values. Measures that only operate
  /// on whole sets (see IsSetMeasure) need not override this.
  virtual double ValueDistance(std::string_view a, std::string_view b) const;

  /// Largest threshold θ that makes sense for this measure; the rule
  /// generator samples thresholds from (0, MaxThreshold()].
  virtual double MaxThreshold() const = 0;

  /// True when Distance() compares the value sets as a whole rather than
  /// lifting a per-value distance.
  virtual bool IsSetMeasure() const { return false; }
};

/// Similarity score of a comparison operator (Definition 7):
///   1 - d/θ  if d <= θ, else 0.
/// θ == 0 degenerates to exact match (1 if d == 0 else 0).
double ThresholdedScore(double distance, double threshold);

}  // namespace genlink

#endif  // GENLINK_DISTANCE_DISTANCE_MEASURE_H_
