#include "distance/string_distances.h"

#include <algorithm>
#include <vector>

namespace genlink {

int LevenshteinEditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return static_cast<int>(n);

  // Two-row dynamic program; a is the shorter string so the rows are small.
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t i = 0; i <= m; ++i) prev[i] = static_cast<int>(i);
  for (size_t j = 1; j <= n; ++j) {
    cur[0] = static_cast<int>(j);
    const char cb = b[j - 1];
    for (size_t i = 1; i <= m; ++i) {
      int subst = prev[i - 1] + (a[i - 1] == cb ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t max_dist = std::max(a.size(), b.size()) / 2;
  const size_t window = max_dist == 0 ? 0 : max_dist - 1;

  std::vector<bool> a_matched(a.size(), false), b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - transpositions / 2.0) / m) / 3.0;
}

double LevenshteinDistance::ValueDistance(std::string_view a, std::string_view b) const {
  return static_cast<double>(LevenshteinEditDistance(a, b));
}

double JaroDistance::ValueDistance(std::string_view a, std::string_view b) const {
  return 1.0 - JaroSimilarity(a, b);
}

double JaroWinklerDistance::ValueDistance(std::string_view a,
                                          std::string_view b) const {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  double sim = jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
  return 1.0 - sim;
}

}  // namespace genlink
