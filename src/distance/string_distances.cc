#include "distance/string_distances.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace genlink {
namespace {

// Myers' bit-parallel Levenshtein (single 64-bit word): O(|text|) word
// operations once the pattern's character-position masks are built.
// Computes the exact global edit distance, so it is interchangeable
// with the dynamic program. Requires 1 <= |pattern| <= 64.
int MyersLevenshtein64(std::string_view pattern, std::string_view text) {
  // Clear only the character entries this call reads or writes (O(m+n))
  // instead of memset-ing the whole 2 KiB table, which would dominate
  // the runtime for short strings.
  uint64_t peq[256];
  for (const char c : text) peq[static_cast<unsigned char>(c)] = 0;
  for (const char c : pattern) peq[static_cast<unsigned char>(c)] = 0;
  const size_t m = pattern.size();
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(pattern[i])] |= uint64_t{1} << i;
  }
  const unsigned high = static_cast<unsigned>(m - 1);
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  int score = static_cast<int>(m);
  for (const char tc : text) {
    const uint64_t eq = peq[static_cast<unsigned char>(tc)];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    score += static_cast<int>((ph >> high) & 1);
    score -= static_cast<int>((mh >> high) & 1);
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

// Two-row dynamic program over reusable scratch (only reached when both
// strings exceed 64 characters). `a` must be the shorter string.
int LevenshteinDp(std::string_view a, std::string_view b) {
  const size_t m = a.size();
  const size_t n = b.size();
  thread_local std::vector<int> prev_scratch, cur_scratch;
  prev_scratch.resize(m + 1);
  cur_scratch.resize(m + 1);
  int* prev = prev_scratch.data();
  int* cur = cur_scratch.data();
  for (size_t i = 0; i <= m; ++i) prev[i] = static_cast<int>(i);
  for (size_t j = 1; j <= n; ++j) {
    cur[0] = static_cast<int>(j);
    const char cb = b[j - 1];
    for (size_t i = 1; i <= m; ++i) {
      int subst = prev[i - 1] + (a[i - 1] == cb ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

// Shared Jaro match/transposition count. Flag storage is provided by the
// caller (bit masks, stack bytes or heap, depending on lengths); the
// scan order is identical in every variant, so they cannot diverge.
template <typename GetA, typename SetA, typename GetB, typename SetB>
double JaroFromFlags(std::string_view a, std::string_view b, GetA get_a,
                     SetA set_a, GetB get_b, SetB set_b) {
  const size_t max_dist = std::max(a.size(), b.size()) / 2;
  const size_t window = max_dist == 0 ? 0 : max_dist - 1;

  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!get_b(j) && a[i] == b[j]) {
        set_a(i);
        set_b(j);
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;

  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!get_a(i)) continue;
    while (!get_b(j)) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - transpositions / 2.0) / m) / 3.0;
}

}  // namespace

int LevenshteinEditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return static_cast<int>(b.size());
  if (a.size() <= 64) return MyersLevenshtein64(a, b);
  return LevenshteinDp(a, b);
}

namespace {

// 64-bit occupancy mask of the characters of `text` (bucketed by the
// low 6 bits). Distinct characters may share a bucket, which can only
// make a mask intersection test MORE permissive.
uint64_t CharClassMask(std::string_view text) {
  uint64_t mask = 0;
  for (const char c : text) mask |= uint64_t{1} << (static_cast<unsigned char>(c) & 63);
  return mask;
}

}  // namespace

bool PassesLevenshteinLengthFilter(std::string_view a, std::string_view b,
                                   double bound) {
  const size_t longer = std::max(a.size(), b.size());
  const size_t shorter = std::min(a.size(), b.size());
  return static_cast<double>(longer - shorter) <= bound;
}

bool PassesLevenshteinPrefixFilter(std::string_view a, std::string_view b,
                                   double bound) {
  if (bound < 0.0) return false;  // no distance is <= a negative bound
  const double floored = std::floor(bound);
  // Distances are string-length-bounded ints; a bound at or beyond the
  // longer string can never reject (and a huge bound must not be cast).
  if (floored >= static_cast<double>(std::max(a.size(), b.size()))) return true;
  const size_t t = static_cast<size_t>(floored);
  if (a.size() <= t || b.size() <= t) return true;  // argument needs len > t
  const uint64_t head_a = CharClassMask(a.substr(0, t + 1));
  const uint64_t head_b = CharClassMask(b.substr(0, t + 1));
  const uint64_t wide_a = head_a | CharClassMask(a.substr(t + 1, t));
  const uint64_t wide_b = head_b | CharClassMask(b.substr(t + 1, t));
  return (head_a & wide_b) != 0 && (head_b & wide_a) != 0;
}

int BoundedLevenshteinEditDistance(std::string_view a, std::string_view b,
                                   int bound) {
  if (a.size() > b.size()) std::swap(a, b);
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  if (bound < 0) bound = 0;
  // The length difference is a lower bound on the distance.
  if (n - m > bound) return bound + 1;
  if (bound >= n) return LevenshteinEditDistance(a, b);
  if (m == 0) return n;  // n <= bound here

  // Banded dynamic program: only cells with |i - j| <= bound can lie on
  // a path of cost <= bound; everything outside the band is the
  // sentinel bound+1 (values are capped there, so the sentinel also
  // prevents overflow).
  const int inf = bound + 1;
  constexpr int kStackCap = 256;
  int stack_a[kStackCap + 1];
  int stack_b[kStackCap + 1];
  std::vector<int> heap;
  int* prev = stack_a;
  int* cur = stack_b;
  if (m + 1 > kStackCap + 1) {
    heap.resize(2 * (m + 1));
    prev = heap.data();
    cur = heap.data() + (m + 1);
  }
  for (int i = 0; i <= m; ++i) prev[i] = i <= bound ? i : inf;
  for (int j = 1; j <= n; ++j) {
    const int lo = std::max(1, j - bound);
    const int hi = std::min(m, j + bound);
    cur[lo - 1] = (lo == 1 && j <= bound) ? j : inf;
    int col_min = cur[lo - 1];
    const char cb = b[j - 1];
    for (int i = lo; i <= hi; ++i) {
      int best = prev[i - 1] + (a[i - 1] == cb ? 0 : 1);
      best = std::min(best, prev[i] + 1);
      best = std::min(best, cur[i - 1] + 1);
      cur[i] = std::min(best, inf);
      col_min = std::min(col_min, cur[i]);
    }
    if (hi < m) cur[hi + 1] = inf;  // next column's band edge reads it
    if (col_min > bound) return inf;
    std::swap(prev, cur);
  }
  return std::min(prev[m], inf);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  if (a.size() <= 64 && b.size() <= 64) {
    uint64_t am = 0, bm = 0;
    return JaroFromFlags(
        a, b, [&](size_t i) { return (am >> i) & 1; },
        [&](size_t i) { am |= uint64_t{1} << i; },
        [&](size_t j) { return (bm >> j) & 1; },
        [&](size_t j) { bm |= uint64_t{1} << j; });
  }

  constexpr size_t kStackCap = 512;
  unsigned char stack_flags[2 * kStackCap];
  std::vector<unsigned char> heap_flags;
  unsigned char* af = stack_flags;
  unsigned char* bf = stack_flags + kStackCap;
  if (a.size() > kStackCap || b.size() > kStackCap) {
    heap_flags.assign(a.size() + b.size(), 0);
    af = heap_flags.data();
    bf = heap_flags.data() + a.size();
  } else {
    std::fill(af, af + a.size(), 0);
    std::fill(bf, bf + b.size(), 0);
  }
  return JaroFromFlags(
      a, b, [&](size_t i) { return af[i] != 0; }, [&](size_t i) { af[i] = 1; },
      [&](size_t j) { return bf[j] != 0; }, [&](size_t j) { bf[j] = 1; });
}

double LevenshteinDistance::ValueDistance(std::string_view a, std::string_view b) const {
  return static_cast<double>(LevenshteinEditDistance(a, b));
}

double LevenshteinDistance::BoundedValueDistance(std::string_view a,
                                                std::string_view b,
                                                double bound) const {
  // Distances are integers: d <= bound iff d <= floor(bound), so the
  // banded kernel computes every distance the threshold can reach
  // exactly and maps the rest to floor(bound)+1 > bound.
  const size_t longer = std::max(a.size(), b.size());
  if (!(bound < static_cast<double>(longer))) return ValueDistance(a, b);
  // Candidate-loop prefilters: both are sound (false only when the
  // distance provably exceeds the bound), so skipping the kernel here
  // is bit-identical after ThresholdedScore.
  if (!PassesLevenshteinLengthFilter(a, b, bound) ||
      !PassesLevenshteinPrefixFilter(a, b, bound)) {
    return std::floor(bound) + 1.0;
  }
  return static_cast<double>(BoundedLevenshteinEditDistance(
      a, b, static_cast<int>(std::floor(bound))));
}

double JaroDistance::ValueDistance(std::string_view a, std::string_view b) const {
  return 1.0 - JaroSimilarity(a, b);
}

double JaroWinklerDistance::ValueDistance(std::string_view a,
                                          std::string_view b) const {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  double sim = jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
  return 1.0 - sim;
}

// ------------------------------------------------------------- reference

int LevenshteinEditDistanceReference(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return static_cast<int>(n);

  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t i = 0; i <= m; ++i) prev[i] = static_cast<int>(i);
  for (size_t j = 1; j <= n; ++j) {
    cur[0] = static_cast<int>(j);
    const char cb = b[j - 1];
    for (size_t i = 1; i <= m; ++i) {
      int subst = prev[i - 1] + (a[i - 1] == cb ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double JaroSimilarityReference(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  std::vector<bool> a_matched(a.size(), false), b_matched(b.size(), false);
  return JaroFromFlags(
      a, b, [&](size_t i) { return static_cast<bool>(a_matched[i]); },
      [&](size_t i) { a_matched[i] = true; },
      [&](size_t j) { return static_cast<bool>(b_matched[j]); },
      [&](size_t j) { b_matched[j] = true; });
}

}  // namespace genlink
