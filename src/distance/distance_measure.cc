#include "distance/distance_measure.h"

#include <algorithm>

namespace genlink {

double DistanceMeasure::Distance(const ValueSet& a, const ValueSet& b) const {
  double best = kInfiniteDistance;
  for (const auto& va : a) {
    for (const auto& vb : b) {
      best = std::min(best, ValueDistance(va, vb));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

double DistanceMeasure::ValueDistance(std::string_view, std::string_view) const {
  return kInfiniteDistance;
}

double ThresholdedScore(double distance, double threshold) {
  if (threshold <= 0.0) return distance == 0.0 ? 1.0 : 0.0;
  if (distance > threshold) return 0.0;
  return 1.0 - distance / threshold;
}

}  // namespace genlink
