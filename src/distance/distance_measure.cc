#include "distance/distance_measure.h"

#include <algorithm>

namespace genlink {

double DistanceMeasure::Distance(const ValueSet& a, const ValueSet& b) const {
  double best = kInfiniteDistance;
  for (const auto& va : a) {
    for (const auto& vb : b) {
      best = std::min(best, ValueDistance(va, vb));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

double DistanceMeasure::DistanceViews(std::span<const std::string_view> a,
                                      std::span<const std::string_view> b,
                                      double bound) const {
  if (IsSetMeasure()) {
    // Generic set measures only understand owning ValueSets; materialize
    // copies. The built-in set measures all support token ids, so this
    // fallback is off every hot path.
    ValueSet va(a.begin(), a.end());
    ValueSet vb(b.begin(), b.end());
    return Distance(va, vb);
  }
  // Min-lift in the same pair order as the ValueSet overload. The
  // cutoff tightens to the best distance seen: a bounded kernel may
  // return any value > its bound for larger true distances, which can
  // never lower the minimum, while distances at or below the bound are
  // exact — so the result is bit-identical to the unbounded lift
  // whenever it is <= the caller's bound, and > bound otherwise.
  double best = kInfiniteDistance;
  for (const auto& va : a) {
    for (const auto& vb : b) {
      best = std::min(best, BoundedValueDistance(va, vb, std::min(bound, best)));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

double DistanceMeasure::ValueDistance(std::string_view, std::string_view) const {
  return kInfiniteDistance;
}

double DistanceMeasure::TokenIdDistance(std::span<const uint32_t>,
                                        std::span<const uint32_t>,
                                        std::span<const uint32_t>,
                                        std::span<const uint32_t>) const {
  return kInfiniteDistance;
}

double ThresholdedScore(double distance, double threshold) {
  if (threshold <= 0.0) return distance == 0.0 ? 1.0 : 0.0;
  if (distance > threshold) return 0.0;
  return 1.0 - distance / threshold;
}

}  // namespace genlink
