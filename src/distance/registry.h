// Registry of available distance measures. Measures are stateless and
// shared; rules reference them by pointer, serialized rules by name.

#ifndef GENLINK_DISTANCE_REGISTRY_H_
#define GENLINK_DISTANCE_REGISTRY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "distance/distance_measure.h"

namespace genlink {

/// Owns one instance of every built-in distance measure.
class DistanceRegistry {
 public:
  /// The process-wide registry with all built-in measures registered.
  static const DistanceRegistry& Default();

  DistanceRegistry();

  /// Returns the measure with the given name, or nullptr.
  const DistanceMeasure* Find(std::string_view name) const;

  /// All registered measures, in registration order.
  const std::vector<const DistanceMeasure*>& measures() const { return views_; }

  /// Registers a custom measure (takes ownership).
  void Register(std::unique_ptr<DistanceMeasure> measure);

 private:
  std::vector<std::unique_ptr<DistanceMeasure>> measures_;
  std::vector<const DistanceMeasure*> views_;
};

}  // namespace genlink

#endif  // GENLINK_DISTANCE_REGISTRY_H_
