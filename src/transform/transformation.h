// Data transformation functions f_t: Σ^n → Σ (Definition 6 of the paper).
//
// A transformation maps the value sets produced by `arity()` input value
// operators to a single output value set. Transformation operators can be
// nested to form chains (e.g. stripUriPrefix -> lowerCase -> tokenize).

#ifndef GENLINK_TRANSFORM_TRANSFORMATION_H_
#define GENLINK_TRANSFORM_TRANSFORMATION_H_

#include <span>
#include <string_view>

#include "model/value.h"

namespace genlink {

/// Abstract transformation function.
class Transformation {
 public:
  virtual ~Transformation() = default;

  /// Stable identifier used in serialized rules (e.g. "lowerCase").
  virtual std::string_view name() const = 0;

  /// Number of input value operators this transformation consumes.
  /// Almost all transformations are unary; `concatenate` is binary.
  virtual size_t arity() const { return 1; }

  /// Applies the transformation. `inputs.size()` equals `arity()`.
  virtual ValueSet Apply(std::span<const ValueSet> inputs) const = 0;
};

}  // namespace genlink

#endif  // GENLINK_TRANSFORM_TRANSFORMATION_H_
