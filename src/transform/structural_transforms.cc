#include "transform/structural_transforms.h"

#include "text/tokenizer.h"

namespace genlink {

ValueSet TokenizeTransform::Apply(std::span<const ValueSet> inputs) const {
  ValueSet out;
  if (inputs.empty()) return out;
  for (const auto& value : inputs[0]) {
    for (auto& token : TokenizeAlnum(value)) out.push_back(std::move(token));
  }
  return out;
}

ValueSet ConcatenateTransform::Apply(std::span<const ValueSet> inputs) const {
  ValueSet out;
  if (inputs.size() < 2) return out;
  const ValueSet& left = inputs[0];
  const ValueSet& right = inputs[1];
  // If one side is missing, fall back to the other so that partially
  // filled records still produce a comparable value.
  if (left.empty()) return right;
  if (right.empty()) return left;
  out.reserve(left.size() * right.size());
  for (const auto& l : left) {
    for (const auto& r : right) {
      out.push_back(l + separator_ + r);
    }
  }
  return out;
}

}  // namespace genlink
