#include "transform/string_transforms.h"

#include "common/string_util.h"
#include "text/case_fold.h"
#include "text/porter_stemmer.h"
#include "text/soundex.h"
#include "text/tokenizer.h"

namespace genlink {

ValueSet PerValueTransformation::Apply(std::span<const ValueSet> inputs) const {
  ValueSet out;
  if (inputs.empty()) return out;
  out.reserve(inputs[0].size());
  for (const auto& value : inputs[0]) out.push_back(ApplyValue(value));
  return out;
}

std::string LowerCaseTransform::ApplyValue(std::string_view value) const {
  return ToLowerAscii(value);
}

std::string UpperCaseTransform::ApplyValue(std::string_view value) const {
  return ToUpperAscii(value);
}

std::string StripUriPrefixTransform::ApplyValue(std::string_view value) const {
  std::string_view rest = value;
  if (StartsWith(rest, "http://") || StartsWith(rest, "https://") ||
      StartsWith(rest, "urn:")) {
    size_t cut = rest.find_last_of("/#");
    if (cut != std::string_view::npos && cut + 1 < rest.size()) {
      rest = rest.substr(cut + 1);
    }
    return ReplaceAll(rest, "_", " ");
  }
  return std::string(value);
}

std::string TrimTransform::ApplyValue(std::string_view value) const {
  return Trim(value);
}

std::string StripPunctuationTransform::ApplyValue(std::string_view value) const {
  return StripPunctuation(value);
}

std::string RemoveDashesTransform::ApplyValue(std::string_view value) const {
  return ReplaceAll(value, "-", "");
}

std::string StemTransform::ApplyValue(std::string_view value) const {
  auto words = TokenizeAlnum(ToLowerAscii(value));
  for (auto& w : words) w = PorterStem(w);
  return Join(words, " ");
}

std::string SoundexTransform::ApplyValue(std::string_view value) const {
  return Soundex(value);
}

}  // namespace genlink
