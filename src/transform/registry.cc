#include "transform/registry.h"

#include "transform/string_transforms.h"
#include "transform/structural_transforms.h"

namespace genlink {

TransformRegistry::TransformRegistry() {
  Register(std::make_unique<LowerCaseTransform>());
  Register(std::make_unique<UpperCaseTransform>());
  Register(std::make_unique<TokenizeTransform>());
  Register(std::make_unique<StripUriPrefixTransform>());
  Register(std::make_unique<ConcatenateTransform>());
  Register(std::make_unique<TrimTransform>());
  Register(std::make_unique<StripPunctuationTransform>());
  Register(std::make_unique<RemoveDashesTransform>());
  Register(std::make_unique<StemTransform>());
  Register(std::make_unique<SoundexTransform>());
}

const TransformRegistry& TransformRegistry::Default() {
  static const TransformRegistry* registry = new TransformRegistry();
  return *registry;
}

const Transformation* TransformRegistry::Find(std::string_view name) const {
  for (const auto* t : views_) {
    if (t->name() == name) return t;
  }
  return nullptr;
}

std::vector<const Transformation*> TransformRegistry::UnaryTransformations() const {
  std::vector<const Transformation*> out;
  for (const auto* t : views_) {
    if (t->arity() == 1) out.push_back(t);
  }
  return out;
}

void TransformRegistry::Register(std::unique_ptr<Transformation> transformation) {
  views_.push_back(transformation.get());
  transformations_.push_back(std::move(transformation));
}

}  // namespace genlink
