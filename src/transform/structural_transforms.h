// Transformations that change the structure of the value set: tokenize
// (one value -> many tokens) and concatenate (two inputs -> combined
// values). Both appear in Table 1 of the paper.

#ifndef GENLINK_TRANSFORM_STRUCTURAL_TRANSFORMS_H_
#define GENLINK_TRANSFORM_STRUCTURAL_TRANSFORMS_H_

#include <string>

#include "transform/transformation.h"

namespace genlink {

/// Splits every value into alphanumeric tokens; the output set is the
/// concatenation of all token lists.
class TokenizeTransform : public Transformation {
 public:
  std::string_view name() const override { return "tokenize"; }
  ValueSet Apply(std::span<const ValueSet> inputs) const override;
};

/// Concatenates the values of two inputs pairwise (cross product),
/// separated by a single space: used e.g. to join foaf:firstName and
/// foaf:lastName into a full name (Section 3 of the paper).
class ConcatenateTransform : public Transformation {
 public:
  explicit ConcatenateTransform(std::string separator = " ")
      : separator_(std::move(separator)) {}

  std::string_view name() const override { return "concatenate"; }
  size_t arity() const override { return 2; }
  ValueSet Apply(std::span<const ValueSet> inputs) const override;

 private:
  std::string separator_;
};

}  // namespace genlink

#endif  // GENLINK_TRANSFORM_STRUCTURAL_TRANSFORMS_H_
