// Registry of available transformations, mirroring DistanceRegistry.

#ifndef GENLINK_TRANSFORM_REGISTRY_H_
#define GENLINK_TRANSFORM_REGISTRY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "transform/transformation.h"

namespace genlink {

/// Owns one instance of every built-in transformation.
class TransformRegistry {
 public:
  /// The process-wide registry with all built-in transformations.
  static const TransformRegistry& Default();

  TransformRegistry();

  /// Returns the transformation with the given name, or nullptr.
  const Transformation* Find(std::string_view name) const;

  /// All registered transformations, in registration order.
  const std::vector<const Transformation*>& transformations() const {
    return views_;
  }

  /// Unary transformations only (candidates for chain building).
  std::vector<const Transformation*> UnaryTransformations() const;

  /// Registers a custom transformation (takes ownership).
  void Register(std::unique_ptr<Transformation> transformation);

 private:
  std::vector<std::unique_ptr<Transformation>> transformations_;
  std::vector<const Transformation*> views_;
};

}  // namespace genlink

#endif  // GENLINK_TRANSFORM_REGISTRY_H_
