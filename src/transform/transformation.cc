#include "transform/transformation.h"

namespace genlink {
// Base class is interface-only; this translation unit anchors the vtable.
}  // namespace genlink
