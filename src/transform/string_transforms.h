// Per-value string transformations: case normalization, trimming,
// punctuation stripping, URI prefix stripping, stemming, soundex,
// dash removal.

#ifndef GENLINK_TRANSFORM_STRING_TRANSFORMS_H_
#define GENLINK_TRANSFORM_STRING_TRANSFORMS_H_

#include <string>

#include "transform/transformation.h"

namespace genlink {

/// Base for unary transformations that map each value independently.
class PerValueTransformation : public Transformation {
 public:
  ValueSet Apply(std::span<const ValueSet> inputs) const override;

 protected:
  /// Maps one input value to one output value.
  virtual std::string ApplyValue(std::string_view value) const = 0;
};

/// Converts all values to lower case (Table 1).
class LowerCaseTransform : public PerValueTransformation {
 public:
  std::string_view name() const override { return "lowerCase"; }

 protected:
  std::string ApplyValue(std::string_view value) const override;
};

/// Converts all values to upper case.
class UpperCaseTransform : public PerValueTransformation {
 public:
  std::string_view name() const override { return "upperCase"; }

 protected:
  std::string ApplyValue(std::string_view value) const override;
};

/// Strips URI prefixes, e.g. "http://dbpedia.org/resource/Berlin" ->
/// "Berlin" (Table 1). Also decodes '_' to ' ' as in DBpedia resource
/// names.
class StripUriPrefixTransform : public PerValueTransformation {
 public:
  std::string_view name() const override { return "stripUriPrefix"; }

 protected:
  std::string ApplyValue(std::string_view value) const override;
};

/// Removes leading/trailing whitespace from each value.
class TrimTransform : public PerValueTransformation {
 public:
  std::string_view name() const override { return "trim"; }

 protected:
  std::string ApplyValue(std::string_view value) const override;
};

/// Removes ASCII punctuation from each value.
class StripPunctuationTransform : public PerValueTransformation {
 public:
  std::string_view name() const override { return "stripPunctuation"; }

 protected:
  std::string ApplyValue(std::string_view value) const override;
};

/// Removes dashes (useful for identifiers such as CAS numbers).
class RemoveDashesTransform : public PerValueTransformation {
 public:
  std::string_view name() const override { return "removeDashes"; }

 protected:
  std::string ApplyValue(std::string_view value) const override;
};

/// Porter-stems each (lowercased) word of each value; the `stem`
/// transformation shown in Figure 6 of the paper.
class StemTransform : public PerValueTransformation {
 public:
  std::string_view name() const override { return "stem"; }

 protected:
  std::string ApplyValue(std::string_view value) const override;
};

/// Replaces each value by its Soundex phonetic code.
class SoundexTransform : public PerValueTransformation {
 public:
  std::string_view name() const override { return "soundex"; }

 protected:
  std::string ApplyValue(std::string_view value) const override;
};

}  // namespace genlink

#endif  // GENLINK_TRANSFORM_STRING_TRANSFORMS_H_
