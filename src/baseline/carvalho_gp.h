// The state-of-the-art GP baseline of Carvalho et al. [9, 6, 10], which
// GenLink is compared against in Tables 7 and 8 of the paper.
//
// Their approach presupplies <attribute, similarity function> pairs and
// lets GP combine the resulting similarity values into an arithmetic
// expression (+, -, *, /, exp, constants). A pair of records is
// classified as a match when the expression value exceeds a fixed
// boundary. Unlike GenLink it cannot express data transformations, and
// the arithmetic combination does not correspond to a standard linkage
// rule model.

#ifndef GENLINK_BASELINE_CARVALHO_GP_H_
#define GENLINK_BASELINE_CARVALHO_GP_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/math_tree.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "model/dataset.h"
#include "model/reference_links.h"

namespace genlink {

/// Configuration of the baseline learner.
struct CarvalhoConfig {
  size_t population_size = 100;
  size_t max_generations = 50;
  size_t tournament_size = 5;
  double crossover_probability = 0.8;
  double mutation_probability = 0.15;
  size_t elitism = 1;
  /// Classification boundary: expression value > boundary => match.
  double boundary = 0.5;
  /// Maximum tree size in nodes (bloat guard).
  size_t max_nodes = 100;
  /// Stop when the training F-measure reaches this value.
  double stop_f_measure = 1.0;
  /// Lowercase values before computing feature similarities. Off by
  /// default: Carvalho et al. cannot express data transformations (the
  /// paper's Section 4), so normalizing inside the features would give
  /// the baseline a capability it does not have.
  bool lowercase_features = false;
  MathTreeGenConfig generation;
};

/// One presupplied evidence: a property pair plus a similarity function
/// (named), precomputed for every labelled pair.
struct CarvalhoFeature {
  std::string property_a;
  std::string property_b;
  std::string similarity;  // "levenshteinSim", "jaroSim", "tokenJaccardSim"
  std::string DisplayName() const {
    return similarity + "(" + property_a + "," + property_b + ")";
  }
};

/// Result of one baseline run.
struct CarvalhoResult {
  std::unique_ptr<MathNode> best_tree;
  RunTrajectory trajectory;
  std::vector<CarvalhoFeature> features;
};

/// The baseline learner for one pair of datasets.
class CarvalhoGP {
 public:
  /// Features are derived from property pairs that share a name (the
  /// record-linkage setting of their paper); when the schemata share no
  /// names, compatible property pairs are mined like GenLink does so the
  /// comparison stays fair.
  CarvalhoGP(const Dataset& a, const Dataset& b, CarvalhoConfig config = {});

  /// Trains on `train`; records per-generation statistics (validation
  /// scores against `val` when non-null).
  Result<CarvalhoResult> Learn(const ReferenceLinkSet& train,
                               const ReferenceLinkSet* val, Rng& rng) const;

  const CarvalhoConfig& config() const { return config_; }

 private:
  const Dataset* a_;
  const Dataset* b_;
  CarvalhoConfig config_;
};

}  // namespace genlink

#endif  // GENLINK_BASELINE_CARVALHO_GP_H_
