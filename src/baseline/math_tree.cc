#include "baseline/math_tree.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace genlink {

double MathNode::Evaluate(std::span<const double> features) const {
  switch (type) {
    case MathNodeType::kConstant:
      return constant;
    case MathNodeType::kFeature:
      return feature_index < features.size() ? features[feature_index] : 0.0;
    case MathNodeType::kAdd:
      return left->Evaluate(features) + right->Evaluate(features);
    case MathNodeType::kSub:
      return left->Evaluate(features) - right->Evaluate(features);
    case MathNodeType::kMul:
      return left->Evaluate(features) * right->Evaluate(features);
    case MathNodeType::kDiv: {
      double denom = right->Evaluate(features);
      if (std::abs(denom) < 1e-9) return 1.0;  // protected division
      return left->Evaluate(features) / denom;
    }
    case MathNodeType::kExp:
      return std::exp(std::min(left->Evaluate(features), 20.0));
  }
  return 0.0;
}

std::unique_ptr<MathNode> MathNode::Clone() const {
  auto node = std::make_unique<MathNode>();
  node->type = type;
  node->constant = constant;
  node->feature_index = feature_index;
  if (left != nullptr) node->left = left->Clone();
  if (right != nullptr) node->right = right->Clone();
  return node;
}

size_t MathNode::Count() const {
  size_t n = 1;
  if (left != nullptr) n += left->Count();
  if (right != nullptr) n += right->Count();
  return n;
}

std::string MathNode::ToString(const std::vector<std::string>& feature_names) const {
  switch (type) {
    case MathNodeType::kConstant:
      return FormatDouble(constant, 3);
    case MathNodeType::kFeature:
      return feature_index < feature_names.size()
                 ? feature_names[feature_index]
                 : "f" + std::to_string(feature_index);
    case MathNodeType::kAdd:
      return "(" + left->ToString(feature_names) + " + " +
             right->ToString(feature_names) + ")";
    case MathNodeType::kSub:
      return "(" + left->ToString(feature_names) + " - " +
             right->ToString(feature_names) + ")";
    case MathNodeType::kMul:
      return "(" + left->ToString(feature_names) + " * " +
             right->ToString(feature_names) + ")";
    case MathNodeType::kDiv:
      return "(" + left->ToString(feature_names) + " / " +
             right->ToString(feature_names) + ")";
    case MathNodeType::kExp:
      return "exp(" + left->ToString(feature_names) + ")";
  }
  return "?";
}

namespace {

std::unique_ptr<MathNode> RandomLeaf(const MathTreeGenConfig& config, Rng& rng) {
  auto node = std::make_unique<MathNode>();
  if (config.num_features > 0 && rng.Bernoulli(config.feature_leaf_probability)) {
    node->type = MathNodeType::kFeature;
    node->feature_index = rng.PickIndex(config.num_features);
  } else {
    node->type = MathNodeType::kConstant;
    node->constant = rng.Uniform(config.constant_min, config.constant_max);
  }
  return node;
}

std::unique_ptr<MathNode> Generate(const MathTreeGenConfig& config, Rng& rng,
                                   size_t depth, bool full_method) {
  bool must_stop = depth >= config.max_depth;
  bool may_stop = depth >= config.min_depth;
  if (must_stop || (!full_method && may_stop && rng.Bernoulli(0.3))) {
    return RandomLeaf(config, rng);
  }
  static constexpr MathNodeType kFunctions[] = {
      MathNodeType::kAdd, MathNodeType::kSub, MathNodeType::kMul,
      MathNodeType::kDiv, MathNodeType::kExp,
  };
  auto node = std::make_unique<MathNode>();
  node->type = kFunctions[rng.PickIndex(std::size(kFunctions))];
  node->left = Generate(config, rng, depth + 1, full_method);
  if (node->type != MathNodeType::kExp) {
    node->right = Generate(config, rng, depth + 1, full_method);
  }
  return node;
}

void CollectSlots(std::unique_ptr<MathNode>* slot,
                  std::vector<std::unique_ptr<MathNode>*>& out) {
  out.push_back(slot);
  if ((*slot)->left != nullptr) CollectSlots(&(*slot)->left, out);
  if ((*slot)->right != nullptr) CollectSlots(&(*slot)->right, out);
}

}  // namespace

std::unique_ptr<MathNode> RandomMathTree(const MathTreeGenConfig& config, Rng& rng,
                                         bool full_method) {
  return Generate(config, rng, 0, full_method);
}

std::vector<std::unique_ptr<MathNode>*> CollectMathSlots(
    std::unique_ptr<MathNode>& root) {
  std::vector<std::unique_ptr<MathNode>*> slots;
  if (root != nullptr) CollectSlots(&root, slots);
  return slots;
}

}  // namespace genlink
