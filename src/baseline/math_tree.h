// Arithmetic GP trees for the Carvalho et al. baseline [10]: candidate
// solutions combine presupplied <attribute, similarity-function> feature
// values using +, -, *, / (protected), exp and numeric constants.

#ifndef GENLINK_BASELINE_MATH_TREE_H_
#define GENLINK_BASELINE_MATH_TREE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"

namespace genlink {

/// Node types of the arithmetic tree.
enum class MathNodeType {
  kConstant,  // leaf: numeric constant
  kFeature,   // leaf: precomputed similarity value
  kAdd,
  kSub,
  kMul,
  kDiv,  // protected: returns 1 when the divisor is ~0
  kExp,  // unary, clamped to avoid overflow
};

/// One node of an arithmetic GP tree.
struct MathNode {
  MathNodeType type = MathNodeType::kConstant;
  double constant = 0.0;
  size_t feature_index = 0;
  std::unique_ptr<MathNode> left;
  std::unique_ptr<MathNode> right;  // null for unary/leaf nodes

  /// Evaluates the tree over a feature vector.
  double Evaluate(std::span<const double> features) const;

  std::unique_ptr<MathNode> Clone() const;

  /// Number of nodes in the subtree.
  size_t Count() const;

  /// Infix rendering, e.g. "((f0 * 2.5) + exp(f1))".
  std::string ToString(const std::vector<std::string>& feature_names) const;
};

/// Configuration for random tree generation.
struct MathTreeGenConfig {
  size_t num_features = 1;
  size_t min_depth = 2;
  size_t max_depth = 4;
  double constant_min = 0.0;
  double constant_max = 2.0;
  /// Probability that a leaf is a feature (vs a constant).
  double feature_leaf_probability = 0.8;
};

/// Generates a random tree with the grow method (used for half of the
/// ramped half-and-half initialization and for mutation subtrees).
std::unique_ptr<MathNode> RandomMathTree(const MathTreeGenConfig& config, Rng& rng,
                                         bool full_method = false);

/// All node slots of a tree (for subtree crossover), including the root.
std::vector<std::unique_ptr<MathNode>*> CollectMathSlots(
    std::unique_ptr<MathNode>& root);

}  // namespace genlink

#endif  // GENLINK_BASELINE_MATH_TREE_H_
