#include "baseline/carvalho_gp.h"

#include <algorithm>
#include <chrono>

#include "distance/string_distances.h"
#include "distance/token_distances.h"
#include "gp/compatible_properties.h"
#include "text/case_fold.h"
#include "text/tokenizer.h"

namespace genlink {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Normalized per-pair similarity in [0,1] for a feature. `lowercase`
/// optionally folds case first (not part of the faithful baseline).
double FeatureSimilarity(const CarvalhoFeature& feature, const ValueSet& va,
                         const ValueSet& vb, bool lowercase) {
  if (va.empty() || vb.empty()) return 0.0;
  auto norm = [lowercase](const std::string& s) {
    return lowercase ? ToLowerAscii(s) : s;
  };
  if (feature.similarity == "jaroSim") {
    double best = 0.0;
    for (const auto& x : va) {
      for (const auto& y : vb) {
        best = std::max(best, JaroSimilarity(norm(x), norm(y)));
      }
    }
    return best;
  }
  if (feature.similarity == "tokenJaccardSim") {
    ValueSet ta, tb;
    for (const auto& x : va) {
      for (auto& token : TokenizeAlnum(norm(x))) ta.push_back(std::move(token));
    }
    for (const auto& y : vb) {
      for (auto& token : TokenizeAlnum(norm(y))) tb.push_back(std::move(token));
    }
    if (ta.empty() || tb.empty()) return 0.0;
    JaccardDistance jaccard;
    return 1.0 - jaccard.Distance(ta, tb);
  }
  // Default: normalized Levenshtein similarity.
  double best = 0.0;
  for (const auto& x : va) {
    for (const auto& y : vb) {
      std::string lx = norm(x), ly = norm(y);
      size_t longest = std::max(lx.size(), ly.size());
      if (longest == 0) continue;
      double sim = 1.0 - static_cast<double>(LevenshteinEditDistance(lx, ly)) /
                             static_cast<double>(longest);
      best = std::max(best, sim);
    }
  }
  return best;
}

std::vector<CarvalhoFeature> BuildFeatures(const Dataset& a, const Dataset& b,
                                           const ReferenceLinkSet& train,
                                           Rng& rng) {
  static const char* kSimilarities[] = {"levenshteinSim", "jaroSim",
                                        "tokenJaccardSim"};
  std::vector<CarvalhoFeature> features;

  // Shared property names (the record-linkage setting of [10]).
  std::vector<std::pair<std::string, std::string>> property_pairs;
  for (const auto& name : a.schema().property_names()) {
    if (b.schema().FindProperty(name).has_value()) {
      property_pairs.emplace_back(name, name);
    }
  }
  // Cross-schema fallback: mine compatible pairs like GenLink does.
  if (property_pairs.empty()) {
    CompatiblePropertyConfig config;
    for (const auto& pair : FindCompatibleProperties(a, b, train, config, rng)) {
      property_pairs.emplace_back(pair.property_a, pair.property_b);
    }
    // Deduplicate (several measures may report the same property pair).
    std::sort(property_pairs.begin(), property_pairs.end());
    property_pairs.erase(
        std::unique(property_pairs.begin(), property_pairs.end()),
        property_pairs.end());
  }

  for (const auto& [pa, pb] : property_pairs) {
    for (const char* sim : kSimilarities) {
      features.push_back({pa, pb, sim});
    }
  }
  return features;
}

struct BaselineIndividual {
  std::unique_ptr<MathNode> tree;
  double fitness = -1.0;  // training F-measure
  ConfusionMatrix confusion;
};

ConfusionMatrix Classify(const MathNode& tree,
                         const std::vector<std::vector<double>>& features,
                         const std::vector<bool>& labels, double boundary) {
  ConfusionMatrix cm;
  for (size_t i = 0; i < features.size(); ++i) {
    bool predicted = tree.Evaluate(features[i]) > boundary;
    if (labels[i]) {
      predicted ? ++cm.tp : ++cm.fn;
    } else {
      predicted ? ++cm.fp : ++cm.tn;
    }
  }
  return cm;
}

}  // namespace

CarvalhoGP::CarvalhoGP(const Dataset& a, const Dataset& b, CarvalhoConfig config)
    : a_(&a), b_(&b), config_(std::move(config)) {}

Result<CarvalhoResult> CarvalhoGP::Learn(const ReferenceLinkSet& train,
                                         const ReferenceLinkSet* val,
                                         Rng& rng) const {
  auto start = Clock::now();

  auto train_pairs = train.Resolve(*a_, *b_);
  if (!train_pairs.ok()) return train_pairs.status();
  std::vector<LabeledPair> val_pairs;
  if (val != nullptr) {
    auto resolved = val->Resolve(*a_, *b_);
    if (!resolved.ok()) return resolved.status();
    val_pairs = std::move(resolved).value();
  }

  CarvalhoResult result;
  result.features = BuildFeatures(*a_, *b_, train, rng);
  if (result.features.empty()) {
    return Status::FailedPrecondition(
        "no <attribute, similarity> pairs could be presupplied");
  }

  // Precompute the feature matrices once; GP evaluation then only runs
  // arithmetic over them.
  auto compute_matrix = [&](const std::vector<LabeledPair>& pairs,
                            std::vector<std::vector<double>>& matrix,
                            std::vector<bool>& labels) {
    matrix.resize(pairs.size());
    labels.resize(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      matrix[i].resize(result.features.size());
      labels[i] = pairs[i].is_match;
      for (size_t f = 0; f < result.features.size(); ++f) {
        const CarvalhoFeature& feature = result.features[f];
        auto pa = a_->schema().FindProperty(feature.property_a);
        auto pb = b_->schema().FindProperty(feature.property_b);
        const ValueSet& va = pa ? pairs[i].a->Values(*pa) : ValueSet{};
        const ValueSet& vb = pb ? pairs[i].b->Values(*pb) : ValueSet{};
        matrix[i][f] =
            FeatureSimilarity(feature, va, vb, config_.lowercase_features);
      }
    }
  };
  std::vector<std::vector<double>> train_matrix, val_matrix;
  std::vector<bool> train_labels, val_labels;
  compute_matrix(*train_pairs, train_matrix, train_labels);
  compute_matrix(val_pairs, val_matrix, val_labels);

  MathTreeGenConfig gen_config = config_.generation;
  gen_config.num_features = result.features.size();

  // Ramped half-and-half initialization.
  std::vector<BaselineIndividual> population(config_.population_size);
  for (size_t i = 0; i < population.size(); ++i) {
    population[i].tree = RandomMathTree(gen_config, rng, /*full_method=*/i % 2 == 0);
  }

  auto evaluate = [&](BaselineIndividual& ind) {
    ind.confusion =
        Classify(*ind.tree, train_matrix, train_labels, config_.boundary);
    ind.fitness = FMeasure(ind.confusion);
  };
  for (auto& ind : population) evaluate(ind);

  auto best_index = [&] {
    size_t best = 0;
    for (size_t i = 1; i < population.size(); ++i) {
      if (population[i].fitness > population[best].fitness) best = i;
    }
    return best;
  };

  auto record = [&](size_t generation) {
    const BaselineIndividual& best = population[best_index()];
    IterationStats stats;
    stats.iteration = generation;
    stats.seconds = SecondsSince(start);
    stats.train_f1 = best.fitness;
    stats.train_mcc = MatthewsCorrelation(best.confusion);
    stats.best_operators = static_cast<double>(best.tree->Count());
    double ops = 0.0;
    for (const auto& ind : population) ops += static_cast<double>(ind.tree->Count());
    stats.mean_operators = ops / static_cast<double>(population.size());
    if (!val_matrix.empty()) {
      ConfusionMatrix cm =
          Classify(*best.tree, val_matrix, val_labels, config_.boundary);
      stats.val_f1 = FMeasure(cm);
      stats.val_mcc = MatthewsCorrelation(cm);
    }
    result.trajectory.iterations.push_back(stats);
    return stats;
  };

  auto tournament = [&]() -> const BaselineIndividual& {
    size_t best = rng.PickIndex(population.size());
    for (size_t i = 1; i < config_.tournament_size; ++i) {
      size_t candidate = rng.PickIndex(population.size());
      if (population[candidate].fitness > population[best].fitness) {
        best = candidate;
      }
    }
    return population[best];
  };

  IterationStats last = record(0);

  for (size_t generation = 1; generation <= config_.max_generations &&
                              last.train_f1 < config_.stop_f_measure;
       ++generation) {
    std::vector<BaselineIndividual> next;
    next.reserve(population.size());

    for (size_t e = 0; e < std::min(config_.elitism, population.size()); ++e) {
      const BaselineIndividual& best = population[best_index()];
      BaselineIndividual copy;
      copy.tree = best.tree->Clone();
      copy.fitness = best.fitness;
      copy.confusion = best.confusion;
      next.push_back(std::move(copy));
    }

    while (next.size() < population.size()) {
      BaselineIndividual child;
      double p = rng.Uniform01();
      if (p < config_.crossover_probability) {
        // Subtree crossover.
        child.tree = tournament().tree->Clone();
        auto slots = CollectMathSlots(child.tree);
        const BaselineIndividual& donor = tournament();
        auto donor_tree = donor.tree->Clone();
        auto donor_slots = CollectMathSlots(donor_tree);
        *slots[rng.PickIndex(slots.size())] =
            std::move(*donor_slots[rng.PickIndex(donor_slots.size())]);
      } else if (p < config_.crossover_probability + config_.mutation_probability) {
        // Point mutation: replace a random subtree with a random tree.
        child.tree = tournament().tree->Clone();
        auto slots = CollectMathSlots(child.tree);
        MathTreeGenConfig small = gen_config;
        small.min_depth = 0;
        small.max_depth = 2;
        *slots[rng.PickIndex(slots.size())] = RandomMathTree(small, rng);
      } else {
        child.tree = tournament().tree->Clone();  // reproduction
      }
      if (child.tree->Count() > config_.max_nodes) {
        child.tree = tournament().tree->Clone();
      }
      evaluate(child);
      next.push_back(std::move(child));
    }

    population = std::move(next);
    last = record(generation);
  }

  BaselineIndividual& best = population[best_index()];
  result.best_tree = best.tree->Clone();
  std::vector<std::string> names;
  names.reserve(result.features.size());
  for (const auto& f : result.features) names.push_back(f.DisplayName());
  result.trajectory.best_rule_sexpr = result.best_tree->ToString(names);
  result.trajectory.final_val_f1 = result.trajectory.iterations.empty()
                                       ? 0.0
                                       : result.trajectory.iterations.back().val_f1;
  return result;
}

}  // namespace genlink
