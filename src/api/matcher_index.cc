#include "api/matcher_index.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <tuple>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "distance/distance_measure.h"
#include "eval/value_store.h"
#include "io/corpus_artifact.h"
#include "matcher/blocking.h"
#include "rule/rule_hash.h"

namespace genlink {
namespace {

std::vector<const Entity*> DatasetPointers(const Dataset& dataset) {
  std::vector<const Entity*> pointers;
  pointers.reserve(dataset.size());
  for (const Entity& entity : dataset.entities()) pointers.push_back(&entity);
  return pointers;
}

/// The documented best_match_only winner: highest score, then smallest
/// id_b (see MatchOptions::best_match_only). min_element under this
/// "preferred first" order is deterministic because (score, id_b) is
/// unique per target within one source entity's links.
void KeepBestTarget(std::vector<GeneratedLink>& links) {
  auto best = std::min_element(links.begin(), links.end(),
                               [](const GeneratedLink& x, const GeneratedLink& y) {
                                 if (x.score != y.score) return x.score > y.score;
                                 return x.id_b < y.id_b;
                               });
  GeneratedLink keep = std::move(*best);
  links.clear();
  links.push_back(std::move(keep));
}

/// The total order every full-join surface returns (and link_io relies
/// on for byte-stable output).
void SortLinks(std::vector<GeneratedLink>& links) {
  std::sort(links.begin(), links.end(), [](const auto& x, const auto& y) {
    if (x.score != y.score) return x.score > y.score;
    if (x.id_a != y.id_a) return x.id_a < y.id_a;
    return x.id_b < y.id_b;
  });
}

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// The dataset-side artifacts every WithRule generation shares. The
// writer-priority mutex (common/mutex.h: a waiting WithRule compile
// cannot be starved by continuous query traffic) orders value-store
// appends — a new rule's unseen plans — against concurrent queries:
// query surfaces hold the read lock for the duration of a call,
// CompileLocked runs under the write lock. The store is append-only,
// so previously handed-out PlanIds stay valid across generations.
//
// The annotations make the regime checkable: the store's *contents*
// and the blocking cache require the capability, so a query path that
// forgot the reader lock (or a compile step outside the writer lock)
// fails `clang -Wthread-safety`. Code reached from pool-worker tasks
// whose dispatching frame holds the lock asserts the capability
// instead (WriterPriorityMutex::AssertReaderHeld — a real runtime
// check in debug builds, zero-cost in release).
struct MatcherIndex::Corpus {
  const Dataset* source = nullptr;  // null for serving-only builds
  const Dataset* target = nullptr;  // null for mapped-corpus builds
  /// Zero-copy corpus (io/corpus_artifact.h); when set, `target` and
  /// `store` are null and the mapped file is both the entity table and
  /// the value store. Immutable, so none of its state needs the mutex.
  std::shared_ptr<const MappedCorpus> mapped;
  mutable WriterPriorityMutex mutex;
  /// Null when use_value_store is off. The pointer itself is set once
  /// at Build before the corpus is shared; the pointee is guarded.
  std::unique_ptr<ValueStore> store GENLINK_PT_GUARDED_BY(mutex);
  /// Blocking indexes over `target`, keyed by the (sorted) property
  /// list they index plus the option knobs that change the postings
  /// (max tokens, min df, shard count) — rules reading the same target
  /// properties under the same knobs share one index across hot swaps.
  using BlockingKey =
      std::tuple<std::vector<std::string>, size_t, size_t, size_t>;
  std::map<BlockingKey, std::shared_ptr<const BlockingIndex>> blocking_cache
      GENLINK_GUARDED_BY(mutex);
  std::unique_ptr<ThreadPool> pool;

  // Target-side accessors every query path uses, so the dataset-backed
  // and mapped shapes read identically.
  size_t target_size() const {
    return mapped != nullptr ? mapped->size() : target->size();
  }
  std::string_view target_id(size_t index) const {
    return mapped != nullptr ? mapped->entity_id(index)
                             : std::string_view(target->entity(index).id());
  }
  const Schema& target_schema() const {
    return mapped != nullptr ? mapped->schema() : target->schema();
  }
};

/// Source-side values of one query entity: each distinct value subtree
/// of the rule evaluated once per query (not once per candidate).
struct MatcherIndex::QueryValues {
  std::vector<ValueSet> values;                      // per query_ops_ slot
  std::vector<std::vector<std::string_view>> views;  // views into values
};

MatcherIndex::MatcherIndex(std::shared_ptr<Corpus> corpus, LinkageRule rule,
                           MatchOptions options)
    : corpus_(std::move(corpus)),
      rule_(std::move(rule)),
      options_(options) {}

MatcherIndex::~MatcherIndex() = default;

std::shared_ptr<const MatcherIndex> MatcherIndex::Build(
    const Dataset& source, const Dataset& target, const LinkageRule& rule,
    const MatchOptions& options) {
  auto corpus = std::make_shared<Corpus>();
  corpus->source = &source;
  corpus->target = &target;
  corpus->pool = std::make_unique<ThreadPool>(options.num_threads);
  if (options.use_value_store) {
    corpus->store = std::make_unique<ValueStore>(source, target);
  }
  std::shared_ptr<MatcherIndex> index(
      new MatcherIndex(corpus, rule.Clone(), options));
  const auto start = std::chrono::steady_clock::now();
  {
    WriterMutexLock lock(corpus->mutex);
    index->CompileLocked();
  }
  index->build_seconds_ = Elapsed(start);
  return index;
}

std::shared_ptr<const MatcherIndex> MatcherIndex::Build(
    const Dataset& target, const LinkageRule& rule,
    const MatchOptions& options) {
  auto corpus = std::make_shared<Corpus>();
  corpus->target = &target;
  corpus->pool = std::make_unique<ThreadPool>(options.num_threads);
  if (options.use_value_store) {
    // No bound source: the store's source side stays empty (source
    // plans register with zero entities), queries evaluate their own
    // values through the query scorer.
    const std::vector<const Entity*> target_pointers = DatasetPointers(target);
    corpus->store = std::make_unique<ValueStore>(
        std::span<const Entity* const>{}, target.schema(),
        std::span<const Entity* const>(target_pointers), target.schema());
  }
  std::shared_ptr<MatcherIndex> index(
      new MatcherIndex(corpus, rule.Clone(), options));
  const auto start = std::chrono::steady_clock::now();
  {
    WriterMutexLock lock(corpus->mutex);
    index->CompileLocked();
  }
  index->build_seconds_ = Elapsed(start);
  return index;
}

Result<std::shared_ptr<const MatcherIndex>> MatcherIndex::Build(
    std::shared_ptr<const MappedCorpus> corpus, const LinkageRule& rule,
    const MatchOptions& options) {
  if (corpus == nullptr) {
    return Status::InvalidArgument("MatcherIndex::Build: null mapped corpus");
  }
  if (rule.empty()) {
    return Status::InvalidArgument(
        "MatcherIndex::Build: a mapped corpus cannot serve the empty rule "
        "(there is nothing to score)");
  }
  if (!options.use_value_store) {
    return Status::InvalidArgument(
        "MatcherIndex::Build: a mapped corpus IS the value store; "
        "use_value_store=false is not servable from an artifact");
  }
  auto shared = std::make_shared<Corpus>();
  shared->mapped = std::move(corpus);
  shared->pool = std::make_unique<ThreadPool>(options.num_threads);
  std::shared_ptr<MatcherIndex> index(
      new MatcherIndex(shared, rule.Clone(), options));
  const auto start = std::chrono::steady_clock::now();
  {
    WriterMutexLock lock(shared->mutex);
    GENLINK_RETURN_IF_ERROR(index->CompileLocked());
  }
  index->build_seconds_ = Elapsed(start);
  return std::shared_ptr<const MatcherIndex>(std::move(index));
}

Status MatcherIndex::CompileLocked() {
  Corpus& corpus = *corpus_;
  // Declared in the header, where Corpus is incomplete, so the writer
  // requirement is asserted rather than spelled as GENLINK_REQUIRES.
  corpus.mutex.AssertWriterHeld();
  query_ready_ = false;
  reader_ = nullptr;
  if (corpus.mapped != nullptr) return CompileMappedLocked();
  if (options_.use_blocking) {
    std::vector<std::string> properties = TargetProperties(rule_);
    const size_t shards = std::max<size_t>(1, options_.blocking_shards);
    auto& slot = corpus.blocking_cache[Corpus::BlockingKey(
        properties, options_.blocking_max_tokens, options_.blocking_min_token_df,
        shards)];
    if (slot == nullptr) {
      TokenBlockingOptions blocking_options;
      blocking_options.max_tokens_per_entity = options_.blocking_max_tokens;
      blocking_options.min_token_df = options_.blocking_min_token_df;
      blocking_options.num_shards = shards;
      blocking_options.build_pool = corpus.pool.get();
      if (shards > 1) {
        slot = std::make_shared<const ShardedTokenBlockingIndex>(
            *corpus.target, properties, blocking_options);
      } else {
        slot = std::make_shared<const TokenBlockingIndex>(
            *corpus.target, properties, blocking_options);
      }
    }
    blocking_ = slot;
  }
  if (corpus.store == nullptr || rule_.empty()) return Status::Ok();

  // Full-join scoring over store-resident pairs. Compiles both sides'
  // value subtrees into the shared store; a WithRule generation only
  // pays for subtrees no earlier rule materialized.
  compiled_ = std::make_unique<CompiledRule>(rule_, *corpus.store,
                                             corpus.pool.get());

  // Query scorer: the same comparison sites in the same pre-order, but
  // with the source side evaluated per query entity. Target plans are
  // re-requested from the store (all hits against compiled_'s batch);
  // distinct source subtrees collapse to one evaluation slot.
  RuleHashInfo info = AnalyzeRule(rule_);
  std::vector<const ValueOperator*> target_ops;
  target_ops.reserve(info.comparisons.size());
  for (const ComparisonSite& site : info.comparisons) {
    target_ops.push_back(site.op->target());
  }
  std::vector<PlanId> target_plans(target_ops.size());
  corpus.store->CompileBatch(ValueStore::Side::kTarget, target_ops,
                             target_plans, corpus.pool.get());

  query_ops_.clear();
  query_sites_.clear();
  query_sites_.reserve(info.comparisons.size());
  std::unordered_map<uint64_t, uint32_t> slot_by_hash;
  for (size_t k = 0; k < info.comparisons.size(); ++k) {
    const ValueOperator* source_op = info.comparisons[k].op->source();
    auto [it, inserted] = slot_by_hash.try_emplace(
        ValueOperatorHash(*source_op),
        static_cast<uint32_t>(query_ops_.size()));
    if (inserted) query_ops_.push_back(source_op);
    query_sites_.push_back(
        {info.comparisons[k].op, it->second, target_plans[k]});
  }
  reader_ = corpus.store.get();
  query_ready_ = true;
  return Status::Ok();
}

Status MatcherIndex::CompileMappedLocked() {
  const MappedCorpus& mapped = *corpus_->mapped;
  if (options_.use_blocking) {
    // The artifact carries exactly one blocking configuration; serving
    // a different one would need the original dataset. Refuse with the
    // mismatch named instead of silently scanning or re-indexing.
    if (!mapped.has_blocking()) {
      return Status::FailedPrecondition(
          "corpus artifact '" + mapped.path() +
          "' carries no blocking postings; re-run `genlink index` or "
          "disable blocking");
    }
    const std::vector<std::string> properties = TargetProperties(rule_);
    const size_t shards = std::max<size_t>(1, options_.blocking_shards);
    if (properties != mapped.blocking_properties()) {
      return Status::FailedPrecondition(
          "corpus artifact '" + mapped.path() +
          "' indexes different target properties than this rule reads; "
          "re-run `genlink index` with the new rule");
    }
    if (options_.blocking_max_tokens != mapped.blocking_max_tokens() ||
        options_.blocking_min_token_df != mapped.blocking_min_token_df() ||
        shards != mapped.blocking_shards()) {
      return Status::FailedPrecondition(
          "corpus artifact '" + mapped.path() +
          "' was indexed with different blocking knobs (max_tokens=" +
          std::to_string(mapped.blocking_max_tokens()) + ", min_df=" +
          std::to_string(mapped.blocking_min_token_df()) + ", shards=" +
          std::to_string(mapped.blocking_shards()) +
          "); re-run `genlink index` with the requested options");
    }
    // Aliasing shared_ptr: the BlockingIndex lives inside the mapped
    // corpus, so the corpus keeps it (and the mapping) alive.
    blocking_ = std::shared_ptr<const BlockingIndex>(corpus_->mapped,
                                                     mapped.blocking());
  }

  // Query scorer over precomputed plans: every target-side value
  // subtree must resolve to a plan the artifact carries. The directory
  // is keyed by the cross-process-stable hash (rule/rule_hash.h) — the
  // in-process ValueOperatorHash mixes function-instance pointers and
  // would never match a file written by another process. A miss means
  // the artifact predates this rule.
  const RuleHashInfo info = AnalyzeRule(rule_);
  query_ops_.clear();
  query_sites_.clear();
  query_sites_.reserve(info.comparisons.size());
  std::unordered_map<uint64_t, uint32_t> slot_by_hash;
  for (const ComparisonSite& site : info.comparisons) {
    const std::optional<PlanId> plan =
        mapped.FindPlan(ValueReader::Side::kTarget,
                        StableValueOperatorHash(*site.op->target()));
    if (!plan.has_value()) {
      return Status::FailedPrecondition(
          "corpus artifact '" + mapped.path() +
          "' has no precomputed value plan for a target-side subtree of "
          "this rule; re-run `genlink index` with the new rule");
    }
    const ValueOperator* source_op = site.op->source();
    auto [it, inserted] = slot_by_hash.try_emplace(
        ValueOperatorHash(*source_op), static_cast<uint32_t>(query_ops_.size()));
    if (inserted) query_ops_.push_back(source_op);
    query_sites_.push_back({site.op, it->second, *plan});
  }
  reader_ = &mapped;
  query_ready_ = true;
  return Status::Ok();
}

std::shared_ptr<const MatcherIndex> MatcherIndex::WithRule(
    const LinkageRule& rule) const {
  return WithRule(rule, options_);
}

std::shared_ptr<const MatcherIndex> MatcherIndex::WithRule(
    const LinkageRule& rule, const MatchOptions& options) const {
  // Infallible over a dataset-backed corpus (header contract); over a
  // mapped corpus, failures need TryWithRule — here they surface as a
  // null index rather than silently serving the wrong rule.
  return TryWithRule(rule, options).value_or(nullptr);
}

Result<std::shared_ptr<const MatcherIndex>> MatcherIndex::TryWithRule(
    const LinkageRule& rule, const MatchOptions& options) const {
  MatchOptions next_options = options;
  // Corpus-lifetime properties cannot change per generation: the pool
  // was sized at Build, and the value store either exists for this
  // corpus or does not (header contract).
  next_options.num_threads = options_.num_threads;
  next_options.use_value_store = options_.use_value_store;
  if (corpus_->mapped != nullptr && rule.empty()) {
    return Status::InvalidArgument(
        "TryWithRule: a mapped corpus cannot serve the empty rule");
  }
  std::shared_ptr<MatcherIndex> next(
      new MatcherIndex(corpus_, rule.Clone(), next_options));
  const auto start = std::chrono::steady_clock::now();
  {
    WriterMutexLock lock(corpus_->mutex);
    GENLINK_RETURN_IF_ERROR(next->CompileLocked());
  }
  next->build_seconds_ = Elapsed(start);
  return std::shared_ptr<const MatcherIndex>(std::move(next));
}

void MatcherIndex::EvaluateQueryOps(const Entity& entity, const Schema& schema,
                                    QueryValues& out) const {
  out.values.resize(query_ops_.size());
  out.views.resize(query_ops_.size());
  for (size_t i = 0; i < query_ops_.size(); ++i) {
    out.values[i] = query_ops_[i]->Evaluate(entity, schema);
    out.views[i].clear();
    out.views[i].reserve(out.values[i].size());
    for (const std::string& value : out.values[i]) {
      out.views[i].push_back(value);
    }
  }
}

double MatcherIndex::QueryNode(const SimilarityOperator& node,
                               const QueryValues& qv, size_t target_index,
                               size_t& next_site) const {
  // May run on a pool worker (MatchBatch/MatchDataset tasks) while the
  // dispatching frame holds the reader lock; free in release builds.
  corpus_->mutex.AssertReaderHeld();
  if (node.kind() == OperatorKind::kComparison) {
    const QuerySite& site = query_sites_[next_site++];
    const ComparisonOperator& cmp = *site.op;
    const std::vector<std::string_view>& source_views =
        qv.views[site.source_slot];
    const std::span<const ValueId> target_values = reader_->Values(
        ValueReader::Side::kTarget, site.target_plan, target_index);
    double distance;
    if (source_views.empty() || target_values.empty()) {
      // PairDistance's empty-side convention: similarity 0.
      distance = kInfiniteDistance;
    } else {
      thread_local std::vector<std::string_view> scratch;
      scratch.clear();
      for (ValueId id : target_values) {
        scratch.push_back(reader_->View(id));
      }
      // As in CompiledRule::EvalNode, the comparison threshold doubles
      // as the distance bound; DistanceViews is bit-identical to the
      // TokenIdDistance path PairDistance takes for set measures
      // (distance/distance_measure.h).
      distance = cmp.measure()->DistanceViews(
          source_views, std::span<const std::string_view>(scratch),
          cmp.threshold());
    }
    return ThresholdedScore(distance, cmp.threshold());
  }
  const auto& agg = static_cast<const AggregationOperator&>(node);
  return AggregateOperandScores(
      *agg.function(), agg.operands(), [&](const SimilarityOperator& op) {
        return QueryNode(op, qv, target_index, next_site);
      });
}

std::vector<GeneratedLink> MatcherIndex::MatchEntityUnlocked(
    const Entity& entity, const Schema& schema,
    const std::vector<size_t>* candidates, const CancelToken* cancel,
    const uint8_t* dead) const {
  corpus_->mutex.AssertReaderHeld();
  if (cancel == nullptr) cancel = options_.cancel;
  // A record is never its own duplicate: a self-indexed corpus (dedup)
  // and a serving-only index (queries of unknown provenance, often the
  // corpus itself — the `genlink query` shape) both skip the candidate
  // carrying the query's own id. Only a two-dataset index keeps
  // equal-id candidates, preserving bit-identity with the full join
  // (contract in the header). A mapped corpus has no source and takes
  // the serving-only branch.
  const bool skip_own_id =
      corpus_->source == nullptr || corpus_->source == corpus_->target;
  QueryValues qv;
  if (query_ready_) EvaluateQueryOps(entity, schema, qv);

  std::vector<GeneratedLink> links;
  auto consider = [&](size_t j) {
    if (dead != nullptr && dead[j] != 0) return;
    const std::string_view id_b = corpus_->target_id(j);
    if (skip_own_id && id_b == entity.id()) return;
    double score;
    if (query_ready_) {
      size_t next_site = 0;
      score = QueryNode(*rule_.root(), qv, j, next_site);
    } else {
      // Raw-evaluation fallback (value store off or empty rule). Only
      // reachable with a dataset-backed corpus: mapped builds always
      // compile a query scorer (Build contract).
      score = rule_.Evaluate(entity, corpus_->target->entity(j), schema,
                             corpus_->target->schema());
    }
    if (score >= options_.threshold) {
      links.push_back({entity.id(), std::string(id_b), score});
    }
  };
  // Cancellation is polled every 64 candidates: cheap enough to be
  // invisible on the hot path, frequent enough that one entity with a
  // pathological candidate set cannot overstay a request deadline by
  // more than a handful of pair scores.
  size_t scanned = 0;
  auto cancelled = [&] {
    return cancel != nullptr && (++scanned & 63) == 0 && cancel->Cancelled();
  };
  if (candidates != nullptr) {
    for (size_t j : *candidates) {
      if (cancelled()) break;
      consider(j);
    }
  } else if (blocking_ != nullptr) {
    for (size_t j : blocking_->Candidates(entity, schema)) {
      if (cancelled()) break;
      consider(j);
    }
  } else {
    for (size_t j = 0; j < corpus_->target_size(); ++j) {
      if (cancelled()) break;
      consider(j);
    }
  }

  std::sort(links.begin(), links.end(), [](const auto& x, const auto& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.id_b < y.id_b;
  });
  if (options_.best_match_only && links.size() > 1) links.resize(1);
  return links;
}

std::vector<GeneratedLink> MatcherIndex::MatchEntity(
    const Entity& entity, const Schema& schema) const {
  ReaderMutexLock lock(corpus_->mutex);
  return MatchEntityUnlocked(entity, schema);
}

std::vector<GeneratedLink> MatcherIndex::MatchEntityMasked(
    const Entity& entity, const Schema& schema, const uint8_t* dead,
    const CancelToken* cancel) const {
  ReaderMutexLock lock(corpus_->mutex);
  return MatchEntityUnlocked(entity, schema, /*candidates=*/nullptr, cancel,
                             dead);
}

std::vector<GeneratedLink> MatcherIndex::MatchEntity(
    const Entity& entity) const {
  return MatchEntity(entity, has_source() ? corpus_->source->schema()
                                          : corpus_->target_schema());
}

std::vector<GeneratedLink> MatcherIndex::MatchBatch(
    std::span<const Entity> entities, const Schema& schema,
    const CancelToken* cancel) const {
  if (cancel == nullptr) cancel = options_.cancel;
  const size_t n = entities.size();
  std::vector<std::vector<GeneratedLink>> per_entity(n);
  {
    ReaderMutexLock lock(corpus_->mutex);
    const size_t shards = blocking_ != nullptr ? blocking_->NumShards() : 1;
    if (shards > 1 && n > 0) {
      // Per-shard fan-out. Phase 1 generates candidates as
      // (shard × query-chunk) tasks — each task appends one shard's
      // hits for a chunk of queries into shard-major slots, so no two
      // tasks ever touch the same vector. Phase 2 merges each query's
      // per-shard hit lists (sort + unique restores exactly
      // BlockingIndex::Candidates' output, making the shard count
      // invisible) and scores.
      constexpr size_t kChunk = 64;
      const size_t chunks = (n + kChunk - 1) / kChunk;
      std::vector<std::vector<size_t>> hits(shards * n);
      corpus_->pool->ParallelFor(shards * chunks, [&](size_t task) {
        // Cooperative cancellation at chunk granularity: a fired token
        // turns the remaining tasks into no-ops.
        if (cancel != nullptr && cancel->Cancelled()) return;
        const size_t shard = task / chunks;
        const size_t chunk = task % chunks;
        const size_t end = std::min(n, (chunk + 1) * kChunk);
        for (size_t i = chunk * kChunk; i < end; ++i) {
          blocking_->AppendShardCandidates(shard, entities[i], schema,
                                           hits[shard * n + i]);
        }
      });
      corpus_->pool->ParallelFor(n, [&](size_t i) {
        if (cancel != nullptr && cancel->Cancelled()) return;
        std::vector<size_t> candidates;
        for (size_t shard = 0; shard < shards; ++shard) {
          const std::vector<size_t>& shard_hits = hits[shard * n + i];
          candidates.insert(candidates.end(), shard_hits.begin(),
                            shard_hits.end());
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(std::unique(candidates.begin(), candidates.end()),
                         candidates.end());
        per_entity[i] =
            MatchEntityUnlocked(entities[i], schema, &candidates, cancel);
      });
    } else {
      corpus_->pool->ParallelFor(n, [&](size_t i) {
        // Runs on pool workers while the dispatching frame above holds
        // the reader lock for the whole parallel section.
        if (cancel != nullptr && cancel->Cancelled()) return;
        per_entity[i] = MatchEntityUnlocked(entities[i], schema, nullptr, cancel);
      });
    }
  }
  std::vector<GeneratedLink> links;
  size_t total = 0;
  for (const auto& group : per_entity) total += group.size();
  links.reserve(total);
  for (auto& group : per_entity) {
    for (auto& link : group) links.push_back(std::move(link));
  }
  return links;
}

std::vector<GeneratedLink> MatcherIndex::MatchBatch(
    std::span<const Entity> entities, const CancelToken* cancel) const {
  return MatchBatch(entities,
                    has_source() ? corpus_->source->schema()
                                 : corpus_->target_schema(),
                    cancel);
}

std::vector<GeneratedLink> MatcherIndex::MatchDataset(
    const Dataset& source) const {
  std::vector<GeneratedLink> links;
  Mutex links_mutex;
  ReaderMutexLock lock(corpus_->mutex);
  const bool self_join =
      corpus_->target != nullptr && &source == corpus_->target;
  // Store-resident scoring needs the store's source-side plans, which
  // only the bound source dataset has; any other dataset goes through
  // the (bit-identical) query scorer.
  const bool bound = compiled_ != nullptr && &source == corpus_->source;
  const bool query_scorer = query_ready_ && !bound;

  corpus_->pool->ParallelFor(source.size(), [&](size_t i) {
    // The one-shot CLI's SIGINT path: a fired token skips the
    // remaining source entities and the partial links flush as-is.
    if (options_.cancel != nullptr && options_.cancel->Cancelled()) return;
    const Entity& ea = source.entity(i);
    QueryValues qv;
    if (query_scorer) EvaluateQueryOps(ea, source.schema(), qv);
    std::vector<GeneratedLink> local;
    auto consider = [&](size_t j) {
      const std::string_view id_b = corpus_->target_id(j);
      if (self_join && ea.id() >= id_b) return;  // dedup: each pair once
      double score;
      if (bound) {
        score = compiled_->Score(i, j);
      } else if (query_scorer) {
        size_t next_site = 0;
        score = QueryNode(*rule_.root(), qv, j, next_site);
      } else {
        // Raw fallback; never reached for a mapped corpus (which always
        // compiles the query scorer).
        score = rule_.Evaluate(ea, corpus_->target->entity(j), source.schema(),
                               corpus_->target->schema());
      }
      if (score >= options_.threshold) {
        local.push_back({ea.id(), std::string(id_b), score});
      }
    };
    if (blocking_ != nullptr) {
      for (size_t j : blocking_->Candidates(ea, source.schema())) consider(j);
    } else {
      for (size_t j = 0; j < corpus_->target_size(); ++j) consider(j);
    }
    if (options_.best_match_only && local.size() > 1) KeepBestTarget(local);
    if (!local.empty()) {
      MutexLock links_lock(links_mutex);
      for (auto& link : local) links.push_back(std::move(link));
    }
  });

  SortLinks(links);
  return links;
}

std::vector<GeneratedLink> MatcherIndex::MatchDataset() const {
  if (corpus_->source == nullptr) return {};
  return MatchDataset(*corpus_->source);
}

const Dataset& MatcherIndex::target() const { return *corpus_->target; }

bool MatcherIndex::has_source() const { return corpus_->source != nullptr; }

bool MatcherIndex::is_mapped() const { return corpus_->mapped != nullptr; }

MatcherIndexStats MatcherIndex::stats() const {
  ReaderMutexLock lock(corpus_->mutex);
  MatcherIndexStats stats;
  stats.target_entities = corpus_->target_size();
  if (blocking_ != nullptr) {
    stats.blocking_tokens = blocking_->NumTokens();
    stats.blocking_postings = blocking_->NumPostings();
    stats.blocking_shards = blocking_->NumShards();
    stats.blocking_shard_stats.reserve(blocking_->NumShards());
    for (size_t s = 0; s < blocking_->NumShards(); ++s) {
      stats.blocking_shard_stats.push_back(blocking_->ShardStats(s));
    }
  }
  if (corpus_->mapped != nullptr) {
    stats.value_plans = corpus_->mapped->num_plans();
    stats.store_bytes = corpus_->mapped->file_bytes();
  } else if (corpus_->store != nullptr) {
    stats.value_plans = corpus_->store->stats().plans_compiled;
    stats.store_bytes = corpus_->store->ApproxBytes();
  }
  stats.build_seconds = build_seconds_;
  return stats;
}

}  // namespace genlink
