// The service facade: a long-lived, immutable, thread-safe matcher
// session.
//
// The paper's Definition 3 treats link generation as a one-shot batch
// (M_l = {(a,b) : l(a,b) >= 0.5}), and matcher/matcher.h mirrors that:
// GenerateLinks rebuilds the token-blocking index and the compiled
// value store on every call. A production deployment has the opposite
// shape — build the expensive artifacts once, then answer many cheap
// queries against them. MatcherIndex is that shape:
//
//   auto index = MatcherIndex::Build(corpus, rule, options);  // expensive
//   auto links = index->MatchEntity(incoming_record, schema); // cheap, often
//
// Build compiles the rule's value subtrees into a persistent value
// store (eval/value_store.h: per-entity transform plans + interned
// token-id spans) and constructs a persistent TokenBlockingIndex
// (matcher/blocking.h); queries then pay only candidate lookup plus
// interned-distance scoring. Three query surfaces:
//
//   * MatchEntity  — one query entity against the indexed corpus; the
//     request-serving path. No thread pool involved.
//   * MatchBatch   — a span of query entities, scored in parallel
//     chunks on the corpus's pool; results grouped by query, in input
//     order.
//   * MatchDataset — the legacy full join, bit-identical to
//     GenerateLinks (which is now a thin wrapper over Build +
//     MatchDataset; asserted by tests/api_test.cc).
//
// Scores from every surface are bit-identical to
// LinkageRule::Evaluate on the same entity pair: the target side reads
// interned value spans, the query side evaluates each distinct source
// value subtree once per query, and both feed the same
// DistanceMeasure surfaces the one-shot matcher uses (see
// distance/distance_measure.h for the bit-identity contract).
//
// Lifetimes and hot swap: a MatcherIndex is immutable after Build and
// safe to query from any number of threads. The dataset(s) passed to
// Build must outlive every index built over them. WithRule compiles a
// NEW index for a freshly learned rule while sharing the dataset-side
// stores (value pool, transform plans, blocking indexes) with the old
// one — only the new rule's unseen value subtrees are evaluated, the
// corpus is not re-interned. Old and new indexes serve concurrently;
// a service hot-swaps by publishing the new shared_ptr:
//
//   std::shared_ptr<const MatcherIndex> serving = MatcherIndex::Build(...);
//   ...
//   std::atomic_store(&serving, serving->WithRule(learner_output));
//
// Rule deployment artifacts (save a learned rule + options to a file,
// load it into a fresh process) live in io/artifact.h; the end-to-end
// serve path is `genlink query` (tools/genlink_cli.cc).

#ifndef GENLINK_API_MATCHER_INDEX_H_
#define GENLINK_API_MATCHER_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "matcher/matcher.h"
#include "rule/linkage_rule.h"

namespace genlink {

class CompiledRule;
class MappedCorpus;
class ValueReader;
class ValueStore;
class ThreadPool;

/// Snapshot counters of a built index (stats()).
struct MatcherIndexStats {
  /// Entities on the indexed (target) side.
  size_t target_entities = 0;
  /// Distinct tokens in the blocking index, summed over shards (0 when
  /// blocking is off).
  size_t blocking_tokens = 0;
  /// (token, entity) postings in the blocking index, summed over
  /// shards (0 when blocking is off).
  size_t blocking_postings = 0;
  /// Hash shards the blocking postings are partitioned into (1 for the
  /// single-map index, 0 when blocking is off).
  size_t blocking_shards = 0;
  /// Per-shard token/posting counters, one entry per shard — the load
  /// balance view of a sharded index (empty when blocking is off).
  std::vector<BlockingShardStats> blocking_shard_stats;
  /// Transform plans materialized in the shared value store, summed
  /// over all rules compiled against this corpus (0 when the value
  /// store is off).
  size_t value_plans = 0;
  /// Approximate bytes held by the shared value store.
  size_t store_bytes = 0;
  /// Wall seconds spent building/compiling THIS index (for WithRule:
  /// only the incremental compile, not the original corpus build).
  double build_seconds = 0.0;
};

/// A linkage rule deployed against a corpus: immutable, thread-safe,
/// cheap to query. See the file comment for the full contract.
class MatcherIndex {
 public:
  /// Compiles `rule` against a source/target dataset pair (the paper's
  /// A and B; pass the same dataset twice for deduplication). All query
  /// surfaces are available, and MatchDataset() replays the legacy full
  /// join over the bound sides. Both datasets must outlive the index.
  static std::shared_ptr<const MatcherIndex> Build(
      const Dataset& source, const Dataset& target, const LinkageRule& rule,
      const MatchOptions& options = {});

  /// Serving-only build: indexes `target` for MatchEntity/MatchBatch
  /// queries without binding a source dataset (the `genlink query`
  /// shape, where queries arrive from a stream). MatchDataset(dataset)
  /// still works for any dataset; MatchDataset() requires a bound
  /// source and returns empty here.
  static std::shared_ptr<const MatcherIndex> Build(
      const Dataset& target, const LinkageRule& rule,
      const MatchOptions& options = {});

  /// Zero-copy serving build over a mapped v2 corpus artifact
  /// (io/corpus_artifact.h): the same serving surface as the
  /// serving-only Build, but value spans and blocking postings are read
  /// straight from the mapping — nothing is parsed, interned or
  /// re-indexed, so cold start is bounded by Load() validation, not by
  /// corpus size. Queries are bit-identical to a fresh Build over the
  /// dataset the artifact was written from. Fails with a named Status
  /// when the rule needs a value plan the artifact did not precompute,
  /// or when options request a blocking configuration (properties,
  /// max-tokens, min-df, shards) the artifact does not carry — re-run
  /// `genlink index`. The rule must be non-empty and use_value_store
  /// must stay on (a mapped corpus IS the value store).
  static Result<std::shared_ptr<const MatcherIndex>> Build(
      std::shared_ptr<const MappedCorpus> corpus, const LinkageRule& rule,
      const MatchOptions& options = {});

  ~MatcherIndex();
  MatcherIndex(const MatcherIndex&) = delete;
  MatcherIndex& operator=(const MatcherIndex&) = delete;

  /// Scores one query entity (whose properties live in `schema`)
  /// against all blocking candidates and returns the links reaching
  /// options().threshold, sorted by descending score, then ascending
  /// id_b. With best_match_only, only the winner under that same order
  /// is returned. A self-indexed corpus (dedup) and a serving-only
  /// index skip the candidate carrying the query's own id (a record is
  /// never its own duplicate; without that, querying the corpus
  /// against itself would return every record as its own best match);
  /// a two-dataset index keeps equal-id candidates, matching the full
  /// join. Unlike the full join, BOTH orientations are served — a
  /// query finds duplicates with smaller and larger ids. Thread-safe.
  std::vector<GeneratedLink> MatchEntity(const Entity& entity,
                                         const Schema& schema) const;

  /// MatchEntity with the bound source dataset's schema (the target
  /// schema for a serving-only index).
  std::vector<GeneratedLink> MatchEntity(const Entity& entity) const;

  /// MatchEntity with a per-slot dead mask: a candidate j with
  /// `dead[j] != 0` is skipped before scoring, as if the corpus never
  /// contained it. `dead` must cover every target slot and outlive the
  /// call; nullptr behaves exactly like MatchEntity. This is the live
  /// corpus layer's tombstone surface (live/live_corpus.h): the base
  /// side of `base ⊎ delta − tombstones` is this index with the
  /// snapshot's tombstone bitmap. The mask only ever hides rows, so
  /// every returned link would also be returned unmasked — ordering and
  /// scores are unchanged. Thread-safe; concurrent calls may pass
  /// different masks.
  std::vector<GeneratedLink> MatchEntityMasked(
      const Entity& entity, const Schema& schema, const uint8_t* dead,
      const CancelToken* cancel = nullptr) const;

  /// MatchEntity for every entity of `entities`, scored in parallel
  /// chunks on the corpus pool. With a sharded blocking index
  /// (MatchOptions::blocking_shards > 1), candidate generation first
  /// fans out as (shard × query-chunk) tasks, then the merged
  /// candidates are scored — same pool, higher parallelism on large
  /// batches. The result is the concatenation of the per-entity link
  /// lists in input order (deterministic for any thread and shard
  /// count).
  /// When `cancel` is non-null (or MatchOptions::cancel is set), the
  /// per-entity chunk tasks poll the token and stop scoring once it
  /// fires: the serve daemon's per-request deadline path. A cancelled
  /// call returns the links of the entities already scored (possibly
  /// none) — callers observe cancel->Cancelled() and must treat such a
  /// result as truncated. Without cancellation the result is
  /// bit-identical whether or not a token was passed.
  std::vector<GeneratedLink> MatchBatch(std::span<const Entity> entities,
                                        const Schema& schema,
                                        const CancelToken* cancel = nullptr) const;

  /// MatchBatch with the bound source dataset's schema.
  std::vector<GeneratedLink> MatchBatch(std::span<const Entity> entities,
                                        const CancelToken* cancel = nullptr) const;

  /// The legacy full join of `source` against the indexed corpus,
  /// bit-identical to GenerateLinks(rule, source, target, options):
  /// same pairs, same doubles, same order, including the self-join
  /// orientation dedup (id_a < id_b) when `source` IS the indexed
  /// dataset.
  std::vector<GeneratedLink> MatchDataset(const Dataset& source) const;

  /// MatchDataset over the bound source dataset; empty for a
  /// serving-only index.
  std::vector<GeneratedLink> MatchDataset() const;

  /// Compiles `rule` into a new index that shares this index's
  /// dataset-side stores: the value pool, all previously materialized
  /// transform plans, and any blocking index over the same property
  /// set are reused, so only the new rule's unseen value subtrees
  /// touch the corpus. Both indexes keep serving; in-flight queries on
  /// either are safe while the new rule compiles (internally
  /// synchronized). Swap atomically by publishing the returned
  /// pointer.
  std::shared_ptr<const MatcherIndex> WithRule(const LinkageRule& rule) const;

  /// WithRule with new per-query options — the artifact-reload shape
  /// (serve/serving_state.h), where a redeployed artifact may change
  /// the threshold, best-match mode or blocking knobs along with the
  /// rule. Corpus-lifetime properties are pinned to this index's
  /// values: num_threads (the shared pool is built once) and
  /// use_value_store (the store either exists for this corpus or does
  /// not). A changed blocking configuration compiles a new index into
  /// the shared per-corpus cache.
  std::shared_ptr<const MatcherIndex> WithRule(const LinkageRule& rule,
                                               const MatchOptions& options) const;

  /// WithRule that surfaces compile failures instead of asserting they
  /// cannot happen: over a mapped corpus a new rule may need value
  /// plans or a blocking configuration the artifact does not carry, and
  /// the caller (serve/serving_state.cc) must keep the old index
  /// serving on that error. Over a dataset-backed corpus this never
  /// fails and is equivalent to WithRule.
  Result<std::shared_ptr<const MatcherIndex>> TryWithRule(
      const LinkageRule& rule, const MatchOptions& options) const;

  /// The deployed rule / the options every query path uses.
  const LinkageRule& rule() const { return rule_; }
  const MatchOptions& options() const { return options_; }

  /// The indexed (target) dataset. Requires a dataset-backed corpus
  /// (!is_mapped()); a mapped corpus has no Dataset to return.
  const Dataset& target() const;
  /// True when a source dataset is bound (two-dataset Build).
  bool has_source() const;
  /// True when this index serves a mapped corpus artifact.
  bool is_mapped() const;

  MatcherIndexStats stats() const;

 private:
  /// Dataset-side artifacts shared across WithRule generations,
  /// guarded by a writer-priority reader/writer lock
  /// (common/mutex.h WriterPriorityMutex: a waiting WithRule compile
  /// cannot be starved by query traffic). The guarded members are
  /// annotated for clang -Wthread-safety in the .cc; the lock
  /// hierarchy is documented in docs/CONCURRENCY.md.
  struct Corpus;

  /// One comparison of rule_ as seen by the query scorer: source side
  /// from the query entity's pre-evaluated values, target side from the
  /// store plan.
  struct QuerySite {
    const ComparisonOperator* op = nullptr;
    uint32_t source_slot = 0;  // into query_ops_
    uint32_t target_plan = 0;  // PlanId in the corpus store
  };

  MatcherIndex(std::shared_ptr<Corpus> corpus, LinkageRule rule,
               MatchOptions options);

  /// Compiles rule_ against the corpus (value plans, blocking index,
  /// query sites). Must run under the corpus write lock. Never fails
  /// for a dataset-backed corpus; for a mapped corpus it fails when the
  /// artifact lacks a needed value plan or the requested blocking
  /// configuration.
  Status CompileLocked();
  /// The mapped-corpus arm of CompileLocked: resolves plans from the
  /// artifact and borrows its blocking postings instead of building.
  Status CompileMappedLocked();

  /// Pre-evaluated source-side values of one query entity.
  struct QueryValues;
  void EvaluateQueryOps(const Entity& entity, const Schema& schema,
                        QueryValues& out) const;
  /// Mirror of CompiledRule::EvalNode with the source side read from
  /// `qv` instead of store plans.
  double QueryNode(const SimilarityOperator& node, const QueryValues& qv,
                   size_t target_index, size_t& next_site) const;

  /// MatchEntity body; caller holds the corpus read lock. When
  /// `candidates` is non-null it is the precomputed sorted-unique
  /// candidate index list for `entity` (MatchBatch's per-shard fan-out
  /// merges it ahead of scoring); null means probe the blocking index
  /// (or scan the full target when blocking is off). A non-null
  /// `cancel` is polled every few dozen candidates, bounding how long
  /// one huge candidate set can overstay a request deadline. A non-null
  /// `dead` is the MatchEntityMasked tombstone mask.
  std::vector<GeneratedLink> MatchEntityUnlocked(
      const Entity& entity, const Schema& schema,
      const std::vector<size_t>* candidates = nullptr,
      const CancelToken* cancel = nullptr,
      const uint8_t* dead = nullptr) const;

  std::shared_ptr<Corpus> corpus_;
  LinkageRule rule_;
  MatchOptions options_;

  /// Blocking index over the target side for rule_'s target properties
  /// and the options' blocking knobs (shared with other generations
  /// using the same property set and knobs); a ShardedTokenBlockingIndex
  /// when options_.blocking_shards > 1, null when options_.use_blocking
  /// is false.
  std::shared_ptr<const BlockingIndex> blocking_;
  /// Compiled scoring for store-resident entity pairs (the full-join
  /// path); null when the value store is off or the rule is empty.
  std::unique_ptr<CompiledRule> compiled_;

  /// Distinct source-side value subtrees of rule_ (deduplicated by
  /// ValueOperatorHash) and the per-comparison sites of the query
  /// scorer, in pre-order. Empty when the value store is off.
  std::vector<const ValueOperator*> query_ops_;
  std::vector<QuerySite> query_sites_;

  /// The target-side read surface the query scorer consumes — the
  /// corpus value store or the mapped corpus. Set by CompileLocked;
  /// null when the value store is off.
  const ValueReader* reader_ = nullptr;
  /// True when query_sites_/reader_ are usable (replaces the old
  /// `compiled_ != nullptr` gate: a mapped corpus compiles the query
  /// scorer without a CompiledRule).
  bool query_ready_ = false;

  double build_seconds_ = 0.0;
};

}  // namespace genlink

#endif  // GENLINK_API_MATCHER_INDEX_H_
