#include "gp/compatible_properties.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "distance/registry.h"
#include "text/case_fold.h"
#include "text/tokenizer.h"

namespace genlink {
namespace {

std::vector<CompatibilityProbe> DefaultProbes() {
  const DistanceRegistry& reg = DistanceRegistry::Default();
  std::vector<CompatibilityProbe> probes;
  // The paper's experiments used levenshtein with θ_d = 1 on lowercased
  // tokens: distance < 1 means two identical tokens exist.
  probes.push_back({reg.Find("levenshtein"), 1.0, /*on_tokens=*/true});
  // Raw-value probes so that coordinate, date and numeric properties are
  // also detected (Figure 3 shows a (point, coord, geographic) pair).
  probes.push_back({reg.Find("geographic"), 10000.0, /*on_tokens=*/false});
  probes.push_back({reg.Find("date"), 365.0, /*on_tokens=*/false});
  probes.push_back({reg.Find("numeric"), 1.0, /*on_tokens=*/false});
  return probes;
}

ValueSet LowercasedTokens(const ValueSet& values) {
  ValueSet tokens;
  for (const auto& value : values) {
    for (auto& token : TokenizeAlnum(ToLowerAscii(value))) {
      tokens.push_back(std::move(token));
    }
  }
  return tokens;
}

}  // namespace

std::vector<CompatiblePair> FindCompatibleProperties(
    const Dataset& a, const Dataset& b, const ReferenceLinkSet& links,
    const CompatiblePropertyConfig& config, Rng& rng) {
  std::vector<CompatibilityProbe> probes =
      config.probes.empty() ? DefaultProbes() : config.probes;

  // Sample positive links.
  std::vector<const ReferenceLink*> sampled;
  sampled.reserve(links.positives().size());
  for (const auto& link : links.positives()) sampled.push_back(&link);
  if (config.max_links > 0 && sampled.size() > config.max_links) {
    rng.Shuffle(sampled);
    sampled.resize(config.max_links);
  }

  const size_t num_a = a.schema().NumProperties();
  const size_t num_b = b.schema().NumProperties();

  // support[(pa, pb, probe)] = number of links under which they matched.
  std::map<std::tuple<PropertyId, PropertyId, size_t>, size_t> support;

  for (const ReferenceLink* link : sampled) {
    const Entity* ea = a.FindEntity(link->id_a);
    const Entity* eb = b.FindEntity(link->id_b);
    if (ea == nullptr || eb == nullptr) continue;

    // Precompute per-property token sets for this link.
    std::vector<ValueSet> tokens_a(num_a), tokens_b(num_b);
    for (PropertyId p = 0; p < num_a; ++p) tokens_a[p] = LowercasedTokens(ea->Values(p));
    for (PropertyId p = 0; p < num_b; ++p) tokens_b[p] = LowercasedTokens(eb->Values(p));

    for (PropertyId pa = 0; pa < num_a; ++pa) {
      if (ea->Values(pa).empty()) continue;
      for (PropertyId pb = 0; pb < num_b; ++pb) {
        if (eb->Values(pb).empty()) continue;
        for (size_t pi = 0; pi < probes.size(); ++pi) {
          const CompatibilityProbe& probe = probes[pi];
          if (probe.measure == nullptr) continue;
          const ValueSet& va = probe.on_tokens ? tokens_a[pa] : ea->Values(pa);
          const ValueSet& vb = probe.on_tokens ? tokens_b[pb] : eb->Values(pb);
          if (va.empty() || vb.empty()) continue;
          double d = probe.measure->Distance(va, vb);
          if (d < probe.threshold) {
            ++support[{pa, pb, pi}];
          }
        }
      }
    }
  }

  std::vector<CompatiblePair> pairs;
  pairs.reserve(support.size());
  for (const auto& [key, count] : support) {
    auto [pa, pb, pi] = key;
    pairs.push_back({a.schema().PropertyName(pa), b.schema().PropertyName(pb),
                     probes[pi].measure, count});
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& x, const auto& y) {
    return x.support > y.support;
  });
  return pairs;
}

}  // namespace genlink
