// Population of candidate linkage rules with cached fitness. Evaluation
// is routed through the evaluation engine (eval/engine.h), which owns
// the thread pool, the fitness memo and the distance cache.

#ifndef GENLINK_GP_POPULATION_H_
#define GENLINK_GP_POPULATION_H_

#include <vector>

#include "eval/engine.h"
#include "rule/linkage_rule.h"

namespace genlink {

/// One candidate solution.
struct Individual {
  LinkageRule rule;
  FitnessResult fitness;
  bool evaluated = false;
};

/// A generation of candidate rules.
class Population {
 public:
  Population() = default;
  explicit Population(std::vector<Individual> individuals)
      : individuals_(std::move(individuals)) {}

  size_t size() const { return individuals_.size(); }
  bool empty() const { return individuals_.empty(); }

  Individual& operator[](size_t i) { return individuals_[i]; }
  const Individual& operator[](size_t i) const { return individuals_[i]; }

  std::vector<Individual>& individuals() { return individuals_; }
  const std::vector<Individual>& individuals() const { return individuals_; }

  void Add(Individual individual) { individuals_.push_back(std::move(individual)); }

  /// Pre-allocates room for `capacity` individuals. The breeding loop
  /// reserves the full population size up front so a generation is bred
  /// without a single vector reallocation.
  void Reserve(size_t capacity) { individuals_.reserve(capacity); }

  /// Drops all individuals but keeps the allocation, so a population
  /// object can be reused as the breeding buffer of the next generation
  /// (no per-generation vector churn).
  void Clear() { individuals_.clear(); }

  /// Index of the individual with the highest fitness. Requires a
  /// non-empty, evaluated population.
  size_t BestIndex() const;

  /// Index of the individual with the highest training F-measure (used
  /// for the stop condition and reporting).
  size_t BestByFMeasureIndex() const;

  /// Mean operator count across the population (bloat metric).
  double MeanOperatorCount() const;

 private:
  std::vector<Individual> individuals_;
};

/// Evaluates all unevaluated individuals through `engine` (parallel,
/// memoized; see eval/engine.h for the determinism invariants).
void EvaluatePopulation(Population& population, EvaluationEngine& engine);

}  // namespace genlink

#endif  // GENLINK_GP_POPULATION_H_
