// Population of candidate linkage rules with cached fitness, plus the
// parallel evaluation helper with structural-hash memoization.

#ifndef GENLINK_GP_POPULATION_H_
#define GENLINK_GP_POPULATION_H_

#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "eval/fitness.h"
#include "rule/linkage_rule.h"

namespace genlink {

/// One candidate solution.
struct Individual {
  LinkageRule rule;
  FitnessResult fitness;
  bool evaluated = false;
};

/// A generation of candidate rules.
class Population {
 public:
  Population() = default;
  explicit Population(std::vector<Individual> individuals)
      : individuals_(std::move(individuals)) {}

  size_t size() const { return individuals_.size(); }
  bool empty() const { return individuals_.empty(); }

  Individual& operator[](size_t i) { return individuals_[i]; }
  const Individual& operator[](size_t i) const { return individuals_[i]; }

  std::vector<Individual>& individuals() { return individuals_; }
  const std::vector<Individual>& individuals() const { return individuals_; }

  void Add(Individual individual) { individuals_.push_back(std::move(individual)); }

  /// Index of the individual with the highest fitness. Requires a
  /// non-empty, evaluated population.
  size_t BestIndex() const;

  /// Index of the individual with the highest training F-measure (used
  /// for the stop condition and reporting).
  size_t BestByFMeasureIndex() const;

  /// Mean operator count across the population (bloat metric).
  double MeanOperatorCount() const;

 private:
  std::vector<Individual> individuals_;
};

/// Memoizes fitness results by structural rule hash across generations.
/// Rules with identical structure are only evaluated once.
class FitnessCache {
 public:
  /// `max_entries` bounds memory; the cache is cleared when exceeded.
  explicit FitnessCache(size_t max_entries = 1 << 18)
      : max_entries_(max_entries) {}

  const FitnessResult* Find(uint64_t hash) const;
  void Insert(uint64_t hash, const FitnessResult& result);

  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<uint64_t, FitnessResult> entries_;
  size_t max_entries_;
};

/// Evaluates all unevaluated individuals with `evaluator`, using `pool`
/// for parallelism (may be null) and `cache` for memoization (may be
/// null).
void EvaluatePopulation(Population& population, const FitnessEvaluator& evaluator,
                        ThreadPool* pool, FitnessCache* cache);

}  // namespace genlink

#endif  // GENLINK_GP_POPULATION_H_
