#include "gp/crossover.h"

#include <algorithm>

namespace genlink {
namespace {

// ------------------------------------------------------------ tree helpers

/// All similarity nodes (aggregations and comparisons) of a rule,
/// read-only.
std::vector<const SimilarityOperator*> CollectSimilarityNodes(
    const LinkageRule& rule) {
  std::vector<const SimilarityOperator*> nodes;
  std::vector<const SimilarityOperator*> stack;
  if (rule.root() != nullptr) stack.push_back(rule.root());
  while (!stack.empty()) {
    const SimilarityOperator* node = stack.back();
    stack.pop_back();
    nodes.push_back(node);
    if (node->kind() == OperatorKind::kAggregation) {
      const auto* agg = static_cast<const AggregationOperator*>(node);
      for (const auto& child : agg->operands()) stack.push_back(child.get());
    }
  }
  return nodes;
}

void CollectValueNodesFrom(const ValueOperator* node,
                           std::vector<const ValueOperator*>& out) {
  if (node == nullptr) return;
  out.push_back(node);
  if (node->kind() == OperatorKind::kTransform) {
    const auto* tf = static_cast<const TransformOperator*>(node);
    for (const auto& input : tf->inputs()) CollectValueNodesFrom(input.get(), out);
  }
}

/// All value nodes (properties and transformations) of a rule, read-only.
std::vector<const ValueOperator*> CollectValueNodes(const LinkageRule& rule) {
  std::vector<const ValueOperator*> nodes;
  for (const auto* cmp : CollectComparisons(rule)) {
    CollectValueNodesFrom(cmp->source(), nodes);
    CollectValueNodesFrom(cmp->target(), nodes);
  }
  return nodes;
}

/// Transformation nodes in the subtree rooted at `node` (including
/// `node` itself when it is a transformation).
void CollectTransformsInSubtree(ValueOperator* node,
                                std::vector<TransformOperator*>& out) {
  if (node == nullptr || node->kind() != OperatorKind::kTransform) return;
  auto* tf = static_cast<TransformOperator*>(node);
  out.push_back(tf);
  for (auto& input : tf->mutable_inputs()) {
    CollectTransformsInSubtree(input.get(), out);
  }
}

/// Finds the path (input indices) from `from` down to `to` through
/// transformation nodes. Returns false if `to` is not in the chain.
bool FindTransformPath(const TransformOperator* from, const TransformOperator* to,
                       std::vector<size_t>& path) {
  if (from == to) return true;
  for (size_t i = 0; i < from->inputs().size(); ++i) {
    const ValueOperator* input = from->inputs()[i].get();
    if (input->kind() != OperatorKind::kTransform) continue;
    path.push_back(i);
    if (FindTransformPath(static_cast<const TransformOperator*>(input), to, path)) {
      return true;
    }
    path.pop_back();
  }
  return false;
}

/// Removes directly nested duplicate transformations (e.g.
/// lowerCase(lowerCase(x)) -> lowerCase(x)), per Algorithm 6's final
/// dedup step.
void RemoveDuplicateTransforms(std::unique_ptr<ValueOperator>& slot) {
  if (slot == nullptr || slot->kind() != OperatorKind::kTransform) return;
  // A duplicate at the slot itself: fold lowerCase(lowerCase(x)) chains
  // from the top first.
  while (slot->kind() == OperatorKind::kTransform) {
    auto* top = static_cast<TransformOperator*>(slot.get());
    if (top->function()->arity() != 1 || top->inputs().size() != 1) break;
    ValueOperator* below = top->inputs()[0].get();
    if (below->kind() != OperatorKind::kTransform ||
        static_cast<TransformOperator*>(below)->function() != top->function()) {
      break;
    }
    slot = std::move(top->mutable_inputs()[0]);
  }
  if (slot->kind() != OperatorKind::kTransform) return;
  auto* tf = static_cast<TransformOperator*>(slot.get());
  for (auto& input : tf->mutable_inputs()) {
    // Splice out children that repeat this node's unary function.
    while (input != nullptr && input->kind() == OperatorKind::kTransform) {
      auto* child = static_cast<TransformOperator*>(input.get());
      if (child->function() == tf->function() && child->function()->arity() == 1 &&
          child->inputs().size() == 1) {
        input = std::move(child->mutable_inputs()[0]);
      } else {
        break;
      }
    }
    RemoveDuplicateTransforms(input);
  }
}

}  // namespace

// --------------------------------------------------------- FunctionCrossover

std::optional<LinkageRule> FunctionCrossover::Cross(const LinkageRule& r1,
                                                    const LinkageRule& r2,
                                                    Rng& rng) const {
  // Determine which node types exist in both rules.
  std::vector<OperatorKind> candidates;
  {
    bool t1 = !CollectTransforms(const_cast<LinkageRule&>(r1)).empty();
    bool t2 = !CollectTransforms(const_cast<LinkageRule&>(r2)).empty();
    if (t1 && t2) candidates.push_back(OperatorKind::kTransform);
    bool a1 = !CollectAggregations(r1).empty();
    bool a2 = !CollectAggregations(r2).empty();
    if (a1 && a2) candidates.push_back(OperatorKind::kAggregation);
    if (!CollectComparisons(r1).empty() && !CollectComparisons(r2).empty()) {
      candidates.push_back(OperatorKind::kComparison);
    }
  }
  if (candidates.empty()) return std::nullopt;
  OperatorKind kind = candidates[rng.PickIndex(candidates.size())];

  LinkageRule child = r1.Clone();
  switch (kind) {
    case OperatorKind::kComparison: {
      auto own = CollectComparisons(child);
      auto other = CollectComparisons(r2);
      ComparisonOperator* dst = own[rng.PickIndex(own.size())];
      const ComparisonOperator* src = other[rng.PickIndex(other.size())];
      double old_max = dst->measure()->MaxThreshold();
      double new_max = src->measure()->MaxThreshold();
      dst->set_measure(src->measure());
      // Rescale the threshold so its relative tightness is preserved
      // across measure ranges (levenshtein chars vs geographic meters).
      if (old_max > 0.0) {
        dst->set_threshold(dst->threshold() * new_max / old_max);
      }
      break;
    }
    case OperatorKind::kAggregation: {
      auto own = CollectAggregations(child);
      auto other = CollectAggregations(r2);
      own[rng.PickIndex(own.size())]->set_function(
          other[rng.PickIndex(other.size())]->function());
      break;
    }
    case OperatorKind::kTransform: {
      auto own = CollectTransforms(child);
      auto other = CollectTransforms(const_cast<LinkageRule&>(r2));
      TransformOperator* dst = own[rng.PickIndex(own.size())];
      // Only functions of matching arity can be interchanged without
      // breaking the tree structure.
      std::vector<const Transformation*> same_arity;
      for (const auto* tf : other) {
        if (tf->function()->arity() == dst->function()->arity()) {
          same_arity.push_back(tf->function());
        }
      }
      if (same_arity.empty()) return std::nullopt;
      dst->set_function(same_arity[rng.PickIndex(same_arity.size())]);
      break;
    }
    default:
      return std::nullopt;
  }
  return child;
}

// -------------------------------------------------------- OperatorsCrossover

std::optional<LinkageRule> OperatorsCrossover::Cross(const LinkageRule& r1,
                                                     const LinkageRule& r2,
                                                     Rng& rng) const {
  LinkageRule child = r1.Clone();
  auto own = CollectAggregations(child);
  auto other = CollectAggregations(r2);
  if (own.empty() || other.empty()) return std::nullopt;

  AggregationOperator* agg1 = own[rng.PickIndex(own.size())];
  const AggregationOperator* agg2 = other[rng.PickIndex(other.size())];

  // Pool = own operands (moved) + other operands (cloned), each kept
  // with probability 50%.
  std::vector<std::unique_ptr<SimilarityOperator>> pool;
  for (auto& op : agg1->mutable_operands()) pool.push_back(std::move(op));
  for (const auto& op : agg2->operands()) pool.push_back(op->Clone());

  std::vector<std::unique_ptr<SimilarityOperator>> kept;
  for (auto& op : pool) {
    if (rng.Bernoulli(0.5)) kept.push_back(std::move(op));
  }
  if (kept.empty()) {
    // Keep one random operand so the aggregation stays valid.
    std::vector<size_t> remaining;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (pool[i] != nullptr) remaining.push_back(i);
    }
    kept.push_back(std::move(pool[remaining[rng.PickIndex(remaining.size())]]));
  }
  agg1->mutable_operands() = std::move(kept);
  return child;
}

// ------------------------------------------------------ AggregationCrossover

std::optional<LinkageRule> AggregationCrossover::Cross(const LinkageRule& r1,
                                                       const LinkageRule& r2,
                                                       Rng& rng) const {
  LinkageRule child = r1.Clone();
  auto slots = CollectSimilaritySlots(child);
  auto donors = CollectSimilarityNodes(r2);
  if (slots.empty() || donors.empty()) return std::nullopt;
  auto* slot = slots[rng.PickIndex(slots.size())];
  *slot = donors[rng.PickIndex(donors.size())]->Clone();
  return child;
}

// --------------------------------------------------- TransformationCrossover

std::optional<LinkageRule> TransformationCrossover::Cross(const LinkageRule& r1,
                                                          const LinkageRule& r2,
                                                          Rng& rng) const {
  LinkageRule child = r1.Clone();

  // Upper transformation slot in the child.
  auto own_slots = CollectTransformSlots(child);
  if (own_slots.empty()) return std::nullopt;
  auto* upper1_slot = own_slots[rng.PickIndex(own_slots.size())];
  auto* upper1 = static_cast<TransformOperator*>(upper1_slot->get());

  // Lower transformation within upper1's chain.
  std::vector<TransformOperator*> own_chain;
  CollectTransformsInSubtree(upper1, own_chain);
  TransformOperator* lower1 = own_chain[rng.PickIndex(own_chain.size())];

  // Upper/lower pair in the donor rule.
  auto other_transforms = CollectTransforms(const_cast<LinkageRule&>(r2));
  if (other_transforms.empty()) return std::nullopt;
  TransformOperator* upper2 =
      other_transforms[rng.PickIndex(other_transforms.size())];
  std::vector<TransformOperator*> other_chain;
  CollectTransformsInSubtree(upper2, other_chain);
  TransformOperator* lower2 = other_chain[rng.PickIndex(other_chain.size())];

  std::vector<size_t> path;
  if (!FindTransformPath(upper2, lower2, path)) return std::nullopt;

  // Clone the donor segment and locate the clone of lower2 along the
  // recorded path.
  std::unique_ptr<ValueOperator> segment = upper2->Clone();
  auto* segment_lower = static_cast<TransformOperator*>(segment.get());
  for (size_t index : path) {
    segment_lower =
        static_cast<TransformOperator*>(segment_lower->mutable_inputs()[index].get());
  }

  // Attach lower1's inputs below the donor segment (two-point crossover:
  // the child keeps its own chain tail).
  std::vector<std::unique_ptr<ValueOperator>> tail = std::move(lower1->mutable_inputs());
  // Adjust to the donor function's arity: pad with clones of the first
  // input or truncate.
  size_t arity = segment_lower->function()->arity();
  while (tail.size() < arity && !tail.empty()) {
    tail.push_back(tail[0]->Clone());
  }
  if (tail.empty()) return std::nullopt;
  tail.resize(arity == 0 ? 1 : arity);
  segment_lower->mutable_inputs() = std::move(tail);

  *upper1_slot = std::move(segment);
  // Deduplicate from the comparison roots: the splice can also create a
  // duplicate between the segment and its pre-existing parent chain.
  for (auto* cmp : CollectComparisons(child)) {
    RemoveDuplicateTransforms(cmp->mutable_source());
    RemoveDuplicateTransforms(cmp->mutable_target());
  }
  return child;
}

// --------------------------------------------------------- ThresholdCrossover

std::optional<LinkageRule> ThresholdCrossover::Cross(const LinkageRule& r1,
                                                     const LinkageRule& r2,
                                                     Rng& rng) const {
  LinkageRule child = r1.Clone();
  auto own = CollectComparisons(child);
  auto other = CollectComparisons(r2);
  if (own.empty() || other.empty()) return std::nullopt;
  ComparisonOperator* cmp1 = own[rng.PickIndex(own.size())];
  const ComparisonOperator* cmp2 = other[rng.PickIndex(other.size())];
  double merged = 0.5 * (cmp1->threshold() + cmp2->threshold());
  merged = std::clamp(merged, 0.0, cmp1->measure()->MaxThreshold());
  cmp1->set_threshold(merged);
  return child;
}

// ------------------------------------------------------------ WeightCrossover

std::optional<LinkageRule> WeightCrossover::Cross(const LinkageRule& r1,
                                                  const LinkageRule& r2,
                                                  Rng& rng) const {
  LinkageRule child = r1.Clone();
  auto own = CollectSimilaritySlots(child);
  auto other = CollectSimilarityNodes(r2);
  if (own.empty() || other.empty()) return std::nullopt;
  SimilarityOperator* dst = own[rng.PickIndex(own.size())]->get();
  const SimilarityOperator* src = other[rng.PickIndex(other.size())];
  dst->set_weight(std::max(1e-3, 0.5 * (dst->weight() + src->weight())));
  return child;
}

// ----------------------------------------------------------- SubtreeCrossover

std::optional<LinkageRule> SubtreeCrossover::Cross(const LinkageRule& r1,
                                                   const LinkageRule& r2,
                                                   Rng& rng) const {
  LinkageRule child = r1.Clone();
  auto sim_slots = CollectSimilaritySlots(child);
  auto value_slots = CollectValueSlots(child);
  size_t total = sim_slots.size() + value_slots.size();
  if (total == 0) return std::nullopt;
  size_t pick = rng.PickIndex(total);
  if (pick < sim_slots.size()) {
    auto donors = CollectSimilarityNodes(r2);
    if (donors.empty()) return std::nullopt;
    *sim_slots[pick] = donors[rng.PickIndex(donors.size())]->Clone();
  } else {
    auto donors = CollectValueNodes(r2);
    if (donors.empty()) return std::nullopt;
    *value_slots[pick - sim_slots.size()] =
        donors[rng.PickIndex(donors.size())]->Clone();
  }
  return child;
}

// -------------------------------------------------------- root invariant

void EnsureAggregationRoot(LinkageRule& rule, const AggregationFunction* fn) {
  if (rule.empty() || rule.root()->kind() == OperatorKind::kAggregation) return;
  std::vector<std::unique_ptr<SimilarityOperator>> operands;
  operands.push_back(std::move(rule.mutable_root()));
  rule.mutable_root() = std::make_unique<AggregationOperator>(fn, std::move(operands));
}

// ------------------------------------------------------------ MakeCrossoverSet

std::vector<std::unique_ptr<CrossoverOperator>> MakeCrossoverSet(
    RepresentationMode mode, bool subtree_only) {
  std::vector<std::unique_ptr<CrossoverOperator>> ops;
  if (subtree_only) {
    ops.push_back(std::make_unique<SubtreeCrossover>());
    return ops;
  }
  ops.push_back(std::make_unique<FunctionCrossover>());
  ops.push_back(std::make_unique<OperatorsCrossover>());
  ops.push_back(std::make_unique<ThresholdCrossover>());
  if (mode != RepresentationMode::kBoolean) {
    ops.push_back(std::make_unique<WeightCrossover>());
  }
  if (mode == RepresentationMode::kNonlinear || mode == RepresentationMode::kFull) {
    ops.push_back(std::make_unique<AggregationCrossover>());
  }
  if (mode == RepresentationMode::kFull) {
    ops.push_back(std::make_unique<TransformationCrossover>());
  }
  return ops;
}

}  // namespace genlink
