#include "gp/islands.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "eval/metrics.h"
#include "gp/selection.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Everything the evolution loop needs that is independent of the
// population organization. Built once per Learn call; the engine span
// points into `train_pairs`, whose heap buffer is stable under moves of
// the struct.
struct SearchSetup {
  std::vector<LabeledPair> train_pairs;
  std::vector<LabeledPair> val_pairs;
  std::vector<CompatiblePair> compatible_pairs;
  std::unique_ptr<EvaluationEngine> engine;
  std::unique_ptr<RuleGenerator> generator;
  std::vector<std::unique_ptr<CrossoverOperator>> crossover_set;
};

// Resolves the labelled pairs, builds the shared engine and — drawing
// from the master RNG exactly like the legacy loop did — runs the
// seeding step (Section 5.1 / Algorithm 2) and constructs the rule
// generator and crossover set.
Result<SearchSetup> PrepareSearch(const Dataset& a, const Dataset& b,
                                  const GenLinkConfig& config,
                                  const ReferenceLinkSet& train,
                                  const ReferenceLinkSet* validation,
                                  Rng& rng) {
  SearchSetup setup;

  auto train_pairs = train.Resolve(a, b);
  if (!train_pairs.ok()) return train_pairs.status();
  setup.train_pairs = std::move(*train_pairs);

  if (validation != nullptr) {
    auto resolved = validation->Resolve(a, b);
    if (!resolved.ok()) return resolved.status();
    setup.val_pairs = std::move(*resolved);
  }

  EngineConfig engine_config;
  engine_config.num_threads = config.num_threads;
  engine_config.cache_fitness = config.cache_fitness;
  engine_config.cache_distances = config.cache_distances;
  engine_config.use_value_store = config.use_value_store;
  setup.engine = std::make_unique<EvaluationEngine>(
      setup.train_pairs, a.schema(), b.schema(), config.fitness, engine_config);

  // --- Seeding (Section 5.1 / Algorithm 2).
  if (config.seeded_population) {
    setup.compatible_pairs =
        FindCompatibleProperties(a, b, train, config.seeding, rng);
  }
  RuleGeneratorConfig gen_config = config.generator;
  gen_config.mode = config.mode;
  gen_config.seeded =
      config.seeded_population && !setup.compatible_pairs.empty();
  setup.generator = std::make_unique<RuleGenerator>(
      setup.compatible_pairs, a.schema().property_names(),
      b.schema().property_names(), gen_config);

  setup.crossover_set =
      MakeCrossoverSet(config.mode, config.subtree_crossover_only);
  return setup;
}

// Breeds one generation from `population` into `next` (Algorithm 1's
// inner loop: elitism, tournament selection, specialized crossover,
// headless-chicken mutation, duplicate suppression). `next` is a reused
// buffer: it is cleared but keeps its allocation, so after the first
// generation breeding does not reallocate.
void BreedNextGeneration(
    const Population& population, Population& next,
    const RuleGenerator& generator,
    const std::vector<std::unique_ptr<CrossoverOperator>>& crossover_set,
    const GenLinkConfig& config, Rng& rng) {
  next.Clear();
  next.Reserve(config.population_size);

  // Elitism: carry over the best individuals unchanged.
  if (config.elitism > 0) {
    std::vector<size_t> order(population.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::partial_sort(order.begin(),
                      order.begin() + std::min(config.elitism, order.size()),
                      order.end(), [&](size_t x, size_t y) {
                        return population[x].fitness.fitness >
                               population[y].fitness.fitness;
                      });
    for (size_t e = 0; e < std::min(config.elitism, order.size()); ++e) {
      const Individual& elite = population[order[e]];
      next.Add(Individual{elite.rule.Clone(), elite.fitness, true});
    }
  }

  // Structural hashes already present in the next generation.
  // Suppressing duplicates keeps the population diverse: without it,
  // tournament selection floods the population with copies of the
  // current best rule within a few generations and recombination has
  // no material left to discover multi-comparison rules.
  std::unordered_set<uint64_t> seen;
  for (const auto& individual : next.individuals()) {
    seen.insert(individual.rule.StructuralHash());
  }

  while (next.size() < config.population_size) {
    const LinkageRule& parent1 =
        population[TournamentSelect(population, config.tournament_size, rng)]
            .rule;
    const LinkageRule& parent2 =
        population[TournamentSelect(population, config.tournament_size, rng)]
            .rule;

    LinkageRule child;
    bool produced = false;
    // A drawn operator can be inapplicable (e.g. transformation
    // crossover without transformations), produce an oversized or
    // invalid child, or duplicate an existing individual; redraw a few
    // times before falling back to reproduction.
    for (int attempt = 0; attempt < 6 && !produced; ++attempt) {
      const CrossoverOperator& op =
          *crossover_set[rng.PickIndex(crossover_set.size())];
      std::optional<LinkageRule> bred;
      if (rng.Bernoulli(config.mutation_probability)) {
        // Headless-chicken mutation: cross with a random rule.
        LinkageRule random_rule = generator.RandomRule(rng);
        bred = op.Cross(parent1, random_rule, rng);
      } else {
        bred = op.Cross(parent1, parent2, rng);
      }
      if (bred.has_value() && bred->OperatorCount() <= config.max_operators &&
          bred->Validate().ok()) {
        // Keep the Silk invariant: rules are aggregation-rooted, so
        // that operators crossover can always recombine comparisons.
        EnsureAggregationRoot(*bred, generator.RandomAggregationFunction(rng));
        if (!seen.insert(bred->StructuralHash()).second) continue;
        child = std::move(*bred);
        produced = true;
      }
    }
    if (!produced) {
      // Fall back to a fresh random rule rather than a clone: clones
      // would reintroduce exactly the duplicates we just rejected.
      child = generator.RandomRule(rng);
      seen.insert(child.StructuralHash());
    }
    next.Add(Individual{std::move(child), {}, false});
  }
}

// ------------------------------------------------------------ islands

// One island: a population, its breeding double-buffer, its RNG stream
// and its trajectory. `stream` points at `rng`, except in the
// single-island configuration where it points at the master RNG so the
// draw sequence matches the legacy loop exactly.
struct Island {
  Population population;
  Population scratch;
  Rng rng{0};
  Rng* stream = nullptr;
  RunTrajectory trajectory;
  IterationStats last;
  /// Validation scores of previously seen best rules (structural hash
  /// -> {val_f1, val_mcc}). The per-generation best rule rarely
  /// changes, so this memo removes almost all validation scoring from
  /// the per-iteration stats — the values are bit-identical, they are
  /// just not recomputed.
  std::unordered_map<uint64_t, std::pair<double, double>> val_memo;
};

// Cross-island coordination state of one LearnIslands run. Everything
// else an island task touches is that island's own (population, RNG
// stream, trajectory — disjoint by index, see the determinism
// invariants in the header); the two pieces that ARE shared live here,
// each with its concurrency regime made explicit.
struct SearchPhaseState {
  /// The global early-stop flag: set by any island's record task once
  /// that island's best rule reaches stop_f_measure, read only in the
  /// serial loop conditions between generations. A one-way monotonic
  /// flag written with relaxed stores: concurrent tasks only ever
  /// write `true`, so the value observed after the parallel phase
  /// joins is the OR of the per-island conditions — deterministic for
  /// any thread count.
  std::atomic<bool> early_stop{false};
  /// Serial-phase discipline token (common/mutex.h): held by the main
  /// thread between parallel sections. Guards the migration buffers so
  /// `clang -Wthread-safety` rejects any attempt to migrate from
  /// inside a breeding or record task.
  PhaseRole serial_phase;
  /// Reused per-island emigrant buffers, filled and consumed by
  /// Migrate in the serial phase between generations.
  std::vector<std::vector<Individual>> migration_buffers
      GENLINK_GUARDED_BY(serial_phase);
};

// Evaluates every unevaluated individual of every island through ONE
// engine batch (islands in index order, individuals in population
// order). Cross-island duplicates dedup inside the batch and all
// islands share the fitness memo and distance rows. For a single
// island this is exactly EvaluatePopulation.
void EvaluateIslands(std::vector<Island>& islands, EvaluationEngine& engine) {
  std::vector<std::pair<size_t, size_t>> where;  // (island, individual)
  std::vector<const LinkageRule*> rules;
  for (size_t i = 0; i < islands.size(); ++i) {
    Population& population = islands[i].population;
    for (size_t k = 0; k < population.size(); ++k) {
      if (population[k].evaluated) continue;
      where.push_back({i, k});
      rules.push_back(&population[k].rule);
    }
  }
  std::vector<FitnessResult> results(rules.size());
  engine.EvaluateBatch(rules, results);
  for (size_t n = 0; n < where.size(); ++n) {
    Individual& individual = islands[where[n].first].population[where[n].second];
    individual.fitness = results[n];
    individual.evaluated = true;
  }
}

// Index of the island whose best individual has the highest fitness —
// the island that provides the merged trajectory's stats and the final
// best rule. Ties resolve to the lowest island index, deterministically.
size_t LeaderIndex(const std::vector<Island>& islands) {
  size_t leader = 0;
  double leader_fitness = 0.0;
  for (size_t i = 0; i < islands.size(); ++i) {
    const Population& population = islands[i].population;
    double best = population[population.BestIndex()].fitness.fitness;
    if (i == 0 || best > leader_fitness) {
      leader = i;
      leader_fitness = best;
    }
  }
  return leader;
}

// Ring migration: the best `migration_size` rules of island i replace
// the worst rules of island (i+1) mod K. All emigrant sets are selected
// from the pre-migration populations before any replacement is applied,
// so the result is independent of the visit order. Both selections are
// tie-broken by the structural hash, which is name-based and therefore
// stable across processes — the same seed migrates the same rules in
// every run.
void Migrate(std::vector<Island>& islands, size_t migration_size,
             SearchPhaseState& state)
    GENLINK_REQUIRES(state.serial_phase) {
  const size_t num_islands = islands.size();
  std::vector<std::vector<Individual>>& emigrants = state.migration_buffers;
  emigrants.resize(num_islands);
  for (size_t i = 0; i < num_islands; ++i) {
    emigrants[i].clear();
    const Population& population = islands[i].population;
    const size_t count = std::min(migration_size, population.size());
    std::vector<size_t> order(population.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::partial_sort(order.begin(), order.begin() + count, order.end(),
                      [&](size_t x, size_t y) {
                        if (population[x].fitness.fitness !=
                            population[y].fitness.fitness) {
                          return population[x].fitness.fitness >
                                 population[y].fitness.fitness;
                        }
                        return population[x].rule.StructuralHash() <
                               population[y].rule.StructuralHash();
                      });
    emigrants[i].reserve(count);
    for (size_t k = 0; k < count; ++k) {
      const Individual& source = population[order[k]];
      emigrants[i].push_back(
          Individual{source.rule.Clone(), source.fitness, true});
    }
  }
  for (size_t j = 0; j < num_islands; ++j) {
    std::vector<Individual>& incoming =
        emigrants[(j + num_islands - 1) % num_islands];
    Population& population = islands[j].population;
    const size_t count = std::min(incoming.size(), population.size());
    std::vector<size_t> order(population.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::partial_sort(order.begin(), order.begin() + count, order.end(),
                      [&](size_t x, size_t y) {
                        if (population[x].fitness.fitness !=
                            population[y].fitness.fitness) {
                          return population[x].fitness.fitness <
                                 population[y].fitness.fitness;
                        }
                        return population[x].rule.StructuralHash() >
                               population[y].rule.StructuralHash();
                      });
    for (size_t k = 0; k < count; ++k) {
      population[order[k]] = std::move(incoming[k]);
    }
  }
}

}  // namespace

Result<LearnResult> LearnIslands(const Dataset& a, const Dataset& b,
                                 const GenLinkConfig& config,
                                 const ReferenceLinkSet& train,
                                 const ReferenceLinkSet* validation, Rng& rng,
                                 const IterationCallback& callback) {
  auto start = Clock::now();
  const size_t num_islands = std::max<size_t>(1, config.num_islands);

  auto setup = PrepareSearch(a, b, config, train, validation, rng);
  if (!setup.ok()) return setup.status();
  EvaluationEngine& engine = *setup->engine;
  const RuleGenerator& generator = *setup->generator;
  ThreadPool& pool = engine.pool();

  LearnResult result;
  result.compatible_pairs = setup->compatible_pairs;
  SearchPhaseState state;

  // --- Island setup. The single-island stream IS the master RNG (the
  // legacy draw order); K > 1 splits one child stream per island off
  // the master, in island order.
  std::vector<Island> islands(num_islands);
  if (num_islands == 1) {
    islands[0].stream = &rng;
  } else {
    for (Island& island : islands) {
      island.rng = rng.Fork();
      island.stream = &island.rng;
    }
  }

  // --- Initial populations, one breeding task per island: each task
  // draws only from its own stream and writes only its own island, so
  // results do not depend on the scheduling.
  pool.ParallelForEach(num_islands, [&](size_t i) {
    Island& island = islands[i];
    island.population.Reserve(config.population_size);
    island.scratch.Reserve(config.population_size);
    for (size_t k = 0; k < config.population_size; ++k) {
      island.population.Add(
          Individual{generator.RandomRule(*island.stream), {}, false});
    }
  });
  EvaluateIslands(islands, engine);

  {
    double f1_sum = 0.0;
    size_t total = 0;
    for (const Island& island : islands) {
      for (const auto& individual : island.population.individuals()) {
        // lint:allow(float-accum) -- serial phase, fixed island/individual order for any thread count
        f1_sum += individual.fitness.f_measure;
      }
      total += island.population.size();
    }
    result.initial_population_mean_f1 =
        total == 0 ? 0.0 : f1_sum / static_cast<double>(total);
  }

  // Records per-iteration statistics for every island plus the merged
  // view (the leading island's stats; `iteration` 0 is the initial
  // population, matching the tables in Section 6.2 of the paper). Any
  // island whose best rule reaches stop_f_measure raises the global
  // early-stop flag, which drives the serial loop conditions below.
  // The per-island computation — validation scoring is the expensive
  // part — runs one task per island; each task touches only its own
  // island (plus the monotonic flag), so the stats are
  // scheduling-independent, and the merge below is serial.
  auto record = [&](size_t iteration) {
    const double seconds = SecondsSince(start);
    pool.ParallelForEach(num_islands, [&](size_t i) {
      Island& island = islands[i];
      const Individual& best_ind =
          island.population[island.population.BestIndex()];
      IterationStats stats;
      stats.iteration = iteration;
      stats.seconds = seconds;
      stats.train_f1 = best_ind.fitness.f_measure;
      stats.train_mcc = best_ind.fitness.mcc;
      stats.mean_operators = island.population.MeanOperatorCount();
      stats.best_operators =
          static_cast<double>(best_ind.rule.OperatorCount());
      if (!setup->val_pairs.empty()) {
        auto [it, missing] =
            island.val_memo.try_emplace(best_ind.rule.StructuralHash());
        if (missing) {
          ConfusionMatrix cm = EvaluateRuleOnPairs(
              best_ind.rule, setup->val_pairs, a.schema(), b.schema());
          it->second = {FMeasure(cm), MatthewsCorrelation(cm)};
        }
        stats.val_f1 = it->second.first;
        stats.val_mcc = it->second.second;
      }
      island.trajectory.iterations.push_back(stats);
      island.last = stats;
      if (stats.train_f1 >= config.stop_f_measure) {
        // One-way flag; OR across islands, order-independent.
        state.early_stop.store(true, std::memory_order_relaxed);
      }
    });

    const size_t leader = LeaderIndex(islands);
    double operator_sum = 0.0;
    size_t total = 0;
    for (const Island& island : islands) {
      // Same accumulation order as Population::MeanOperatorCount, so a
      // single island reproduces the legacy mean bit for bit.
      for (const auto& individual : island.population.individuals()) {
        // lint:allow(float-accum) -- serial merge phase, fixed island/population order
        operator_sum += static_cast<double>(individual.rule.OperatorCount());
      }
      total += island.population.size();
    }
    IterationStats merged = islands[leader].last;
    merged.mean_operators =
        total == 0 ? 0.0 : operator_sum / static_cast<double>(total);
    result.trajectory.iterations.push_back(merged);
    if (callback) callback(merged, islands[leader].population);
  };

  record(0);

  // External interrupt (GenLinkConfig::stop_requested): checked only at
  // generation boundaries, in the serial phase, so an interrupted run
  // still ends on a fully evaluated population.
  auto interrupted = [&config] {
    return config.stop_requested != nullptr &&
           config.stop_requested->load(std::memory_order_relaxed);
  };

  // --- Evolution loop (Algorithm 1 per island). Breeding runs one
  // task per island on the shared pool; evaluation is one cross-island
  // engine batch; migration happens in the serial phase between
  // generations.
  for (size_t iteration = 1;
       iteration <= config.max_iterations &&
       !state.early_stop.load(std::memory_order_relaxed) && !interrupted();
       ++iteration) {
    pool.ParallelForEach(num_islands, [&](size_t i) {
      Island& island = islands[i];
      BreedNextGeneration(island.population, island.scratch, generator,
                          setup->crossover_set, config, *island.stream);
      std::swap(island.population, island.scratch);
    });
    EvaluateIslands(islands, engine);
    record(iteration);

    if (num_islands > 1 && config.migration_interval > 0 &&
        config.migration_size > 0 &&
        iteration % config.migration_interval == 0 &&
        iteration < config.max_iterations &&
        !state.early_stop.load(std::memory_order_relaxed) && !interrupted()) {
      PhaseGuard serial(state.serial_phase);
      Migrate(islands, config.migration_size, state);
    }
  }

  // --- Global best: the leading island's best individual.
  const Population& winning = islands[LeaderIndex(islands)].population;
  const Individual& best = winning[winning.BestIndex()];
  result.eval_stats = engine.stats();
  result.interrupted = interrupted();
  result.best_rule = best.rule.Clone();
  result.trajectory.best_rule_sexpr = ToPrettySexpr(result.best_rule);
  result.trajectory.final_val_f1 =
      result.trajectory.iterations.empty()
          ? 0.0
          : result.trajectory.iterations.back().val_f1;
  result.island_trajectories.reserve(num_islands);
  for (Island& island : islands) {
    island.trajectory.best_rule_sexpr = ToPrettySexpr(
        island.population[island.population.BestIndex()].rule);
    island.trajectory.final_val_f1 =
        island.trajectory.iterations.empty()
            ? 0.0
            : island.trajectory.iterations.back().val_f1;
    result.island_trajectories.push_back(std::move(island.trajectory));
  }
  return result;
}

Result<LearnResult> LearnSinglePopulation(const Dataset& a, const Dataset& b,
                                          const GenLinkConfig& config,
                                          const ReferenceLinkSet& train,
                                          const ReferenceLinkSet* validation,
                                          Rng& rng,
                                          const IterationCallback& callback) {
  auto start = Clock::now();

  auto setup = PrepareSearch(a, b, config, train, validation, rng);
  if (!setup.ok()) return setup.status();
  EvaluationEngine& engine = *setup->engine;
  const RuleGenerator& generator = *setup->generator;

  LearnResult result;
  result.compatible_pairs = setup->compatible_pairs;

  // --- Initial population.
  Population population;
  population.Reserve(config.population_size);
  for (size_t i = 0; i < config.population_size; ++i) {
    population.Add(Individual{generator.RandomRule(rng), {}, false});
  }
  EvaluatePopulation(population, engine);

  {
    double f1_sum = 0.0;
    for (const auto& ind : population.individuals()) {
      // lint:allow(float-accum) -- serial loop over the population vector in index order
      f1_sum += ind.fitness.f_measure;
    }
    result.initial_population_mean_f1 =
        f1_sum / static_cast<double>(population.size());
  }

  // Records per-iteration statistics; `iteration` 0 is the initial
  // population, matching the tables in Section 6.2 of the paper.
  auto record = [&](size_t iteration) {
    size_t best = population.BestIndex();
    const Individual& best_ind = population[best];
    IterationStats stats;
    stats.iteration = iteration;
    stats.seconds = SecondsSince(start);
    stats.train_f1 = best_ind.fitness.f_measure;
    stats.train_mcc = best_ind.fitness.mcc;
    stats.mean_operators = population.MeanOperatorCount();
    stats.best_operators = static_cast<double>(best_ind.rule.OperatorCount());
    if (!setup->val_pairs.empty()) {
      ConfusionMatrix cm = EvaluateRuleOnPairs(best_ind.rule, setup->val_pairs,
                                               a.schema(), b.schema());
      stats.val_f1 = FMeasure(cm);
      stats.val_mcc = MatthewsCorrelation(cm);
    }
    result.trajectory.iterations.push_back(stats);
    if (callback) callback(stats, population);
    return stats;
  };

  IterationStats last = record(0);

  // --- Evolution loop (Algorithm 1).
  Population next;
  next.Reserve(config.population_size);
  for (size_t iteration = 1; iteration <= config.max_iterations &&
                             last.train_f1 < config.stop_f_measure;
       ++iteration) {
    BreedNextGeneration(population, next, generator, setup->crossover_set,
                        config, rng);
    std::swap(population, next);
    EvaluatePopulation(population, engine);
    last = record(iteration);
  }

  const Individual& best = population[population.BestIndex()];
  result.eval_stats = engine.stats();
  result.best_rule = best.rule.Clone();
  result.trajectory.best_rule_sexpr = ToPrettySexpr(result.best_rule);
  result.trajectory.final_val_f1 =
      result.trajectory.iterations.empty()
          ? 0.0
          : result.trajectory.iterations.back().val_f1;
  result.island_trajectories.push_back(result.trajectory);
  return result;
}

}  // namespace genlink
