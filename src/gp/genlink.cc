#include "gp/genlink.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "eval/metrics.h"
#include "gp/selection.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

GenLink::GenLink(const Dataset& a, const Dataset& b, GenLinkConfig config)
    : a_(&a), b_(&b), config_(std::move(config)) {}

Result<LearnResult> GenLink::Learn(const ReferenceLinkSet& train,
                                   const ReferenceLinkSet* validation, Rng& rng,
                                   const IterationCallback& callback) const {
  auto start = Clock::now();

  auto train_pairs = train.Resolve(*a_, *b_);
  if (!train_pairs.ok()) return train_pairs.status();

  std::vector<LabeledPair> val_pairs;
  if (validation != nullptr) {
    auto resolved = validation->Resolve(*a_, *b_);
    if (!resolved.ok()) return resolved.status();
    val_pairs = std::move(resolved).value();
  }

  EngineConfig engine_config;
  engine_config.num_threads = config_.num_threads;
  engine_config.cache_fitness = config_.cache_fitness;
  engine_config.cache_distances = config_.cache_distances;
  engine_config.use_value_store = config_.use_value_store;
  EvaluationEngine engine(*train_pairs, a_->schema(), b_->schema(),
                          config_.fitness, engine_config);

  LearnResult result;

  // --- Seeding (Section 5.1 / Algorithm 2).
  if (config_.seeded_population) {
    result.compatible_pairs =
        FindCompatibleProperties(*a_, *b_, train, config_.seeding, rng);
  }
  RuleGeneratorConfig gen_config = config_.generator;
  gen_config.mode = config_.mode;
  gen_config.seeded = config_.seeded_population && !result.compatible_pairs.empty();
  RuleGenerator generator(result.compatible_pairs, a_->schema().property_names(),
                          b_->schema().property_names(), gen_config);

  auto crossover_set =
      MakeCrossoverSet(config_.mode, config_.subtree_crossover_only);

  // --- Initial population.
  Population population;
  for (size_t i = 0; i < config_.population_size; ++i) {
    population.Add(Individual{generator.RandomRule(rng), {}, false});
  }
  EvaluatePopulation(population, engine);

  {
    double f1_sum = 0.0;
    for (const auto& ind : population.individuals()) {
      f1_sum += ind.fitness.f_measure;
    }
    result.initial_population_mean_f1 =
        f1_sum / static_cast<double>(population.size());
  }

  // Records per-iteration statistics; `iteration` 0 is the initial
  // population, matching the tables in Section 6.2 of the paper.
  auto record = [&](size_t iteration) {
    size_t best = population.BestIndex();
    const Individual& best_ind = population[best];
    IterationStats stats;
    stats.iteration = iteration;
    stats.seconds = SecondsSince(start);
    stats.train_f1 = best_ind.fitness.f_measure;
    stats.train_mcc = best_ind.fitness.mcc;
    stats.mean_operators = population.MeanOperatorCount();
    stats.best_operators = static_cast<double>(best_ind.rule.OperatorCount());
    if (!val_pairs.empty()) {
      ConfusionMatrix cm = EvaluateRuleOnPairs(best_ind.rule, val_pairs,
                                               a_->schema(), b_->schema());
      stats.val_f1 = FMeasure(cm);
      stats.val_mcc = MatthewsCorrelation(cm);
    }
    result.trajectory.iterations.push_back(stats);
    if (callback) callback(stats, population);
    return stats;
  };

  IterationStats last = record(0);

  // --- Evolution loop (Algorithm 1).
  for (size_t iteration = 1;
       iteration <= config_.max_iterations && last.train_f1 < config_.stop_f_measure;
       ++iteration) {
    Population next;

    // Elitism: carry over the best individuals unchanged.
    if (config_.elitism > 0) {
      std::vector<size_t> order(population.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::partial_sort(order.begin(),
                        order.begin() + std::min(config_.elitism, order.size()),
                        order.end(), [&](size_t x, size_t y) {
                          return population[x].fitness.fitness >
                                 population[y].fitness.fitness;
                        });
      for (size_t e = 0; e < std::min(config_.elitism, order.size()); ++e) {
        const Individual& elite = population[order[e]];
        next.Add(Individual{elite.rule.Clone(), elite.fitness, true});
      }
    }

    // Structural hashes already present in the next generation.
    // Suppressing duplicates keeps the population diverse: without it,
    // tournament selection floods the population with copies of the
    // current best rule within a few generations and recombination has
    // no material left to discover multi-comparison rules.
    std::unordered_set<uint64_t> seen;
    for (const auto& individual : next.individuals()) {
      seen.insert(individual.rule.StructuralHash());
    }

    while (next.size() < config_.population_size) {
      const LinkageRule& parent1 =
          population[TournamentSelect(population, config_.tournament_size, rng)].rule;
      const LinkageRule& parent2 =
          population[TournamentSelect(population, config_.tournament_size, rng)].rule;

      LinkageRule child;
      bool produced = false;
      // A drawn operator can be inapplicable (e.g. transformation
      // crossover without transformations), produce an oversized or
      // invalid child, or duplicate an existing individual; redraw a few
      // times before falling back to reproduction.
      for (int attempt = 0; attempt < 6 && !produced; ++attempt) {
        const CrossoverOperator& op =
            *crossover_set[rng.PickIndex(crossover_set.size())];
        std::optional<LinkageRule> bred;
        if (rng.Bernoulli(config_.mutation_probability)) {
          // Headless-chicken mutation: cross with a random rule.
          LinkageRule random_rule = generator.RandomRule(rng);
          bred = op.Cross(parent1, random_rule, rng);
        } else {
          bred = op.Cross(parent1, parent2, rng);
        }
        if (bred.has_value() && bred->OperatorCount() <= config_.max_operators &&
            bred->Validate().ok()) {
          // Keep the Silk invariant: rules are aggregation-rooted, so
          // that operators crossover can always recombine comparisons.
          EnsureAggregationRoot(*bred, generator.RandomAggregationFunction(rng));
          if (!seen.insert(bred->StructuralHash()).second) continue;
          child = std::move(*bred);
          produced = true;
        }
      }
      if (!produced) {
        // Fall back to a fresh random rule rather than a clone: clones
        // would reintroduce exactly the duplicates we just rejected.
        child = generator.RandomRule(rng);
        seen.insert(child.StructuralHash());
      }
      next.Add(Individual{std::move(child), {}, false});
    }

    population = std::move(next);
    EvaluatePopulation(population, engine);
    last = record(iteration);
  }

  const Individual& best = population[population.BestIndex()];
  result.eval_stats = engine.stats();
  result.best_rule = best.rule.Clone();
  result.trajectory.best_rule_sexpr = ToPrettySexpr(result.best_rule);
  result.trajectory.final_val_f1 =
      result.trajectory.iterations.empty()
          ? 0.0
          : result.trajectory.iterations.back().val_f1;
  return result;
}

}  // namespace genlink
