#include "gp/genlink.h"

#include "gp/islands.h"

namespace genlink {

GenLink::GenLink(const Dataset& a, const Dataset& b, GenLinkConfig config)
    : a_(&a), b_(&b), config_(std::move(config)) {}

// The evolution loop lives in gp/islands.cc: LearnIslands runs
// config_.num_islands populations (1 = the paper's single-population
// Algorithm 1, bit-identical to the legacy loop kept as
// LearnSinglePopulation).
Result<LearnResult> GenLink::Learn(const ReferenceLinkSet& train,
                                   const ReferenceLinkSet* validation, Rng& rng,
                                   const IterationCallback& callback) const {
  return LearnIslands(*a_, *b_, config_, train, validation, rng, callback);
}

}  // namespace genlink
