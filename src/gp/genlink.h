// The GenLink learning algorithm (Algorithm 1 of the paper).
//
// Starting from a seeded initial population, each generation breeds a new
// population: two rules are picked by tournament selection, a random
// specialized crossover operator is applied, and with the mutation
// probability the second parent is replaced by a freshly generated
// random rule (headless-chicken crossover). Evolution stops at the
// iteration limit or when a rule reaches the full training F-measure.

#ifndef GENLINK_GP_GENLINK_H_
#define GENLINK_GP_GENLINK_H_

#include <atomic>
#include <functional>
#include <memory>

#include "eval/cross_validation.h"
#include "eval/fitness.h"
#include "gp/compatible_properties.h"
#include "gp/crossover.h"
#include "gp/population.h"
#include "gp/rule_generator.h"
#include "model/dataset.h"
#include "model/reference_links.h"

namespace genlink {

/// All parameters of the learner. Defaults are the paper's Table 4
/// values; they are meant to work unchanged across data sets.
struct GenLinkConfig {
  size_t population_size = 500;
  size_t max_iterations = 50;
  size_t tournament_size = 5;
  /// Probability that a breeding event is a mutation, i.e. crossover with
  /// a random rule (the paper: 25%; the remaining 75% are crossovers).
  double mutation_probability = 0.25;
  /// Stop as soon as the best training F-measure reaches this value.
  double stop_f_measure = 1.0;

  /// Representation restriction (Table 13 ablation).
  RepresentationMode mode = RepresentationMode::kFull;
  /// Seeded vs fully random initial population (Table 14 ablation).
  bool seeded_population = true;
  /// Replace the specialized operator set with plain subtree crossover
  /// (Table 15 ablation).
  bool subtree_crossover_only = false;

  /// Number of best individuals copied unchanged into the next
  /// generation. Algorithm 1 as printed has no elitism; the Silk
  /// implementation preserves the best rule, which we follow (set to 0
  /// for the verbatim algorithm).
  size_t elitism = 1;
  /// Children exceeding this operator count are rejected (bloat guard on
  /// top of the parsimony pressure).
  size_t max_operators = 50;

  FitnessConfig fitness;
  CompatiblePropertyConfig seeding;
  /// Extra generator knobs (mode/seeded fields are overwritten from the
  /// fields above).
  RuleGeneratorConfig generator;

  /// Worker threads for fitness evaluation (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Memoize whole-rule fitness results across generations (see
  /// eval/engine.h). Off only for A/B measurements.
  bool cache_fitness = true;
  /// Precompute per-pair raw distances per comparison signature (see
  /// eval/engine.h). Off only for A/B measurements.
  bool cache_distances = true;
  /// Compile value subtrees into per-entity transform plans when
  /// filling cold distance rows (see eval/value_store.h). Bit-identical
  /// results either way; off only for A/B measurements.
  bool use_value_store = true;

  /// ---- Island model (gp/islands.h; an extension beyond Algorithm 1,
  /// off by default). Number of independent populations, each of
  /// `population_size` rules with its own deterministic RNG stream,
  /// bred in parallel and evaluated through one shared engine. 1 is the
  /// paper's single-population algorithm, bit-identical to the legacy
  /// loop.
  size_t num_islands = 1;
  /// Every `migration_interval` generations the best `migration_size`
  /// rules of each island replace the worst rules of its ring neighbor
  /// (island i sends to island i+1 mod K). 0 disables migration.
  size_t migration_interval = 5;
  size_t migration_size = 3;

  /// External interrupt (may be set from a signal handler): when
  /// non-null and true, learning finishes the current generation,
  /// skips migration, and returns the best rule found so far with the
  /// trajectory recorded up to that point (LearnResult::interrupted is
  /// set). The flag is only ever *read* here; the CLI's SIGINT/SIGTERM
  /// handling owns the write side. Null = run to completion.
  const std::atomic<bool>* stop_requested = nullptr;
};

/// Output of one learning run.
struct LearnResult {
  LinkageRule best_rule;
  RunTrajectory trajectory;
  /// Mean F-measure of the rules in the initial population (the
  /// quantity Table 14 reports).
  double initial_population_mean_f1 = 0.0;
  /// Compatible pairs found by the seeding step (empty when unseeded).
  std::vector<CompatiblePair> compatible_pairs;
  /// Final counters of the evaluation engine (cache hit rates etc.).
  EngineStats eval_stats;
  /// One trajectory per island (size = num_islands; element 0 equals
  /// `trajectory` for single-island runs). `trajectory` itself is the
  /// merged view: per iteration, the stats of the leading island.
  std::vector<RunTrajectory> island_trajectories;
  /// True when the run ended because GenLinkConfig::stop_requested
  /// fired rather than by iteration budget or stop_f_measure; the best
  /// rule is still the best of the completed generations.
  bool interrupted = false;
};

/// Per-iteration observer (iteration stats plus read access to the
/// population).
using IterationCallback =
    std::function<void(const IterationStats&, const Population&)>;

/// The GenLink learner for one pair of datasets.
class GenLink {
 public:
  GenLink(const Dataset& a, const Dataset& b, GenLinkConfig config = {});

  /// Learns a linkage rule from `train`. When `validation` is non-null,
  /// per-iteration validation scores of the current best rule are
  /// recorded in the trajectory. `callback` may be null.
  Result<LearnResult> Learn(const ReferenceLinkSet& train,
                            const ReferenceLinkSet* validation, Rng& rng,
                            const IterationCallback& callback = nullptr) const;

  const GenLinkConfig& config() const { return config_; }

 private:
  const Dataset* a_;
  const Dataset* b_;
  GenLinkConfig config_;
};

}  // namespace genlink

#endif  // GENLINK_GP_GENLINK_H_
