#include "gp/population.h"

#include <cassert>

namespace genlink {

size_t Population::BestIndex() const {
  assert(!individuals_.empty());
  size_t best = 0;
  for (size_t i = 1; i < individuals_.size(); ++i) {
    if (individuals_[i].fitness.fitness > individuals_[best].fitness.fitness) {
      best = i;
    }
  }
  return best;
}

size_t Population::BestByFMeasureIndex() const {
  assert(!individuals_.empty());
  size_t best = 0;
  for (size_t i = 1; i < individuals_.size(); ++i) {
    if (individuals_[i].fitness.f_measure > individuals_[best].fitness.f_measure) {
      best = i;
    }
  }
  return best;
}

double Population::MeanOperatorCount() const {
  if (individuals_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& ind : individuals_) {
    // lint:allow(float-accum) -- serial loop over the population vector in index order
    sum += static_cast<double>(ind.rule.OperatorCount());
  }
  return sum / static_cast<double>(individuals_.size());
}

void EvaluatePopulation(Population& population, EvaluationEngine& engine) {
  std::vector<size_t> indices;
  std::vector<const LinkageRule*> rules;
  for (size_t i = 0; i < population.size(); ++i) {
    if (population[i].evaluated) continue;
    indices.push_back(i);
    rules.push_back(&population[i].rule);
  }
  std::vector<FitnessResult> results(rules.size());
  engine.EvaluateBatch(rules, results);
  for (size_t k = 0; k < indices.size(); ++k) {
    population[indices[k]].fitness = results[k];
    population[indices[k]].evaluated = true;
  }
}

}  // namespace genlink
