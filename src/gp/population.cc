#include "gp/population.h"

#include <cassert>

namespace genlink {

size_t Population::BestIndex() const {
  assert(!individuals_.empty());
  size_t best = 0;
  for (size_t i = 1; i < individuals_.size(); ++i) {
    if (individuals_[i].fitness.fitness > individuals_[best].fitness.fitness) {
      best = i;
    }
  }
  return best;
}

size_t Population::BestByFMeasureIndex() const {
  assert(!individuals_.empty());
  size_t best = 0;
  for (size_t i = 1; i < individuals_.size(); ++i) {
    if (individuals_[i].fitness.f_measure > individuals_[best].fitness.f_measure) {
      best = i;
    }
  }
  return best;
}

double Population::MeanOperatorCount() const {
  if (individuals_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& ind : individuals_) {
    sum += static_cast<double>(ind.rule.OperatorCount());
  }
  return sum / static_cast<double>(individuals_.size());
}

const FitnessResult* FitnessCache::Find(uint64_t hash) const {
  auto it = entries_.find(hash);
  return it == entries_.end() ? nullptr : &it->second;
}

void FitnessCache::Insert(uint64_t hash, const FitnessResult& result) {
  if (entries_.size() >= max_entries_) entries_.clear();
  entries_[hash] = result;
}

void EvaluatePopulation(Population& population, const FitnessEvaluator& evaluator,
                        ThreadPool* pool, FitnessCache* cache) {
  // Resolve cache hits serially, collect misses.
  std::vector<size_t> misses;
  std::vector<uint64_t> miss_hashes;
  for (size_t i = 0; i < population.size(); ++i) {
    Individual& ind = population[i];
    if (ind.evaluated) continue;
    uint64_t hash = ind.rule.StructuralHash();
    if (cache != nullptr) {
      if (const FitnessResult* hit = cache->Find(hash)) {
        ind.fitness = *hit;
        ind.evaluated = true;
        continue;
      }
    }
    misses.push_back(i);
    miss_hashes.push_back(hash);
  }

  auto evaluate_one = [&](size_t k) {
    Individual& ind = population[misses[k]];
    ind.fitness = evaluator.Evaluate(ind.rule);
    ind.evaluated = true;
  };
  if (pool != nullptr) {
    pool->ParallelFor(misses.size(), evaluate_one);
  } else {
    for (size_t k = 0; k < misses.size(); ++k) evaluate_one(k);
  }

  if (cache != nullptr) {
    for (size_t k = 0; k < misses.size(); ++k) {
      cache->Insert(miss_hashes[k], population[misses[k]].fitness);
    }
  }
}

}  // namespace genlink
