// Compatible-property mining (Algorithm 2 of the paper): before the
// initial population is generated, property pairs that hold similar
// values across the positive reference links are collected. Seeding the
// population from this list shrinks the search space dramatically for
// wide schemata (Table 14 of the paper).

#ifndef GENLINK_GP_COMPATIBLE_PROPERTIES_H_
#define GENLINK_GP_COMPATIBLE_PROPERTIES_H_

#include <string>
#include <vector>

#include "distance/distance_measure.h"
#include "model/dataset.h"
#include "model/reference_links.h"

namespace genlink {

/// A pair of properties found to hold similar values, together with the
/// distance measure under which they matched (e.g. Figure 3's
/// (point, coord, geographic)).
struct CompatiblePair {
  std::string property_a;
  std::string property_b;
  const DistanceMeasure* measure = nullptr;
  /// How many sampled positive links supported this pair (used to bias
  /// the generator toward strongly supported pairs).
  size_t support = 0;
};

/// One detection probe: a measure plus the threshold θ_d below which two
/// values are considered similar. `on_tokens` selects whether the probe
/// runs on lowercased tokens (Algorithm 2's tokenize ∘ lowerCase) or on
/// the raw values (appropriate for geographic/date/numeric probes).
struct CompatibilityProbe {
  const DistanceMeasure* measure = nullptr;
  double threshold = 1.0;
  bool on_tokens = true;
};

/// Configuration for FindCompatibleProperties.
struct CompatiblePropertyConfig {
  /// Probes to run. Empty selects the default set: levenshtein (θ=1, on
  /// tokens, as in the paper's experiments) plus geographic, date and
  /// numeric probes on raw values.
  std::vector<CompatibilityProbe> probes;
  /// At most this many positive links are sampled (Algorithm 2 iterates
  /// all; sampling bounds cost on large link sets without changing the
  /// outcome in practice).
  size_t max_links = 100;
};

/// Runs Algorithm 2 and returns the discovered pairs sorted by support
/// (descending). Never returns duplicates of (p_a, p_b, measure).
std::vector<CompatiblePair> FindCompatibleProperties(
    const Dataset& a, const Dataset& b, const ReferenceLinkSet& links,
    const CompatiblePropertyConfig& config, Rng& rng);

}  // namespace genlink

#endif  // GENLINK_GP_COMPATIBLE_PROPERTIES_H_
