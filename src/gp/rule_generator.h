// Random linkage-rule generation (Section 5.1 of the paper): a random
// aggregation over up to two comparisons drawn from the compatible
// property list; with probability 50% a random transformation is
// appended to each property.
//
// The generator also enforces the representation restrictions evaluated
// in Table 13 (boolean / linear / non-linear / full).

#ifndef GENLINK_GP_RULE_GENERATOR_H_
#define GENLINK_GP_RULE_GENERATOR_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "distance/registry.h"
#include "gp/compatible_properties.h"
#include "rule/linkage_rule.h"
#include "transform/registry.h"

namespace genlink {

/// The four linkage-rule representations compared in Section 6.3.
enum class RepresentationMode {
  /// Flat min/max aggregation of comparisons; no transformations;
  /// unit weights (threshold-based boolean classifier, Definition 10).
  kBoolean,
  /// Single weighted-mean aggregation; no transformations (linear
  /// classifier, Definition 9).
  kLinear,
  /// Nested aggregations with all aggregation functions; no
  /// transformations.
  kNonlinear,
  /// The paper's full representation: non-linear plus transformations.
  kFull,
};

/// Returns a stable display name ("boolean", "linear", ...).
std::string_view RepresentationModeName(RepresentationMode mode);

/// Configuration of the random generator.
struct RuleGeneratorConfig {
  RepresentationMode mode = RepresentationMode::kFull;
  /// Probability of appending a random transformation to each property
  /// of an initial comparison (the paper uses 50%).
  double transformation_probability = 0.5;
  /// Initial rules contain up to this many comparisons (the paper: 2).
  size_t max_initial_comparisons = 2;
  /// When false, compatible pairs are ignored and property pairs are
  /// drawn uniformly at random (the "Random" column of Table 14).
  bool seeded = true;
  /// Probability of keeping the measure that detected a compatible pair
  /// (otherwise a random measure is drawn).
  double keep_detected_measure_probability = 0.8;
  /// Maximum integer weight assigned to operators.
  int max_weight = 10;
};

/// Generates random linkage rules and random rule fragments.
class RuleGenerator {
 public:
  /// `compatible_pairs` may be empty; generation then falls back to
  /// uniform property pairs from the schema property lists.
  RuleGenerator(std::vector<CompatiblePair> compatible_pairs,
                std::vector<std::string> properties_a,
                std::vector<std::string> properties_b,
                RuleGeneratorConfig config = {},
                const DistanceRegistry& distances = DistanceRegistry::Default(),
                const TransformRegistry& transforms = TransformRegistry::Default(),
                const AggregationRegistry& aggregations =
                    AggregationRegistry::Default());

  /// Generates a full random linkage rule (Section 5.1).
  LinkageRule RandomRule(Rng& rng) const;

  /// Generates a random comparison (used by rule generation and by some
  /// crossover fallbacks).
  std::unique_ptr<SimilarityOperator> RandomComparison(Rng& rng) const;

  /// Draws a random aggregation function permitted by the mode.
  const AggregationFunction* RandomAggregationFunction(Rng& rng) const;

  /// Draws a random distance measure.
  const DistanceMeasure* RandomMeasure(Rng& rng) const;

  /// Draws a random unary transformation.
  const Transformation* RandomUnaryTransformation(Rng& rng) const;

  /// Draws a random threshold for `measure` (uniform in (0, max]).
  double RandomThreshold(const DistanceMeasure& measure, Rng& rng) const;

  /// Draws a random integer weight in [1, max_weight] (1 in boolean mode).
  double RandomWeight(Rng& rng) const;

  const RuleGeneratorConfig& config() const { return config_; }

 private:
  std::vector<CompatiblePair> compatible_pairs_;
  std::vector<std::string> properties_a_;
  std::vector<std::string> properties_b_;
  RuleGeneratorConfig config_;
  const DistanceRegistry& distances_;
  const TransformRegistry& transforms_;
  const AggregationRegistry& aggregations_;
  std::vector<const Transformation*> unary_transforms_;
  std::vector<const AggregationFunction*> allowed_aggregations_;
};

}  // namespace genlink

#endif  // GENLINK_GP_RULE_GENERATOR_H_
