#include "gp/active_learning.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/hash.h"
#include "matcher/blocking.h"

namespace genlink {

ActiveLearner::ActiveLearner(const Dataset& a, const Dataset& b,
                             ActiveLearningConfig config)
    : a_(&a), b_(&b), config_(std::move(config)) {}

std::vector<CandidateLink> ActiveLearner::BuildPool(size_t max_pairs) const {
  TokenBlockingIndex index(*b_);
  std::vector<CandidateLink> pool;
  for (size_t i = 0; i < a_->size(); ++i) {
    const Entity& ea = a_->entity(i);
    for (size_t j : index.Candidates(ea, a_->schema())) {
      const Entity& eb = b_->entity(j);
      if (a_ == b_ && ea.id() >= eb.id()) continue;
      pool.push_back({ea.id(), eb.id()});
      if (max_pairs > 0 && pool.size() >= max_pairs) return pool;
    }
  }
  return pool;
}

Result<ActiveLearningResult> ActiveLearner::Run(
    const ReferenceLinkSet& seed_labels, const std::vector<CandidateLink>& pool,
    const Oracle& oracle, const ReferenceLinkSet* validation, Rng& rng) const {
  if (seed_labels.positives().empty() || seed_labels.negatives().empty()) {
    return Status::FailedPrecondition(
        "active learning needs at least one positive and one negative seed "
        "label");
  }

  ActiveLearningResult result;
  result.labels = seed_labels;

  std::unordered_set<uint64_t> labelled;
  auto key = [](const std::string& x, const std::string& y) {
    return HashCombine(HashBytes(x), HashBytes(y));
  };
  for (const auto& link : seed_labels.positives()) {
    labelled.insert(key(link.id_a, link.id_b));
  }
  for (const auto& link : seed_labels.negatives()) {
    labelled.insert(key(link.id_a, link.id_b));
  }

  GenLink learner(*a_, *b_, config_.learner);

  for (size_t round = 0; round < config_.rounds; ++round) {
    // Train the committee from independent random streams.
    std::vector<LinkageRule> committee;
    double best_val = 0.0;
    LinkageRule best_rule;
    for (size_t member = 0; member < std::max<size_t>(1, config_.committee_size);
         ++member) {
      Rng member_rng = rng.Fork();
      auto learned = learner.Learn(result.labels, validation, member_rng);
      if (!learned.ok()) return learned.status();
      double val = learned->trajectory.final_val_f1;
      if (val >= best_val || best_rule.empty()) {
        best_val = val;
        best_rule = learned->best_rule.Clone();
      }
      committee.push_back(std::move(learned->best_rule));
    }

    ActiveLearningRound stats;
    stats.round = round;
    stats.num_labels = result.labels.size();
    stats.val_f1 = best_val;

    // Query the most disputed unlabelled pairs.
    for (size_t q = 0; q < config_.queries_per_round; ++q) {
      const CandidateLink* query = nullptr;
      double best_disagreement = -1.0;
      for (const auto& candidate : pool) {
        if (labelled.count(key(candidate.id_a, candidate.id_b))) continue;
        const Entity* ea = a_->FindEntity(candidate.id_a);
        const Entity* eb = b_->FindEntity(candidate.id_b);
        if (ea == nullptr || eb == nullptr) continue;
        size_t votes = 0;
        for (const auto& rule : committee) {
          if (rule.Matches(*ea, *eb, a_->schema(), b_->schema())) ++votes;
        }
        double ratio =
            static_cast<double>(votes) / static_cast<double>(committee.size());
        double disagreement = 1.0 - std::abs(2.0 * ratio - 1.0);
        if (disagreement > best_disagreement) {
          best_disagreement = disagreement;
          query = &candidate;
        }
      }
      if (query == nullptr) break;  // pool exhausted
      stats.query_disagreement = std::max(stats.query_disagreement,
                                          best_disagreement);
      labelled.insert(key(query->id_a, query->id_b));
      if (oracle(*query)) {
        result.labels.AddPositive(query->id_a, query->id_b);
      } else {
        result.labels.AddNegative(query->id_a, query->id_b);
      }
    }

    result.rounds.push_back(stats);
    result.best_rule = std::move(best_rule);
  }
  return result;
}

}  // namespace genlink
