// Island-model parallel GP search: the GenLink evolution loop
// (Algorithm 1) generalized to K independent populations.
//
// Each island is a full GenLink population with its own deterministic
// RNG stream split from the master seed. Islands breed in parallel on
// the evaluation engine's thread pool — breeding (selection, crossover,
// duplicate suppression) was the last serial stretch of a generation
// once PR 2/3 parallelized fitness — while all islands route fitness
// through ONE shared memoized engine, so the fitness memo and the
// distance-row cache are cross-island: a rule bred on island 2 that
// island 0 already evaluated is a cache hit, and a comparison subtree
// shared between islands computes its distance row once.
//
// Every `migration_interval` generations the best `migration_size`
// rules of each island replace the worst rules of its ring neighbor
// (island i sends to island i+1 mod K). Selection of emigrants and of
// the replaced individuals is tie-broken by the rules' structural hash
// (name-based, process-stable), so migration is fully reproducible.
// The run stops early as soon as ANY island reaches stop_f_measure.
//
// Determinism invariants (tests/determinism_test.cc,
// bench/scaling_islands.cc):
//   * num_islands = 1 is bit-identical to the legacy single-population
//     loop (LearnSinglePopulation below): the single island draws from
//     the master RNG in exactly the legacy order and migration is
//     skipped.
//   * Results are independent of the thread count: each island's
//     breeding task touches only that island's state and RNG stream,
//     evaluation goes through the engine's thread-invariant batch path,
//     and migration runs in the serial phase between generations.

#ifndef GENLINK_GP_ISLANDS_H_
#define GENLINK_GP_ISLANDS_H_

#include "gp/genlink.h"

namespace genlink {

/// Runs the GenLink search with `config.num_islands` populations (1 =
/// the paper's single-population algorithm). GenLink::Learn forwards
/// here; call directly when no GenLink instance is at hand.
///
/// The per-iteration `callback` receives the merged iteration stats and
/// the leading island's population.
Result<LearnResult> LearnIslands(const Dataset& a, const Dataset& b,
                                 const GenLinkConfig& config,
                                 const ReferenceLinkSet& train,
                                 const ReferenceLinkSet* validation, Rng& rng,
                                 const IterationCallback& callback = nullptr);

/// The pre-island single-population loop, kept verbatim as the
/// reference implementation for the island model's bit-identity gate:
/// LearnIslands with num_islands = 1 must reproduce this function's
/// LearnResult exactly (same seed, any thread count). Ignores the
/// num_islands / migration_* fields of `config`.
Result<LearnResult> LearnSinglePopulation(
    const Dataset& a, const Dataset& b, const GenLinkConfig& config,
    const ReferenceLinkSet& train, const ReferenceLinkSet* validation,
    Rng& rng, const IterationCallback& callback = nullptr);

}  // namespace genlink

#endif  // GENLINK_GP_ISLANDS_H_
