// The specialized crossover operators of Section 5.3 of the paper. Each
// operator learns exactly one aspect of a linkage rule:
//
//   function crossover        - distance/transformation/aggregation function
//   operators crossover       - which comparisons an aggregation combines
//   aggregation crossover     - the aggregation hierarchy (non-linearity)
//   transformation crossover  - transformation chains
//   threshold crossover       - distance thresholds
//   weight crossover          - aggregation weights
//
// Subtree crossover (the GP de-facto standard) is provided as the
// baseline for the Table 15 ablation. Mutation is implemented by the
// caller as headless-chicken crossover: crossing with a freshly
// generated random rule.

#ifndef GENLINK_GP_CROSSOVER_H_
#define GENLINK_GP_CROSSOVER_H_

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "gp/rule_generator.h"
#include "rule/linkage_rule.h"

namespace genlink {

/// A crossover operator producing a child from two parents. The child is
/// a modified clone of the first parent (the paper's operators are
/// asymmetric in this way).
class CrossoverOperator {
 public:
  virtual ~CrossoverOperator() = default;

  /// Stable name for logging and configuration.
  virtual std::string_view name() const = 0;

  /// Returns the child, or nullopt when the operator is not applicable
  /// to these parents (e.g. transformation crossover on rules without
  /// transformations). Callers should then pick a different operator.
  virtual std::optional<LinkageRule> Cross(const LinkageRule& r1,
                                           const LinkageRule& r2,
                                           Rng& rng) const = 0;
};

/// Interchanges one function (distance measure, transformation or
/// aggregation function) between the rules (Algorithm 3). When a
/// comparison's measure is swapped, its threshold is rescaled to the new
/// measure's range so that thresholds keep their relative tightness.
class FunctionCrossover : public CrossoverOperator {
 public:
  std::string_view name() const override { return "function"; }
  std::optional<LinkageRule> Cross(const LinkageRule& r1, const LinkageRule& r2,
                                   Rng& rng) const override;
};

/// Recombines the operand lists of one aggregation from each rule: the
/// union of both operand lists is taken and each element is dropped with
/// probability 50% (Algorithm 4). The child never ends up with an empty
/// aggregation: one random operand is kept as a floor.
class OperatorsCrossover : public CrossoverOperator {
 public:
  std::string_view name() const override { return "operators"; }
  std::optional<LinkageRule> Cross(const LinkageRule& r1, const LinkageRule& r2,
                                   Rng& rng) const override;
};

/// Replaces a random aggregation-or-comparison node of the first rule
/// with one from the second rule, building aggregation hierarchies
/// (Algorithm 5).
class AggregationCrossover : public CrossoverOperator {
 public:
  std::string_view name() const override { return "aggregation"; }
  std::optional<LinkageRule> Cross(const LinkageRule& r1, const LinkageRule& r2,
                                   Rng& rng) const override;
};

/// Two-point crossover on transformation chains (Algorithm 6): an
/// upper/lower transformation pair is chosen in both rules and the path
/// between them is exchanged; duplicated consecutive transformations are
/// removed afterwards.
class TransformationCrossover : public CrossoverOperator {
 public:
  std::string_view name() const override { return "transformation"; }
  std::optional<LinkageRule> Cross(const LinkageRule& r1, const LinkageRule& r2,
                                   Rng& rng) const override;
};

/// Sets a random comparison's threshold to the average of one threshold
/// from each rule (Algorithm 7), clamped to the measure's range.
class ThresholdCrossover : public CrossoverOperator {
 public:
  std::string_view name() const override { return "threshold"; }
  std::optional<LinkageRule> Cross(const LinkageRule& r1, const LinkageRule& r2,
                                   Rng& rng) const override;
};

/// Sets a random operator's weight to the average of one weight from
/// each rule (analogous to threshold crossover).
class WeightCrossover : public CrossoverOperator {
 public:
  std::string_view name() const override { return "weight"; }
  std::optional<LinkageRule> Cross(const LinkageRule& r1, const LinkageRule& r2,
                                   Rng& rng) const override;
};

/// Strongly-typed subtree crossover: replaces a random subtree of the
/// first rule with a type-compatible subtree of the second. Baseline for
/// the Table 15 comparison.
class SubtreeCrossover : public CrossoverOperator {
 public:
  std::string_view name() const override { return "subtree"; }
  std::optional<LinkageRule> Cross(const LinkageRule& r1, const LinkageRule& r2,
                                   Rng& rng) const override;
};

/// Builds the operator set for a representation mode. Flat modes
/// (boolean/linear) exclude the hierarchy-building operators; modes
/// without transformations exclude transformation crossover; boolean
/// mode excludes weight crossover (weights are fixed at 1).
/// `subtree_only` replaces the specialized set with subtree crossover.
std::vector<std::unique_ptr<CrossoverOperator>> MakeCrossoverSet(
    RepresentationMode mode, bool subtree_only = false);

/// Restores the invariant that a rule's root is an aggregation (as in
/// the Silk implementation: generated rules are aggregation-rooted, and
/// operators crossover needs an aggregation to recombine operand lists).
/// A bare-comparison root is wrapped into a single-operand aggregation
/// with function `fn`; single-operand aggregations are semantically
/// transparent for min/max/wmean.
void EnsureAggregationRoot(LinkageRule& rule, const AggregationFunction* fn);

}  // namespace genlink

#endif  // GENLINK_GP_CROSSOVER_H_
