#include "gp/selection.h"

#include <cassert>

namespace genlink {

size_t TournamentSelect(const Population& population, size_t tournament_size,
                        Rng& rng) {
  assert(!population.empty());
  if (tournament_size == 0) tournament_size = 1;
  size_t best = rng.PickIndex(population.size());
  for (size_t i = 1; i < tournament_size; ++i) {
    size_t candidate = rng.PickIndex(population.size());
    if (population[candidate].fitness.fitness > population[best].fitness.fitness) {
      best = candidate;
    }
  }
  return best;
}

}  // namespace genlink
