// Active learning of linkage rules by query-by-committee, the extension
// the paper references as [21] (Isele, Jentzsch & Bizer, "Active
// learning of expressive linkage rules for the web of data", ICWE 2012).
//
// Instead of labelling thousands of pairs up front, the learner starts
// from a handful of labels, trains a committee of rules from different
// random seeds, and asks the human (an oracle callback here) to label
// the unlabelled candidate pair on which the committee disagrees most.

#ifndef GENLINK_GP_ACTIVE_LEARNING_H_
#define GENLINK_GP_ACTIVE_LEARNING_H_

#include <functional>
#include <string>
#include <vector>

#include "gp/genlink.h"

namespace genlink {

/// An unlabelled candidate pair.
struct CandidateLink {
  std::string id_a;
  std::string id_b;
};

/// Configuration of the active learner.
struct ActiveLearningConfig {
  /// Committee members trained per round (query-by-committee).
  size_t committee_size = 3;
  /// Labelling rounds to run.
  size_t rounds = 10;
  /// Pairs queried from the oracle per round.
  size_t queries_per_round = 1;
  /// Configuration of each committee member's GenLink run.
  GenLinkConfig learner;
};

/// Statistics of one active-learning round.
struct ActiveLearningRound {
  size_t round = 0;
  size_t num_labels = 0;
  /// Best committee member's validation F1 (0 when no validation set).
  double val_f1 = 0.0;
  /// Committee disagreement of the selected query in [0,1].
  double query_disagreement = 0.0;
};

/// Result of an active-learning session.
struct ActiveLearningResult {
  std::vector<ActiveLearningRound> rounds;
  /// The best rule of the final committee.
  LinkageRule best_rule;
  /// All labels accumulated (seed labels + oracle answers).
  ReferenceLinkSet labels;
};

/// Answers whether a candidate pair is a true match (the human expert).
using Oracle = std::function<bool(const CandidateLink&)>;

/// Query-by-committee active learner.
class ActiveLearner {
 public:
  ActiveLearner(const Dataset& a, const Dataset& b,
                ActiveLearningConfig config = {});

  /// Builds an unlabelled candidate pool with token blocking (pairs
  /// sharing at least one token), capped at `max_pairs` (0 = no cap).
  std::vector<CandidateLink> BuildPool(size_t max_pairs = 0) const;

  /// Runs the loop: train committee -> query most-disputed pool pair ->
  /// oracle labels it -> repeat. `seed_labels` must contain at least one
  /// positive and one negative link. `validation` may be null.
  Result<ActiveLearningResult> Run(const ReferenceLinkSet& seed_labels,
                                   const std::vector<CandidateLink>& pool,
                                   const Oracle& oracle,
                                   const ReferenceLinkSet* validation,
                                   Rng& rng) const;

 private:
  const Dataset* a_;
  const Dataset* b_;
  ActiveLearningConfig config_;
};

}  // namespace genlink

#endif  // GENLINK_GP_ACTIVE_LEARNING_H_
