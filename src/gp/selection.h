// Tournament selection (Section 5.2 of the paper): draw `tournament_size`
// individuals uniformly and return the fittest. Chosen by the paper for
// its strong results across GP systems and easy parallelization.

#ifndef GENLINK_GP_SELECTION_H_
#define GENLINK_GP_SELECTION_H_

#include "common/random.h"
#include "gp/population.h"

namespace genlink {

/// Returns the index of the tournament winner. The population must be
/// non-empty and evaluated.
size_t TournamentSelect(const Population& population, size_t tournament_size,
                        Rng& rng);

}  // namespace genlink

#endif  // GENLINK_GP_SELECTION_H_
