#include "gp/rule_generator.h"

#include <cassert>

namespace genlink {

std::string_view RepresentationModeName(RepresentationMode mode) {
  switch (mode) {
    case RepresentationMode::kBoolean:
      return "boolean";
    case RepresentationMode::kLinear:
      return "linear";
    case RepresentationMode::kNonlinear:
      return "nonlinear";
    case RepresentationMode::kFull:
      return "full";
  }
  return "unknown";
}

RuleGenerator::RuleGenerator(std::vector<CompatiblePair> compatible_pairs,
                             std::vector<std::string> properties_a,
                             std::vector<std::string> properties_b,
                             RuleGeneratorConfig config,
                             const DistanceRegistry& distances,
                             const TransformRegistry& transforms,
                             const AggregationRegistry& aggregations)
    : compatible_pairs_(std::move(compatible_pairs)),
      properties_a_(std::move(properties_a)),
      properties_b_(std::move(properties_b)),
      config_(config),
      distances_(distances),
      transforms_(transforms),
      aggregations_(aggregations) {
  unary_transforms_ = transforms_.UnaryTransformations();
  switch (config_.mode) {
    case RepresentationMode::kBoolean:
      allowed_aggregations_ = {aggregations_.Find("min"), aggregations_.Find("max")};
      break;
    case RepresentationMode::kLinear:
      allowed_aggregations_ = {aggregations_.Find("wmean")};
      break;
    case RepresentationMode::kNonlinear:
    case RepresentationMode::kFull:
      allowed_aggregations_ = aggregations_.functions();
      break;
  }
}

const AggregationFunction* RuleGenerator::RandomAggregationFunction(Rng& rng) const {
  return allowed_aggregations_[rng.PickIndex(allowed_aggregations_.size())];
}

const DistanceMeasure* RuleGenerator::RandomMeasure(Rng& rng) const {
  const auto& measures = distances_.measures();
  return measures[rng.PickIndex(measures.size())];
}

const Transformation* RuleGenerator::RandomUnaryTransformation(Rng& rng) const {
  return unary_transforms_[rng.PickIndex(unary_transforms_.size())];
}

double RuleGenerator::RandomThreshold(const DistanceMeasure& measure,
                                      Rng& rng) const {
  double max = measure.MaxThreshold();
  double t = rng.Uniform(0.0, max);
  // Avoid degenerate zero thresholds: keep at least 2% of the range.
  return std::max(t, 0.02 * max);
}

double RuleGenerator::RandomWeight(Rng& rng) const {
  if (config_.mode == RepresentationMode::kBoolean) return 1.0;
  return static_cast<double>(rng.UniformInt(1, config_.max_weight));
}

std::unique_ptr<SimilarityOperator> RuleGenerator::RandomComparison(Rng& rng) const {
  std::string prop_a, prop_b;
  const DistanceMeasure* measure = nullptr;

  if (config_.seeded && !compatible_pairs_.empty()) {
    const CompatiblePair& pair =
        compatible_pairs_[rng.PickIndex(compatible_pairs_.size())];
    prop_a = pair.property_a;
    prop_b = pair.property_b;
    measure = rng.Bernoulli(config_.keep_detected_measure_probability)
                  ? pair.measure
                  : RandomMeasure(rng);
  } else {
    // Fully random fallback (Table 14's "Random" configuration, and the
    // escape hatch when no compatible pair was found).
    assert(!properties_a_.empty() && !properties_b_.empty());
    prop_a = properties_a_[rng.PickIndex(properties_a_.size())];
    prop_b = properties_b_[rng.PickIndex(properties_b_.size())];
    measure = RandomMeasure(rng);
  }

  std::unique_ptr<ValueOperator> source =
      std::make_unique<PropertyOperator>(prop_a);
  std::unique_ptr<ValueOperator> target =
      std::make_unique<PropertyOperator>(prop_b);

  if (config_.mode == RepresentationMode::kFull) {
    // With probability 50%, append a random transformation to each
    // property (Section 5.1).
    if (rng.Bernoulli(config_.transformation_probability)) {
      std::vector<std::unique_ptr<ValueOperator>> inputs;
      inputs.push_back(std::move(source));
      source = std::make_unique<TransformOperator>(RandomUnaryTransformation(rng),
                                                   std::move(inputs));
    }
    if (rng.Bernoulli(config_.transformation_probability)) {
      std::vector<std::unique_ptr<ValueOperator>> inputs;
      inputs.push_back(std::move(target));
      target = std::make_unique<TransformOperator>(RandomUnaryTransformation(rng),
                                                   std::move(inputs));
    }
  }

  auto cmp = std::make_unique<ComparisonOperator>(
      std::move(source), std::move(target), measure,
      RandomThreshold(*measure, rng));
  cmp->set_weight(RandomWeight(rng));
  return cmp;
}

LinkageRule RuleGenerator::RandomRule(Rng& rng) const {
  // A random aggregation with up to two comparisons (Section 5.1). The
  // initial trees are intentionally small; the genetic operators grow
  // them as needed.
  size_t num_comparisons =
      static_cast<size_t>(rng.UniformInt(1, std::max<int64_t>(
          1, static_cast<int64_t>(config_.max_initial_comparisons))));
  std::vector<std::unique_ptr<SimilarityOperator>> operands;
  operands.reserve(num_comparisons);
  for (size_t i = 0; i < num_comparisons; ++i) {
    operands.push_back(RandomComparison(rng));
  }
  auto agg = std::make_unique<AggregationOperator>(RandomAggregationFunction(rng),
                                                   std::move(operands));
  agg->set_weight(RandomWeight(rng));
  return LinkageRule(std::move(agg));
}

}  // namespace genlink
