#include "eval/link_metrics.h"

#include <unordered_set>

#include "common/hash.h"

namespace genlink {
namespace {

uint64_t PairKey(const std::string& a, const std::string& b) {
  return HashCombine(HashBytes(a), HashBytes(b));
}

LinkSetMetrics Score(size_t generated, size_t correct, size_t reference) {
  LinkSetMetrics m;
  m.generated = generated;
  m.correct = correct;
  m.reference = reference;
  m.precision = generated == 0 ? 0.0 : static_cast<double>(correct) / generated;
  m.recall = reference == 0 ? 0.0 : static_cast<double>(correct) / reference;
  m.f_measure = (m.precision + m.recall) == 0.0
                    ? 0.0
                    : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

}  // namespace

LinkSetMetrics EvaluateLinkSet(const std::vector<GeneratedLink>& links,
                               const ReferenceLinkSet& reference) {
  std::unordered_set<uint64_t> truth;
  truth.reserve(reference.positives().size());
  for (const auto& link : reference.positives()) {
    truth.insert(PairKey(link.id_a, link.id_b));
  }
  size_t correct = 0;
  for (const auto& link : links) {
    if (truth.count(PairKey(link.id_a, link.id_b))) ++correct;
  }
  return Score(links.size(), correct, reference.positives().size());
}

std::vector<PrPoint> PrecisionRecallSweep(const std::vector<GeneratedLink>& links,
                                          const ReferenceLinkSet& reference,
                                          size_t num_points,
                                          double min_threshold) {
  std::unordered_set<uint64_t> truth;
  truth.reserve(reference.positives().size());
  for (const auto& link : reference.positives()) {
    truth.insert(PairKey(link.id_a, link.id_b));
  }

  std::vector<PrPoint> sweep;
  if (num_points < 2) num_points = 2;
  for (size_t i = 0; i < num_points; ++i) {
    double threshold = min_threshold + (1.0 - min_threshold) *
                                           static_cast<double>(i) /
                                           static_cast<double>(num_points - 1);
    size_t generated = 0, correct = 0;
    for (const auto& link : links) {
      if (link.score < threshold) continue;
      ++generated;
      if (truth.count(PairKey(link.id_a, link.id_b))) ++correct;
    }
    sweep.push_back({threshold, Score(generated, correct,
                                      reference.positives().size())});
  }
  return sweep;
}

double BestThreshold(const std::vector<PrPoint>& sweep) {
  double best_threshold = 0.5;
  double best_f = -1.0;
  for (const auto& point : sweep) {
    if (point.metrics.f_measure > best_f) {
      best_f = point.metrics.f_measure;
      best_threshold = point.threshold;
    }
  }
  return best_threshold;
}

}  // namespace genlink
