// The experimental protocol of Section 6.1 of the paper: N independent
// runs; for each run the reference links are randomly split into 2 folds,
// the learner trains on one fold and is validated against the other; all
// per-iteration statistics are averaged over the runs and the standard
// deviation is reported.
//
// The harness is learner-agnostic: it invokes a callback per run so the
// same code drives GenLink, its ablated variants, and the Carvalho
// baseline.

#ifndef GENLINK_EVAL_CROSS_VALIDATION_H_
#define GENLINK_EVAL_CROSS_VALIDATION_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "model/reference_links.h"

namespace genlink {

/// Statistics of one learner iteration on one run.
struct IterationStats {
  size_t iteration = 0;
  /// Cumulative wall-clock seconds since the start of the run.
  double seconds = 0.0;
  double train_f1 = 0.0;
  double val_f1 = 0.0;
  double train_mcc = 0.0;
  double val_mcc = 0.0;
  /// Mean operator count over the population (bloat tracking).
  double mean_operators = 0.0;
  /// Operator count of the best rule.
  double best_operators = 0.0;
};

/// One run's full learning trajectory plus the final model (serialized).
struct RunTrajectory {
  std::vector<IterationStats> iterations;
  std::string best_rule_sexpr;
  double final_val_f1 = 0.0;
};

/// The learner callback: trains on `train`, may use `val` only for
/// reporting per-iteration validation scores.
using LearnerFn = std::function<RunTrajectory(
    const ReferenceLinkSet& train, const ReferenceLinkSet& val, Rng& rng)>;

/// mean/stddev pair.
struct Moments {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Per-iteration statistics aggregated over all runs.
struct AggregatedIteration {
  size_t iteration = 0;
  Moments seconds;
  Moments train_f1;
  Moments val_f1;
  Moments mean_operators;
  Moments best_operators;
};

/// Result of a full cross-validation experiment.
struct CrossValidationResult {
  std::vector<AggregatedIteration> iterations;
  /// Trajectories of every run (runs-major), for detailed inspection.
  std::vector<RunTrajectory> runs;
  /// Serialized best rule of the last run (for Figure 7/8-style output).
  std::string example_rule_sexpr;

  /// Returns the aggregated row closest to `iteration` (trajectories are
  /// extended so every iteration up to the maximum exists).
  const AggregatedIteration* FindIteration(size_t iteration) const;
};

/// Configuration of the experimental protocol.
struct CrossValidationConfig {
  size_t num_runs = 10;
  size_t num_folds = 2;
  uint64_t seed = 42;
};

/// Computes mean and (population) standard deviation of `values`.
Moments ComputeMoments(const std::vector<double>& values);

/// Runs the protocol: for each run, splits `links` into folds, trains on
/// fold 0 and validates on the union of the remaining folds.
CrossValidationResult RunCrossValidation(const ReferenceLinkSet& links,
                                         const CrossValidationConfig& config,
                                         const LearnerFn& learner);

}  // namespace genlink

#endif  // GENLINK_EVAL_CROSS_VALIDATION_H_
