// Blocking quality measurement: how many candidate pairs an index
// produces and how many true matches survive it. The two numbers pull
// against each other — weighted key selection shrinks candidate sets
// but risks dropping a true match's last shared token — so every
// blocking change is judged by this pair (tests/blocking_scale_test.cc
// gates recall floors, bench/blocking_scale.cc plots the trade-off per
// corpus scale).

#ifndef GENLINK_EVAL_BLOCKING_STATS_H_
#define GENLINK_EVAL_BLOCKING_STATS_H_

#include "matcher/blocking.h"
#include "model/dataset.h"
#include "model/reference_links.h"

namespace genlink {

class ThreadPool;

/// Candidate volume and recall of one blocking index against one
/// source dataset and its ground truth.
struct BlockingQuality {
  /// Source entities probed (after sampling).
  size_t queries_probed = 0;
  /// Candidate pairs over the probed queries.
  size_t candidate_pairs = 0;
  /// candidate_pairs / queries_probed: the per-query cost the matcher
  /// actually pays, comparable across sample rates.
  double candidates_per_query = 0.0;
  /// 1 - candidates_per_query / |target|: the fraction of the cross
  /// product the index discards (the blocking literature's reduction
  /// ratio, estimated from the probed sample).
  double reduction_ratio = 0.0;
  /// Positive reference links checked / found among the candidates.
  /// found/total is pairs completeness — blocking recall; every
  /// positive link is checked regardless of sampling.
  size_t positives_total = 0;
  size_t positives_found = 0;
  /// positives_found / positives_total (1.0 when there are none).
  double pairs_completeness = 1.0;
};

/// Measures `index` (built over `target`) with the entities of `source`
/// and the positive links of `links`. `sample_every` probes only every
/// k-th source entity for the candidate-volume side (pairs completeness
/// always checks every positive link) — the way the 1M bench keeps
/// measurement time bounded. When `pool` is non-null the probing
/// parallelizes; results are identical for any thread count.
BlockingQuality MeasureBlockingQuality(const BlockingIndex& index,
                                       const Dataset& source,
                                       const Dataset& target,
                                       const ReferenceLinkSet& links,
                                       size_t sample_every = 1,
                                       ThreadPool* pool = nullptr);

}  // namespace genlink

#endif  // GENLINK_EVAL_BLOCKING_STATS_H_
