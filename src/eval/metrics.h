// Classification metrics: precision, recall, F-measure, accuracy and
// Matthews correlation coefficient (the paper's fitness core, Section 5.2).

#ifndef GENLINK_EVAL_METRICS_H_
#define GENLINK_EVAL_METRICS_H_

#include "eval/confusion_matrix.h"

namespace genlink {

/// tp / (tp + fp); 0 when no positives were predicted.
double Precision(const ConfusionMatrix& cm);

/// tp / (tp + fn); 0 when there are no actual positives.
double Recall(const ConfusionMatrix& cm);

/// Harmonic mean of precision and recall.
double FMeasure(const ConfusionMatrix& cm);

/// (tp + tn) / total.
double Accuracy(const ConfusionMatrix& cm);

/// Matthews correlation coefficient in [-1, 1]. Returns 0 when any
/// marginal is zero (the standard convention for the undefined case).
double MatthewsCorrelation(const ConfusionMatrix& cm);

}  // namespace genlink

#endif  // GENLINK_EVAL_METRICS_H_
