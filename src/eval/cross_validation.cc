#include "eval/cross_validation.h"

#include <algorithm>
#include <cmath>

namespace genlink {

Moments ComputeMoments(const std::vector<double>& values) {
  Moments m;
  if (values.empty()) return m;
  double sum = 0.0;
  for (double v : values) sum += v;
  m.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - m.mean) * (v - m.mean);
  m.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return m;
}

const AggregatedIteration* CrossValidationResult::FindIteration(
    size_t iteration) const {
  const AggregatedIteration* best = nullptr;
  for (const auto& row : iterations) {
    if (row.iteration <= iteration) best = &row;
  }
  return best;
}

CrossValidationResult RunCrossValidation(const ReferenceLinkSet& links,
                                         const CrossValidationConfig& config,
                                         const LearnerFn& learner) {
  CrossValidationResult result;
  Rng master(config.seed);

  for (size_t run = 0; run < config.num_runs; ++run) {
    Rng run_rng = master.Fork();
    auto folds = links.SplitFolds(std::max<size_t>(2, config.num_folds), run_rng);
    ReferenceLinkSet train = folds[0];
    ReferenceLinkSet val;
    for (size_t f = 1; f < folds.size(); ++f) val.Merge(folds[f]);

    RunTrajectory trajectory = learner(train, val, run_rng);
    result.runs.push_back(std::move(trajectory));
  }

  // Align trajectories: extend shorter runs (early stop at full
  // F-measure) by repeating their final entry, as the paper's tables
  // report the converged values at later iterations.
  size_t max_len = 0;
  for (const auto& run : result.runs) {
    max_len = std::max(max_len, run.iterations.size());
  }
  for (size_t i = 0; i < max_len; ++i) {
    AggregatedIteration row;
    std::vector<double> seconds, train_f1, val_f1, mean_ops, best_ops;
    for (const auto& run : result.runs) {
      if (run.iterations.empty()) continue;
      const IterationStats& stats =
          i < run.iterations.size() ? run.iterations[i] : run.iterations.back();
      row.iteration = std::max(row.iteration, stats.iteration);
      seconds.push_back(stats.seconds);
      train_f1.push_back(stats.train_f1);
      val_f1.push_back(stats.val_f1);
      mean_ops.push_back(stats.mean_operators);
      best_ops.push_back(stats.best_operators);
    }
    row.iteration = i;  // iterations are recorded densely from 0
    row.seconds = ComputeMoments(seconds);
    row.train_f1 = ComputeMoments(train_f1);
    row.val_f1 = ComputeMoments(val_f1);
    row.mean_operators = ComputeMoments(mean_ops);
    row.best_operators = ComputeMoments(best_ops);
    result.iterations.push_back(row);
  }

  if (!result.runs.empty()) {
    result.example_rule_sexpr = result.runs.back().best_rule_sexpr;
  }
  return result;
}

}  // namespace genlink
