#include "eval/confusion_matrix.h"

namespace genlink {

ConfusionMatrix EvaluateRuleOnPairs(const LinkageRule& rule,
                                    std::span<const LabeledPair> pairs,
                                    const Schema& schema_a,
                                    const Schema& schema_b) {
  ConfusionMatrix cm;
  for (const LabeledPair& pair : pairs) {
    bool predicted = rule.Matches(*pair.a, *pair.b, schema_a, schema_b);
    if (pair.is_match) {
      predicted ? ++cm.tp : ++cm.fn;
    } else {
      predicted ? ++cm.fp : ++cm.tn;
    }
  }
  return cm;
}

}  // namespace genlink
