// The value store: compiled per-entity transform plans behind the
// evaluation engine's distance rows and the full-dataset matcher.
//
// A *transform plan* is one value subtree of a linkage rule (a chain of
// transformations over property operators), canonicalized by its
// structural hash (rule/rule_hash.h, ValueOperatorHash) and evaluated
// ONCE per entity of its side instead of once per entity *pair*:
// O(|A| + |B|) transform work where the operator-tree path pays
// O(|A| x |B|). The resulting value sets are interned into a shared
// string pool, so the distance phase reads
//
//   * spans of pooled string_views (per-value measures: Levenshtein,
//     Jaro, numeric, ...), and
//   * sorted-unique token-id spans with multiplicities (set measures:
//     Jaccard, Dice, Cosine — id equality is string equality because
//     both sides intern into the same pool),
//
// with no transformation, tokenization, string allocation or string
// hashing per pair.
//
// Determinism: plans are registered and interned in the serial phases
// of the callers (plan registration order x entity order fixes every
// id), raw transform evaluation may run on a thread pool but each plan
// is produced by exactly one task, and every distance computed from the
// store is bit-identical to the ValueSet path (asserted by
// tests/engine_test.cc and tests/matcher_test.cc; see
// distance/distance_measure.h for the per-measure contract).

#ifndef GENLINK_EVAL_VALUE_STORE_H_
#define GENLINK_EVAL_VALUE_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "model/dataset.h"
#include "rule/linkage_rule.h"

namespace genlink {

/// Dense id of one interned string in the pool.
using ValueId = uint32_t;
/// Dense id of one compiled transform plan (scoped to a store side).
using PlanId = uint32_t;

/// Cumulative counters (survive Clear()).
struct ValueStoreStats {
  /// Distinct plans materialized (per side, summed).
  uint64_t plans_compiled = 0;
  /// Compile requests served by an already-materialized plan.
  uint64_t plan_hits = 0;
  /// Total value slots stored across all plans.
  uint64_t values_stored = 0;
};

/// Append-only string interner over chunked storage: views stay valid
/// until Clear(). Not thread-safe; callers intern in serial phases.
class StringPool {
 public:
  /// Returns the id of `value`, interning a copy on first sight.
  ValueId Intern(std::string_view value);

  std::string_view View(ValueId id) const { return views_[id]; }
  size_t size() const { return views_.size(); }
  size_t ApproxBytes() const { return bytes_; }

  void Clear();

 private:
  static constexpr size_t kBlockSize = 64 * 1024;

  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t block_used_ = 0;
  size_t block_capacity_ = 0;
  size_t bytes_ = 0;
  std::vector<std::string_view> views_;               // id -> pooled view
  std::unordered_map<std::string_view, ValueId> ids_; // keys view into blocks_
};

/// The read half of the value store: per-entity value spans, sorted
/// token-id spans and pooled string views under compiled plans, with
/// plan lookup by structural hash. This is the surface the query
/// scorer (api/matcher_index.cc) consumes, abstracted so it can be
/// served either by the in-memory ValueStore or by a zero-copy
/// MappedCorpus over a v2 corpus artifact (io/corpus_artifact.h) —
/// both sides of that split return bit-identical spans for the same
/// logical corpus. Implementations are safe for concurrent reads.
class ValueReader {
 public:
  enum class Side { kSource, kTarget };

  virtual ~ValueReader() = default;

  /// Interned values of one entity under a plan, in evaluation order.
  virtual std::span<const ValueId> Values(Side side, PlanId plan,
                                          size_t entity_index) const = 0;
  /// Strictly increasing distinct ids of the same values, with
  /// multiplicities (the token-set representation).
  virtual std::span<const ValueId> SortedIds(Side side, PlanId plan,
                                             size_t entity_index) const = 0;
  virtual std::span<const uint32_t> SortedCounts(Side side, PlanId plan,
                                                 size_t entity_index) const = 0;

  /// The pooled bytes of an interned value id.
  virtual std::string_view View(ValueId id) const = 0;

  virtual size_t num_entities(Side side) const = 0;

  /// The plan compiled for a value subtree with the given structural
  /// hash (rule/rule_hash.h ValueOperatorHash), or nullopt when no such
  /// subtree was compiled — for a mapped corpus: was not precomputed
  /// into the artifact.
  virtual std::optional<PlanId> FindPlan(Side side, uint64_t hash) const = 0;
};

/// Interned per-entity values of two entity sides (the paper's A and B)
/// under compiled transform plans, sharing one string pool. `final`:
/// the engine's hot paths call the span accessors through concrete
/// references, which keeps them devirtualizable.
class ValueStore final : public ValueReader {
 public:
  /// The entity pointers are copied; the entities and schemas must
  /// outlive the store.
  ValueStore(std::span<const Entity* const> source_entities,
             const Schema& source_schema,
             std::span<const Entity* const> target_entities,
             const Schema& target_schema);

  /// Binds the sides to whole datasets: store entity index == dataset
  /// entity index. When `source` and `target` are the same dataset
  /// (deduplication), both sides share one plan store, so each value
  /// subtree is evaluated and interned once, not once per side.
  ValueStore(const Dataset& source, const Dataset& target);

  /// Compiles `op` on `side`: returns the existing plan when an
  /// equal-hash subtree was compiled before, otherwise evaluates the
  /// subtree for every entity of the side and interns the results.
  /// Serial.
  PlanId Compile(Side side, const ValueOperator& op);

  /// Batch Compile: registers all ops (deduplicating within the batch
  /// and against existing plans), evaluates the raw value sets of the
  /// missing plans — in parallel over plans when `pool` is non-null —
  /// then interns serially in registration order, so ids are
  /// independent of the thread count. `plans` must have ops.size()
  /// entries.
  void CompileBatch(Side side, std::span<const ValueOperator* const> ops,
                    std::span<PlanId> plans, ThreadPool* pool = nullptr);

  std::span<const ValueId> Values(Side side, PlanId plan,
                                  size_t entity_index) const override;
  std::span<const ValueId> SortedIds(Side side, PlanId plan,
                                     size_t entity_index) const override;
  std::span<const uint32_t> SortedCounts(Side side, PlanId plan,
                                         size_t entity_index) const override;

  std::string_view View(ValueId id) const override { return pool_.View(id); }

  std::optional<PlanId> FindPlan(Side side, uint64_t hash) const override {
    const auto& by_hash = side_of(side).plan_by_hash;
    const auto it = by_hash.find(hash);
    if (it == by_hash.end()) return std::nullopt;
    return it->second;
  }

  /// Raw distance of one entity pair under a compiled comparison —
  /// exactly what DistanceMeasure::Distance returns on the entities'
  /// evaluated ValueSets, or kInfiniteDistance when either side is
  /// empty. `bound` as in DistanceMeasure::DistanceViews: pass a
  /// threshold when only the thresholded score is needed.
  double PairDistance(const DistanceMeasure& measure, PlanId source_plan,
                      size_t source_entity, PlanId target_plan,
                      size_t target_entity,
                      double bound = kInfiniteDistance) const;

  size_t num_entities(Side side) const override {
    return side_of(side).entities.size();
  }
  /// Distinct interned strings (ids are [0, NumStrings()); the corpus
  /// artifact writer serializes the pool by id).
  size_t NumStrings() const { return pool_.size(); }
  /// Plans materialized on `side` so far.
  size_t NumPlans(Side side) const { return side_of(side).plans.size(); }
  const ValueStoreStats& stats() const { return stats_; }

  /// Pool bytes + plan array bytes (the eviction trigger of the
  /// engine's store budget).
  size_t ApproxBytes() const;

  /// Drops all plans and the pool. Previously returned PlanIds and
  /// views are invalidated; stats keep accumulating.
  void Clear();

 private:
  /// One compiled plan: flat per-entity slices (offsets have
  /// entities+1 entries).
  struct Plan {
    std::vector<uint32_t> offsets;
    std::vector<ValueId> values;
    std::vector<uint32_t> sorted_offsets;
    std::vector<ValueId> sorted_ids;
    std::vector<uint32_t> sorted_counts;
  };

  struct SideStore {
    std::vector<const Entity*> entities;
    const Schema* schema = nullptr;
    std::vector<Plan> plans;
    std::unordered_map<uint64_t, PlanId> plan_by_hash;
  };

  SideStore& side_of(Side side) {
    return (side == Side::kSource || shared_sides_) ? source_ : target_;
  }
  const SideStore& side_of(Side side) const {
    return (side == Side::kSource || shared_sides_) ? source_ : target_;
  }

  /// Interns one plan's raw per-entity value sets into flat storage.
  void InternPlan(Plan& plan, std::span<const ValueSet> raw_values);

  StringPool pool_;
  SideStore source_;
  SideStore target_;
  /// Both sides resolve to source_ (same-dataset deduplication).
  bool shared_sides_ = false;
  ValueStoreStats stats_;
};

/// A linkage rule bound to a value store: every comparison's value
/// subtrees compiled to plans, scoring a pair of store entity indexes
/// without evaluating a single value operator. Scores are bit-identical
/// to LinkageRule::Evaluate on the same entities (comparisons run with
/// their threshold as the distance bound, which cannot change any
/// ThresholdedScore). Used by the matcher's full-dataset path.
class CompiledRule {
 public:
  /// Compiles `rule`'s value subtrees into `store` (serial; `pool`
  /// parallelizes raw plan evaluation). Both must outlive this object.
  CompiledRule(const LinkageRule& rule, ValueStore& store,
               ThreadPool* pool = nullptr);

  bool empty() const { return root_ == nullptr; }

  /// Similarity in [0,1] of (source_entity, target_entity); 0 for the
  /// empty rule. Thread-safe (read-only over the store).
  double Score(size_t source_entity, size_t target_entity) const;

 private:
  struct Site {
    const ComparisonOperator* op = nullptr;
    PlanId source_plan = 0;
    PlanId target_plan = 0;
  };

  double EvalNode(const SimilarityOperator& node, size_t source_entity,
                  size_t target_entity, size_t& next_site) const;

  const SimilarityOperator* root_ = nullptr;
  const ValueStore* store_ = nullptr;
  std::vector<Site> sites_;  // pre-order of the rule's comparisons
};

}  // namespace genlink

#endif  // GENLINK_EVAL_VALUE_STORE_H_
