// Confusion matrix over labelled reference-link pairs. Per the paper
// (Section 5.2), counts are computed on the provided reference links
// only, ignoring the remaining part of the data set.

#ifndef GENLINK_EVAL_CONFUSION_MATRIX_H_
#define GENLINK_EVAL_CONFUSION_MATRIX_H_

#include <cstddef>
#include <span>

#include "model/reference_links.h"
#include "rule/linkage_rule.h"

namespace genlink {

/// Counts of true/false positives/negatives.
struct ConfusionMatrix {
  size_t tp = 0;
  size_t tn = 0;
  size_t fp = 0;
  size_t fn = 0;

  size_t total() const { return tp + tn + fp + fn; }

  ConfusionMatrix& operator+=(const ConfusionMatrix& other) {
    tp += other.tp;
    tn += other.tn;
    fp += other.fp;
    fn += other.fn;
    return *this;
  }
};

/// Classifies every labelled pair with `rule` (match iff similarity >=
/// 0.5) and tallies the outcomes.
ConfusionMatrix EvaluateRuleOnPairs(const LinkageRule& rule,
                                    std::span<const LabeledPair> pairs,
                                    const Schema& schema_a,
                                    const Schema& schema_b);

}  // namespace genlink

#endif  // GENLINK_EVAL_CONFUSION_MATRIX_H_
