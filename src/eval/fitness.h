// The GenLink fitness function (Section 5.2):
//
//   fitness = MCC - parsimony_weight * operator_count
//
// MCC is used instead of the F-measure because it also accounts for the
// true-negative rate; the size penalty is the parsimony pressure that
// prevents bloat.
//
// NOTE on the constant: the paper prints "mcc - 0.05 * operatorcount".
// Taken literally, 0.05 per operator makes every rule beyond ~4
// operators unviable (the paper's own learned rules, e.g. Figure 7 with
// >10 operators, would score below a single comparison), and in our
// reproduction the population collapses to single-comparison rules and
// stagnates. We therefore default to 0.005 per operator, which
// reproduces the reported behaviour: rules grow to the reported sizes
// (5-10 operators) while bloat is still suppressed (Section 6.2's
// DBpediaDrugBank discussion). The paper's literal constant remains
// available via `parsimony_weight`.

#ifndef GENLINK_EVAL_FITNESS_H_
#define GENLINK_EVAL_FITNESS_H_

#include <span>

#include "eval/confusion_matrix.h"
#include "eval/metrics.h"

namespace genlink {

/// Parameters of the fitness computation.
struct FitnessConfig {
  /// Penalty per operator in the rule tree (see the note above; the
  /// paper prints 0.05 but 0.005 reproduces its reported behaviour).
  double parsimony_weight = 0.005;
};

/// Fitness of one rule on one set of labelled pairs.
struct FitnessResult {
  double fitness = -1.0;
  double mcc = 0.0;
  double f_measure = 0.0;
  ConfusionMatrix confusion;
};

/// Derives the full FitnessResult from a confusion matrix and the rule's
/// operator count. The single implementation of the fitness formula —
/// shared by FitnessEvaluator and the evaluation engine (eval/engine.h)
/// so the two paths cannot drift.
FitnessResult ScoreConfusion(const ConfusionMatrix& cm, size_t operator_count,
                             const FitnessConfig& config);

/// Evaluates rules against a fixed set of labelled training pairs, one
/// rule at a time with no caching or parallelism. This is the *reference
/// path*: eval/engine.h routes population evaluation through its caches
/// and thread pool but must stay bit-identical to this evaluator
/// (asserted by tests/engine_test.cc).
class FitnessEvaluator {
 public:
  /// `pairs` must outlive the evaluator.
  FitnessEvaluator(std::span<const LabeledPair> pairs, const Schema& schema_a,
                   const Schema& schema_b, FitnessConfig config = {})
      : pairs_(pairs),
        schema_a_(&schema_a),
        schema_b_(&schema_b),
        config_(config) {}

  /// Computes confusion counts, MCC, F-measure and the penalized fitness.
  FitnessResult Evaluate(const LinkageRule& rule) const;

  std::span<const LabeledPair> pairs() const { return pairs_; }
  const Schema& schema_a() const { return *schema_a_; }
  const Schema& schema_b() const { return *schema_b_; }

 private:
  std::span<const LabeledPair> pairs_;
  const Schema* schema_a_;
  const Schema* schema_b_;
  FitnessConfig config_;
};

}  // namespace genlink

#endif  // GENLINK_EVAL_FITNESS_H_
