#include "eval/value_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "distance/distance_measure.h"
#include "rule/rule_hash.h"

namespace genlink {

// ------------------------------------------------------------ StringPool

ValueId StringPool::Intern(std::string_view value) {
  auto it = ids_.find(value);
  if (it != ids_.end()) return it->second;

  std::string_view stored;
  if (!value.empty()) {
    if (block_used_ + value.size() > block_capacity_ || blocks_.empty()) {
      const size_t capacity = std::max(kBlockSize, value.size());
      blocks_.push_back(std::make_unique<char[]>(capacity));
      block_capacity_ = capacity;
      block_used_ = 0;
      bytes_ += capacity;
    }
    char* dst = blocks_.back().get() + block_used_;
    std::memcpy(dst, value.data(), value.size());
    block_used_ += value.size();
    stored = std::string_view(dst, value.size());
  }

  const ValueId id = static_cast<ValueId>(views_.size());
  views_.push_back(stored);
  ids_.emplace(stored, id);
  return id;
}

void StringPool::Clear() {
  blocks_.clear();
  block_used_ = 0;
  block_capacity_ = 0;
  bytes_ = 0;
  views_.clear();
  ids_.clear();
}

// ------------------------------------------------------------ ValueStore

ValueStore::ValueStore(std::span<const Entity* const> source_entities,
                       const Schema& source_schema,
                       std::span<const Entity* const> target_entities,
                       const Schema& target_schema) {
  source_.entities.assign(source_entities.begin(), source_entities.end());
  source_.schema = &source_schema;
  target_.entities.assign(target_entities.begin(), target_entities.end());
  target_.schema = &target_schema;
}

namespace {
std::vector<const Entity*> DatasetPointers(const Dataset& dataset) {
  std::vector<const Entity*> pointers;
  pointers.reserve(dataset.size());
  for (const Entity& entity : dataset.entities()) pointers.push_back(&entity);
  return pointers;
}
}  // namespace

ValueStore::ValueStore(const Dataset& source, const Dataset& target) {
  source_.entities = DatasetPointers(source);
  source_.schema = &source.schema();
  if (&source == &target) {
    shared_sides_ = true;
    return;
  }
  target_.entities = DatasetPointers(target);
  target_.schema = &target.schema();
}

PlanId ValueStore::Compile(Side side, const ValueOperator& op) {
  const ValueOperator* ops[] = {&op};
  PlanId plan = 0;
  CompileBatch(side, ops, {&plan, 1}, nullptr);
  return plan;
}

void ValueStore::CompileBatch(Side s,
                              std::span<const ValueOperator* const> ops,
                              std::span<PlanId> plans, ThreadPool* pool) {
  assert(ops.size() == plans.size());
  SideStore& side = side_of(s);

  // Register: dedup against existing plans and within the batch. New
  // plans get their slot (and id) now so materialization order cannot
  // affect ids.
  struct FreshPlan {
    PlanId id = 0;
    const ValueOperator* op = nullptr;
  };
  std::vector<FreshPlan> fresh;
  for (size_t k = 0; k < ops.size(); ++k) {
    const uint64_t hash = ValueOperatorHash(*ops[k]);
    auto [it, inserted] =
        side.plan_by_hash.try_emplace(hash, static_cast<PlanId>(side.plans.size()));
    if (inserted) {
      side.plans.emplace_back();
      fresh.push_back({it->second, ops[k]});
    } else {
      ++stats_.plan_hits;
    }
    plans[k] = it->second;
  }
  if (fresh.empty()) return;

  // Evaluate the raw value sets of the fresh plans. One task per plan:
  // this is the only phase that runs value operators, and the only
  // parallel one.
  std::vector<std::vector<ValueSet>> raw(fresh.size());
  auto evaluate_plan = [&](size_t f) {
    std::vector<ValueSet>& out = raw[f];
    out.resize(side.entities.size());
    for (size_t e = 0; e < side.entities.size(); ++e) {
      out[e] = fresh[f].op->Evaluate(*side.entities[e], *side.schema);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(fresh.size(), evaluate_plan);
  } else {
    for (size_t f = 0; f < fresh.size(); ++f) evaluate_plan(f);
  }

  // Intern serially in registration order: value ids depend only on
  // (plan registration order x entity order x value order), never on
  // the thread count.
  for (size_t f = 0; f < fresh.size(); ++f) {
    InternPlan(side.plans[fresh[f].id], raw[f]);
  }
  stats_.plans_compiled += fresh.size();
}

void ValueStore::InternPlan(Plan& plan, std::span<const ValueSet> raw_values) {
  const size_t n = raw_values.size();
  size_t total = 0;
  for (const ValueSet& values : raw_values) total += values.size();

  plan.offsets.resize(n + 1);
  plan.sorted_offsets.resize(n + 1);
  plan.values.reserve(total);
  plan.sorted_ids.reserve(total);
  plan.sorted_counts.reserve(total);
  plan.offsets[0] = 0;
  plan.sorted_offsets[0] = 0;

  std::vector<ValueId> scratch;
  for (size_t e = 0; e < n; ++e) {
    const size_t begin = plan.values.size();
    for (const std::string& value : raw_values[e]) {
      plan.values.push_back(pool_.Intern(value));
    }
    plan.offsets[e + 1] = static_cast<uint32_t>(plan.values.size());

    // Token-set view: strictly increasing distinct ids + multiplicities.
    scratch.assign(plan.values.begin() + begin, plan.values.end());
    std::sort(scratch.begin(), scratch.end());
    for (size_t i = 0; i < scratch.size();) {
      size_t j = i + 1;
      while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
      plan.sorted_ids.push_back(scratch[i]);
      plan.sorted_counts.push_back(static_cast<uint32_t>(j - i));
      i = j;
    }
    plan.sorted_offsets[e + 1] = static_cast<uint32_t>(plan.sorted_ids.size());
  }
  stats_.values_stored += total;
}

std::span<const ValueId> ValueStore::Values(Side side, PlanId plan,
                                            size_t entity_index) const {
  const Plan& p = side_of(side).plans[plan];
  return std::span<const ValueId>(p.values.data() + p.offsets[entity_index],
                                  p.offsets[entity_index + 1] -
                                      p.offsets[entity_index]);
}

std::span<const ValueId> ValueStore::SortedIds(Side side, PlanId plan,
                                               size_t entity_index) const {
  const Plan& p = side_of(side).plans[plan];
  return std::span<const ValueId>(
      p.sorted_ids.data() + p.sorted_offsets[entity_index],
      p.sorted_offsets[entity_index + 1] - p.sorted_offsets[entity_index]);
}

std::span<const uint32_t> ValueStore::SortedCounts(Side side, PlanId plan,
                                                   size_t entity_index) const {
  const Plan& p = side_of(side).plans[plan];
  return std::span<const uint32_t>(
      p.sorted_counts.data() + p.sorted_offsets[entity_index],
      p.sorted_offsets[entity_index + 1] - p.sorted_offsets[entity_index]);
}

double ValueStore::PairDistance(const DistanceMeasure& measure,
                                PlanId source_plan, size_t source_entity,
                                PlanId target_plan, size_t target_entity,
                                double bound) const {
  std::span<const ValueId> va = Values(Side::kSource, source_plan, source_entity);
  std::span<const ValueId> vb = Values(Side::kTarget, target_plan, target_entity);
  // Matches both the serial short-circuit (similarity 0) and the
  // engine's empty-row convention: ThresholdedScore(inf, θ) == 0.
  if (va.empty() || vb.empty()) return kInfiniteDistance;

  if (measure.SupportsTokenIds()) {
    return measure.TokenIdDistance(
        SortedIds(Side::kSource, source_plan, source_entity),
        SortedCounts(Side::kSource, source_plan, source_entity),
        SortedIds(Side::kTarget, target_plan, target_entity),
        SortedCounts(Side::kTarget, target_plan, target_entity));
  }

  thread_local std::vector<std::string_view> scratch_a, scratch_b;
  scratch_a.clear();
  scratch_b.clear();
  for (ValueId id : va) scratch_a.push_back(pool_.View(id));
  for (ValueId id : vb) scratch_b.push_back(pool_.View(id));
  return measure.DistanceViews(std::span<const std::string_view>(scratch_a),
                               std::span<const std::string_view>(scratch_b),
                               bound);
}

size_t ValueStore::ApproxBytes() const {
  size_t bytes = pool_.ApproxBytes() + pool_.size() * 48;  // views + map nodes
  for (const SideStore* side : {&source_, &target_}) {
    for (const Plan& plan : side->plans) {
      bytes += (plan.offsets.capacity() + plan.sorted_offsets.capacity() +
                plan.values.capacity() + plan.sorted_ids.capacity() +
                plan.sorted_counts.capacity()) *
               sizeof(uint32_t);
    }
  }
  return bytes;
}

void ValueStore::Clear() {
  pool_.Clear();
  for (SideStore* side : {&source_, &target_}) {
    side->plans.clear();
    side->plan_by_hash.clear();
  }
}

// ----------------------------------------------------------- CompiledRule

CompiledRule::CompiledRule(const LinkageRule& rule, ValueStore& store,
                           ThreadPool* pool)
    : root_(rule.root()), store_(&store) {
  if (root_ == nullptr) return;
  RuleHashInfo info = AnalyzeRule(rule);

  std::vector<const ValueOperator*> source_ops, target_ops;
  source_ops.reserve(info.comparisons.size());
  target_ops.reserve(info.comparisons.size());
  for (const ComparisonSite& site : info.comparisons) {
    source_ops.push_back(site.op->source());
    target_ops.push_back(site.op->target());
  }
  std::vector<PlanId> source_plans(source_ops.size());
  std::vector<PlanId> target_plans(target_ops.size());
  store.CompileBatch(ValueStore::Side::kSource, source_ops, source_plans, pool);
  store.CompileBatch(ValueStore::Side::kTarget, target_ops, target_plans, pool);

  sites_.reserve(info.comparisons.size());
  for (size_t k = 0; k < info.comparisons.size(); ++k) {
    sites_.push_back(
        {info.comparisons[k].op, source_plans[k], target_plans[k]});
  }
}

double CompiledRule::EvalNode(const SimilarityOperator& node,
                              size_t source_entity, size_t target_entity,
                              size_t& next_site) const {
  if (node.kind() == OperatorKind::kComparison) {
    assert(next_site < sites_.size());
    const Site& site = sites_[next_site++];
    const ComparisonOperator& cmp = *site.op;
    // The threshold doubles as the distance bound: every distance the
    // score can distinguish (d <= θ) is exact, everything beyond maps
    // to similarity 0 either way.
    const double distance =
        store_->PairDistance(*cmp.measure(), site.source_plan, source_entity,
                             site.target_plan, target_entity, cmp.threshold());
    return ThresholdedScore(distance, cmp.threshold());
  }
  const auto& agg = static_cast<const AggregationOperator&>(node);
  return AggregateOperandScores(
      *agg.function(), agg.operands(), [&](const SimilarityOperator& op) {
        return EvalNode(op, source_entity, target_entity, next_site);
      });
}

double CompiledRule::Score(size_t source_entity, size_t target_entity) const {
  if (root_ == nullptr) return 0.0;
  size_t next_site = 0;
  return EvalNode(*root_, source_entity, target_entity, next_site);
}

}  // namespace genlink
