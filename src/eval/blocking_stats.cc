#include "eval/blocking_stats.h"

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"

namespace genlink {

BlockingQuality MeasureBlockingQuality(const BlockingIndex& index,
                                       const Dataset& source,
                                       const Dataset& target,
                                       const ReferenceLinkSet& links,
                                       size_t sample_every,
                                       ThreadPool* pool) {
  if (sample_every == 0) sample_every = 1;
  BlockingQuality quality;

  // Candidate volume over the sampled queries. Per-entity counts land
  // in index-addressed slots and are summed serially, so the totals
  // are identical for any thread count (integer arithmetic only).
  const size_t n = source.size();
  std::vector<uint64_t> counts(n, 0);
  const auto probe = [&](size_t i) {
    if (i % sample_every != 0) return;
    counts[i] = index.Candidates(source.entity(i), source.schema()).size();
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, probe);
  } else {
    for (size_t i = 0; i < n; ++i) probe(i);
  }
  for (size_t i = 0; i < n; i += sample_every) {
    ++quality.queries_probed;
    quality.candidate_pairs += counts[i];
  }
  if (quality.queries_probed > 0) {
    quality.candidates_per_query =
        static_cast<double>(quality.candidate_pairs) /
        static_cast<double>(quality.queries_probed);
  }
  if (!target.empty()) {
    quality.reduction_ratio =
        1.0 - quality.candidates_per_query / static_cast<double>(target.size());
  }

  // Pairs completeness: every positive link is checked, sampled or
  // not. The candidate list is sorted entity indexes, so membership of
  // the linked target entity is a binary search.
  const std::vector<ReferenceLink>& positives = links.positives();
  quality.positives_total = positives.size();
  std::vector<uint8_t> found(positives.size(), 0);
  const auto check = [&](size_t k) {
    const ReferenceLink& link = positives[k];
    const Entity* a = source.FindEntity(link.id_a);
    const Entity* b = target.FindEntity(link.id_b);
    if (a == nullptr || b == nullptr) return;
    const size_t b_index =
        static_cast<size_t>(b - target.entities().data());
    const std::vector<size_t> candidates =
        index.Candidates(*a, source.schema());
    if (std::binary_search(candidates.begin(), candidates.end(), b_index)) {
      found[k] = 1;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(positives.size(), check);
  } else {
    for (size_t k = 0; k < positives.size(); ++k) check(k);
  }
  for (const uint8_t f : found) quality.positives_found += f;
  if (quality.positives_total > 0) {
    quality.pairs_completeness =
        static_cast<double>(quality.positives_found) /
        static_cast<double>(quality.positives_total);
  }
  return quality;
}

}  // namespace genlink
