// Evaluation of *generated link sets* against reference links: set-based
// precision/recall/F1 and precision-recall sweeps over the similarity
// threshold. Complements eval/metrics.h, which scores classifications of
// labelled pairs.

#ifndef GENLINK_EVAL_LINK_METRICS_H_
#define GENLINK_EVAL_LINK_METRICS_H_

#include <vector>

#include "matcher/matcher.h"
#include "model/reference_links.h"

namespace genlink {

/// Set-based quality of a generated link set.
struct LinkSetMetrics {
  size_t generated = 0;       // |M_l|
  size_t reference = 0;       // |R+|
  size_t correct = 0;         // |M_l ∩ R+|
  double precision = 0.0;     // correct / generated
  double recall = 0.0;        // correct / reference
  double f_measure = 0.0;
};

/// Scores `links` against the positive reference links. Links to
/// entities outside the reference set still count toward |generated|
/// (as they would in a real deployment).
LinkSetMetrics EvaluateLinkSet(const std::vector<GeneratedLink>& links,
                               const ReferenceLinkSet& reference);

/// One point of a precision-recall sweep.
struct PrPoint {
  double threshold = 0.0;
  LinkSetMetrics metrics;
};

/// Sweeps the acceptance threshold over the scored links (descending)
/// and reports precision/recall at each cut. `num_points` thresholds are
/// sampled uniformly in [min_threshold, 1].
std::vector<PrPoint> PrecisionRecallSweep(
    const std::vector<GeneratedLink>& links, const ReferenceLinkSet& reference,
    size_t num_points = 11, double min_threshold = 0.5);

/// Returns the threshold of the sweep point with the highest F-measure.
double BestThreshold(const std::vector<PrPoint>& sweep);

}  // namespace genlink

#endif  // GENLINK_EVAL_LINK_METRICS_H_
