#include "eval/metrics.h"

#include <cmath>

namespace genlink {

double Precision(const ConfusionMatrix& cm) {
  size_t denom = cm.tp + cm.fp;
  return denom == 0 ? 0.0 : static_cast<double>(cm.tp) / denom;
}

double Recall(const ConfusionMatrix& cm) {
  size_t denom = cm.tp + cm.fn;
  return denom == 0 ? 0.0 : static_cast<double>(cm.tp) / denom;
}

double FMeasure(const ConfusionMatrix& cm) {
  double p = Precision(cm);
  double r = Recall(cm);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double Accuracy(const ConfusionMatrix& cm) {
  size_t total = cm.total();
  return total == 0 ? 0.0 : static_cast<double>(cm.tp + cm.tn) / total;
}

double MatthewsCorrelation(const ConfusionMatrix& cm) {
  double tp = static_cast<double>(cm.tp);
  double tn = static_cast<double>(cm.tn);
  double fp = static_cast<double>(cm.fp);
  double fn = static_cast<double>(cm.fn);
  double denom = (tp + fp) * (tp + fn) * (tn + fp) * (tn + fn);
  if (denom == 0.0) return 0.0;
  return (tp * tn - fp * fn) / std::sqrt(denom);
}

}  // namespace genlink
