// The evaluation engine: parallel, memoized fitness evaluation.
//
// The GP loop spends essentially all of its time scoring candidate rules
// against the labelled training pairs (Section 5.2 of the paper; the
// paper defers efficient rule execution to the Silk substrate [19]).
// This engine makes that hot path fast without changing a single bit of
// the results:
//
//   1. Fitness memo — FitnessResults are cached behind the canonical
//      structural hash of the rule (rule/rule_hash.h), so a rule bred a
//      second time in a later generation is never re-evaluated.
//   2. Distance cache — for every *comparison signature* (distance
//      measure x source value subtree x target value subtree, threshold
//      and weight excluded) the engine precomputes the raw distance of
//      every training pair once. Offspring share comparison subtrees
//      with their parents, so across generations almost all comparisons
//      hit this cache; evaluating a rule then reduces to thresholding
//      and aggregating cached doubles — no string distances at all.
//   3. Value store — when a distance row *is* cold, its value subtrees
//      are compiled into per-entity transform plans (eval/value_store.h)
//      first: transformations run once per distinct entity instead of
//      once per pair, and the row is then computed over interned
//      values (pooled string views / sorted token ids), allocation-free.
//   4. Thread pool — plan evaluation, distance rows and cache-missing
//      rules are evaluated in parallel on common/thread_pool.
//
// Determinism invariants (relied on by tests/determinism_test.cc and
// tests/engine_test.cc):
//   * Results are bit-identical to the serial FitnessEvaluator path:
//     a raw distance is the same double whether recomputed or cached
//     (empty value sets are stored as kInfiniteDistance, which
//     ThresholdedScore maps to the same 0.0 score the serial
//     short-circuit produces), and aggregation visits operands in tree
//     order either way.
//   * Results are independent of the thread count: each distance row
//     and each rule is filled by exactly one task, caches are only
//     written in the serial phases, and no reduction crosses a task
//     boundary.
//
// The "caches are only touched in the serial phases" discipline is not
// just documented — it is statically enforced. The engine's shared
// mutable state (fitness memo, distance-row map, hasher, stats
// counters) is GENLINK_GUARDED_BY(serial_phase_), a zero-cost PhaseRole
// capability (common/mutex.h): EvaluateBatch holds it in the serial
// stretches, worker-task lambdas are analyzed as separate functions
// that do not, so an accidental cache access from a parallel section
// fails `clang -Wthread-safety` instead of racing at runtime. Parallel
// sections only read immutable members (pairs_, the pair->entity index
// maps, the value store contents frozen for the phase) and write
// disjoint slots resolved serially beforehand.

#ifndef GENLINK_EVAL_ENGINE_H_
#define GENLINK_EVAL_ENGINE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "eval/fitness.h"
#include "eval/value_store.h"
#include "rule/rule_hash.h"

namespace genlink {

/// Engine knobs. The defaults are right for learning runs; the cache
/// toggles exist for A/B testing and for the engine's own tests.
struct EngineConfig {
  /// Worker threads (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Memoize whole-rule FitnessResults by canonical hash.
  bool cache_fitness = true;
  /// Precompute per-pair raw distances by comparison signature.
  bool cache_distances = true;
  /// Compile value subtrees into per-entity transform plans and compute
  /// cold distance rows from interned values (eval/value_store.h).
  /// Results are bit-identical either way; off only for A/B
  /// measurements. Only effective together with cache_distances.
  bool use_value_store = true;
  /// Fitness memo entry bound; the memo is cleared when exceeded.
  size_t max_fitness_entries = 1 << 18;
  /// Approximate byte budget for distance rows; rows are cleared between
  /// batches when the budget would be exceeded.
  size_t max_distance_bytes = 128u << 20;
  /// Approximate byte budget for the value store (string pool + plans);
  /// the store is cleared between batches when exceeded.
  size_t max_store_bytes = 256u << 20;
};

/// Cumulative counters over the engine's lifetime. Updated only in the
/// serial phases, so reads between batches need no synchronization.
struct EngineStats {
  /// Individuals that went through the engine (hits + misses).
  uint64_t rules_evaluated = 0;
  /// Rules served without evaluation: memo hits from earlier batches,
  /// plus batch-internal duplicates of a rule evaluated in this batch.
  uint64_t fitness_hits = 0;
  uint64_t fitness_misses = 0;
  /// Comparison sites served by a row the site did not itself trigger
  /// computing — cached from an earlier batch, or shared with another
  /// site of the same batch (one computed row serving N sites).
  uint64_t distance_row_hits = 0;
  /// Distance rows computed (one row = all training pairs for one
  /// comparison signature).
  uint64_t distance_rows_computed = 0;
  /// Subtree hash-consing telemetry (structure reuse across the run).
  uint64_t subtree_probes = 0;
  uint64_t subtree_hits = 0;
  /// Value-store telemetry: transform plans materialized (each runs its
  /// subtree once per entity) vs compile requests served by an existing
  /// plan, and total strings interned.
  uint64_t value_plans_compiled = 0;
  uint64_t value_plan_hits = 0;
  uint64_t values_interned = 0;

  double FitnessHitRate() const {
    return rules_evaluated == 0
               ? 0.0
               : static_cast<double>(fitness_hits) /
                     static_cast<double>(rules_evaluated);
  }
  double DistanceRowHitRate() const {
    uint64_t probes = distance_row_hits + distance_rows_computed;
    return probes == 0 ? 0.0
                       : static_cast<double>(distance_row_hits) /
                             static_cast<double>(probes);
  }
};

/// Memoizes fitness results by canonical rule hash across generations.
/// Rules with identical structure are only evaluated once.
class FitnessCache {
 public:
  /// `max_entries` bounds memory; the cache is cleared when exceeded.
  explicit FitnessCache(size_t max_entries = 1 << 18)
      : max_entries_(max_entries) {}

  const FitnessResult* Find(uint64_t hash) const;
  void Insert(uint64_t hash, const FitnessResult& result);

  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<uint64_t, FitnessResult> entries_;
  size_t max_entries_;
};

/// Evaluates rules against one fixed set of labelled training pairs,
/// with memoization and parallelism. Bound to its pair set: use one
/// engine per training split. Not thread-safe externally (the learner
/// calls it from one thread; the engine parallelizes internally).
class EvaluationEngine {
 public:
  /// `pairs` must outlive the engine.
  EvaluationEngine(std::span<const LabeledPair> pairs, const Schema& schema_a,
                   const Schema& schema_b, FitnessConfig fitness = {},
                   EngineConfig config = {});

  /// Evaluates `rules[i]` into `results[i]` for every i. Both spans must
  /// have the same size; rule pointers must be non-null and alive for
  /// the duration of the call.
  void EvaluateBatch(std::span<const LinkageRule* const> rules,
                     std::span<FitnessResult> results);

  /// Single-rule convenience wrapper over EvaluateBatch.
  FitnessResult Evaluate(const LinkageRule& rule);

  /// Snapshot of the cumulative counters. Returns by value: the stats
  /// are serial-phase state, so handing out a reference would let
  /// callers read them while a batch is mid-flight.
  EngineStats stats() const {
    PhaseGuard guard(serial_phase_);
    return stats_;
  }

  /// The engine's worker pool, shared with the search layer: the island
  /// model (gp/islands.h) breeds its populations on the same threads
  /// that evaluate fitness, so one pool serves the whole learning loop.
  /// Breeding and evaluation never overlap (the learner alternates
  /// them), so the sharing needs no extra synchronization.
  ThreadPool& pool() { return pool_; }

 private:
  /// One rule awaiting evaluation (a fitness-memo miss).
  struct Pending {
    size_t index = 0;  // into the batch
    RuleHashInfo info;
  };

  /// Fills `row` (sized to pairs_) with the raw distance of every pair
  /// under the comparison's measure and value subtrees.
  void FillDistanceRow(const ComparisonOperator& op,
                       std::vector<double>& row) const;

  /// Same contract, reading interned per-entity values from the value
  /// store instead of evaluating the subtrees per pair.
  void FillDistanceRowFromStore(const ComparisonOperator& op,
                                PlanId source_plan, PlanId target_plan,
                                std::vector<double>& row) const;

  /// Evaluates one rule using cached distance rows only (no string
  /// distance is computed). `rows` holds the rule's comparison rows in
  /// the pre-order of RuleHashInfo::comparisons.
  ConfusionMatrix EvaluateWithRows(
      const LinkageRule& rule,
      std::span<const std::vector<double>* const> rows) const;

  std::span<const LabeledPair> pairs_;
  const Schema* schema_a_;
  const Schema* schema_b_;
  FitnessConfig fitness_config_;
  EngineConfig config_;
  FitnessEvaluator serial_;
  ThreadPool pool_;
  /// Discipline token for the engine's phase structure: held by
  /// EvaluateBatch's serial stretches, never by worker tasks. Mutable
  /// so the const stats() accessor can take the (zero-cost) guard.
  mutable PhaseRole serial_phase_;
  RuleHasher hasher_ GENLINK_GUARDED_BY(serial_phase_);
  FitnessCache fitness_cache_ GENLINK_GUARDED_BY(serial_phase_);
  /// comparison signature -> raw distance per training pair. The map
  /// structure is serial-phase state; the row *contents* a parallel
  /// phase fills are reached through pointers resolved serially, each
  /// row written by exactly one task.
  std::unordered_map<uint64_t, std::vector<double>> distance_rows_
      GENLINK_GUARDED_BY(serial_phase_);
  /// Per-entity transform plans + interned values (null when disabled).
  /// Mutated only by CompileBatch in the serial phase 2b; frozen and
  /// read-shared during the parallel row fill (docs/CONCURRENCY.md).
  std::unique_ptr<ValueStore> store_;
  /// Training-pair index -> store entity index, per side.
  std::vector<uint32_t> pair_source_index_;
  std::vector<uint32_t> pair_target_index_;
  EngineStats stats_ GENLINK_GUARDED_BY(serial_phase_);
};

}  // namespace genlink

#endif  // GENLINK_EVAL_ENGINE_H_
