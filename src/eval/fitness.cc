#include "eval/fitness.h"

namespace genlink {

FitnessResult FitnessEvaluator::Evaluate(const LinkageRule& rule) const {
  FitnessResult result;
  result.confusion = EvaluateRuleOnPairs(rule, pairs_, *schema_a_, *schema_b_);
  result.mcc = MatthewsCorrelation(result.confusion);
  result.f_measure = FMeasure(result.confusion);
  result.fitness = result.mcc - config_.parsimony_weight *
                                    static_cast<double>(rule.OperatorCount());
  return result;
}

}  // namespace genlink
