#include "eval/fitness.h"

namespace genlink {

FitnessResult ScoreConfusion(const ConfusionMatrix& cm, size_t operator_count,
                             const FitnessConfig& config) {
  FitnessResult result;
  result.confusion = cm;
  result.mcc = MatthewsCorrelation(cm);
  result.f_measure = FMeasure(cm);
  result.fitness = result.mcc - config.parsimony_weight *
                                    static_cast<double>(operator_count);
  return result;
}

FitnessResult FitnessEvaluator::Evaluate(const LinkageRule& rule) const {
  return ScoreConfusion(
      EvaluateRuleOnPairs(rule, pairs_, *schema_a_, *schema_b_),
      rule.OperatorCount(), config_);
}

}  // namespace genlink
