#include "eval/engine.h"

#include <cassert>
#include <unordered_set>

#include "distance/distance_measure.h"
#include "eval/confusion_matrix.h"

namespace genlink {
namespace {

// Mirrors SimilarityOperator::Evaluate with the raw distance of each
// comparison read from its cached row. The aggregation arithmetic is
// literally shared (AggregateOperandScores, rule/operators.h) and
// thresholding is the same ThresholdedScore call, so the result is
// bit-identical to the uncached path.
//
// `rows` holds one distance row per comparison of the rule, in the
// pre-order RuleHashInfo::comparisons uses; this walk visits the
// comparisons in the same pre-order, so `next_row` pairs each
// comparison with its row by position — no per-pair map lookup in the
// hot loop. The caller resets `next_row` to 0 for every pair.
double EvalNode(const SimilarityOperator& node, size_t pair_index,
                std::span<const std::vector<double>* const> rows,
                size_t& next_row) {
  if (node.kind() == OperatorKind::kComparison) {
    const auto& cmp = static_cast<const ComparisonOperator&>(node);
    assert(next_row < rows.size());
    const std::vector<double>& row = *rows[next_row++];
    return ThresholdedScore(row[pair_index], cmp.threshold());
  }
  const auto& agg = static_cast<const AggregationOperator&>(node);
  return AggregateOperandScores(
      *agg.function(), agg.operands(), [&](const SimilarityOperator& op) {
        return EvalNode(op, pair_index, rows, next_row);
      });
}

}  // namespace

const FitnessResult* FitnessCache::Find(uint64_t hash) const {
  auto it = entries_.find(hash);
  return it == entries_.end() ? nullptr : &it->second;
}

void FitnessCache::Insert(uint64_t hash, const FitnessResult& result) {
  if (entries_.size() >= max_entries_) entries_.clear();
  entries_[hash] = result;
}

EvaluationEngine::EvaluationEngine(std::span<const LabeledPair> pairs,
                                   const Schema& schema_a,
                                   const Schema& schema_b,
                                   FitnessConfig fitness, EngineConfig config)
    : pairs_(pairs),
      schema_a_(&schema_a),
      schema_b_(&schema_b),
      fitness_config_(fitness),
      config_(config),
      serial_(pairs, schema_a, schema_b, fitness),
      pool_(config.num_threads),
      fitness_cache_(config.max_fitness_entries) {
  // The value store only serves the distance-row phase; without the
  // distance cache the engine is a pure-recompute baseline.
  if (config_.use_value_store && config_.cache_distances) {
    // Map each training pair to dense per-side entity indexes: pairs
    // share entities heavily (every entity appears in several labelled
    // pairs), and plans are evaluated per *entity*, not per pair.
    std::vector<const Entity*> source_entities, target_entities;
    std::unordered_map<const Entity*, uint32_t> source_index, target_index;
    pair_source_index_.reserve(pairs_.size());
    pair_target_index_.reserve(pairs_.size());
    for (const LabeledPair& pair : pairs_) {
      auto [sit, s_new] = source_index.try_emplace(
          pair.a, static_cast<uint32_t>(source_entities.size()));
      if (s_new) source_entities.push_back(pair.a);
      pair_source_index_.push_back(sit->second);
      auto [tit, t_new] = target_index.try_emplace(
          pair.b, static_cast<uint32_t>(target_entities.size()));
      if (t_new) target_entities.push_back(pair.b);
      pair_target_index_.push_back(tit->second);
    }
    store_ = std::make_unique<ValueStore>(source_entities, schema_a,
                                          target_entities, schema_b);
  }
}

void EvaluationEngine::FillDistanceRow(const ComparisonOperator& op,
                                       std::vector<double>& row) const {
  row.resize(pairs_.size());
  ValueSet scratch_a, scratch_b;
  for (size_t p = 0; p < pairs_.size(); ++p) {
    const LabeledPair& pair = pairs_[p];
    const ValueSet& va = op.source()->EvaluateRef(*pair.a, *schema_a_, scratch_a);
    const ValueSet& vb = op.target()->EvaluateRef(*pair.b, *schema_b_, scratch_b);
    // Empty sets are stored as an infinite distance: ThresholdedScore
    // maps it to 0.0, exactly the serial path's empty-set short-circuit.
    row[p] = (va.empty() || vb.empty()) ? kInfiniteDistance
                                        : op.measure()->Distance(va, vb);
  }
}

void EvaluationEngine::FillDistanceRowFromStore(const ComparisonOperator& op,
                                                PlanId source_plan,
                                                PlanId target_plan,
                                                std::vector<double>& row) const {
  row.resize(pairs_.size());
  const DistanceMeasure& measure = *op.measure();
  for (size_t p = 0; p < pairs_.size(); ++p) {
    // No bound: rows are shared across thresholds (the comparison
    // signature excludes them), so the raw distance must be exact.
    row[p] = store_->PairDistance(measure, source_plan, pair_source_index_[p],
                                  target_plan, pair_target_index_[p]);
  }
}

ConfusionMatrix EvaluationEngine::EvaluateWithRows(
    const LinkageRule& rule,
    std::span<const std::vector<double>* const> rows) const {
  ConfusionMatrix cm;
  for (size_t p = 0; p < pairs_.size(); ++p) {
    size_t next_row = 0;
    bool predicted =
        !rule.empty() &&
        EvalNode(*rule.root(), p, rows, next_row) >= kMatchThreshold;
    if (pairs_[p].is_match) {
      predicted ? ++cm.tp : ++cm.fn;
    } else {
      predicted ? ++cm.fp : ++cm.tn;
    }
  }
  return cm;
}

void EvaluationEngine::EvaluateBatch(std::span<const LinkageRule* const> rules,
                                     std::span<FitnessResult> results) {
  assert(rules.size() == results.size());

  // The whole batch runs on the caller's thread with parallel sections
  // dispatched in between; this thread holds the serial-phase role
  // throughout. Worker lambdas are analyzed separately and do NOT hold
  // it, so they can only touch state resolved for them serially below —
  // any direct cache/stats access from a task is a -Wthread-safety
  // error.
  PhaseGuard serial(serial_phase_);

  // Phase 1 (serial): hash every rule, resolve fitness-memo hits, and
  // dedup identical rules within the batch (one representative is
  // evaluated; its result is copied to the duplicates afterwards).
  // Hashing is skipped entirely when no cache consumes it — the
  // nocache configuration is a pure-recompute baseline.
  const bool need_hash = config_.cache_fitness || config_.cache_distances;
  std::vector<Pending> pending;
  std::unordered_map<uint64_t, size_t> pending_by_hash;  // canonical -> idx
  std::vector<std::pair<size_t, size_t>> duplicates;  // (batch idx, pending idx)
  for (size_t i = 0; i < rules.size(); ++i) {
    ++stats_.rules_evaluated;
    if (!need_hash) {
      ++stats_.fitness_misses;
      pending.push_back({i, {}});
      continue;
    }
    RuleHashInfo info = hasher_.Analyze(*rules[i]);
    if (config_.cache_fitness) {
      if (const FitnessResult* hit = fitness_cache_.Find(info.canonical)) {
        results[i] = *hit;
        ++stats_.fitness_hits;
        continue;
      }
      auto [it, inserted] =
          pending_by_hash.try_emplace(info.canonical, pending.size());
      if (!inserted) {
        duplicates.push_back({i, it->second});
        ++stats_.fitness_hits;
        continue;
      }
    }
    ++stats_.fitness_misses;
    pending.push_back({i, std::move(info)});
  }
  stats_.subtree_probes = hasher_.subtree_probes();
  stats_.subtree_hits = hasher_.subtree_hits();
  if (pending.empty()) return;

  if (!config_.cache_distances) {
    // Reference path: per-rule evaluation recomputes every distance.
    pool_.ParallelFor(pending.size(), [&](size_t k) {
      results[pending[k].index] = serial_.Evaluate(*rules[pending[k].index]);
    });
  } else {
    // Phase 2 (serial): collect the batch's distinct comparison
    // signatures and decide which rows are missing. Repeated sites
    // within the batch are hits no matter what (the row exists by eval
    // time and they did not trigger its computation); first occurrences
    // of a present row are only hits if the budget clear below does not
    // evict it — their accounting waits for that decision.
    std::vector<uint64_t> needed_sigs;
    std::vector<const ComparisonOperator*> needed_reps;
    std::vector<bool> row_present;
    std::unordered_set<uint64_t> seen_in_batch;
    size_t rows_missing = 0;
    uint64_t duplicate_site_hits = 0;
    for (const Pending& p : pending) {
      for (const ComparisonSite& site : p.info.comparisons) {
        if (!seen_in_batch.insert(site.signature).second) {
          // Repeated site within the batch: served by whichever row the
          // first occurrence provides.
          ++duplicate_site_hits;
          continue;
        }
        needed_sigs.push_back(site.signature);
        needed_reps.push_back(site.op);
        bool present =
            distance_rows_.find(site.signature) != distance_rows_.end();
        row_present.push_back(present);
        if (!present) ++rows_missing;
      }
    }
    stats_.distance_row_hits += duplicate_site_hits;

    // Soft byte budget: when the cache would outgrow it, drop the old
    // rows and recompute only what this batch needs. (A batch larger
    // than the budget still computes all of its rows.)
    const size_t row_bytes = pairs_.size() * sizeof(double) + 64;
    std::vector<uint64_t> new_sigs;
    std::vector<const ComparisonOperator*> new_reps;
    if ((distance_rows_.size() + rows_missing) * row_bytes >
        config_.max_distance_bytes) {
      distance_rows_.clear();
      new_sigs = needed_sigs;
      new_reps = needed_reps;
    } else {
      for (size_t k = 0; k < needed_sigs.size(); ++k) {
        if (row_present[k]) {
          ++stats_.distance_row_hits;
        } else {
          new_sigs.push_back(needed_sigs[k]);
          new_reps.push_back(needed_reps[k]);
        }
      }
    }

    // Phase 2b (serial registration, parallel evaluation): compile the
    // value subtrees of the missing rows into per-entity transform
    // plans. Most offspring share subtrees, so plans mostly hit; fresh
    // plans run their subtree once per entity on the pool and intern
    // serially (deterministic ids).
    std::vector<PlanId> source_plans(new_sigs.size());
    std::vector<PlanId> target_plans(new_sigs.size());
    if (store_ != nullptr && !new_sigs.empty()) {
      if (store_->ApproxBytes() > config_.max_store_bytes) store_->Clear();
      std::vector<const ValueOperator*> source_ops, target_ops;
      source_ops.reserve(new_reps.size());
      target_ops.reserve(new_reps.size());
      for (const ComparisonOperator* rep : new_reps) {
        source_ops.push_back(rep->source());
        target_ops.push_back(rep->target());
      }
      store_->CompileBatch(ValueStore::Side::kSource, source_ops, source_plans,
                           &pool_);
      store_->CompileBatch(ValueStore::Side::kTarget, target_ops, target_plans,
                           &pool_);
      stats_.value_plans_compiled = store_->stats().plans_compiled;
      stats_.value_plan_hits = store_->stats().plan_hits;
      stats_.values_interned = store_->stats().values_stored;
    }

    // Phase 3 (parallel): fill the missing rows. Rows are allocated
    // serially first so the map is never mutated concurrently; each row
    // is written by exactly one task.
    std::vector<std::vector<double>*> new_rows(new_sigs.size());
    for (size_t k = 0; k < new_sigs.size(); ++k) {
      new_rows[k] = &distance_rows_[new_sigs[k]];
    }
    pool_.ParallelFor(new_sigs.size(), [&](size_t k) {
      if (store_ != nullptr) {
        FillDistanceRowFromStore(*new_reps[k], source_plans[k],
                                 target_plans[k], *new_rows[k]);
      } else {
        FillDistanceRow(*new_reps[k], *new_rows[k]);
      }
    });
    stats_.distance_rows_computed += new_sigs.size();

    // Phase 4 (parallel): score the pending rules from the rows. The
    // rows each rule needs are resolved serially first — the map is
    // serial-phase state, so worker tasks receive plain row pointers
    // and never touch `distance_rows_` itself. Each rule is scored by
    // one task with a serial in-order pass over the pairs
    // (deterministic reduction); rows are resolved once per rule, in
    // the comparisons' pre-order, so the per-pair walk consumes them by
    // position.
    std::vector<std::vector<const std::vector<double>*>> rule_rows(
        pending.size());
    for (size_t k = 0; k < pending.size(); ++k) {
      rule_rows[k].reserve(pending[k].info.comparisons.size());
      for (const ComparisonSite& site : pending[k].info.comparisons) {
        rule_rows[k].push_back(&distance_rows_.find(site.signature)->second);
      }
    }
    pool_.ParallelFor(pending.size(), [&](size_t k) {
      const Pending& p = pending[k];
      const LinkageRule& rule = *rules[p.index];
      results[p.index] = ScoreConfusion(EvaluateWithRows(rule, rule_rows[k]),
                                        rule.OperatorCount(), fitness_config_);
    });
  }

  // Phase 5 (serial): copy results to batch-internal duplicates and
  // memoize the new results.
  for (const auto& [batch_index, pending_index] : duplicates) {
    results[batch_index] = results[pending[pending_index].index];
  }
  if (config_.cache_fitness) {
    for (const Pending& p : pending) {
      fitness_cache_.Insert(p.info.canonical, results[p.index]);
    }
  }
}

FitnessResult EvaluationEngine::Evaluate(const LinkageRule& rule) {
  const LinkageRule* ptr = &rule;
  FitnessResult result;
  EvaluateBatch({&ptr, 1}, {&result, 1});
  return result;
}

}  // namespace genlink
