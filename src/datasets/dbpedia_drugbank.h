// Synthetic stand-in for the DBpedia-DrugBank interlinking task: 4854 vs
// 4772 drugs, 1403 positive links, the most heterogeneous of the paper's
// data sets (110 vs 79 properties at 0.3 / 0.5 coverage; Tables 5-6).
//
// The original human-written linkage rule for this task uses 13
// comparisons and 33 transformations: it matches drug names and synonym
// lists plus several well-known identifiers (e.g. the CAS number) that
// are present for only part of the entities and formatted differently on
// the two sides. The generator reproduces exactly that structure:
// multi-valued synonym lists, name decorations ("(drug)" suffixes, case
// noise), CAS numbers with and without dashes, and several partially
// covered shared identifier properties.

#ifndef GENLINK_DATASETS_DBPEDIA_DRUGBANK_H_
#define GENLINK_DATASETS_DBPEDIA_DRUGBANK_H_

#include "common/random.h"
#include "datasets/matching_task.h"

namespace genlink {

/// Knobs of the DBpedia-DrugBank generator.
struct DbpediaDrugbankConfig {
  double scale = 1.0;
  size_t num_dbpedia = 4854;
  size_t num_drugbank = 4772;
  size_t num_positive_links = 1403;
  /// Coverage of the shared identifiers on linked drugs.
  double cas_coverage = 0.55;
  double atc_coverage = 0.5;
  double pubchem_coverage = 0.45;
  /// Probability of case noise / decorations on names.
  double name_noise_probability = 0.5;
  uint64_t seed = 6;
};

/// Generates the DBpedia-DrugBank-like cross-schema task.
MatchingTask GenerateDbpediaDrugbank(const DbpediaDrugbankConfig& config = {});

}  // namespace genlink

#endif  // GENLINK_DATASETS_DBPEDIA_DRUGBANK_H_
