#include "datasets/restaurant.h"

#include "common/string_util.h"
#include "datasets/name_pools.h"
#include "datasets/noise.h"

namespace genlink {
namespace {

struct Restaurant {
  std::string name;
  std::string address;
  std::string city;
  std::string phone;  // digits only, 10 digits
  std::string type;
};

Restaurant RandomRestaurant(Rng& rng) {
  Restaurant r;
  auto words = pools::RestaurantWords();
  r.name = std::string(words[rng.PickIndex(words.size())]) + " " +
           std::string(words[rng.PickIndex(words.size())]);
  r.address = std::to_string(1 + rng.PickIndex(9999)) + " " +
              std::string(pools::StreetNames()[rng.PickIndex(
                  pools::StreetNames().size())]);
  // The real Fodor's/Zagat's data is concentrated in a handful of
  // cities, so the city property cannot separate matches on its own.
  r.city = std::string(pools::Cities()[rng.PickIndex(4)].name);
  // Phones share a small pool of area codes and exchange prefixes, as
  // real phone books do - so a character-level similarity on the phone
  // alone does not trivially separate matches from non-matches.
  static constexpr std::string_view kAreaCodes[] = {
      "212", "310", "415", "617", "312", "213", "404", "702",
  };
  r.phone = std::string(kAreaCodes[rng.PickIndex(std::size(kAreaCodes))]);
  r.phone += std::to_string(200 + rng.PickIndex(80));  // narrow exchange pool
  for (int i = 0; i < 4; ++i) {
    r.phone.push_back(static_cast<char>('0' + rng.PickIndex(10)));
  }
  r.type = std::string(pools::Cuisines()[rng.PickIndex(pools::Cuisines().size())]);
  return r;
}

std::string FormatPhone(const std::string& digits, Rng& rng) {
  // "310-246-1501" vs "310/246-1501" vs "(310) 246-1501" - the format
  // differences between Fodor's and Zagat's.
  std::string area = digits.substr(0, 3);
  std::string mid = digits.substr(3, 3);
  std::string last = digits.substr(6);
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return area + "-" + mid + "-" + last;
    case 1:
      return area + "/" + mid + "-" + last;
    default:
      return "(" + area + ") " + mid + "-" + last;
  }
}

std::string TypeSynonym(const std::string& type, Rng& rng) {
  // "american" vs "american (new)" style variations.
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return type + " (new)";
    case 1:
      return type + " restaurant";
    default:
      return type;
  }
}

}  // namespace

MatchingTask GenerateRestaurant(const RestaurantConfig& config) {
  Rng rng(config.seed);
  MatchingTask task;
  task.name = "restaurant";
  task.dedup = true;
  task.a.set_name("restaurant");

  const size_t num_entities =
      std::max<size_t>(4, static_cast<size_t>(config.num_entities * config.scale));
  const size_t num_links = std::max<size_t>(
      2, static_cast<size_t>(config.num_positive_links * config.scale));

  PropertyId p_name = task.a.schema().AddProperty("name");
  PropertyId p_addr = task.a.schema().AddProperty("address");
  PropertyId p_city = task.a.schema().AddProperty("city");
  PropertyId p_phone = task.a.schema().AddProperty("phone");
  PropertyId p_type = task.a.schema().AddProperty("type");

  int next_id = 0;
  auto emit = [&](const Restaurant& r, bool perturb) -> std::string {
    Entity entity("rest" + std::to_string(next_id++));
    std::string name = r.name;
    std::string address = r.address;
    std::string type = r.type;
    std::string phone = r.phone;
    if (perturb) {
      if (rng.Bernoulli(config.typo_probability)) name = InjectTypo(name, rng);
      if (rng.Bernoulli(config.typo_probability)) {
        address = InjectTypo(address, rng);
      }
      if (rng.Bernoulli(config.type_synonym_probability)) {
        type = TypeSynonym(type, rng);
      }
      // Occasionally one guide lists an outdated number: the last four
      // digits change (real Fodor's/Zagat's disagreements look like
      // this), so the phone is a strong but not perfect key.
      if (rng.Bernoulli(0.1)) {
        for (size_t i = 6; i < phone.size(); ++i) {
          phone[i] = static_cast<char>('0' + rng.PickIndex(10));
        }
      }
    }
    entity.AddValue(p_name, name);
    entity.AddValue(p_addr, address);
    entity.AddValue(p_city, r.city);
    entity.AddValue(p_phone, rng.Bernoulli(config.phone_format_probability)
                                 ? FormatPhone(phone, rng)
                                 : phone);
    entity.AddValue(p_type, type);
    std::string id = entity.id();
    Status s = task.a.AddEntity(std::move(entity));
    (void)s;
    return id;
  };

  // Duplicate pairs first.
  for (size_t i = 0; i < num_links && next_id + 1 < static_cast<int>(num_entities);
       ++i) {
    Restaurant r = RandomRestaurant(rng);
    std::string id1 = emit(r, /*perturb=*/false);
    std::string id2 = emit(r, /*perturb=*/true);
    task.links.AddPositive(id1, id2);
  }
  // Confusable non-matches. Real reference-link sets contain exactly
  // these near-misses; they prevent any single property from perfectly
  // separating the classes:
  //  (a) a nearby different restaurant: same street, almost the same
  //      street number, one shared name word, own phone;
  //  (b) two branches of a chain: identical name and city, different
  //      address and phone.
  size_t num_confusables = num_links / 3;
  for (size_t i = 0;
       i < num_confusables && next_id + 1 < static_cast<int>(num_entities); ++i) {
    Restaurant r = RandomRestaurant(rng);
    Restaurant sibling = RandomRestaurant(rng);
    sibling.city = r.city;
    // "123 main st" vs "125 main st".
    sibling.address = r.address;
    if (!sibling.address.empty()) {
      sibling.address[0] =
          static_cast<char>('1' + rng.PickIndex(9));
    }
    // Share one name word: "golden dragon" vs "golden palace".
    auto words = SplitWhitespace(r.name);
    auto sibling_words = SplitWhitespace(sibling.name);
    if (!words.empty() && !sibling_words.empty()) {
      sibling_words[0] = words[0];
      sibling.name = Join(sibling_words, " ");
    }
    std::string id1 = emit(r, false);
    std::string id2 = emit(sibling, true);
    task.links.AddNegative(id1, id2);
  }
  size_t num_chains = num_links / 3;
  for (size_t i = 0;
       i < num_chains && next_id + 1 < static_cast<int>(num_entities); ++i) {
    Restaurant branch1 = RandomRestaurant(rng);
    Restaurant branch2 = RandomRestaurant(rng);
    branch2.name = branch1.name;
    branch2.city = branch1.city;
    branch2.type = branch1.type;
    std::string id1 = emit(branch1, false);
    std::string id2 = emit(branch2, false);
    task.links.AddNegative(id1, id2);
  }
  // Fill with singletons.
  while (next_id < static_cast<int>(num_entities)) {
    emit(RandomRestaurant(rng), false);
  }
  // Top up negatives to |R+| with the paper's permutation scheme.
  task.links.GenerateNegativesFromPositives(rng);
  return task;
}

}  // namespace genlink
