#include "datasets/synthetic.h"

#include <string>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "datasets/name_pools.h"
#include "datasets/noise.h"

namespace genlink {
namespace {

/// One real-world person; both sides' records derive from this.
struct Person {
  std::string first;
  std::string last;
  std::string address;  // "<number> <street>"
  std::string city;
  std::string phone;  // digits only, 10 digits
  std::string birth;  // year
};

Person RandomPerson(Rng& rng) {
  Person p;
  const auto firsts = pools::FirstNames();
  const auto lasts = pools::LastNames();
  p.first = std::string(firsts[rng.PickIndex(firsts.size())]);
  p.last = std::string(lasts[rng.PickIndex(lasts.size())]);
  // The name pools are small; hyphenated invented surnames widen the
  // vocabulary so token frequencies span several orders of magnitude
  // at scale (common first names vs. rare surname halves) — the
  // distribution rare-token blocking is designed for.
  if (rng.Bernoulli(0.25)) {
    p.last += "-" + RandomWord(4 + rng.PickIndex(4), rng);
  }
  const auto streets = pools::StreetNames();
  p.address = std::to_string(1 + rng.PickIndex(9999)) + " " +
              std::string(streets[rng.PickIndex(streets.size())]);
  const auto cities = pools::Cities();
  p.city = std::string(cities[rng.PickIndex(cities.size())].name);
  static constexpr std::string_view kAreaCodes[] = {
      "212", "310", "415", "617", "312", "213", "404", "702", "503", "206",
  };
  p.phone = std::string(kAreaCodes[rng.PickIndex(std::size(kAreaCodes))]);
  p.phone += std::to_string(200 + rng.PickIndex(800));
  for (int i = 0; i < 4; ++i) {
    p.phone.push_back(static_cast<char>('0' + rng.PickIndex(10)));
  }
  p.birth = std::to_string(1920 + rng.PickIndex(90));
  return p;
}

std::string FormatPhone(const std::string& digits) {
  return digits.substr(0, 3) + "-" + digits.substr(3, 3) + "-" +
         digits.substr(6);
}

/// The property values of one record; an empty optional-like flag per
/// property is modelled by an empty string (skipped at AddValue time).
struct Record {
  std::string name;
  std::string address;
  std::string city;
  std::string phone;
  std::string birth;
};

Record CleanRecord(const Person& p) {
  Record r;
  r.name = p.first + " " + p.last;
  r.address = p.address;
  r.city = p.city;
  r.phone = p.phone;
  r.birth = p.birth;
  return r;
}

/// The B-side duplicate of `p`: the noise mix of datasets/noise.h,
/// applied with the config's rates. Draw order is fixed; each record's
/// Rng stream is private, so the order only matters for reproducing a
/// given seed's corpus.
Record PerturbedRecord(const Person& p, const SyntheticConfig& config,
                       Rng& rng) {
  Record r = CleanRecord(p);
  if (rng.Bernoulli(0.15)) r.name = AbbreviateTokens(r.name, 1.0, rng);
  if (rng.Bernoulli(config.typo_probability)) r.name = InjectTypo(r.name, rng);
  if (rng.Bernoulli(config.case_noise_probability)) {
    r.name = RandomCaseStyle(r.name, rng);
  }
  if (rng.Bernoulli(config.typo_probability)) {
    r.address = InjectTypo(r.address, rng);
  }
  if (rng.Bernoulli(config.typo_probability * 0.5)) {
    r.city = InjectTypo(r.city, rng);
  }
  if (rng.Bernoulli(config.phone_change_probability)) {
    // An outdated number: the last four digits change.
    for (size_t i = 6; i < r.phone.size(); ++i) {
      r.phone[i] = static_cast<char>('0' + rng.PickIndex(10));
    }
  }
  if (rng.Bernoulli(config.phone_format_probability)) {
    r.phone = FormatPhone(r.phone);
  }
  if (rng.Bernoulli(config.missing_field_probability)) r.name.clear();
  if (rng.Bernoulli(config.missing_field_probability)) r.address.clear();
  if (rng.Bernoulli(config.missing_field_probability)) r.city.clear();
  if (rng.Bernoulli(config.missing_field_probability)) r.phone.clear();
  if (rng.Bernoulli(config.missing_field_probability)) r.birth.clear();
  return r;
}

enum class PairKind : uint8_t {
  kUnrelated,   // B record is an independent person
  kDuplicate,   // B record is a perturbed copy: positive link
  kConfusable,  // B record shares street/city/last name: negative link
};

/// Everything drawn for one record index — filled by a pool worker from
/// the index's private Rng stream, assembled serially afterwards.
struct Slot {
  Record a;
  Record b;
  PairKind kind = PairKind::kUnrelated;
};

void FillSlot(const SyntheticConfig& config, size_t index, Slot& slot) {
  Rng rng(HashCombine(config.seed, index));
  const Person base = RandomPerson(rng);
  slot.a = CleanRecord(base);
  if (rng.Bernoulli(config.duplicate_rate)) {
    slot.kind = PairKind::kDuplicate;
    slot.b = PerturbedRecord(base, config, rng);
    return;
  }
  Person other = RandomPerson(rng);
  if (rng.Bernoulli(config.confusable_rate)) {
    // A different person at the same address with the same family
    // name: shares most blocking tokens with the A record but is a
    // non-match — the hard negatives that separate good rules from
    // address-only ones.
    slot.kind = PairKind::kConfusable;
    other.last = base.last;
    other.address = base.address;
    other.city = base.city;
  }
  slot.b = CleanRecord(other);
}

/// The person-directory property columns, shared by the corpus and the
/// delta stream.
constexpr std::string_view kProperties[5] = {"name", "address", "city",
                                             "phone", "birth"};

void AddRecord(Dataset& dataset, std::string id, const Record& r,
               const PropertyId ids[5]) {
  Entity entity(std::move(id));
  if (!r.name.empty()) entity.AddValue(ids[0], r.name);
  if (!r.address.empty()) entity.AddValue(ids[1], r.address);
  if (!r.city.empty()) entity.AddValue(ids[2], r.city);
  if (!r.phone.empty()) entity.AddValue(ids[3], r.phone);
  if (!r.birth.empty()) entity.AddValue(ids[4], r.birth);
  (void)dataset.AddEntity(std::move(entity));
}

}  // namespace

MatchingTask GenerateSynthetic(const SyntheticConfig& config) {
  MatchingTask task;
  task.name = "synthetic";
  task.dedup = false;
  task.a.set_name("synthetic_a");
  task.b.set_name("synthetic_b");

  PropertyId a_ids[5];
  PropertyId b_ids[5];
  for (size_t k = 0; k < 5; ++k) {
    a_ids[k] = task.a.schema().AddProperty(kProperties[k]);
    b_ids[k] = task.b.schema().AddProperty(kProperties[k]);
  }

  // Per-index Rng streams make the fill embarrassingly parallel with
  // byte-identical output for any thread count; only the (cheap)
  // assembly below is serial.
  const size_t n = config.num_entities;
  std::vector<Slot> slots(n);
  ThreadPool pool(config.num_threads);
  pool.ParallelFor(n, [&](size_t i) { FillSlot(config, i, slots[i]); });

  for (size_t i = 0; i < n; ++i) {
    const std::string suffix = std::to_string(i);
    AddRecord(task.a, "a" + suffix, slots[i].a, a_ids);
    AddRecord(task.b, "b" + suffix, slots[i].b, b_ids);
    if (slots[i].kind == PairKind::kDuplicate) {
      task.links.AddPositive("a" + suffix, "b" + suffix);
    } else if (slots[i].kind == PairKind::kConfusable) {
      task.links.AddNegative("a" + suffix, "b" + suffix);
    }
  }

  if (config.permutation_negatives &&
      task.links.negatives().size() < task.links.positives().size()) {
    Rng link_rng(HashCombine(config.seed, 0x6c696e6b73ULL));  // "links"
    // `count` is the target total, not the number to add: top the
    // confusables up until |R-| == |R+|.
    task.links.GenerateNegativesFromPositives(link_rng,
                                              task.links.positives().size());
  }
  return task;
}

SyntheticDeltas GenerateSyntheticDeltas(const SyntheticDeltaConfig& config) {
  SyntheticDeltas deltas;
  PropertyId ids[5];
  for (size_t k = 0; k < 5; ++k) {
    ids[k] = deltas.schema.AddProperty(kProperties[k]);
  }
  deltas.ops.reserve(config.num_deltas);

  const auto record_entity = [&ids](std::string id, const Record& r) {
    Entity entity(std::move(id));
    if (!r.name.empty()) entity.AddValue(ids[0], r.name);
    if (!r.address.empty()) entity.AddValue(ids[1], r.address);
    if (!r.city.empty()) entity.AddValue(ids[2], r.city);
    if (!r.phone.empty()) entity.AddValue(ids[3], r.phone);
    if (!r.birth.empty()) entity.AddValue(ids[4], r.birth);
    return entity;
  };

  // One serial Rng stream drives the whole op sequence: op kinds and
  // target picks depend on the evolving alive set, so there is nothing
  // to parallelize — and nothing platform-dependent to leak in.
  Rng rng(HashCombine(config.seed, 0x64656c746173ULL));  // "deltas"
  std::vector<std::string> alive;
  alive.reserve(config.base.num_entities + config.num_deltas);
  for (size_t i = 0; i < config.base.num_entities; ++i) {
    alive.push_back("b" + std::to_string(i));
  }
  size_t new_ids = 0;

  for (size_t j = 0; j < config.num_deltas; ++j) {
    SyntheticDelta op;
    if (!alive.empty() && rng.Bernoulli(config.delete_rate)) {
      const size_t pick = rng.PickIndex(alive.size());
      op.remove = true;
      op.entity = Entity(alive[pick]);
      alive[pick] = std::move(alive.back());
      alive.pop_back();
    } else if (alive.empty() || rng.Bernoulli(config.new_entity_rate)) {
      std::string id = "u" + std::to_string(new_ids++);
      op.entity = record_entity(id, CleanRecord(RandomPerson(rng)));
      alive.push_back(std::move(id));
    } else {
      const std::string id = alive[rng.PickIndex(alive.size())];
      Record updated;
      if (id.front() == 'b') {
        // Rebuild the person this slot was drawn from (the stream
        // FillSlot seeds the same way), then apply a fresh round of
        // noise from the delta stream: the update shares blocking
        // tokens with the record it replaces.
        Rng origin(HashCombine(
            config.base.seed,
            static_cast<uint64_t>(std::stoull(id.substr(1)))));
        updated = PerturbedRecord(RandomPerson(origin), config.base, rng);
      } else {
        updated = CleanRecord(RandomPerson(rng));
      }
      op.entity = record_entity(id, updated);
    }
    deltas.ops.push_back(std::move(op));
  }
  return deltas;
}

uint64_t FingerprintDeltas(const SyntheticDeltas& deltas) {
  uint64_t h = HashBytes("synthetic-deltas");
  const Schema& schema = deltas.schema;
  h = HashCombine(h, schema.NumProperties());
  for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
    h = HashCombine(h, HashBytes(schema.PropertyName(p)));
  }
  h = HashCombine(h, deltas.ops.size());
  for (const SyntheticDelta& op : deltas.ops) {
    h = HashCombine(h, op.remove ? 1 : 0);
    h = HashCombine(h, HashBytes(op.entity.id()));
    for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
      const ValueSet& values = op.entity.Values(p);
      h = HashCombine(h, values.size());
      for (const std::string& value : values) {
        h = HashCombine(h, HashBytes(value));
      }
    }
  }
  return h;
}

uint64_t FingerprintTask(const MatchingTask& task) {
  uint64_t h = HashBytes(task.name);
  h = HashCombine(h, task.dedup ? 1 : 0);
  const auto mix_dataset = [&h](const Dataset& dataset) {
    h = HashCombine(h, HashBytes(dataset.name()));
    const Schema& schema = dataset.schema();
    h = HashCombine(h, schema.NumProperties());
    for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
      h = HashCombine(h, HashBytes(schema.PropertyName(p)));
    }
    h = HashCombine(h, dataset.size());
    for (const Entity& entity : dataset.entities()) {
      h = HashCombine(h, HashBytes(entity.id()));
      for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
        const ValueSet& values = entity.Values(p);
        h = HashCombine(h, values.size());
        for (const std::string& value : values) {
          h = HashCombine(h, HashBytes(value));
        }
      }
    }
  };
  mix_dataset(task.a);
  mix_dataset(task.b);
  const auto mix_links = [&h](const std::vector<ReferenceLink>& links) {
    h = HashCombine(h, links.size());
    for (const ReferenceLink& link : links) {
      h = HashCombine(h, HashBytes(link.id_a));
      h = HashCombine(h, HashBytes(link.id_b));
    }
  };
  mix_links(task.links.positives());
  mix_links(task.links.negatives());
  return h;
}

}  // namespace genlink
