// The noise model shared by the synthetic dataset generators: the
// perturbations mirror the data-quality problems the paper names for its
// evaluation data sets (typos, inconsistent letter case, token
// reordering, abbreviations, missing values, format differences).

#ifndef GENLINK_DATASETS_NOISE_H_
#define GENLINK_DATASETS_NOISE_H_

#include <string>
#include <string_view>

#include "common/random.h"
#include "model/dataset.h"

namespace genlink {

/// Applies one random character edit (substitution, deletion, insertion
/// or adjacent transposition) to a copy of `text`. No-op on empty input.
std::string InjectTypo(std::string_view text, Rng& rng);

/// Applies up to `max_typos` random character edits.
std::string InjectTypos(std::string_view text, size_t max_typos, Rng& rng);

/// Randomly changes the letter case of the whole value: all-upper,
/// all-lower or Title Case.
std::string RandomCaseStyle(std::string_view text, Rng& rng);

/// Shuffles the whitespace-separated tokens of `text`.
std::string ShuffleTokens(std::string_view text, Rng& rng);

/// Drops one random whitespace-separated token (keeps at least one).
std::string DropRandomToken(std::string_view text, Rng& rng);

/// Abbreviates each token longer than 3 characters with probability
/// `probability` to its first letter plus '.' ("John Smith" -> "J. Smith").
std::string AbbreviateTokens(std::string_view text, double probability, Rng& rng);

/// Builds a random word of `length` lowercase letters (pronounceable-ish
/// consonant-vowel alternation).
std::string RandomWord(size_t length, Rng& rng);

/// Adds `count` filler properties named `<prefix>0..` to the dataset
/// schema and fills each entity's filler property with a random word
/// with probability `coverage`. Models the wide, sparsely covered
/// schemata of the RDF data sets (Table 6 of the paper).
void AddFillerProperties(Dataset& dataset, size_t count, double coverage,
                         std::string_view prefix, Rng& rng);

}  // namespace genlink

#endif  // GENLINK_DATASETS_NOISE_H_
