// Synthetic stand-in for the Cora citation-deduplication data set
// (Section 6.2 of the paper): 1879 noisy citation records over the
// properties title/author/venue/date, 1617 positive reference links,
// average property coverage ~0.8.
//
// The generator plants the noise the paper attributes to Cora —
// typos, inconsistent letter case, author-list reordering and
// initialization, venue abbreviations and missing fields — so that data
// transformations (lowerCase, tokenize) are required to reach the
// high-90s F-measure while transformation-free rules plateau around 0.9
// (Table 7 and the no-transformation ablation).

#ifndef GENLINK_DATASETS_CORA_H_
#define GENLINK_DATASETS_CORA_H_

#include "common/random.h"
#include "datasets/matching_task.h"

namespace genlink {

/// Knobs of the Cora generator. Defaults reproduce Table 5/6's profile.
struct CoraConfig {
  /// Scales entity and link counts (tests use ~0.1).
  double scale = 1.0;
  size_t num_entities = 1879;
  size_t num_positive_links = 1617;
  /// Probability of 1-2 typos in a citation's title copy.
  double typo_probability = 0.35;
  /// Probability that a copy re-styles the whole title's letter case.
  double case_noise_probability = 0.45;
  /// Probability that the author list is reordered.
  double author_shuffle_probability = 0.35;
  /// Probability that author first names are reduced to initials.
  double author_initials_probability = 0.4;
  /// Probability that the venue appears abbreviated.
  double venue_abbrev_probability = 0.4;
  /// Per-property probability of a missing value (drives coverage ~0.8).
  double missing_probability = 0.2;
  uint64_t seed = 1;
};

/// Generates the Cora-like deduplication task.
MatchingTask GenerateCora(const CoraConfig& config = {});

}  // namespace genlink

#endif  // GENLINK_DATASETS_CORA_H_
