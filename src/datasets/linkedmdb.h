// Synthetic stand-in for the LinkedMDB-DBpedia movie interlinking task:
// 199 vs 174 movies, 100 positive and 100 negative reference links, wide
// sparse schemata (100 vs 46 properties at ~0.4 coverage; Tables 5-6).
//
// As in the paper, the generator plants the relevant corner case: movies
// that share the same title but were produced in different years
// (remakes), so that a correct rule must also compare the release date
// (Section 6.2, "Comparison With Manually Created Linkage Rules").

#ifndef GENLINK_DATASETS_LINKEDMDB_H_
#define GENLINK_DATASETS_LINKEDMDB_H_

#include "common/random.h"
#include "datasets/matching_task.h"

namespace genlink {

/// Knobs of the LinkedMDB generator.
struct LinkedMdbConfig {
  double scale = 1.0;
  size_t num_linkedmdb = 199;
  size_t num_dbpedia = 174;
  size_t num_positive_links = 100;
  /// Number of remake groups (same title, different year).
  size_t num_remakes = 15;
  /// Probability of case noise on DBpedia titles. Real DBpedia and
  /// LinkedMDB labels for the same movie usually match exactly, so this
  /// is low; the hardness of the task comes from the remakes and the
  /// same-year negatives, not from string noise.
  double case_noise_probability = 0.05;
  /// Probability of a " (film)" qualifier on the DBpedia name.
  double film_suffix_probability = 0.1;
  uint64_t seed = 5;
};

/// Generates the LinkedMDB-like cross-schema task. Negative links
/// include the planted remake pairs (same title, different year).
MatchingTask GenerateLinkedMdb(const LinkedMdbConfig& config = {});

}  // namespace genlink

#endif  // GENLINK_DATASETS_LINKEDMDB_H_
