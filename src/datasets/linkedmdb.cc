#include "datasets/linkedmdb.h"

#include "common/string_util.h"
#include "datasets/name_pools.h"
#include "datasets/noise.h"

namespace genlink {
namespace {

struct Movie {
  std::string title;
  std::string year;     // release year
  std::string date;     // full release date "YYYY-MM-DD"
  std::string director;
};

std::string RandomTitle(Rng& rng) {
  auto words = pools::MovieWords();
  size_t n = 2 + rng.PickIndex(3);
  std::vector<std::string> parts;
  parts.emplace_back("the");
  for (size_t i = 0; i < n - 1; ++i) {
    parts.emplace_back(words[rng.PickIndex(words.size())]);
  }
  return Join(parts, " ");
}

Movie RandomMovie(Rng& rng) {
  Movie movie;
  movie.title = RandomTitle(rng);
  int year = 1950 + static_cast<int>(rng.PickIndex(60));
  movie.year = std::to_string(year);
  int month = 1 + static_cast<int>(rng.PickIndex(12));
  int day = 1 + static_cast<int>(rng.PickIndex(28));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  movie.date = buf;
  movie.director =
      std::string(pools::FirstNames()[rng.PickIndex(pools::FirstNames().size())]) +
      " " +
      std::string(pools::LastNames()[rng.PickIndex(pools::LastNames().size())]);
  return movie;
}

}  // namespace

MatchingTask GenerateLinkedMdb(const LinkedMdbConfig& config) {
  Rng rng(config.seed);
  MatchingTask task;
  task.name = "linkedmdb";
  task.a.set_name("linkedmdb");
  task.b.set_name("dbpedia");

  const size_t num_a =
      std::max<size_t>(4, static_cast<size_t>(config.num_linkedmdb * config.scale));
  const size_t num_b =
      std::max<size_t>(4, static_cast<size_t>(config.num_dbpedia * config.scale));
  const size_t num_links = std::min(
      std::min(num_a, num_b),
      std::max<size_t>(2,
                       static_cast<size_t>(config.num_positive_links * config.scale)));
  const size_t num_remakes = std::min(
      num_links / 2,
      std::max<size_t>(1, static_cast<size_t>(config.num_remakes * config.scale)));

  // LinkedMDB core properties (fillers bring the width to 100).
  PropertyId lm_label = task.a.schema().AddProperty("label");
  PropertyId lm_date = task.a.schema().AddProperty("initial_release_date");
  PropertyId lm_director = task.a.schema().AddProperty("director_name");

  // DBpedia core properties (fillers bring the width to 46).
  PropertyId db_name = task.b.schema().AddProperty("name");
  PropertyId db_release = task.b.schema().AddProperty("releaseDate");
  PropertyId db_director = task.b.schema().AddProperty("director");

  int lm_id = 0, db_id = 0;

  auto lm_entity = [&](const Movie& movie) {
    Entity entity("lmdb" + std::to_string(lm_id++));
    entity.AddValue(lm_label, movie.title);
    entity.AddValue(lm_date, movie.date);
    if (rng.Bernoulli(0.8)) entity.AddValue(lm_director, movie.director);
    Status s = task.a.AddEntity(std::move(entity));
    (void)s;
    return "lmdb" + std::to_string(lm_id - 1);
  };
  auto db_entity = [&](const Movie& movie) {
    Entity entity("dbpm" + std::to_string(db_id++));
    std::string name = movie.title;
    if (rng.Bernoulli(config.case_noise_probability)) {
      name = RandomCaseStyle(name, rng);
    }
    if (rng.Bernoulli(config.film_suffix_probability)) name += " (film)";
    entity.AddValue(db_name, name);
    // The two sources disagree about the exact release date (premiere
    // vs country release): up to a few weeks apart, sometimes only the
    // year. An exact-date equality therefore cannot act as a key; the
    // rule needs a date comparison with a learned tolerance.
    std::string release = movie.date;
    if (rng.Bernoulli(0.6)) {
      int year = std::stoi(movie.date.substr(0, 4));
      int month = 1 + static_cast<int>(rng.PickIndex(12));
      int day = 1 + static_cast<int>(rng.PickIndex(28));
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
      release = buf;
    } else if (rng.Bernoulli(0.3)) {
      release = movie.date.substr(0, 4);  // year only
    }
    entity.AddValue(db_release, release);
    if (rng.Bernoulli(0.7)) entity.AddValue(db_director, movie.director);
    Status s = task.b.AddEntity(std::move(entity));
    (void)s;
    return "dbpm" + std::to_string(db_id - 1);
  };

  // Remake groups: two movies sharing a title but years apart. The
  // matching pairs are linked positively; the cross pairs (same title,
  // different year) become negative reference links - the corner cases
  // the paper's reference link set deliberately contains.
  size_t planted_positives = 0;
  for (size_t r = 0; r < num_remakes && planted_positives + 2 <= num_links; ++r) {
    Movie original = RandomMovie(rng);
    Movie remake = original;
    int remake_year = std::stoi(original.year) + 20 + static_cast<int>(rng.PickIndex(30));
    remake.year = std::to_string(remake_year);
    remake.date = remake.year + original.date.substr(4);
    remake.director =
        std::string(pools::FirstNames()[rng.PickIndex(pools::FirstNames().size())]) +
        " " +
        std::string(pools::LastNames()[rng.PickIndex(pools::LastNames().size())]);

    std::string a1 = lm_entity(original);
    std::string b1 = db_entity(original);
    std::string a2 = lm_entity(remake);
    std::string b2 = db_entity(remake);
    task.links.AddPositive(a1, b1);
    task.links.AddPositive(a2, b2);
    // Same title, wrong year: explicit negatives.
    task.links.AddNegative(a1, b2);
    task.links.AddNegative(a2, b1);
    planted_positives += 2;
  }

  // Ordinary linked movies. A quarter of them get a same-year
  // different-title negative partner, so the release date alone cannot
  // separate the classes either.
  for (size_t i = planted_positives; i < num_links; ++i) {
    Movie movie = RandomMovie(rng);
    std::string id_a = lm_entity(movie);
    task.links.AddPositive(id_a, db_entity(movie));
    if (rng.Bernoulli(0.25)) {
      Movie same_year = RandomMovie(rng);
      same_year.year = movie.year;
      same_year.date = movie.year + same_year.date.substr(4);
      task.links.AddNegative(id_a, db_entity(same_year));
    }
  }
  // Unlinked movies on both sides.
  while (task.a.size() < num_a) lm_entity(RandomMovie(rng));
  while (task.b.size() < num_b) db_entity(RandomMovie(rng));

  // Sparse filler properties (Table 6: 100/46 properties at ~0.4).
  AddFillerProperties(task.a, 97, 0.4, "lmProp", rng);
  AddFillerProperties(task.b, 43, 0.4, "dbProp", rng);

  // Top up negatives to match |R+| (the paper: 100/100).
  if (task.links.negatives().size() < task.links.positives().size()) {
    task.links.GenerateNegativesFromPositives(rng);
  }
  return task;
}

}  // namespace genlink
