#include "datasets/dbpedia_drugbank.h"

#include "common/string_util.h"
#include "datasets/name_pools.h"
#include "datasets/noise.h"
#include "datasets/sider_drugbank.h"
#include "text/case_fold.h"

namespace genlink {
namespace {

std::string RandomPubchemId(Rng& rng) {
  return std::to_string(1000 + rng.PickIndex(9000000));
}

}  // namespace

MatchingTask GenerateDbpediaDrugbank(const DbpediaDrugbankConfig& config) {
  Rng rng(config.seed);
  MatchingTask task;
  task.name = "dbpedia-drugbank";
  task.a.set_name("dbpedia");
  task.b.set_name("drugbank");

  const size_t num_a =
      std::max<size_t>(4, static_cast<size_t>(config.num_dbpedia * config.scale));
  const size_t num_b =
      std::max<size_t>(4, static_cast<size_t>(config.num_drugbank * config.scale));
  const size_t num_links = std::min(
      std::min(num_a, num_b),
      std::max<size_t>(2,
                       static_cast<size_t>(config.num_positive_links * config.scale)));

  // DBpedia core properties (fillers bring the width to 110 at 0.3).
  PropertyId da_label = task.a.schema().AddProperty("label");
  PropertyId da_synonym = task.a.schema().AddProperty("synonym");
  PropertyId da_cas = task.a.schema().AddProperty("casNumber");
  PropertyId da_atc = task.a.schema().AddProperty("atcPrefix");
  PropertyId da_pubchem = task.a.schema().AddProperty("pubchem");

  // DrugBank core properties (fillers bring the width to 79 at 0.5).
  PropertyId db_name = task.b.schema().AddProperty("genericName");
  PropertyId db_brand = task.b.schema().AddProperty("brandName");
  PropertyId db_cas = task.b.schema().AddProperty("casRegistryNumber");
  PropertyId db_atc = task.b.schema().AddProperty("atcCode");
  PropertyId db_pubchem = task.b.schema().AddProperty("pubchemCompoundId");

  int a_id = 0, b_id = 0;

  struct Drug {
    std::string name;
    std::vector<std::string> synonyms;
    std::string cas;
    std::string atc;
    std::string pubchem;
    bool has_cas, has_atc, has_pubchem;
  };
  auto random_drug = [&](bool linked) {
    Drug drug;
    drug.name = RandomDrugName(rng);
    size_t num_synonyms = rng.PickIndex(3);
    for (size_t s = 0; s < num_synonyms; ++s) {
      drug.synonyms.push_back(RandomDrugName(rng));
    }
    drug.cas = RandomCasNumber(rng);
    drug.atc = std::string(1, static_cast<char>('A' + rng.PickIndex(14))) +
               std::to_string(rng.PickIndex(10)) + std::to_string(rng.PickIndex(10));
    drug.pubchem = RandomPubchemId(rng);
    drug.has_cas = rng.Bernoulli(config.cas_coverage);
    drug.has_atc = rng.Bernoulli(config.atc_coverage);
    drug.has_pubchem = rng.Bernoulli(config.pubchem_coverage);
    (void)linked;
    return drug;
  };

  auto dbpedia_entity = [&](const Drug& drug) {
    Entity entity("dbpd" + std::to_string(a_id++));
    std::string label = drug.name;
    if (rng.Bernoulli(config.name_noise_probability)) {
      label = RandomCaseStyle(label, rng);
    }
    if (rng.Bernoulli(0.25)) label += " (drug)";
    entity.AddValue(da_label, label);
    // DBpedia synonym lists mix the generic name with the synonyms.
    for (const auto& synonym : drug.synonyms) {
      entity.AddValue(da_synonym, synonym);
    }
    if (rng.Bernoulli(0.5)) entity.AddValue(da_synonym, drug.name);
    if (drug.has_cas) entity.AddValue(da_cas, drug.cas);
    if (drug.has_atc) entity.AddValue(da_atc, drug.atc);
    if (drug.has_pubchem) entity.AddValue(da_pubchem, drug.pubchem);
    Status s = task.a.AddEntity(std::move(entity));
    (void)s;
    return "dbpd" + std::to_string(a_id - 1);
  };

  auto drugbank_entity = [&](const Drug& drug) {
    Entity entity("dbk" + std::to_string(b_id++));
    entity.AddValue(db_name, ToLowerAscii(drug.name));
    // Brand names: synonyms, sometimes decorated.
    for (const auto& synonym : drug.synonyms) {
      std::string brand = synonym;
      if (rng.Bernoulli(0.3)) brand = RandomCaseStyle(brand, rng);
      entity.AddValue(db_brand, brand);
    }
    if (drug.has_cas) {
      // DrugBank often stores the CAS number without dashes.
      entity.AddValue(db_cas, rng.Bernoulli(0.5) ? drug.cas
                                                 : ReplaceAll(drug.cas, "-", ""));
    }
    if (drug.has_atc && rng.Bernoulli(0.8)) entity.AddValue(db_atc, drug.atc);
    if (drug.has_pubchem && rng.Bernoulli(0.8)) {
      entity.AddValue(db_pubchem, drug.pubchem);
    }
    Status s = task.b.AddEntity(std::move(entity));
    (void)s;
    return "dbk" + std::to_string(b_id - 1);
  };

  for (size_t i = 0; i < num_links; ++i) {
    Drug drug = random_drug(true);
    task.links.AddPositive(dbpedia_entity(drug), drugbank_entity(drug));
  }
  while (task.a.size() < num_a) dbpedia_entity(random_drug(false));
  while (task.b.size() < num_b) drugbank_entity(random_drug(false));

  // Filler properties reproduce Table 6's width and coverage.
  AddFillerProperties(task.a, 105, 0.3, "dbpProp", rng);
  AddFillerProperties(task.b, 74, 0.5, "dbkProp", rng);

  task.links.GenerateNegativesFromPositives(rng);
  return task;
}

}  // namespace genlink
