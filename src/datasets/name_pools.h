// Vocabulary pools the synthetic generators draw from: person names,
// research-paper vocabulary, venue names with their abbreviations,
// cities with coordinates, streets, cuisines, drug-name fragments and
// movie vocabulary.

#ifndef GENLINK_DATASETS_NAME_POOLS_H_
#define GENLINK_DATASETS_NAME_POOLS_H_

#include <span>
#include <string_view>

namespace genlink {
namespace pools {

/// A venue with its common abbreviation ("Very Large Data Bases" /
/// "VLDB").
struct Venue {
  std::string_view full;
  std::string_view abbrev;
};

/// A city with WGS84 coordinates.
struct City {
  std::string_view name;
  double lat;
  double lon;
};

std::span<const std::string_view> FirstNames();
std::span<const std::string_view> LastNames();
std::span<const std::string_view> TitleWords();
std::span<const Venue> Venues();
std::span<const City> Cities();
std::span<const std::string_view> StreetNames();
std::span<const std::string_view> RestaurantWords();
std::span<const std::string_view> Cuisines();
std::span<const std::string_view> DrugSyllables();
std::span<const std::string_view> MovieWords();
std::span<const std::string_view> LocationSuffixes();

}  // namespace pools
}  // namespace genlink

#endif  // GENLINK_DATASETS_NAME_POOLS_H_
