#include "datasets/noise.h"

#include <cctype>

#include "common/string_util.h"
#include "text/case_fold.h"

namespace genlink {

std::string InjectTypo(std::string_view text, Rng& rng) {
  std::string out(text);
  if (out.empty()) return out;
  constexpr std::string_view kLetters = "abcdefghijklmnopqrstuvwxyz";
  size_t pos = rng.PickIndex(out.size());
  switch (rng.UniformInt(0, 3)) {
    case 0:  // substitution
      out[pos] = kLetters[rng.PickIndex(kLetters.size())];
      break;
    case 1:  // deletion
      out.erase(pos, 1);
      break;
    case 2:  // insertion
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos),
                 kLetters[rng.PickIndex(kLetters.size())]);
      break;
    default:  // adjacent transposition
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string InjectTypos(std::string_view text, size_t max_typos, Rng& rng) {
  std::string out(text);
  size_t n = static_cast<size_t>(rng.UniformInt(1, std::max<int64_t>(1, max_typos)));
  for (size_t i = 0; i < n; ++i) out = InjectTypo(out, rng);
  return out;
}

std::string RandomCaseStyle(std::string_view text, Rng& rng) {
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return ToUpperAscii(text);
    case 1:
      return ToLowerAscii(text);
    default: {
      // Title Case.
      std::string out = ToLowerAscii(text);
      bool start_of_word = true;
      for (char& c : out) {
        if (std::isalpha(static_cast<unsigned char>(c))) {
          if (start_of_word) c = static_cast<char>(std::toupper(c));
          start_of_word = false;
        } else {
          start_of_word = true;
        }
      }
      return out;
    }
  }
}

std::string ShuffleTokens(std::string_view text, Rng& rng) {
  auto tokens = SplitWhitespace(text);
  rng.Shuffle(tokens);
  return Join(tokens, " ");
}

std::string DropRandomToken(std::string_view text, Rng& rng) {
  auto tokens = SplitWhitespace(text);
  if (tokens.size() <= 1) return std::string(text);
  tokens.erase(tokens.begin() + static_cast<ptrdiff_t>(rng.PickIndex(tokens.size())));
  return Join(tokens, " ");
}

std::string AbbreviateTokens(std::string_view text, double probability, Rng& rng) {
  auto tokens = SplitWhitespace(text);
  for (auto& token : tokens) {
    if (token.size() > 3 && rng.Bernoulli(probability)) {
      token = std::string(1, token[0]) + ".";
    }
  }
  return Join(tokens, " ");
}

std::string RandomWord(size_t length, Rng& rng) {
  constexpr std::string_view kVowels = "aeiou";
  constexpr std::string_view kConsonants = "bcdfghjklmnpqrstvwz";
  std::string out;
  out.reserve(length);
  bool vowel = rng.Bernoulli(0.3);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(vowel ? kVowels[rng.PickIndex(kVowels.size())]
                        : kConsonants[rng.PickIndex(kConsonants.size())]);
    vowel = !vowel;
  }
  return out;
}

void AddFillerProperties(Dataset& dataset, size_t count, double coverage,
                         std::string_view prefix, Rng& rng) {
  std::vector<PropertyId> props;
  props.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    props.push_back(
        dataset.schema().AddProperty(std::string(prefix) + std::to_string(i)));
  }
  for (size_t e = 0; e < dataset.size(); ++e) {
    Entity& entity = dataset.mutable_entity(e);
    for (PropertyId p : props) {
      if (rng.Bernoulli(coverage)) {
        entity.AddValue(p, RandomWord(4 + rng.PickIndex(6), rng));
      }
    }
  }
}

}  // namespace genlink
