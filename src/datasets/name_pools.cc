#include "datasets/name_pools.h"

namespace genlink {
namespace pools {
namespace {

constexpr std::string_view kFirstNames[] = {
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "christopher",
    "nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
    "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
    "emily", "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy",
    "kevin", "carol", "brian", "amanda", "george", "melissa", "edward",
    "deborah", "ronald", "stephanie", "timothy", "rebecca", "jason", "sharon",
    "jeffrey", "laura", "ryan", "cynthia", "jacob", "kathleen", "gary", "amy",
    "nicholas", "shirley", "eric", "angela", "jonathan", "helen", "stephen",
    "anna", "larry", "brenda", "justin", "pamela", "scott", "nicole",
    "brandon", "emma",
};

constexpr std::string_view kLastNames[] = {
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
    "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
    "cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
    "kim", "cox", "ward", "richardson",
};

constexpr std::string_view kTitleWords[] = {
    "learning",     "adaptive",   "efficient",   "distributed", "parallel",
    "scalable",     "incremental", "approximate", "probabilistic", "robust",
    "matching",     "linkage",    "detection",   "resolution",  "integration",
    "deduplication", "clustering", "indexing",   "retrieval",   "extraction",
    "classification", "estimation", "optimization", "evaluation", "analysis",
    "records",      "entities",   "databases",   "graphs",      "streams",
    "queries",      "transactions", "schemas",   "ontologies",  "networks",
    "models",       "algorithms", "methods",     "systems",     "frameworks",
    "semantic",     "relational", "temporal",    "spatial",     "heterogeneous",
    "large",        "web",        "data",        "knowledge",   "information",
    "genetic",      "evolutionary", "statistical", "structural", "similarity",
    "duplicate",    "string",     "automatic",   "interactive", "supervised",
};

constexpr Venue kVenues[] = {
    {"very large data bases", "vldb"},
    {"international conference on management of data", "sigmod"},
    {"international conference on data engineering", "icde"},
    {"knowledge discovery and data mining", "kdd"},
    {"conference on information and knowledge management", "cikm"},
    {"extending database technology", "edbt"},
    {"international world wide web conference", "www"},
    {"international semantic web conference", "iswc"},
    {"artificial intelligence", "aaai"},
    {"machine learning", "icml"},
    {"neural information processing systems", "nips"},
    {"computational linguistics", "acl"},
    {"database and expert systems applications", "dexa"},
    {"symposium on principles of database systems", "pods"},
    {"european conference on machine learning", "ecml"},
    {"international joint conference on artificial intelligence", "ijcai"},
    {"data and knowledge engineering", "dke"},
    {"transactions on knowledge and data engineering", "tkde"},
    {"journal of machine learning research", "jmlr"},
    {"information systems", "is"},
};

constexpr City kCities[] = {
    {"new york", 40.7128, -74.0060},     {"los angeles", 34.0522, -118.2437},
    {"chicago", 41.8781, -87.6298},      {"houston", 29.7604, -95.3698},
    {"phoenix", 33.4484, -112.0740},     {"philadelphia", 39.9526, -75.1652},
    {"san antonio", 29.4241, -98.4936},  {"san diego", 32.7157, -117.1611},
    {"dallas", 32.7767, -96.7970},       {"san jose", 37.3382, -121.8863},
    {"austin", 30.2672, -97.7431},       {"boston", 42.3601, -71.0589},
    {"seattle", 47.6062, -122.3321},     {"denver", 39.7392, -104.9903},
    {"detroit", 42.3314, -83.0458},      {"portland", 45.5152, -122.6784},
    {"memphis", 35.1495, -90.0490},      {"baltimore", 39.2904, -76.6122},
    {"milwaukee", 43.0389, -87.9065},    {"albuquerque", 35.0844, -106.6504},
    {"tucson", 32.2226, -110.9747},      {"sacramento", 38.5816, -121.4944},
    {"kansas city", 39.0997, -94.5786},  {"atlanta", 33.7490, -84.3880},
    {"omaha", 41.2565, -95.9345},        {"miami", 25.7617, -80.1918},
    {"oakland", 37.8044, -122.2712},     {"minneapolis", 44.9778, -93.2650},
    {"cleveland", 41.4993, -81.6944},    {"new orleans", 29.9511, -90.0715},
    {"london", 51.5074, -0.1278},        {"paris", 48.8566, 2.3522},
    {"berlin", 52.5200, 13.4050},        {"madrid", 40.4168, -3.7038},
    {"rome", 41.9028, 12.4964},          {"vienna", 48.2082, 16.3738},
    {"amsterdam", 52.3676, 4.9041},      {"brussels", 50.8503, 4.3517},
    {"munich", 48.1351, 11.5820},        {"zurich", 47.3769, 8.5417},
    {"istanbul", 41.0082, 28.9784},      {"tokyo", 35.6762, 139.6503},
    {"sydney", -33.8688, 151.2093},      {"toronto", 43.6532, -79.3832},
    {"dublin", 53.3498, -6.2603},        {"lisbon", 38.7223, -9.1393},
    {"prague", 50.0755, 14.4378},        {"warsaw", 52.2297, 21.0122},
    {"budapest", 47.4979, 19.0402},      {"copenhagen", 55.6761, 12.5683},
};

constexpr std::string_view kStreetNames[] = {
    "main st",      "oak ave",       "maple dr",    "cedar ln",
    "park ave",     "elm st",        "washington blvd", "lake view rd",
    "sunset blvd",  "broadway",      "river rd",    "hill st",
    "church st",    "market st",     "union ave",   "highland ave",
    "5th ave",      "2nd st",        "canal st",    "spring st",
    "grand ave",    "franklin st",   "jefferson ave", "lincoln blvd",
    "madison ave",  "monroe st",     "adams blvd",  "jackson st",
    "pico blvd",    "wilshire blvd", "melrose ave", "la cienega blvd",
};

constexpr std::string_view kRestaurantWords[] = {
    "golden",  "blue",    "little",  "grand",   "royal",  "silver",
    "red",     "green",   "olive",   "garden",  "palace", "corner",
    "house",   "kitchen", "grill",   "bistro",  "cafe",   "tavern",
    "dragon",  "lotus",   "pearl",   "sunset",  "harbor", "village",
    "brothers", "mama",   "papa",    "old",     "new",    "star",
};

constexpr std::string_view kCuisines[] = {
    "american",  "italian", "french",   "chinese",  "japanese", "mexican",
    "thai",      "indian",  "greek",    "spanish",  "seafood",  "steakhouse",
    "barbecue",  "deli",    "pizzeria", "vegetarian", "mediterranean",
    "vietnamese", "korean", "cajun",
};

constexpr std::string_view kDrugSyllables[] = {
    "ab", "aci", "ado", "al", "am", "ana", "ast", "ato", "az", "ben",
    "bi", "bro", "ca", "cef", "chlor", "ci", "clo", "cor", "cy", "dex",
    "di", "dol", "dro", "ef", "en", "er", "eth", "fen", "flu", "gab",
    "gli", "hydro", "ib", "il", "im", "in", "keto", "lam", "lev", "lin",
    "lo", "mab", "met", "mi", "mo", "na", "ne", "ni", "ol", "olol",
    "on", "oxa", "pam", "pen", "phen", "pra", "pro", "quin", "ra", "ri",
    "ro", "sal", "ser", "sta", "sul", "ta", "ter", "thio", "tin", "tol",
    "tra", "tri", "va", "ver", "vir", "xa", "zi", "zol", "zu", "zy",
};

constexpr std::string_view kMovieWords[] = {
    "night",   "day",     "last",    "first",   "dark",    "lost",
    "return",  "rise",    "fall",    "king",    "queen",   "city",
    "house",   "street",  "dream",   "shadow",  "light",   "fire",
    "water",   "storm",   "silent",  "broken",  "hidden",  "secret",
    "golden",  "black",   "white",   "red",     "blood",   "heart",
    "love",    "death",   "life",    "war",     "game",    "story",
    "legend",  "summer",  "winter",  "midnight", "morning", "stranger",
    "ghost",   "angel",   "devil",   "river",   "mountain", "island",
};

constexpr std::string_view kLocationSuffixes[] = {
    "county", "district", "park", "square", "heights", "valley",
    "beach",  "harbor",   "falls", "springs", "junction", "ridge",
};

}  // namespace

std::span<const std::string_view> FirstNames() { return kFirstNames; }
std::span<const std::string_view> LastNames() { return kLastNames; }
std::span<const std::string_view> TitleWords() { return kTitleWords; }
std::span<const Venue> Venues() { return kVenues; }
std::span<const City> Cities() { return kCities; }
std::span<const std::string_view> StreetNames() { return kStreetNames; }
std::span<const std::string_view> RestaurantWords() { return kRestaurantWords; }
std::span<const std::string_view> Cuisines() { return kCuisines; }
std::span<const std::string_view> DrugSyllables() { return kDrugSyllables; }
std::span<const std::string_view> MovieWords() { return kMovieWords; }
std::span<const std::string_view> LocationSuffixes() { return kLocationSuffixes; }

}  // namespace pools
}  // namespace genlink
