// Synthetic stand-in for the OAEI 2010 Sider-DrugBank interlinking task:
// 924 Sider drugs (8 properties, full coverage) vs 4772 DrugBank drugs
// (79 properties, ~0.5 coverage), 859 positive links (Tables 5-6).
//
// The matching signal is heterogeneous: drug names match with case and
// punctuation variation, and shared identifiers (CAS-number-like, ATC
// codes) exist for only part of the entities — so disjunctive
// (max-aggregation) rules outperform purely conjunctive ones, matching
// the Table 13 result that non-linear rules win on this data set.

#ifndef GENLINK_DATASETS_SIDER_DRUGBANK_H_
#define GENLINK_DATASETS_SIDER_DRUGBANK_H_

#include "common/random.h"
#include "datasets/matching_task.h"

namespace genlink {

/// Knobs of the Sider-DrugBank generator.
struct SiderDrugbankConfig {
  double scale = 1.0;
  size_t num_sider = 924;
  size_t num_drugbank = 4772;
  size_t num_positive_links = 859;
  /// Fraction of linked drugs that carry a shared CAS-like identifier.
  double cas_coverage = 0.6;
  /// Probability of case noise on names.
  double case_noise_probability = 0.4;
  /// Probability of a small typo in the DrugBank name.
  double typo_probability = 0.15;
  /// Coverage of the DrugBank filler properties (Table 6: ~0.5).
  double drugbank_filler_coverage = 0.5;
  uint64_t seed = 3;
};

/// Generates the Sider-DrugBank-like cross-schema task.
MatchingTask GenerateSiderDrugbank(const SiderDrugbankConfig& config = {});

/// Builds a pronounceable drug name from syllables (shared with the
/// DBpedia-DrugBank generator).
std::string RandomDrugName(Rng& rng);

/// Formats a CAS-like registry number "NNNNN-NN-N".
std::string RandomCasNumber(Rng& rng);

}  // namespace genlink

#endif  // GENLINK_DATASETS_SIDER_DRUGBANK_H_
