#include "datasets/nyt.h"

#include <cctype>

#include "common/string_util.h"
#include "datasets/name_pools.h"
#include "datasets/noise.h"
#include "text/case_fold.h"

namespace genlink {
namespace {

struct Location {
  std::string name;  // lowercase words, e.g. "madison heights"
  double lat;
  double lon;
};

Location RandomLocation(Rng& rng) {
  Location loc;
  const auto& base = pools::Cities()[rng.PickIndex(pools::Cities().size())];
  // Derive a synthetic place near a real city; suffixes create distinct
  // places ("chicago heights", "chicago ridge", ...).
  if (rng.Bernoulli(0.6)) {
    loc.name = std::string(base.name) + " " +
               std::string(pools::LocationSuffixes()[rng.PickIndex(
                   pools::LocationSuffixes().size())]);
  } else {
    loc.name = std::string(pools::LastNames()[rng.PickIndex(
                   pools::LastNames().size())]) +
               " " +
               std::string(pools::LocationSuffixes()[rng.PickIndex(
                   pools::LocationSuffixes().size())]);
  }
  loc.lat = base.lat + rng.Uniform(-0.8, 0.8);
  loc.lon = base.lon + rng.Uniform(-0.8, 0.8);
  return loc;
}

std::string TitleCase(std::string_view text) {
  std::string out = ToLowerAscii(text);
  bool start = true;
  for (char& c : out) {
    if (c == ' ') {
      start = true;
    } else if (start) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      start = false;
    }
  }
  return out;
}

std::string DbpediaUri(const std::string& name) {
  return "http://dbpedia.org/resource/" + ReplaceAll(TitleCase(name), " ", "_");
}

}  // namespace

MatchingTask GenerateNyt(const NytConfig& config) {
  Rng rng(config.seed);
  MatchingTask task;
  task.name = "nyt";
  task.a.set_name("nyt");
  task.b.set_name("dbpedia");

  const size_t num_nyt =
      std::max<size_t>(4, static_cast<size_t>(config.num_nyt * config.scale));
  const size_t num_dbpedia =
      std::max<size_t>(4, static_cast<size_t>(config.num_dbpedia * config.scale));
  // A sixth of the DBpedia records is reserved for homonym places (hard
  // negatives); the rest can carry positive links.
  size_t homonym_budget = num_dbpedia / 6;
  const size_t num_links = std::min(
      std::min(num_nyt, num_dbpedia - homonym_budget),
      std::max<size_t>(2,
                       static_cast<size_t>(config.num_positive_links * config.scale)));

  // NYT core properties (fillers bring the width to 38 at low coverage).
  PropertyId ny_name = task.a.schema().AddProperty("name");
  PropertyId ny_lat = task.a.schema().AddProperty("latitude");
  PropertyId ny_lon = task.a.schema().AddProperty("longitude");
  PropertyId ny_topic = task.a.schema().AddProperty("topicPage");

  // DBpedia core properties (fillers bring the width to 110).
  PropertyId db_label = task.b.schema().AddProperty("label");
  PropertyId db_point = task.b.schema().AddProperty("point");
  PropertyId db_abstract = task.b.schema().AddProperty("abstract");

  int nyt_id = 0, dbp_id = 0;

  auto nyt_entity = [&](const Location& loc, bool linked) {
    Entity entity("nyt" + std::to_string(nyt_id++));
    std::string name = TitleCase(loc.name);
    if (rng.Bernoulli(config.qualifier_probability)) {
      static constexpr std::string_view kQualifiers[] = {
          " (N.Y.)", " (Calif.)", " (Area)", ", USA", " (District)",
      };
      name += kQualifiers[rng.PickIndex(std::size(kQualifiers))];
    }
    entity.AddValue(ny_name, name);
    // NYT stores coordinates as separate decimal properties, partially
    // covered.
    if (rng.Bernoulli(0.7)) {
      entity.AddValue(ny_lat, FormatDouble(loc.lat, 5));
      entity.AddValue(ny_lon, FormatDouble(loc.lon, 5));
    }
    if (rng.Bernoulli(0.3)) {
      entity.AddValue(ny_topic, "topic/" + ReplaceAll(loc.name, " ", "-"));
    }
    (void)linked;
    Status s = task.a.AddEntity(std::move(entity));
    (void)s;
    return "nyt" + std::to_string(nyt_id - 1);
  };

  auto dbpedia_entity = [&](const Location& loc) {
    Entity entity("dbp" + std::to_string(dbp_id++));
    // The label is the resource URI: matching it against NYT names
    // requires stripUriPrefix (+ lowerCase).
    entity.AddValue(db_label, DbpediaUri(loc.name));
    if (rng.Bernoulli(config.coordinate_coverage)) {
      double lat = loc.lat + rng.Gaussian(0.0, config.coordinate_jitter_degrees);
      double lon = loc.lon + rng.Gaussian(0.0, config.coordinate_jitter_degrees);
      entity.AddValue(db_point,
                      FormatDouble(lat, 5) + " " + FormatDouble(lon, 5));
    }
    if (rng.Bernoulli(0.4)) {
      entity.AddValue(db_abstract, loc.name + " is a place in the " +
                                       RandomWord(6, rng) + " region");
    }
    Status s = task.b.AddEntity(std::move(entity));
    (void)s;
    return "dbp" + std::to_string(dbp_id - 1);
  };

  // Linked locations.
  for (size_t i = 0; i < num_links; ++i) {
    Location loc = RandomLocation(rng);
    std::string id_a = nyt_entity(loc, true);
    std::string id_b = dbpedia_entity(loc);
    task.links.AddPositive(id_a, id_b);
    // Homonyms: a *different* place with the same name elsewhere
    // ("Springfield"). These are explicit hard negatives - a rule that
    // only normalizes and compares the labels cannot tell them apart;
    // it must also consult the coordinates. This is what separates the
    // full representation from label-only rules on NYT (Table 13).
    if (homonym_budget > 0 && rng.Bernoulli(0.25)) {
      --homonym_budget;
      Location homonym = RandomLocation(rng);
      homonym.name = loc.name;
      std::string id_h = dbpedia_entity(homonym);
      task.links.AddNegative(id_a, id_h);
    }
  }
  // Unlinked records on both sides.
  while (task.a.size() < num_nyt) nyt_entity(RandomLocation(rng), false);
  while (task.b.size() < num_dbpedia) dbpedia_entity(RandomLocation(rng));

  // Sparse filler properties reproduce Table 6's coverage (0.3 / 0.2).
  AddFillerProperties(task.a, 34, 0.25, "nytProp", rng);
  AddFillerProperties(task.b, 107, 0.15, "dbpProp", rng);

  task.links.GenerateNegativesFromPositives(rng);
  return task;
}

}  // namespace genlink
