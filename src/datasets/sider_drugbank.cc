#include "datasets/sider_drugbank.h"

#include "common/string_util.h"
#include "datasets/name_pools.h"
#include "datasets/noise.h"
#include "text/case_fold.h"

namespace genlink {

std::string RandomDrugName(Rng& rng) {
  auto syllables = pools::DrugSyllables();
  size_t n = 2 + rng.PickIndex(3);
  std::string name;
  for (size_t i = 0; i < n; ++i) {
    name += syllables[rng.PickIndex(syllables.size())];
  }
  return name;
}

std::string RandomCasNumber(Rng& rng) {
  std::string cas;
  for (int i = 0; i < 5; ++i) cas.push_back(static_cast<char>('0' + rng.PickIndex(10)));
  cas.push_back('-');
  for (int i = 0; i < 2; ++i) cas.push_back(static_cast<char>('0' + rng.PickIndex(10)));
  cas.push_back('-');
  cas.push_back(static_cast<char>('0' + rng.PickIndex(10)));
  return cas;
}

namespace {

std::string RandomAtcCode(Rng& rng) {
  // ATC codes are therapeutic *classes*: many different drugs share one.
  // Drawing from a small pool keeps them weak evidence (high recall, low
  // precision) rather than a key.
  std::string atc;
  atc.push_back(static_cast<char>('A' + rng.PickIndex(6)));
  atc.push_back(static_cast<char>('0' + rng.PickIndex(2)));
  atc.push_back(static_cast<char>('0' + rng.PickIndex(5)));
  return atc;
}

std::string RandomSideEffect(Rng& rng) {
  static constexpr std::string_view kEffects[] = {
      "headache", "nausea",    "dizziness", "fatigue",  "insomnia",
      "rash",     "dry mouth", "vomiting",  "diarrhea", "constipation",
      "anxiety",  "tremor",    "fever",     "cough",    "pruritus",
  };
  return std::string(kEffects[rng.PickIndex(std::size(kEffects))]);
}

}  // namespace

MatchingTask GenerateSiderDrugbank(const SiderDrugbankConfig& config) {
  Rng rng(config.seed);
  MatchingTask task;
  task.name = "sider-drugbank";
  task.a.set_name("sider");
  task.b.set_name("drugbank");

  const size_t num_sider =
      std::max<size_t>(4, static_cast<size_t>(config.num_sider * config.scale));
  const size_t num_drugbank =
      std::max<size_t>(4, static_cast<size_t>(config.num_drugbank * config.scale));
  const size_t num_links = std::min(
      std::min(num_sider, num_drugbank),
      std::max<size_t>(2, static_cast<size_t>(config.num_positive_links * config.scale)));

  // Sider schema (8 properties, Table 6).
  PropertyId sa_name = task.a.schema().AddProperty("drugName");
  PropertyId sa_label = task.a.schema().AddProperty("label");
  PropertyId sa_cas = task.a.schema().AddProperty("casNumber");
  PropertyId sa_atc = task.a.schema().AddProperty("atcCode");
  PropertyId sa_effect = task.a.schema().AddProperty("sideEffect");
  PropertyId sa_indic = task.a.schema().AddProperty("indication");
  PropertyId sa_dose = task.a.schema().AddProperty("dosage");
  PropertyId sa_id = task.a.schema().AddProperty("siderId");

  // DrugBank core schema; fillers bring the total to 79.
  PropertyId db_name = task.b.schema().AddProperty("name");
  PropertyId db_generic = task.b.schema().AddProperty("genericName");
  PropertyId db_cas = task.b.schema().AddProperty("casRegistryNumber");
  PropertyId db_atc = task.b.schema().AddProperty("atcCodes");
  PropertyId db_desc = task.b.schema().AddProperty("description");
  PropertyId db_id = task.b.schema().AddProperty("drugbankId");

  int sider_id = 0, drugbank_id = 0;

  // Linked drugs: one Sider and one DrugBank record about the same drug.
  // In the real data the DrugBank display name is frequently a *brand*
  // name while Sider carries the generic name; on those links the names
  // do not match and only the partially covered shared identifiers (CAS,
  // ATC) or the genericName field connect the records — which is what
  // makes a disjunctive rule necessary (cf. Table 9's hard OAEI task).
  for (size_t i = 0; i < num_links; ++i) {
    std::string name = RandomDrugName(rng);
    std::string cas = RandomCasNumber(rng);
    std::string atc = RandomAtcCode(rng);
    bool has_cas = rng.Bernoulli(config.cas_coverage);
    bool brand_named = rng.Bernoulli(0.35);

    Entity sider("sider" + std::to_string(sider_id++));
    sider.AddValue(sa_name, name);
    sider.AddValue(sa_label, name);
    if (has_cas) sider.AddValue(sa_cas, cas);
    sider.AddValue(sa_atc, atc);
    sider.AddValue(sa_effect, RandomSideEffect(rng));
    sider.AddValue(sa_effect, RandomSideEffect(rng));
    sider.AddValue(sa_indic, RandomSideEffect(rng));
    sider.AddValue(sa_dose, std::to_string(5 * (1 + rng.PickIndex(40))) + " mg");
    sider.AddValue(sa_id, "S" + std::to_string(1000 + sider_id));

    Entity drugbank("drugbank" + std::to_string(drugbank_id++));
    std::string db_name_value = brand_named ? RandomDrugName(rng) : name;
    if (rng.Bernoulli(config.case_noise_probability)) {
      db_name_value = RandomCaseStyle(db_name_value, rng);
    }
    if (rng.Bernoulli(config.typo_probability)) {
      db_name_value = InjectTypo(db_name_value, rng);
    }
    drugbank.AddValue(db_name, db_name_value);
    // The generic name links brand-named records back, but is covered
    // for only part of them.
    if (rng.Bernoulli(brand_named ? 0.5 : 0.7)) {
      drugbank.AddValue(db_generic, name);
    }
    if (has_cas) {
      // DrugBank sometimes stores CAS numbers without dashes.
      drugbank.AddValue(db_cas,
                        rng.Bernoulli(0.5) ? cas : ReplaceAll(cas, "-", ""));
    }
    if (rng.Bernoulli(0.8)) drugbank.AddValue(db_atc, atc);
    drugbank.AddValue(db_desc, "a " + RandomWord(6, rng) + " compound used against " +
                                   RandomSideEffect(rng));
    drugbank.AddValue(db_id, "DB" + std::to_string(10000 + drugbank_id));

    task.links.AddPositive(sider.id(), drugbank.id());
    Status s1 = task.a.AddEntity(std::move(sider));
    Status s2 = task.b.AddEntity(std::move(drugbank));
    (void)s1;
    (void)s2;
  }

  // Unlinked drugs on both sides.
  while (task.a.size() < num_sider) {
    std::string name = RandomDrugName(rng);
    Entity sider("sider" + std::to_string(sider_id++));
    sider.AddValue(sa_name, name);
    sider.AddValue(sa_label, name);
    if (rng.Bernoulli(config.cas_coverage)) sider.AddValue(sa_cas, RandomCasNumber(rng));
    sider.AddValue(sa_atc, RandomAtcCode(rng));
    sider.AddValue(sa_effect, RandomSideEffect(rng));
    sider.AddValue(sa_indic, RandomSideEffect(rng));
    sider.AddValue(sa_dose, std::to_string(5 * (1 + rng.PickIndex(40))) + " mg");
    sider.AddValue(sa_id, "S" + std::to_string(1000 + sider_id));
    Status s = task.a.AddEntity(std::move(sider));
    (void)s;
  }
  while (task.b.size() < num_drugbank) {
    Entity drugbank("drugbank" + std::to_string(drugbank_id++));
    drugbank.AddValue(db_name, RandomDrugName(rng));
    if (rng.Bernoulli(0.5)) drugbank.AddValue(db_cas, RandomCasNumber(rng));
    if (rng.Bernoulli(0.6)) drugbank.AddValue(db_atc, RandomAtcCode(rng));
    drugbank.AddValue(db_id, "DB" + std::to_string(10000 + drugbank_id));
    Status s = task.b.AddEntity(std::move(drugbank));
    (void)s;
  }

  // Filler properties: Sider has full coverage of its 8 core properties;
  // DrugBank's 79-property schema is only half covered (Table 6).
  AddFillerProperties(task.b, 73, config.drugbank_filler_coverage, "dbProp", rng);

  task.links.GenerateNegativesFromPositives(rng);
  return task;
}

}  // namespace genlink
