// Scalable synthetic record-linkage corpus: a person-directory matching
// task (name / address / city / phone / birth year) at configurable
// scale, 10k to millions of entities per side, with a known ground-truth
// link set. The paper's evaluation datasets top out at a few thousand
// records; this generator is what the million-entity blocking and
// matching layers (ROADMAP item 1) are measured against.
//
// Determinism: every record is drawn from its own Rng stream derived
// from (seed, record index), so generation parallelizes over any number
// of threads and still emits byte-identical corpora — same entities,
// same order, same links — for every value of `num_threads` and across
// processes/platforms (the xoshiro Rng is platform-stable).
// tests/synthetic_corpus_test.cc pins a golden fingerprint.
//
// Shape of the data: side A holds one clean record per real-world
// person. Side B holds, for each A record, either a perturbed duplicate
// (probability `duplicate_rate`; ground-truth positive) or an unrelated
// person — which with probability `confusable_rate` shares the street,
// city and last name of its A counterpart (a hard negative, recorded in
// the link set). Perturbations compose the noise machinery of
// datasets/noise.h: typos, case changes, abbreviations, missing fields,
// phone reformatting and outdated phone digits.

#ifndef GENLINK_DATASETS_SYNTHETIC_H_
#define GENLINK_DATASETS_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "datasets/matching_task.h"
#include "model/entity.h"
#include "model/schema.h"

namespace genlink {

/// Knobs of the synthetic corpus generator.
struct SyntheticConfig {
  /// Records per side (|A| == |B|).
  size_t num_entities = 10000;
  /// Probability that the B-side counterpart of an A record is a
  /// perturbed duplicate (a ground-truth positive link).
  double duplicate_rate = 0.35;
  /// Probability that a non-duplicate B record is a confusable hard
  /// negative: shares street, city and last name with its A
  /// counterpart (recorded as a negative link).
  double confusable_rate = 0.1;
  /// Per-text-property probability of a typo in a duplicate.
  double typo_probability = 0.3;
  /// Per-property probability that a duplicate drops the value.
  double missing_field_probability = 0.05;
  /// Probability that a duplicate's phone has its last four digits
  /// changed (an outdated number — the strongest blocking key breaks).
  double phone_change_probability = 0.1;
  /// Probability that a duplicate's phone is reformatted with
  /// separators ("3102461501" -> "310-246-1501"), splitting the one
  /// phone token into three.
  double phone_format_probability = 0.3;
  /// Probability that a duplicate's name changes letter case entirely.
  double case_noise_probability = 0.2;
  /// Top up the link set with permutation negatives (the paper's
  /// scheme) until |R-| >= |R+|, so the task is learner-ready.
  bool permutation_negatives = true;
  /// Generation worker threads (0 = hardware concurrency). Output is
  /// byte-identical for every value.
  size_t num_threads = 1;
  uint64_t seed = 11;
};

/// Generates the synthetic person-directory matching task ("synthetic",
/// two-dataset: a<i> vs b<i> ids). Deterministic in (config) only — see
/// the file comment.
MatchingTask GenerateSynthetic(const SyntheticConfig& config = {});

/// Order-sensitive 64-bit fingerprint of a task: dataset names, schema
/// property names, every entity id and value, and the link set.
/// Byte-stable across processes and platforms; the determinism tests
/// pin generator output with it.
uint64_t FingerprintTask(const MatchingTask& task);

/// Knobs of the streaming delta generator (GenerateSyntheticDeltas).
struct SyntheticDeltaConfig {
  /// The corpus the deltas mutate: the B side of GenerateSynthetic(base)
  /// — ids b0..b<n-1>, person-directory schema. Updates of a b<i> id
  /// regenerate the person behind that index and re-perturb it, so an
  /// update shares blocking tokens with the record it replaces, like a
  /// real-world correction.
  SyntheticConfig base;
  /// Mutations in the stream.
  size_t num_deltas = 1000;
  /// Probability a delta removes a live entity. Removes always target
  /// an id that is live at that point of the stream, so any contiguous
  /// batching of the stream passes LiveCorpus::ApplyBatch validation.
  double delete_rate = 0.2;
  /// Probability an upsert introduces a brand-new entity ("u<k>" ids)
  /// instead of rewriting an existing one.
  double new_entity_rate = 0.25;
  uint64_t seed = 29;
};

/// One streaming mutation: an upsert of `entity`, or — when `remove` is
/// set — a removal of the entity with `entity.id()` (values unused).
struct SyntheticDelta {
  bool remove = false;
  Entity entity;
};

/// A deterministic update/delete stream against the synthetic B-side
/// corpus. `schema` names the property columns the upsert values are
/// stored under (the synthetic person-directory schema).
struct SyntheticDeltas {
  Schema schema;
  std::vector<SyntheticDelta> ops;
};

/// Generates the delta stream. Deterministic in (config) only — same
/// config, same ops, byte for byte, across processes and platforms;
/// tests/synthetic_corpus_test.cc pins a golden fingerprint.
SyntheticDeltas GenerateSyntheticDeltas(const SyntheticDeltaConfig& config = {});

/// Order-sensitive 64-bit fingerprint of a delta stream: schema
/// property names, then every op's kind, id and values.
uint64_t FingerprintDeltas(const SyntheticDeltas& deltas);

}  // namespace genlink

#endif  // GENLINK_DATASETS_SYNTHETIC_H_
