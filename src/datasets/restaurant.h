// Synthetic stand-in for the Restaurant (Fodor's/Zagat's) deduplication
// data set: 864 records over name/address/city/phone/type with 112
// duplicate pairs and full property coverage (Tables 5-6 of the paper).
// The data is near-clean — small format differences in phone numbers,
// minor name typos and cuisine-type synonyms — which is why learners
// reach F-measures around 0.99 quickly (Table 8).

#ifndef GENLINK_DATASETS_RESTAURANT_H_
#define GENLINK_DATASETS_RESTAURANT_H_

#include "common/random.h"
#include "datasets/matching_task.h"

namespace genlink {

/// Knobs of the Restaurant generator.
struct RestaurantConfig {
  double scale = 1.0;
  size_t num_entities = 864;
  size_t num_positive_links = 112;
  double typo_probability = 0.25;
  double phone_format_probability = 0.5;
  double type_synonym_probability = 0.3;
  uint64_t seed = 2;
};

/// Generates the Restaurant-like deduplication task.
MatchingTask GenerateRestaurant(const RestaurantConfig& config = {});

}  // namespace genlink

#endif  // GENLINK_DATASETS_RESTAURANT_H_
