// A complete synthetic matching task: source/target datasets plus
// reference links, the unit every generator returns and every bench
// consumes.

#ifndef GENLINK_DATASETS_MATCHING_TASK_H_
#define GENLINK_DATASETS_MATCHING_TASK_H_

#include <string>

#include "model/dataset.h"
#include "model/reference_links.h"

namespace genlink {

/// One generated matching task.
struct MatchingTask {
  std::string name;
  Dataset a;
  /// Empty for deduplication tasks (Cora, Restaurant), where the source
  /// is matched against itself.
  Dataset b;
  ReferenceLinkSet links;
  bool dedup = false;

  const Dataset& Source() const { return a; }
  const Dataset& Target() const { return dedup ? a : b; }
};

}  // namespace genlink

#endif  // GENLINK_DATASETS_MATCHING_TASK_H_
