// Synthetic stand-in for the OAEI 2011 NYT-DBpedia location
// interlinking task: 5620 New York Times locations vs 1819 DBpedia
// locations, 1920 positive links, wide sparse schemata (38 vs 110
// properties at 0.3 / 0.2 coverage; Tables 5-6 of the paper).
//
// DBpedia labels carry URI prefixes and underscores
// ("http://dbpedia.org/resource/New_York_City"), NYT names carry
// qualifiers ("New York City (N.Y.)"), and coordinates exist with
// kilometre-level jitter — so a good rule needs transformations
// (stripUriPrefix/lowerCase) combined non-linearly with a geographic
// comparison. This reproduces why NYT shows the largest gap between the
// restricted representations and the full one (Table 13: 0.714 boolean
// vs 0.916 full).

#ifndef GENLINK_DATASETS_NYT_H_
#define GENLINK_DATASETS_NYT_H_

#include "common/random.h"
#include "datasets/matching_task.h"

namespace genlink {

/// Knobs of the NYT generator.
struct NytConfig {
  double scale = 1.0;
  size_t num_nyt = 5620;
  size_t num_dbpedia = 1819;
  size_t num_positive_links = 1920;
  /// Std-dev of the coordinate jitter in degrees (~0.01 == ~1.1 km).
  double coordinate_jitter_degrees = 0.01;
  /// Probability that a NYT name carries a qualifier suffix.
  double qualifier_probability = 0.5;
  /// Coverage of the geographic coordinates on the DBpedia side.
  double coordinate_coverage = 0.8;
  uint64_t seed = 4;
};

/// Generates the NYT-DBpedia-like cross-schema task.
MatchingTask GenerateNyt(const NytConfig& config = {});

}  // namespace genlink

#endif  // GENLINK_DATASETS_NYT_H_
