#include "datasets/cora.h"

#include <algorithm>

#include "common/string_util.h"
#include "datasets/name_pools.h"
#include "datasets/noise.h"
#include "text/case_fold.h"

namespace genlink {
namespace {

struct Paper {
  std::string title;
  std::vector<std::string> authors;  // "first last"
  std::string venue;
  std::string venue_abbrev;
  std::string year;
  size_t edition = 0;  // index of the (venue, year) conference edition
};

// A conference edition: many different papers share one (venue, year),
// exactly as in the real Cora - which is what makes venue/date useless
// as a matching key on their own.
struct Edition {
  size_t venue_index;
  std::string year;
};

std::vector<Edition> MakeEditions(size_t count, Rng& rng) {
  std::vector<Edition> editions;
  editions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    editions.push_back({rng.PickIndex(pools::Venues().size()),
                        std::to_string(1985 + rng.PickIndex(16))});
  }
  return editions;
}

Paper RandomPaper(const std::vector<Edition>& editions, Rng& rng) {
  Paper paper;
  auto words = pools::TitleWords();
  size_t num_words = 4 + rng.PickIndex(4);
  std::vector<std::string> title_words;
  for (size_t i = 0; i < num_words; ++i) {
    title_words.emplace_back(words[rng.PickIndex(words.size())]);
  }
  paper.title = Join(title_words, " ");

  size_t num_authors = 1 + rng.PickIndex(3);
  for (size_t i = 0; i < num_authors; ++i) {
    paper.authors.push_back(
        std::string(pools::FirstNames()[rng.PickIndex(pools::FirstNames().size())]) +
        " " +
        std::string(pools::LastNames()[rng.PickIndex(pools::LastNames().size())]));
  }
  paper.edition = rng.PickIndex(editions.size());
  const Edition& edition = editions[paper.edition];
  const auto& venue = pools::Venues()[edition.venue_index];
  paper.venue = std::string(venue.full);
  paper.venue_abbrev = std::string(venue.abbrev);
  paper.year = edition.year;
  return paper;
}

}  // namespace

MatchingTask GenerateCora(const CoraConfig& config) {
  Rng rng(config.seed);
  MatchingTask task;
  task.name = "cora";
  task.dedup = true;
  task.a.set_name("cora");

  const size_t num_entities =
      std::max<size_t>(4, static_cast<size_t>(config.num_entities * config.scale));
  const size_t num_links = std::max<size_t>(
      2, static_cast<size_t>(config.num_positive_links * config.scale));

  PropertyId p_title = task.a.schema().AddProperty("title");
  PropertyId p_author = task.a.schema().AddProperty("author");
  PropertyId p_venue = task.a.schema().AddProperty("venue");
  PropertyId p_date = task.a.schema().AddProperty("date");

  // Cluster sizes: enough co-referent citation groups that all positive
  // links can be drawn between cluster members. A cluster of size k
  // yields up to k*(k-1)/2 links; the real Cora has large clusters, so
  // sizes 1-6 are drawn with a bias toward small clusters.
  struct Cluster {
    Paper paper;
    std::vector<std::string> member_ids;
  };
  std::vector<Cluster> clusters;
  size_t entities_made = 0;
  size_t link_capacity = 0;
  int citation_id = 0;

  // Few editions relative to papers: venue+year collisions are frequent.
  std::vector<Edition> editions =
      MakeEditions(std::max<size_t>(6, num_entities / 60), rng);

  while (entities_made < num_entities) {
    Cluster cluster;
    cluster.paper = RandomPaper(editions, rng);
    size_t size = 1;
    // Keep growing clusters until the links can be covered.
    if (link_capacity < num_links) {
      size = 2 + rng.PickIndex(5);  // 2..6
    }
    size = std::min(size, num_entities - entities_made);
    if (size == 0) break;

    for (size_t m = 0; m < size; ++m) {
      const Paper& paper = cluster.paper;
      Entity entity("cite" + std::to_string(citation_id++));

      // Title: typos and case inconsistency. Restyled titles are mostly
      // ALL UPPER CASE ("iPod" vs "IPOD" in the paper's example) so that
      // character-level measures genuinely need a lowerCase
      // transformation - Title Case alone only changes word initials.
      std::string title = paper.title;
      if (rng.Bernoulli(config.typo_probability)) title = InjectTypos(title, 2, rng);
      if (rng.Bernoulli(config.case_noise_probability)) {
        title = rng.Bernoulli(0.6) ? ToUpperAscii(title)
                                   : RandomCaseStyle(title, rng);
      }
      entity.AddValue(p_title, title);

      // Authors: order and initialization vary between citations.
      std::vector<std::string> authors = paper.authors;
      if (rng.Bernoulli(config.author_shuffle_probability)) rng.Shuffle(authors);
      bool initials = rng.Bernoulli(config.author_initials_probability);
      std::vector<std::string> rendered;
      for (const auto& author : authors) {
        rendered.push_back(initials ? AbbreviateTokens(author, 1.0, rng) : author);
        // AbbreviateTokens abbreviates all tokens; keep the last name.
        if (initials) {
          auto parts = SplitWhitespace(author);
          rendered.back() = std::string(1, parts[0][0]) + ". " + parts.back();
        }
      }
      if (rng.Bernoulli(config.missing_probability)) {
        // Missing author field.
      } else {
        entity.AddValue(p_author, Join(rendered, ", "));
      }

      // Venue: full name or abbreviation, sometimes missing.
      if (!rng.Bernoulli(config.missing_probability)) {
        std::string venue = rng.Bernoulli(config.venue_abbrev_probability)
                                ? paper.venue_abbrev
                                : paper.venue;
        if (rng.Bernoulli(config.case_noise_probability)) {
          venue = RandomCaseStyle(venue, rng);
        }
        entity.AddValue(p_venue, venue);
      }

      // Date: sometimes missing.
      if (!rng.Bernoulli(config.missing_probability)) {
        entity.AddValue(p_date, paper.year);
      }

      cluster.member_ids.push_back(entity.id());
      Status s = task.a.AddEntity(std::move(entity));
      (void)s;  // ids are unique by construction
      ++entities_made;
    }
    link_capacity += cluster.member_ids.size() * (cluster.member_ids.size() - 1) / 2;
    clusters.push_back(std::move(cluster));
  }

  // Positive links: all intra-cluster pairs, round-robin over clusters
  // until the target count is reached.
  std::vector<std::pair<std::string, std::string>> candidates;
  for (const auto& cluster : clusters) {
    for (size_t i = 0; i < cluster.member_ids.size(); ++i) {
      for (size_t j = i + 1; j < cluster.member_ids.size(); ++j) {
        candidates.emplace_back(cluster.member_ids[i], cluster.member_ids[j]);
      }
    }
  }
  rng.Shuffle(candidates);
  for (size_t i = 0; i < candidates.size() && task.links.positives().size() < num_links;
       ++i) {
    task.links.AddPositive(candidates[i].first, candidates[i].second);
  }

  // Hard negatives: different papers from the same conference edition
  // (same venue, same year). These dominate real Cora non-matches and
  // force the rule to discriminate on the title.
  std::vector<std::vector<size_t>> clusters_by_edition(editions.size());
  for (size_t c = 0; c < clusters.size(); ++c) {
    clusters_by_edition[clusters[c].paper.edition].push_back(c);
  }
  size_t hard_target = num_links / 2;
  size_t hard_made = 0;
  for (const auto& edition_clusters : clusters_by_edition) {
    for (size_t i = 0; i + 1 < edition_clusters.size() && hard_made < hard_target;
         ++i) {
      const Cluster& c1 = clusters[edition_clusters[i]];
      const Cluster& c2 = clusters[edition_clusters[i + 1]];
      task.links.AddNegative(c1.member_ids[rng.PickIndex(c1.member_ids.size())],
                             c2.member_ids[rng.PickIndex(c2.member_ids.size())]);
      ++hard_made;
    }
  }
  // Top up to |R-| = |R+| with the paper's permutation scheme.
  task.links.GenerateNegativesFromPositives(rng);
  return task;
}

}  // namespace genlink
