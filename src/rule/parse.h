// Parser for the s-expression rule format produced by rule/serialize.h.

#ifndef GENLINK_RULE_PARSE_H_
#define GENLINK_RULE_PARSE_H_

#include <string_view>

#include "common/status.h"
#include "distance/registry.h"
#include "rule/linkage_rule.h"
#include "transform/registry.h"

namespace genlink {

/// Parses a serialized linkage rule. Function names are resolved against
/// the given registries (defaults: the built-in registries).
Result<LinkageRule> ParseRule(
    std::string_view text,
    const DistanceRegistry& distances = DistanceRegistry::Default(),
    const TransformRegistry& transforms = TransformRegistry::Default(),
    const AggregationRegistry& aggregations = AggregationRegistry::Default());

}  // namespace genlink

#endif  // GENLINK_RULE_PARSE_H_
