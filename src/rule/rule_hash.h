// Canonical structural hashing of linkage rules (the "RuleHash"
// substrate of the evaluation engine, eval/engine.h).
//
// Three related products, all pure functions of the rule's structure
// plus the identity of its shared function objects (distance measures,
// transformations, aggregation functions — mixed in by instance so two
// same-named functions with different parameters never alias).
// Deterministic within a process, which is all the engine's caches
// need; not stable across process runs:
//
//   * CanonicalRuleHash — a 64-bit hash of the whole tree. Unlike
//     LinkageRule::StructuralHash (a per-node accumulation kept for
//     duplicate suppression), the canonical hash is domain-separated per
//     operator kind and length-prefixed per child list, so subtree
//     boundaries cannot alias. It keys the engine's fitness memo.
//
//   * ComparisonSignature — a hash of one comparison subtree that
//     deliberately EXCLUDES the threshold and the weight: it identifies
//     the raw-distance computation (distance measure x source value
//     subtree x target value subtree). Two comparisons with the same
//     signature compute the same raw distance for every entity pair,
//     even when their thresholds differ, because the threshold is only
//     applied afterwards (ThresholdedScore). This keys the engine's
//     per-training-pair distance cache.
//
//   * RuleHasher — a hash-consing interner. Analyzing a rule interns
//     every subtree hash it encounters; crossover/mutation offspring
//     share most subtrees with their parents, so the intern table's hit
//     rate measures how much structure a generation reuses (and the
//     engine reuses exactly the comparison subtrees via their
//     signatures).

#ifndef GENLINK_RULE_RULE_HASH_H_
#define GENLINK_RULE_RULE_HASH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "rule/linkage_rule.h"

namespace genlink {

/// One comparison operator inside a rule, with its threshold-free
/// signature. Sites are collected in pre-order, so the list is
/// deterministic for a given structure.
struct ComparisonSite {
  const ComparisonOperator* op = nullptr;
  uint64_t signature = 0;
};

/// Everything the evaluation engine needs to know about one rule.
struct RuleHashInfo {
  /// Canonical whole-tree hash (thresholds and weights included).
  uint64_t canonical = 0;
  /// All comparison sites of the tree, in pre-order.
  std::vector<ComparisonSite> comparisons;
};

/// Canonical hash of the whole rule (0 for the empty rule).
uint64_t CanonicalRuleHash(const LinkageRule& rule);

/// Threshold- and weight-free signature of one comparison subtree.
uint64_t ComparisonSignature(const ComparisonOperator& op);

/// Canonical hash of one value subtree — the transform-plan key of the
/// value store (eval/value_store.h): two value operators with equal
/// hashes compute the same value set for every entity, because the hash
/// covers property names and transformation identity (by instance).
uint64_t ValueOperatorHash(const ValueOperator& op);

/// Cross-process-stable variant of ValueOperatorHash: transformation
/// functions are identified by registered name instead of instance, so
/// two processes parsing the same serialized rule compute the same
/// hash. This is the on-disk plan-directory key of corpus artifacts
/// (io/corpus_artifact.h); it must only key rules that round-trip
/// through serialization, where the name IS the full function identity.
/// A distinct domain-separation tag family guarantees the stable and
/// in-process hashes never collide with each other.
uint64_t StableValueOperatorHash(const ValueOperator& op);

/// Cross-process-stable whole-rule hash (0 for the empty rule), the
/// provenance stamp written into corpus artifacts. Same name-based
/// function identity as StableValueOperatorHash; thresholds and
/// weights included.
uint64_t StableRuleHash(const LinkageRule& rule);

/// Computes the canonical hash and collects all comparison sites.
RuleHashInfo AnalyzeRule(const LinkageRule& rule);

/// Hash-consing interner over subtree hashes. Not thread-safe; the
/// engine only calls it from its serial phases.
class RuleHasher {
 public:
  /// `max_entries` bounds the intern table; it is cleared when exceeded
  /// (the probe/hit counters keep accumulating).
  explicit RuleHasher(size_t max_entries = 1 << 18)
      : max_entries_(max_entries) {}

  /// AnalyzeRule plus interning of every similarity subtree hash.
  RuleHashInfo Analyze(const LinkageRule& rule);

  /// Number of distinct subtrees seen so far.
  size_t distinct_subtrees() const { return interned_.size(); }
  /// Subtrees probed / found already interned (structure reuse).
  uint64_t subtree_probes() const { return probes_; }
  uint64_t subtree_hits() const { return hits_; }

  void Clear();

  /// Records one subtree hash (called by Analyze's tree walk; exposed
  /// for that walk and for tests).
  void Intern(uint64_t subtree_hash);

 private:
  std::unordered_set<uint64_t> interned_;
  size_t max_entries_;
  uint64_t probes_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace genlink

#endif  // GENLINK_RULE_RULE_HASH_H_
