#include "rule/operators.h"

#include "common/hash.h"

namespace genlink {

// ---------------------------------------------------------------- Property

ValueSet PropertyOperator::Evaluate(const Entity& e, const Schema& schema) const {
  auto id = schema.FindProperty(property_);
  if (!id) return {};
  return e.Values(*id);
}

const ValueSet& PropertyOperator::EvaluateRef(const Entity& e,
                                              const Schema& schema,
                                              ValueSet& /*scratch*/) const {
  static const ValueSet kEmpty;
  auto id = schema.FindProperty(property_);
  if (!id) return kEmpty;
  return e.Values(*id);
}

std::unique_ptr<ValueOperator> PropertyOperator::Clone() const {
  return std::make_unique<PropertyOperator>(property_);
}

uint64_t PropertyOperator::StructuralHash() const {
  return HashCombine(0x01, HashBytes(property_));
}

// --------------------------------------------------------------- Transform

ValueSet TransformOperator::Evaluate(const Entity& e, const Schema& schema) const {
  // Unary transformations (all but `concatenate`) read their input by
  // reference — a plain property input costs no string copies.
  if (inputs_.size() == 1) {
    ValueSet scratch;
    const ValueSet& input = inputs_[0]->EvaluateRef(e, schema, scratch);
    return function_->Apply({&input, 1});
  }
  std::vector<ValueSet> inputs;
  inputs.reserve(inputs_.size());
  for (const auto& op : inputs_) inputs.push_back(op->Evaluate(e, schema));
  return function_->Apply(inputs);
}

std::unique_ptr<ValueOperator> TransformOperator::Clone() const {
  std::vector<std::unique_ptr<ValueOperator>> inputs;
  inputs.reserve(inputs_.size());
  for (const auto& op : inputs_) inputs.push_back(op->Clone());
  return std::make_unique<TransformOperator>(function_, std::move(inputs));
}

size_t TransformOperator::CountOperators() const {
  size_t n = 1;
  for (const auto& op : inputs_) n += op->CountOperators();
  return n;
}

uint64_t TransformOperator::StructuralHash() const {
  uint64_t h = HashCombine(0x02, HashBytes(function_->name()));
  for (const auto& op : inputs_) h = HashCombine(h, op->StructuralHash());
  return h;
}

// -------------------------------------------------------------- Comparison

ComparisonOperator::ComparisonOperator(std::unique_ptr<ValueOperator> source,
                                       std::unique_ptr<ValueOperator> target,
                                       const DistanceMeasure* measure,
                                       double threshold)
    : source_(std::move(source)),
      target_(std::move(target)),
      measure_(measure),
      threshold_(threshold) {}

double ComparisonOperator::Evaluate(const Entity& a, const Entity& b,
                                    const Schema& schema_a,
                                    const Schema& schema_b) const {
  ValueSet scratch_a, scratch_b;
  const ValueSet& va = source_->EvaluateRef(a, schema_a, scratch_a);
  const ValueSet& vb = target_->EvaluateRef(b, schema_b, scratch_b);
  if (va.empty() || vb.empty()) return 0.0;
  double d = measure_->Distance(va, vb);
  return ThresholdedScore(d, threshold_);
}

std::unique_ptr<SimilarityOperator> ComparisonOperator::Clone() const {
  auto clone = std::make_unique<ComparisonOperator>(source_->Clone(),
                                                    target_->Clone(), measure_,
                                                    threshold_);
  clone->set_weight(weight_);
  return clone;
}

size_t ComparisonOperator::CountOperators() const {
  return 1 + source_->CountOperators() + target_->CountOperators();
}

uint64_t ComparisonOperator::StructuralHash() const {
  uint64_t h = HashCombine(0x03, HashBytes(measure_->name()));
  h = HashCombine(h, HashDouble(threshold_));
  h = HashCombine(h, HashDouble(weight_));
  h = HashCombine(h, source_->StructuralHash());
  h = HashCombine(h, target_->StructuralHash());
  return h;
}

// ------------------------------------------------------------- Aggregation

AggregationOperator::AggregationOperator(
    const AggregationFunction* function,
    std::vector<std::unique_ptr<SimilarityOperator>> operands)
    : function_(function), operands_(std::move(operands)) {}

double AggregationOperator::Evaluate(const Entity& a, const Entity& b,
                                     const Schema& schema_a,
                                     const Schema& schema_b) const {
  return AggregateOperandScores(
      *function_, operands_, [&](const SimilarityOperator& op) {
        return op.Evaluate(a, b, schema_a, schema_b);
      });
}

std::unique_ptr<SimilarityOperator> AggregationOperator::Clone() const {
  std::vector<std::unique_ptr<SimilarityOperator>> operands;
  operands.reserve(operands_.size());
  for (const auto& op : operands_) operands.push_back(op->Clone());
  auto clone =
      std::make_unique<AggregationOperator>(function_, std::move(operands));
  clone->set_weight(weight_);
  return clone;
}

size_t AggregationOperator::CountOperators() const {
  size_t n = 1;
  for (const auto& op : operands_) n += op->CountOperators();
  return n;
}

uint64_t AggregationOperator::StructuralHash() const {
  uint64_t h = HashCombine(0x04, HashBytes(function_->name()));
  h = HashCombine(h, HashDouble(weight_));
  for (const auto& op : operands_) h = HashCombine(h, op->StructuralHash());
  return h;
}

}  // namespace genlink
