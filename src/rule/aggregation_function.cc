#include "rule/aggregation_function.h"

#include <algorithm>

namespace genlink {

double MinAggregation::Aggregate(std::span<const double> scores,
                                 std::span<const double>) const {
  double best = 1.0;
  for (double s : scores) best = std::min(best, s);
  return best;
}

double MaxAggregation::Aggregate(std::span<const double> scores,
                                 std::span<const double>) const {
  double best = 0.0;
  for (double s : scores) best = std::max(best, s);
  return best;
}

double WeightedMeanAggregation::Aggregate(std::span<const double> scores,
                                          std::span<const double> weights) const {
  double sum = 0.0;
  double weight_sum = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    sum += weights[i] * scores[i];
    weight_sum += weights[i];
  }
  if (weight_sum <= 0.0) return 0.0;
  return sum / weight_sum;
}

AggregationRegistry::AggregationRegistry() {
  auto add = [this](std::unique_ptr<AggregationFunction> fn) {
    views_.push_back(fn.get());
    functions_.push_back(std::move(fn));
  };
  add(std::make_unique<MinAggregation>());
  add(std::make_unique<MaxAggregation>());
  add(std::make_unique<WeightedMeanAggregation>());
}

const AggregationRegistry& AggregationRegistry::Default() {
  static const AggregationRegistry* registry = new AggregationRegistry();
  return *registry;
}

const AggregationFunction* AggregationRegistry::Find(std::string_view name) const {
  for (const auto* fn : views_) {
    if (fn->name() == name) return fn;
  }
  return nullptr;
}

}  // namespace genlink
