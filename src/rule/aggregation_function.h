// Aggregation functions f_a: R^n × N^n → R (Definition 8, Table 3 of the
// paper): min, max and weighted mean.

#ifndef GENLINK_RULE_AGGREGATION_FUNCTION_H_
#define GENLINK_RULE_AGGREGATION_FUNCTION_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace genlink {

/// Combines the scores of an aggregation operator's children into one
/// similarity score.
class AggregationFunction {
 public:
  virtual ~AggregationFunction() = default;

  /// Stable identifier used in serialized rules ("min", "max", "wmean").
  virtual std::string_view name() const = 0;

  /// Aggregates `scores` (each in [0,1]) with the corresponding
  /// `weights`. Both spans are non-empty and of equal length.
  virtual double Aggregate(std::span<const double> scores,
                           std::span<const double> weights) const = 0;
};

/// min(s): equivalent to the conjunction of all child comparisons.
class MinAggregation : public AggregationFunction {
 public:
  std::string_view name() const override { return "min"; }
  double Aggregate(std::span<const double> scores,
                   std::span<const double> weights) const override;
};

/// max(s): equivalent to the disjunction of all child comparisons.
class MaxAggregation : public AggregationFunction {
 public:
  std::string_view name() const override { return "max"; }
  double Aggregate(std::span<const double> scores,
                   std::span<const double> weights) const override;
};

/// Weighted mean: Σ w_i s_i / Σ w_i (the linear-classifier aggregation of
/// Definition 9).
class WeightedMeanAggregation : public AggregationFunction {
 public:
  std::string_view name() const override { return "wmean"; }
  double Aggregate(std::span<const double> scores,
                   std::span<const double> weights) const override;
};

/// Registry of the built-in aggregation functions.
class AggregationRegistry {
 public:
  static const AggregationRegistry& Default();

  AggregationRegistry();

  /// Returns the function with the given name, or nullptr.
  const AggregationFunction* Find(std::string_view name) const;

  const std::vector<const AggregationFunction*>& functions() const {
    return views_;
  }

 private:
  std::vector<std::unique_ptr<AggregationFunction>> functions_;
  std::vector<const AggregationFunction*> views_;
};

}  // namespace genlink

#endif  // GENLINK_RULE_AGGREGATION_FUNCTION_H_
