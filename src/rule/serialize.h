// Serialization of linkage rules to a human-readable s-expression form.
// The format round-trips through rule/parse.h and is what the paper's
// Figures 2, 7 and 8 correspond to in this implementation:
//
//   (aggregate min :w 1
//     (compare levenshtein :t 1 :w 1
//       (transform lowerCase (property "label"))
//       (property "label"))
//     (compare geographic :t 50 :w 1
//       (property "point") (property "coord")))

#ifndef GENLINK_RULE_SERIALIZE_H_
#define GENLINK_RULE_SERIALIZE_H_

#include <string>

#include "rule/linkage_rule.h"

namespace genlink {

/// Renders the rule as a single-line s-expression.
std::string ToSexpr(const LinkageRule& rule);

/// Renders the rule as an indented, multi-line s-expression.
std::string ToPrettySexpr(const LinkageRule& rule);

}  // namespace genlink

#endif  // GENLINK_RULE_SERIALIZE_H_
