// The four linkage-rule operators of Section 3 of the paper, arranged as
// a strongly typed tree (Figure 1):
//
//   value operators:      PropertyOperator, TransformOperator
//   similarity operators: ComparisonOperator, AggregationOperator
//
// A comparison holds one source-side and one target-side value operator;
// an aggregation holds similarity operators and may be nested, which is
// what makes the representation non-linear.

#ifndef GENLINK_RULE_OPERATORS_H_
#define GENLINK_RULE_OPERATORS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "distance/distance_measure.h"
#include "model/entity.h"
#include "model/schema.h"
#include "model/value.h"
#include "rule/aggregation_function.h"
#include "transform/transformation.h"

namespace genlink {

/// Discriminator for the four operator kinds.
enum class OperatorKind {
  kProperty,
  kTransform,
  kComparison,
  kAggregation,
};

/// A value operator maps one entity to a set of discriminative values
/// (the paper's V := [A ∪ B → Σ]).
class ValueOperator {
 public:
  virtual ~ValueOperator() = default;

  virtual OperatorKind kind() const = 0;

  /// Evaluates the operator for entity `e` whose properties are described
  /// by `schema`.
  virtual ValueSet Evaluate(const Entity& e, const Schema& schema) const = 0;

  /// Allocation-avoiding variant: returns a reference to the entity's
  /// stored values when the operator is a plain property read, and
  /// otherwise evaluates into `scratch` and returns that. The returned
  /// reference is valid while both `e` and `scratch` live and `scratch`
  /// is not reused.
  virtual const ValueSet& EvaluateRef(const Entity& e, const Schema& schema,
                                      ValueSet& scratch) const {
    scratch = Evaluate(e, schema);
    return scratch;
  }

  /// Deep copy.
  virtual std::unique_ptr<ValueOperator> Clone() const = 0;

  /// Number of operators in this subtree (for parsimony pressure).
  virtual size_t CountOperators() const = 0;

  /// Structural hash over kinds, function names and parameters.
  virtual uint64_t StructuralHash() const = 0;
};

/// Retrieves all values of a property (Definition 5). Unknown properties
/// evaluate to the empty value set.
class PropertyOperator : public ValueOperator {
 public:
  explicit PropertyOperator(std::string property)
      : property_(std::move(property)) {}

  OperatorKind kind() const override { return OperatorKind::kProperty; }
  const std::string& property() const { return property_; }
  void set_property(std::string property) { property_ = std::move(property); }

  ValueSet Evaluate(const Entity& e, const Schema& schema) const override;
  const ValueSet& EvaluateRef(const Entity& e, const Schema& schema,
                              ValueSet& scratch) const override;
  std::unique_ptr<ValueOperator> Clone() const override;
  size_t CountOperators() const override { return 1; }
  uint64_t StructuralHash() const override;

 private:
  std::string property_;
};

/// Applies a transformation function to the outputs of its input value
/// operators (Definition 6). Nesting builds transformation chains.
class TransformOperator : public ValueOperator {
 public:
  TransformOperator(const Transformation* function,
                    std::vector<std::unique_ptr<ValueOperator>> inputs)
      : function_(function), inputs_(std::move(inputs)) {}

  OperatorKind kind() const override { return OperatorKind::kTransform; }
  const Transformation* function() const { return function_; }
  void set_function(const Transformation* function) { function_ = function; }

  const std::vector<std::unique_ptr<ValueOperator>>& inputs() const {
    return inputs_;
  }
  std::vector<std::unique_ptr<ValueOperator>>& mutable_inputs() { return inputs_; }

  ValueSet Evaluate(const Entity& e, const Schema& schema) const override;
  std::unique_ptr<ValueOperator> Clone() const override;
  size_t CountOperators() const override;
  uint64_t StructuralHash() const override;

 private:
  const Transformation* function_;
  std::vector<std::unique_ptr<ValueOperator>> inputs_;
};

/// A similarity operator assigns a score in [0,1] to an entity pair
/// (the paper's S := [A × B → [0,1]]). Every similarity operator carries
/// a weight consumed by a parent weighted-mean aggregation.
class SimilarityOperator {
 public:
  virtual ~SimilarityOperator() = default;

  virtual OperatorKind kind() const = 0;

  /// Evaluates the operator on the pair (a, b).
  virtual double Evaluate(const Entity& a, const Entity& b,
                          const Schema& schema_a,
                          const Schema& schema_b) const = 0;

  virtual std::unique_ptr<SimilarityOperator> Clone() const = 0;
  virtual size_t CountOperators() const = 0;
  virtual uint64_t StructuralHash() const = 0;

  double weight() const { return weight_; }
  void set_weight(double weight) { weight_ = weight; }

 protected:
  double weight_ = 1.0;
};

/// Compares a source-side and a target-side value operator with a
/// distance measure and threshold (Definition 7). The similarity is
///   1 - d/θ  if d <= θ, else 0.
class ComparisonOperator : public SimilarityOperator {
 public:
  ComparisonOperator(std::unique_ptr<ValueOperator> source,
                     std::unique_ptr<ValueOperator> target,
                     const DistanceMeasure* measure, double threshold);

  OperatorKind kind() const override { return OperatorKind::kComparison; }

  const DistanceMeasure* measure() const { return measure_; }
  void set_measure(const DistanceMeasure* measure) { measure_ = measure; }

  double threshold() const { return threshold_; }
  void set_threshold(double threshold) { threshold_ = threshold; }

  const ValueOperator* source() const { return source_.get(); }
  const ValueOperator* target() const { return target_.get(); }
  std::unique_ptr<ValueOperator>& mutable_source() { return source_; }
  std::unique_ptr<ValueOperator>& mutable_target() { return target_; }

  double Evaluate(const Entity& a, const Entity& b, const Schema& schema_a,
                  const Schema& schema_b) const override;
  std::unique_ptr<SimilarityOperator> Clone() const override;
  size_t CountOperators() const override;
  uint64_t StructuralHash() const override;

 private:
  std::unique_ptr<ValueOperator> source_;
  std::unique_ptr<ValueOperator> target_;
  const DistanceMeasure* measure_;
  double threshold_;
};

/// Aggregates the scores of `operands` with `function`, computing each
/// operand's score via `score_fn(op)`. The single implementation of the
/// aggregation arithmetic (stack buffers for small fan-out, operands
/// visited in order) — shared by AggregationOperator::Evaluate and the
/// evaluation engine's cached walk so the two cannot drift.
template <typename ScoreFn>
double AggregateOperandScores(
    const AggregationFunction& function,
    const std::vector<std::unique_ptr<SimilarityOperator>>& operands,
    ScoreFn&& score_fn) {
  if (operands.empty()) return 0.0;
  // Stack buffers for the common small-fanout case.
  double scores_buf[8];
  double weights_buf[8];
  std::vector<double> scores_vec, weights_vec;
  double* scores = scores_buf;
  double* weights = weights_buf;
  if (operands.size() > 8) {
    scores_vec.resize(operands.size());
    weights_vec.resize(operands.size());
    scores = scores_vec.data();
    weights = weights_vec.data();
  }
  for (size_t i = 0; i < operands.size(); ++i) {
    scores[i] = score_fn(*operands[i]);
    weights[i] = operands[i]->weight();
  }
  return function.Aggregate({scores, operands.size()},
                            {weights, operands.size()});
}

/// Combines child similarity scores with an aggregation function
/// (Definition 8). Aggregations may be nested.
class AggregationOperator : public SimilarityOperator {
 public:
  AggregationOperator(const AggregationFunction* function,
                      std::vector<std::unique_ptr<SimilarityOperator>> operands);

  OperatorKind kind() const override { return OperatorKind::kAggregation; }

  const AggregationFunction* function() const { return function_; }
  void set_function(const AggregationFunction* function) { function_ = function; }

  const std::vector<std::unique_ptr<SimilarityOperator>>& operands() const {
    return operands_;
  }
  std::vector<std::unique_ptr<SimilarityOperator>>& mutable_operands() {
    return operands_;
  }

  double Evaluate(const Entity& a, const Entity& b, const Schema& schema_a,
                  const Schema& schema_b) const override;
  std::unique_ptr<SimilarityOperator> Clone() const override;
  size_t CountOperators() const override;
  uint64_t StructuralHash() const override;

 private:
  const AggregationFunction* function_;
  std::vector<std::unique_ptr<SimilarityOperator>> operands_;
};

}  // namespace genlink

#endif  // GENLINK_RULE_OPERATORS_H_
