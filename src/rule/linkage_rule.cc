#include "rule/linkage_rule.h"

namespace genlink {
namespace {

Status ValidateValue(const ValueOperator* op) {
  if (op == nullptr) return Status::Internal("null value operator");
  switch (op->kind()) {
    case OperatorKind::kProperty: {
      const auto* prop = static_cast<const PropertyOperator*>(op);
      if (prop->property().empty()) {
        return Status::InvalidArgument("property operator with empty name");
      }
      return Status::Ok();
    }
    case OperatorKind::kTransform: {
      const auto* tf = static_cast<const TransformOperator*>(op);
      if (tf->function() == nullptr) {
        return Status::InvalidArgument("transform operator without function");
      }
      if (tf->inputs().size() != tf->function()->arity()) {
        return Status::InvalidArgument(
            std::string("transformation ") + std::string(tf->function()->name()) +
            " expects " + std::to_string(tf->function()->arity()) + " inputs, got " +
            std::to_string(tf->inputs().size()));
      }
      for (const auto& input : tf->inputs()) {
        GENLINK_RETURN_IF_ERROR(ValidateValue(input.get()));
      }
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument(
          "similarity operator found in value position");
  }
}

Status ValidateSimilarity(const SimilarityOperator* op) {
  if (op == nullptr) return Status::Internal("null similarity operator");
  if (op->weight() <= 0.0) {
    return Status::InvalidArgument("operator weight must be positive");
  }
  switch (op->kind()) {
    case OperatorKind::kComparison: {
      const auto* cmp = static_cast<const ComparisonOperator*>(op);
      if (cmp->measure() == nullptr) {
        return Status::InvalidArgument("comparison without distance measure");
      }
      if (cmp->threshold() < 0.0) {
        return Status::InvalidArgument("comparison threshold must be >= 0");
      }
      if (cmp->source() == nullptr || cmp->target() == nullptr) {
        return Status::InvalidArgument("comparison missing a value operator");
      }
      GENLINK_RETURN_IF_ERROR(ValidateValue(cmp->source()));
      GENLINK_RETURN_IF_ERROR(ValidateValue(cmp->target()));
      return Status::Ok();
    }
    case OperatorKind::kAggregation: {
      const auto* agg = static_cast<const AggregationOperator*>(op);
      if (agg->function() == nullptr) {
        return Status::InvalidArgument("aggregation without function");
      }
      if (agg->operands().empty()) {
        return Status::InvalidArgument("aggregation with no operands");
      }
      for (const auto& child : agg->operands()) {
        GENLINK_RETURN_IF_ERROR(ValidateSimilarity(child.get()));
      }
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument(
          "value operator found in similarity position");
  }
}

void WalkValueSlots(std::unique_ptr<ValueOperator>* slot,
                    std::vector<std::unique_ptr<ValueOperator>*>& out) {
  out.push_back(slot);
  if ((*slot)->kind() == OperatorKind::kTransform) {
    auto* tf = static_cast<TransformOperator*>(slot->get());
    for (auto& input : tf->mutable_inputs()) WalkValueSlots(&input, out);
  }
}

void WalkSimilaritySlots(std::unique_ptr<SimilarityOperator>* slot,
                         std::vector<std::unique_ptr<SimilarityOperator>*>& out) {
  out.push_back(slot);
  if ((*slot)->kind() == OperatorKind::kAggregation) {
    auto* agg = static_cast<AggregationOperator*>(slot->get());
    for (auto& child : agg->mutable_operands()) WalkSimilaritySlots(&child, out);
  }
}

template <typename T, OperatorKind kKind, typename Node>
void CollectNodesOfKind(Node* node, std::vector<T*>& out);

template <typename T, OperatorKind kKind>
void CollectFromSimilarity(SimilarityOperator* node, std::vector<T*>& out) {
  if (node == nullptr) return;
  if (node->kind() == kKind) out.push_back(static_cast<T*>(node));
  if (node->kind() == OperatorKind::kAggregation) {
    auto* agg = static_cast<AggregationOperator*>(node);
    for (auto& child : agg->mutable_operands()) {
      CollectFromSimilarity<T, kKind>(child.get(), out);
    }
  }
}

void CollectTransformsFromValue(ValueOperator* node,
                                std::vector<TransformOperator*>& out) {
  if (node == nullptr) return;
  if (node->kind() == OperatorKind::kTransform) {
    auto* tf = static_cast<TransformOperator*>(node);
    out.push_back(tf);
    for (auto& input : tf->mutable_inputs()) {
      CollectTransformsFromValue(input.get(), out);
    }
  }
}

}  // namespace

Status LinkageRule::Validate() const {
  if (!root_) return Status::InvalidArgument("empty linkage rule");
  return ValidateSimilarity(root_.get());
}

std::vector<std::unique_ptr<SimilarityOperator>*> CollectSimilaritySlots(
    LinkageRule& rule) {
  std::vector<std::unique_ptr<SimilarityOperator>*> slots;
  if (!rule.empty()) WalkSimilaritySlots(&rule.mutable_root(), slots);
  return slots;
}

std::vector<std::unique_ptr<ValueOperator>*> CollectValueSlots(LinkageRule& rule) {
  std::vector<std::unique_ptr<ValueOperator>*> slots;
  for (auto* sim_slot : CollectSimilaritySlots(rule)) {
    if ((*sim_slot)->kind() == OperatorKind::kComparison) {
      auto* cmp = static_cast<ComparisonOperator*>(sim_slot->get());
      WalkValueSlots(&cmp->mutable_source(), slots);
      WalkValueSlots(&cmp->mutable_target(), slots);
    }
  }
  return slots;
}

std::vector<ComparisonOperator*> CollectComparisons(const LinkageRule& rule) {
  std::vector<ComparisonOperator*> out;
  CollectFromSimilarity<ComparisonOperator, OperatorKind::kComparison>(
      const_cast<SimilarityOperator*>(rule.root()), out);
  return out;
}

std::vector<AggregationOperator*> CollectAggregations(const LinkageRule& rule) {
  std::vector<AggregationOperator*> out;
  CollectFromSimilarity<AggregationOperator, OperatorKind::kAggregation>(
      const_cast<SimilarityOperator*>(rule.root()), out);
  return out;
}

std::vector<TransformOperator*> CollectTransforms(const LinkageRule& rule) {
  std::vector<TransformOperator*> out;
  for (auto* cmp : CollectComparisons(rule)) {
    CollectTransformsFromValue(cmp->mutable_source().get(), out);
    CollectTransformsFromValue(cmp->mutable_target().get(), out);
  }
  return out;
}

std::vector<std::unique_ptr<ValueOperator>*> CollectTransformSlots(
    LinkageRule& rule) {
  std::vector<std::unique_ptr<ValueOperator>*> out;
  for (auto* slot : CollectValueSlots(rule)) {
    if ((*slot)->kind() == OperatorKind::kTransform) out.push_back(slot);
  }
  return out;
}

}  // namespace genlink
