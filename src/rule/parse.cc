#include "rule/parse.h"

#include <cctype>
#include <vector>

#include "common/string_util.h"

namespace genlink {
namespace {

// ------------------------------------------------------------- tokenizer

struct Token {
  enum class Type { kOpen, kClose, kAtom, kString, kEnd } type;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<Token> Next() {
    SkipWhitespace();
    if (pos_ >= input_.size()) return Token{Token::Type::kEnd, ""};
    char c = input_[pos_];
    if (c == '(') {
      ++pos_;
      return Token{Token::Type::kOpen, "("};
    }
    if (c == ')') {
      ++pos_;
      return Token{Token::Type::kClose, ")"};
    }
    if (c == '"') return LexString();
    return LexAtom();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Result<Token> LexString() {
    ++pos_;  // consume opening quote
    std::string text;
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == '\\') {
        if (pos_ >= input_.size()) break;
        text.push_back(input_[pos_++]);
      } else if (c == '"') {
        return Token{Token::Type::kString, std::move(text)};
      } else {
        text.push_back(c);
      }
    }
    return Status::ParseError("unterminated string literal");
  }

  Result<Token> LexAtom() {
    size_t start = pos_;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
          c == '"') {
        break;
      }
      ++pos_;
    }
    return Token{Token::Type::kAtom, std::string(input_.substr(start, pos_ - start))};
  }

  std::string_view input_;
  size_t pos_ = 0;
};

// --------------------------------------------------------------- parser

class Parser {
 public:
  Parser(std::string_view input, const DistanceRegistry& distances,
         const TransformRegistry& transforms,
         const AggregationRegistry& aggregations)
      : lexer_(input),
        distances_(distances),
        transforms_(transforms),
        aggregations_(aggregations) {}

  Result<LinkageRule> Parse() {
    GENLINK_RETURN_IF_ERROR(Advance());
    auto root = ParseSimilarity();
    if (!root.ok()) return root.status();
    if (current_.type != Token::Type::kEnd) {
      return Status::ParseError("trailing input after rule");
    }
    return LinkageRule(std::move(root).value());
  }

 private:
  Status Advance() {
    auto token = lexer_.Next();
    if (!token.ok()) return token.status();
    current_ = std::move(token).value();
    return Status::Ok();
  }

  Status Expect(Token::Type type, std::string_view what) {
    if (current_.type != type) {
      return Status::ParseError("expected " + std::string(what) + ", got '" +
                                current_.text + "'");
    }
    return Advance();
  }

  /// Parses ":t <num>" / ":w <num>" parameter pairs, in any order.
  Status ParseParams(double* threshold, double* weight) {
    while (current_.type == Token::Type::kAtom && !current_.text.empty() &&
           current_.text[0] == ':') {
      std::string key = current_.text;
      GENLINK_RETURN_IF_ERROR(Advance());
      if (current_.type != Token::Type::kAtom) {
        return Status::ParseError("expected numeric value after " + key);
      }
      double value;
      if (!ParseDouble(current_.text, &value)) {
        return Status::ParseError("malformed number '" + current_.text + "'");
      }
      if (key == ":t" && threshold != nullptr) {
        *threshold = value;
      } else if (key == ":w") {
        *weight = value;
      } else {
        return Status::ParseError("unknown parameter " + key);
      }
      GENLINK_RETURN_IF_ERROR(Advance());
    }
    return Status::Ok();
  }

  Result<std::unique_ptr<ValueOperator>> ParseValue() {
    GENLINK_RETURN_IF_ERROR(Expect(Token::Type::kOpen, "'('"));
    if (current_.type != Token::Type::kAtom) {
      return Status::ParseError("expected operator name");
    }
    std::string head = current_.text;
    GENLINK_RETURN_IF_ERROR(Advance());

    if (head == "property") {
      if (current_.type != Token::Type::kString) {
        return Status::ParseError("property expects a quoted name");
      }
      std::string name = current_.text;
      GENLINK_RETURN_IF_ERROR(Advance());
      GENLINK_RETURN_IF_ERROR(Expect(Token::Type::kClose, "')'"));
      return std::unique_ptr<ValueOperator>(
          std::make_unique<PropertyOperator>(std::move(name)));
    }
    if (head == "transform") {
      if (current_.type != Token::Type::kAtom) {
        return Status::ParseError("transform expects a function name");
      }
      const Transformation* fn = transforms_.Find(current_.text);
      if (fn == nullptr) {
        return Status::NotFound("unknown transformation '" + current_.text + "'");
      }
      GENLINK_RETURN_IF_ERROR(Advance());
      std::vector<std::unique_ptr<ValueOperator>> inputs;
      while (current_.type == Token::Type::kOpen) {
        auto input = ParseValue();
        if (!input.ok()) return input.status();
        inputs.push_back(std::move(input).value());
      }
      GENLINK_RETURN_IF_ERROR(Expect(Token::Type::kClose, "')'"));
      if (inputs.size() != fn->arity()) {
        return Status::ParseError(
            "transformation '" + std::string(fn->name()) + "' expects " +
            std::to_string(fn->arity()) + " inputs");
      }
      return std::unique_ptr<ValueOperator>(
          std::make_unique<TransformOperator>(fn, std::move(inputs)));
    }
    return Status::ParseError("unknown value operator '" + head + "'");
  }

  Result<std::unique_ptr<SimilarityOperator>> ParseSimilarity() {
    GENLINK_RETURN_IF_ERROR(Expect(Token::Type::kOpen, "'('"));
    if (current_.type != Token::Type::kAtom) {
      return Status::ParseError("expected operator name");
    }
    std::string head = current_.text;
    GENLINK_RETURN_IF_ERROR(Advance());

    if (head == "compare") {
      if (current_.type != Token::Type::kAtom) {
        return Status::ParseError("compare expects a distance measure name");
      }
      const DistanceMeasure* measure = distances_.Find(current_.text);
      if (measure == nullptr) {
        return Status::NotFound("unknown distance measure '" + current_.text + "'");
      }
      GENLINK_RETURN_IF_ERROR(Advance());
      double threshold = 0.0, weight = 1.0;
      GENLINK_RETURN_IF_ERROR(ParseParams(&threshold, &weight));
      auto source = ParseValue();
      if (!source.ok()) return source.status();
      auto target = ParseValue();
      if (!target.ok()) return target.status();
      GENLINK_RETURN_IF_ERROR(Expect(Token::Type::kClose, "')'"));
      auto cmp = std::make_unique<ComparisonOperator>(
          std::move(source).value(), std::move(target).value(), measure, threshold);
      cmp->set_weight(weight);
      return std::unique_ptr<SimilarityOperator>(std::move(cmp));
    }
    if (head == "aggregate") {
      if (current_.type != Token::Type::kAtom) {
        return Status::ParseError("aggregate expects a function name");
      }
      const AggregationFunction* fn = aggregations_.Find(current_.text);
      if (fn == nullptr) {
        return Status::NotFound("unknown aggregation '" + current_.text + "'");
      }
      GENLINK_RETURN_IF_ERROR(Advance());
      double weight = 1.0;
      GENLINK_RETURN_IF_ERROR(ParseParams(nullptr, &weight));
      std::vector<std::unique_ptr<SimilarityOperator>> operands;
      while (current_.type == Token::Type::kOpen) {
        auto child = ParseSimilarity();
        if (!child.ok()) return child.status();
        operands.push_back(std::move(child).value());
      }
      GENLINK_RETURN_IF_ERROR(Expect(Token::Type::kClose, "')'"));
      if (operands.empty()) {
        return Status::ParseError("aggregation with no operands");
      }
      auto agg = std::make_unique<AggregationOperator>(fn, std::move(operands));
      agg->set_weight(weight);
      return std::unique_ptr<SimilarityOperator>(std::move(agg));
    }
    return Status::ParseError("unknown similarity operator '" + head + "'");
  }

  Lexer lexer_;
  Token current_{Token::Type::kEnd, ""};
  const DistanceRegistry& distances_;
  const TransformRegistry& transforms_;
  const AggregationRegistry& aggregations_;
};

}  // namespace

Result<LinkageRule> ParseRule(std::string_view text,
                              const DistanceRegistry& distances,
                              const TransformRegistry& transforms,
                              const AggregationRegistry& aggregations) {
  Parser parser(text, distances, transforms, aggregations);
  return parser.Parse();
}

}  // namespace genlink
