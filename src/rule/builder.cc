#include "rule/builder.h"

#include "distance/registry.h"
#include "transform/registry.h"

namespace genlink {

// ----------------------------------------------------------------- ValueExpr

ValueExpr ValueExpr::Property(std::string name) {
  ValueExpr expr;
  expr.op_ = std::make_unique<PropertyOperator>(std::move(name));
  return expr;
}

ValueExpr ValueExpr::Transform(std::string_view transform_name) && {
  if (!status_.ok()) return std::move(*this);
  const Transformation* fn = TransformRegistry::Default().Find(transform_name);
  if (fn == nullptr) {
    status_ = Status::NotFound("unknown transformation '" +
                               std::string(transform_name) + "'");
    return std::move(*this);
  }
  if (fn->arity() != 1) {
    status_ = Status::InvalidArgument("transformation '" +
                                      std::string(transform_name) +
                                      "' is not unary; use Concat()");
    return std::move(*this);
  }
  std::vector<std::unique_ptr<ValueOperator>> inputs;
  inputs.push_back(std::move(op_));
  op_ = std::make_unique<TransformOperator>(fn, std::move(inputs));
  return std::move(*this);
}

ValueExpr ValueExpr::Concat(ValueExpr other) && {
  if (!status_.ok()) return std::move(*this);
  if (!other.status_.ok()) {
    status_ = other.status_;
    return std::move(*this);
  }
  const Transformation* fn = TransformRegistry::Default().Find("concatenate");
  std::vector<std::unique_ptr<ValueOperator>> inputs;
  inputs.push_back(std::move(op_));
  inputs.push_back(std::move(other.op_));
  op_ = std::make_unique<TransformOperator>(fn, std::move(inputs));
  return std::move(*this);
}

std::unique_ptr<ValueOperator> ValueExpr::Release(Status* status) && {
  if (!status_.ok() && status != nullptr && status->ok()) *status = status_;
  return std::move(op_);
}

// ---------------------------------------------------------------- RuleBuilder

void RuleBuilder::RecordError(Status status) {
  if (status_.ok()) status_ = std::move(status);
}

RuleBuilder& RuleBuilder::Aggregate(std::string_view function_name, double weight) {
  const AggregationFunction* fn =
      AggregationRegistry::Default().Find(function_name);
  if (fn == nullptr) {
    RecordError(Status::NotFound("unknown aggregation '" +
                                 std::string(function_name) + "'"));
    fn = AggregationRegistry::Default().Find("min");  // keeps builder usable
  }
  stack_.push_back(OpenAggregation{fn, weight, {}});
  return *this;
}

RuleBuilder& RuleBuilder::End() {
  if (stack_.empty()) {
    RecordError(Status::FailedPrecondition("End() without open aggregation"));
    return *this;
  }
  OpenAggregation open = std::move(stack_.back());
  stack_.pop_back();
  if (open.operands.empty()) {
    RecordError(Status::InvalidArgument("aggregation with no operands"));
    return *this;
  }
  auto agg = std::make_unique<AggregationOperator>(open.function,
                                                   std::move(open.operands));
  agg->set_weight(open.weight);
  AddSimilarity(std::move(agg));
  return *this;
}

RuleBuilder& RuleBuilder::Compare(std::string_view measure_name, double threshold,
                                  ValueExpr source, ValueExpr target,
                                  double weight) {
  const DistanceMeasure* measure = DistanceRegistry::Default().Find(measure_name);
  if (measure == nullptr) {
    RecordError(Status::NotFound("unknown distance measure '" +
                                 std::string(measure_name) + "'"));
    return *this;
  }
  auto source_op = std::move(source).Release(&status_);
  auto target_op = std::move(target).Release(&status_);
  if (source_op == nullptr || target_op == nullptr) {
    RecordError(Status::InvalidArgument("comparison with missing value operator"));
    return *this;
  }
  auto cmp = std::make_unique<ComparisonOperator>(
      std::move(source_op), std::move(target_op), measure, threshold);
  cmp->set_weight(weight);
  AddSimilarity(std::move(cmp));
  return *this;
}

void RuleBuilder::AddSimilarity(std::unique_ptr<SimilarityOperator> op) {
  if (!stack_.empty()) {
    stack_.back().operands.push_back(std::move(op));
    return;
  }
  if (root_ != nullptr) {
    RecordError(Status::FailedPrecondition(
        "multiple root operators; wrap them in an aggregation"));
    return;
  }
  root_ = std::move(op);
}

Result<LinkageRule> RuleBuilder::Build() {
  if (!status_.ok()) return status_;
  if (!stack_.empty()) {
    return Status::FailedPrecondition("unclosed aggregation: missing End()");
  }
  if (root_ == nullptr) {
    return Status::FailedPrecondition("empty rule: nothing was added");
  }
  LinkageRule rule(std::move(root_));
  GENLINK_RETURN_IF_ERROR(rule.Validate());
  return rule;
}

}  // namespace genlink
