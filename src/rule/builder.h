// A small fluent API for writing linkage rules by hand, used by the
// examples and tests:
//
//   LinkageRule rule = RuleBuilder()
//       .Aggregate("min")
//         .Compare("levenshtein", /*threshold=*/1.0,
//                  Prop("label").Lower(), Prop("label"))
//         .Compare("geographic", 50.0, Prop("point"), Prop("coord"))
//       .Build();
//
// Builder functions resolve function names against the default
// registries. Unknown names are programming errors: the builder records
// them and Build() returns an error status through RuleBuilder::status().

#ifndef GENLINK_RULE_BUILDER_H_
#define GENLINK_RULE_BUILDER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "rule/linkage_rule.h"

namespace genlink {

/// Value-operator expression under construction.
class ValueExpr {
 public:
  /// Reads property `name`.
  static ValueExpr Property(std::string name);

  /// Wraps this expression in a unary transformation by name.
  ValueExpr Transform(std::string_view transform_name) &&;

  /// Convenience shortcuts for common transformations.
  ValueExpr Lower() && { return std::move(*this).Transform("lowerCase"); }
  ValueExpr Tokenize() && { return std::move(*this).Transform("tokenize"); }
  ValueExpr StripUriPrefix() && {
    return std::move(*this).Transform("stripUriPrefix");
  }
  ValueExpr Stem() && { return std::move(*this).Transform("stem"); }

  /// Concatenates this expression with `other` ("concatenate" transform).
  ValueExpr Concat(ValueExpr other) &&;

  /// Releases the built operator (nullptr + error status on failure).
  std::unique_ptr<ValueOperator> Release(Status* status) &&;

 private:
  ValueExpr() = default;

  std::unique_ptr<ValueOperator> op_;
  Status status_;
};

/// Shorthand for ValueExpr::Property.
inline ValueExpr Prop(std::string name) {
  return ValueExpr::Property(std::move(name));
}

/// Builds a linkage rule as a tree of aggregations and comparisons.
class RuleBuilder {
 public:
  RuleBuilder() = default;

  /// Opens an aggregation scope; subsequent Compare()/Aggregate() calls
  /// add children until the matching End().
  RuleBuilder& Aggregate(std::string_view function_name, double weight = 1.0);

  /// Closes the innermost aggregation scope.
  RuleBuilder& End();

  /// Adds a comparison to the current scope (or sets it as the root when
  /// no aggregation is open).
  RuleBuilder& Compare(std::string_view measure_name, double threshold,
                       ValueExpr source, ValueExpr target, double weight = 1.0);

  /// First error encountered while building, if any.
  const Status& status() const { return status_; }

  /// Finalizes the rule. Returns an error if the structure is invalid or
  /// any name failed to resolve.
  Result<LinkageRule> Build();

 private:
  void AddSimilarity(std::unique_ptr<SimilarityOperator> op);
  void RecordError(Status status);

  struct OpenAggregation {
    const AggregationFunction* function;
    double weight;
    std::vector<std::unique_ptr<SimilarityOperator>> operands;
  };

  std::vector<OpenAggregation> stack_;
  std::unique_ptr<SimilarityOperator> root_;
  Status status_;
};

}  // namespace genlink

#endif  // GENLINK_RULE_BUILDER_H_
