#include "rule/xml.h"

#include <cctype>
#include <map>
#include <memory>
#include <vector>

#include "common/string_util.h"

namespace genlink {
namespace {

// ------------------------------------------------------------- writing

std::string EscapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void Indent(std::string& out, int depth) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
}

void WriteValueXml(const ValueOperator* op, std::string& out, int depth) {
  Indent(out, depth);
  if (op->kind() == OperatorKind::kProperty) {
    const auto* prop = static_cast<const PropertyOperator*>(op);
    out += "<Input path=\"" + EscapeXml(prop->property()) + "\"/>\n";
    return;
  }
  const auto* tf = static_cast<const TransformOperator*>(op);
  out += "<TransformInput function=\"" + EscapeXml(tf->function()->name());
  out += "\">\n";
  for (const auto& input : tf->inputs()) {
    WriteValueXml(input.get(), out, depth + 1);
  }
  Indent(out, depth);
  out += "</TransformInput>\n";
}

void WriteSimilarityXml(const SimilarityOperator* op, std::string& out, int depth) {
  Indent(out, depth);
  if (op->kind() == OperatorKind::kComparison) {
    const auto* cmp = static_cast<const ComparisonOperator*>(op);
    out += "<Compare metric=\"" + EscapeXml(cmp->measure()->name()) +
           "\" threshold=\"" + FormatDoubleExact(cmp->threshold()) +
           "\" weight=\"" + FormatDoubleExact(cmp->weight()) + "\">\n";
    WriteValueXml(cmp->source(), out, depth + 1);
    WriteValueXml(cmp->target(), out, depth + 1);
    Indent(out, depth);
    out += "</Compare>\n";
    return;
  }
  const auto* agg = static_cast<const AggregationOperator*>(op);
  out += "<Aggregate type=\"" + EscapeXml(agg->function()->name()) +
         "\" weight=\"" + FormatDoubleExact(agg->weight()) + "\">\n";
  for (const auto& child : agg->operands()) {
    WriteSimilarityXml(child.get(), out, depth + 1);
  }
  Indent(out, depth);
  out += "</Aggregate>\n";
}

// ------------------------------------------------------------- parsing

/// A parsed XML element (this subset has no text content).
struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<XmlNode> children;
};

std::string UnescapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    auto try_entity = [&](std::string_view entity, char replacement) {
      if (text.substr(i, entity.size()) == entity) {
        out.push_back(replacement);
        i += entity.size();
        return true;
      }
      return false;
    };
    if (!try_entity("&amp;", '&') && !try_entity("&lt;", '<') &&
        !try_entity("&gt;", '>') && !try_entity("&quot;", '"') &&
        !try_entity("&apos;", '\'')) {
      out.push_back(text[i++]);
    }
  }
  return out;
}

/// A minimal non-validating XML reader for attribute-only documents.
class XmlReader {
 public:
  explicit XmlReader(std::string_view input) : input_(input) {}

  Result<XmlNode> Parse() {
    SkipProlog();
    auto root = ParseElement();
    if (!root.ok()) return root;
    SkipWhitespace();
    if (pos_ < input_.size()) {
      return Status::ParseError("trailing content after root element");
    }
    return root;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  void SkipProlog() {
    SkipWhitespace();
    // Skip <?xml ...?> declarations and comments.
    while (pos_ + 1 < input_.size() && input_[pos_] == '<' &&
           (input_[pos_ + 1] == '?' || input_[pos_ + 1] == '!')) {
      size_t end = input_.find('>', pos_);
      if (end == std::string_view::npos) return;
      pos_ = end + 1;
      SkipWhitespace();
    }
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_' || input_[pos_] == '-' || input_[pos_] == ':')) {
      ++pos_;
    }
    if (pos_ == start) return Status::ParseError("expected XML name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<XmlNode> ParseElement() {
    SkipWhitespace();
    if (pos_ >= input_.size() || input_[pos_] != '<') {
      return Status::ParseError("expected '<'");
    }
    ++pos_;
    XmlNode node;
    auto name = ParseName();
    if (!name.ok()) return name.status();
    node.name = std::move(name).value();

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) return Status::ParseError("unterminated tag");
      if (input_[pos_] == '/' || input_[pos_] == '>') break;
      auto attr = ParseName();
      if (!attr.ok()) return attr.status();
      SkipWhitespace();
      if (pos_ >= input_.size() || input_[pos_] != '=') {
        return Status::ParseError("expected '=' after attribute name");
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ >= input_.size() || (input_[pos_] != '"' && input_[pos_] != '\'')) {
        return Status::ParseError("expected quoted attribute value");
      }
      char quote = input_[pos_++];
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
      if (pos_ >= input_.size()) {
        return Status::ParseError("unterminated attribute value");
      }
      node.attributes[attr.value()] =
          UnescapeXml(input_.substr(start, pos_ - start));
      ++pos_;
    }

    if (input_[pos_] == '/') {
      ++pos_;
      if (pos_ >= input_.size() || input_[pos_] != '>') {
        return Status::ParseError("malformed self-closing tag");
      }
      ++pos_;
      return node;
    }
    ++pos_;  // consume '>'

    // Children until the matching close tag.
    while (true) {
      SkipWhitespace();
      if (pos_ + 1 < input_.size() && input_[pos_] == '<' &&
          input_[pos_ + 1] == '/') {
        pos_ += 2;
        auto close = ParseName();
        if (!close.ok()) return close.status();
        if (close.value() != node.name) {
          return Status::ParseError("mismatched close tag </" + close.value() +
                                    "> for <" + node.name + ">");
        }
        SkipWhitespace();
        if (pos_ >= input_.size() || input_[pos_] != '>') {
          return Status::ParseError("malformed close tag");
        }
        ++pos_;
        return node;
      }
      if (pos_ >= input_.size()) {
        return Status::ParseError("unterminated element <" + node.name + ">");
      }
      auto child = ParseElement();
      if (!child.ok()) return child.status();
      node.children.push_back(std::move(child).value());
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

// --------------------------------------------------- XML -> rule mapping

Result<double> RequiredNumber(const XmlNode& node, const std::string& attr) {
  auto it = node.attributes.find(attr);
  if (it == node.attributes.end()) {
    return Status::ParseError("<" + node.name + "> missing attribute '" + attr +
                              "'");
  }
  double value;
  if (!ParseDouble(it->second, &value)) {
    return Status::ParseError("<" + node.name + "> attribute '" + attr +
                              "' is not a number: " + it->second);
  }
  return value;
}

Result<std::unique_ptr<ValueOperator>> BuildValue(
    const XmlNode& node, const TransformRegistry& transforms) {
  if (node.name == "Input") {
    auto it = node.attributes.find("path");
    if (it == node.attributes.end()) {
      return Status::ParseError("<Input> missing 'path'");
    }
    return std::unique_ptr<ValueOperator>(
        std::make_unique<PropertyOperator>(it->second));
  }
  if (node.name == "TransformInput") {
    auto it = node.attributes.find("function");
    if (it == node.attributes.end()) {
      return Status::ParseError("<TransformInput> missing 'function'");
    }
    const Transformation* fn = transforms.Find(it->second);
    if (fn == nullptr) {
      return Status::NotFound("unknown transformation '" + it->second + "'");
    }
    std::vector<std::unique_ptr<ValueOperator>> inputs;
    for (const auto& child : node.children) {
      auto input = BuildValue(child, transforms);
      if (!input.ok()) return input.status();
      inputs.push_back(std::move(input).value());
    }
    if (inputs.size() != fn->arity()) {
      return Status::ParseError("transformation '" + it->second + "' expects " +
                                std::to_string(fn->arity()) + " inputs, got " +
                                std::to_string(inputs.size()));
    }
    return std::unique_ptr<ValueOperator>(
        std::make_unique<TransformOperator>(fn, std::move(inputs)));
  }
  return Status::ParseError("unexpected element <" + node.name +
                            "> in value position");
}

Result<std::unique_ptr<SimilarityOperator>> BuildSimilarity(
    const XmlNode& node, const DistanceRegistry& distances,
    const TransformRegistry& transforms,
    const AggregationRegistry& aggregations) {
  if (node.name == "Compare") {
    auto it = node.attributes.find("metric");
    if (it == node.attributes.end()) {
      return Status::ParseError("<Compare> missing 'metric'");
    }
    const DistanceMeasure* measure = distances.Find(it->second);
    if (measure == nullptr) {
      return Status::NotFound("unknown distance measure '" + it->second + "'");
    }
    auto threshold = RequiredNumber(node, "threshold");
    if (!threshold.ok()) return threshold.status();
    double weight = 1.0;
    if (node.attributes.count("weight")) {
      auto parsed = RequiredNumber(node, "weight");
      if (!parsed.ok()) return parsed.status();
      weight = parsed.value();
    }
    if (node.children.size() != 2) {
      return Status::ParseError("<Compare> needs exactly 2 value children");
    }
    auto source = BuildValue(node.children[0], transforms);
    if (!source.ok()) return source.status();
    auto target = BuildValue(node.children[1], transforms);
    if (!target.ok()) return target.status();
    auto cmp = std::make_unique<ComparisonOperator>(std::move(source).value(),
                                                    std::move(target).value(),
                                                    measure, threshold.value());
    cmp->set_weight(weight);
    return std::unique_ptr<SimilarityOperator>(std::move(cmp));
  }
  if (node.name == "Aggregate") {
    auto it = node.attributes.find("type");
    if (it == node.attributes.end()) {
      return Status::ParseError("<Aggregate> missing 'type'");
    }
    const AggregationFunction* fn = aggregations.Find(it->second);
    if (fn == nullptr) {
      return Status::NotFound("unknown aggregation '" + it->second + "'");
    }
    double weight = 1.0;
    if (node.attributes.count("weight")) {
      auto parsed = RequiredNumber(node, "weight");
      if (!parsed.ok()) return parsed.status();
      weight = parsed.value();
    }
    if (node.children.empty()) {
      return Status::ParseError("<Aggregate> with no operands");
    }
    std::vector<std::unique_ptr<SimilarityOperator>> operands;
    for (const auto& child : node.children) {
      auto operand = BuildSimilarity(child, distances, transforms, aggregations);
      if (!operand.ok()) return operand.status();
      operands.push_back(std::move(operand).value());
    }
    auto agg = std::make_unique<AggregationOperator>(fn, std::move(operands));
    agg->set_weight(weight);
    return std::unique_ptr<SimilarityOperator>(std::move(agg));
  }
  return Status::ParseError("unexpected element <" + node.name +
                            "> in similarity position");
}

}  // namespace

std::string ToXml(const LinkageRule& rule) {
  std::string out = "<LinkageRule>\n";
  if (!rule.empty()) WriteSimilarityXml(rule.root(), out, 1);
  out += "</LinkageRule>\n";
  return out;
}

Result<LinkageRule> ParseRuleXml(std::string_view xml,
                                 const DistanceRegistry& distances,
                                 const TransformRegistry& transforms,
                                 const AggregationRegistry& aggregations) {
  XmlReader reader(xml);
  auto root = reader.Parse();
  if (!root.ok()) return root.status();
  if (root->name != "LinkageRule") {
    return Status::ParseError("root element must be <LinkageRule>, got <" +
                              root->name + ">");
  }
  if (root->children.size() != 1) {
    return Status::ParseError("<LinkageRule> must contain exactly one operator");
  }
  auto similarity =
      BuildSimilarity(root->children[0], distances, transforms, aggregations);
  if (!similarity.ok()) return similarity.status();
  return LinkageRule(std::move(similarity).value());
}

}  // namespace genlink
