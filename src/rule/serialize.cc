#include "rule/serialize.h"

#include "common/string_util.h"

namespace genlink {
namespace {

std::string QuoteString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void Indent(std::string& out, int depth, bool pretty) {
  if (!pretty) {
    out.push_back(' ');
    return;
  }
  out.push_back('\n');
  out.append(static_cast<size_t>(depth) * 2, ' ');
}

void WriteValue(const ValueOperator* op, std::string& out, int depth, bool pretty);

void WriteValueChildren(const std::vector<std::unique_ptr<ValueOperator>>& inputs,
                        std::string& out, int depth, bool pretty) {
  for (const auto& input : inputs) {
    Indent(out, depth, pretty);
    WriteValue(input.get(), out, depth, pretty);
  }
}

void WriteValue(const ValueOperator* op, std::string& out, int depth, bool pretty) {
  if (op->kind() == OperatorKind::kProperty) {
    const auto* prop = static_cast<const PropertyOperator*>(op);
    out += "(property ";
    out += QuoteString(prop->property());
    out += ")";
    return;
  }
  const auto* tf = static_cast<const TransformOperator*>(op);
  out += "(transform ";
  out += tf->function()->name();
  WriteValueChildren(tf->inputs(), out, depth + 1, pretty);
  out += ")";
}

void WriteSimilarity(const SimilarityOperator* op, std::string& out, int depth,
                     bool pretty) {
  if (op->kind() == OperatorKind::kComparison) {
    const auto* cmp = static_cast<const ComparisonOperator*>(op);
    out += "(compare ";
    out += cmp->measure()->name();
    out += " :t ";
    out += FormatDoubleExact(cmp->threshold());
    out += " :w ";
    out += FormatDoubleExact(cmp->weight());
    Indent(out, depth + 1, pretty);
    WriteValue(cmp->source(), out, depth + 1, pretty);
    Indent(out, depth + 1, pretty);
    WriteValue(cmp->target(), out, depth + 1, pretty);
    out += ")";
    return;
  }
  const auto* agg = static_cast<const AggregationOperator*>(op);
  out += "(aggregate ";
  out += agg->function()->name();
  out += " :w ";
  out += FormatDoubleExact(agg->weight());
  for (const auto& child : agg->operands()) {
    Indent(out, depth + 1, pretty);
    WriteSimilarity(child.get(), out, depth + 1, pretty);
  }
  out += ")";
}

std::string Render(const LinkageRule& rule, bool pretty) {
  if (rule.empty()) return "(empty)";
  std::string out;
  WriteSimilarity(rule.root(), out, 0, pretty);
  return out;
}

}  // namespace

std::string ToSexpr(const LinkageRule& rule) { return Render(rule, false); }

std::string ToPrettySexpr(const LinkageRule& rule) { return Render(rule, true); }

}  // namespace genlink
