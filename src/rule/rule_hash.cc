#include "rule/rule_hash.h"

#include <cstdint>

#include "common/hash.h"

namespace genlink {
namespace {

// Distance measures, transformations and aggregation functions are
// identified by name AND instance: name() alone would alias two
// same-named instances constructed with different parameters (e.g. two
// NumericDistance objects with different ranges), and a comparison
// signature collision would hand one of them the other's cached
// distance row. Mixing the pointer in keeps identity exact; it also
// means hashes are only stable within a process, which is all the
// engine's caches need.
template <typename T>
uint64_t HashFunctionIdentity(uint64_t seed, const T* function) {
  uint64_t h = HashCombine(seed, HashBytes(function->name()));
  return HashCombine(h, static_cast<uint64_t>(
                            reinterpret_cast<uintptr_t>(function)));
}

// Domain-separation tags. Distinct from the small constants used by the
// legacy per-node StructuralHash so the two hash families never collide
// by construction.
constexpr uint64_t kTagProperty = 0x9E3779B97F4A7C15ULL;
constexpr uint64_t kTagTransform = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kTagComparison = 0x165667B19E3779F9ULL;
constexpr uint64_t kTagAggregation = 0x27D4EB2F165667C5ULL;
constexpr uint64_t kTagSignature = 0x85EBCA77C2B2AE63ULL;

uint64_t HashValueOp(const ValueOperator& op) {
  switch (op.kind()) {
    case OperatorKind::kProperty: {
      const auto& prop = static_cast<const PropertyOperator&>(op);
      return HashCombine(kTagProperty, HashBytes(prop.property()));
    }
    case OperatorKind::kTransform: {
      const auto& transform = static_cast<const TransformOperator&>(op);
      uint64_t h = HashFunctionIdentity(kTagTransform, transform.function());
      h = HashCombine(h, transform.inputs().size());
      for (const auto& input : transform.inputs()) {
        h = HashCombine(h, HashValueOp(*input));
      }
      return h;
    }
    default:
      return 0;  // unreachable: value operators are property or transform
  }
}

// `hasher` may be null (pure AnalyzeRule / CanonicalRuleHash paths).
uint64_t HashSimilarityOp(const SimilarityOperator& op,
                          std::vector<ComparisonSite>* sites,
                          RuleHasher* hasher);

uint64_t HashChildren(const AggregationOperator& agg,
                      std::vector<ComparisonSite>* sites, RuleHasher* hasher) {
  uint64_t h = agg.operands().size();
  for (const auto& operand : agg.operands()) {
    h = HashCombine(h, HashSimilarityOp(*operand, sites, hasher));
  }
  return h;
}

uint64_t HashSimilarityOp(const SimilarityOperator& op,
                          std::vector<ComparisonSite>* sites,
                          RuleHasher* hasher) {
  uint64_t h = 0;
  switch (op.kind()) {
    case OperatorKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonOperator&>(op);
      uint64_t signature = ComparisonSignature(cmp);
      if (sites != nullptr) sites->push_back({&cmp, signature});
      h = HashCombine(kTagComparison, signature);
      h = HashCombine(h, HashDouble(cmp.threshold()));
      h = HashCombine(h, HashDouble(cmp.weight()));
      break;
    }
    case OperatorKind::kAggregation: {
      const auto& agg = static_cast<const AggregationOperator&>(op);
      h = HashFunctionIdentity(kTagAggregation, agg.function());
      h = HashCombine(h, HashDouble(agg.weight()));
      h = HashCombine(h, HashChildren(agg, sites, hasher));
      break;
    }
    default:
      break;  // unreachable: similarity operators are comparison/aggregation
  }
  if (hasher != nullptr) hasher->Intern(h);
  return h;
}

// ---- Cross-process-stable family (corpus artifacts). Functions are
// identified by registered name only — correct exactly for rules that
// round-trip through serialization, where the name is the complete
// identity. Fresh domain tags keep this family disjoint from the
// in-process one above.
constexpr uint64_t kStableTagProperty = 0x2545F4914F6CDD1DULL;
constexpr uint64_t kStableTagTransform = 0x9E6C63D0876A9A47ULL;
constexpr uint64_t kStableTagComparison = 0xBF58476D1CE4E5B9ULL;
constexpr uint64_t kStableTagAggregation = 0x94D049BB133111EBULL;

uint64_t StableHashValueOp(const ValueOperator& op) {
  switch (op.kind()) {
    case OperatorKind::kProperty: {
      const auto& prop = static_cast<const PropertyOperator&>(op);
      return HashCombine(kStableTagProperty, HashBytes(prop.property()));
    }
    case OperatorKind::kTransform: {
      const auto& transform = static_cast<const TransformOperator&>(op);
      uint64_t h = HashCombine(kStableTagTransform,
                               HashBytes(transform.function()->name()));
      h = HashCombine(h, transform.inputs().size());
      for (const auto& input : transform.inputs()) {
        h = HashCombine(h, StableHashValueOp(*input));
      }
      return h;
    }
    default:
      return 0;  // unreachable: value operators are property or transform
  }
}

uint64_t StableHashSimilarityOp(const SimilarityOperator& op) {
  switch (op.kind()) {
    case OperatorKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonOperator&>(op);
      uint64_t h = HashCombine(kStableTagComparison,
                               HashBytes(cmp.measure()->name()));
      h = HashCombine(h, StableHashValueOp(*cmp.source()));
      h = HashCombine(h, StableHashValueOp(*cmp.target()));
      h = HashCombine(h, HashDouble(cmp.threshold()));
      return HashCombine(h, HashDouble(cmp.weight()));
    }
    case OperatorKind::kAggregation: {
      const auto& agg = static_cast<const AggregationOperator&>(op);
      uint64_t h = HashCombine(kStableTagAggregation,
                               HashBytes(agg.function()->name()));
      h = HashCombine(h, HashDouble(agg.weight()));
      h = HashCombine(h, agg.operands().size());
      for (const auto& operand : agg.operands()) {
        h = HashCombine(h, StableHashSimilarityOp(*operand));
      }
      return h;
    }
    default:
      return 0;  // unreachable
  }
}

}  // namespace

uint64_t ValueOperatorHash(const ValueOperator& op) { return HashValueOp(op); }

uint64_t StableValueOperatorHash(const ValueOperator& op) {
  return StableHashValueOp(op);
}

uint64_t StableRuleHash(const LinkageRule& rule) {
  if (rule.empty()) return 0;
  return StableHashSimilarityOp(*rule.root());
}

uint64_t ComparisonSignature(const ComparisonOperator& op) {
  uint64_t h = HashFunctionIdentity(kTagSignature, op.measure());
  h = HashCombine(h, HashValueOp(*op.source()));
  h = HashCombine(h, HashValueOp(*op.target()));
  return h;
}

uint64_t CanonicalRuleHash(const LinkageRule& rule) {
  if (rule.empty()) return 0;
  return HashSimilarityOp(*rule.root(), nullptr, nullptr);
}

RuleHashInfo AnalyzeRule(const LinkageRule& rule) {
  RuleHashInfo info;
  if (rule.empty()) return info;
  info.canonical = HashSimilarityOp(*rule.root(), &info.comparisons, nullptr);
  return info;
}

RuleHashInfo RuleHasher::Analyze(const LinkageRule& rule) {
  RuleHashInfo info;
  if (rule.empty()) return info;
  info.canonical = HashSimilarityOp(*rule.root(), &info.comparisons, this);
  return info;
}

void RuleHasher::Intern(uint64_t subtree_hash) {
  ++probes_;
  if (interned_.size() >= max_entries_) interned_.clear();
  if (!interned_.insert(subtree_hash).second) ++hits_;
}

void RuleHasher::Clear() {
  interned_.clear();
  probes_ = 0;
  hits_ = 0;
}

}  // namespace genlink
