// Silk-style XML serialization of linkage rules. The Silk Link Discovery
// Framework (where GenLink was originally implemented) stores linkage
// rules as XML; this module writes and reads a compatible subset:
//
//   <LinkageRule>
//     <Aggregate type="min" weight="1">
//       <Compare metric="levenshtein" threshold="1" weight="1">
//         <TransformInput function="lowerCase">
//           <Input path="label"/>
//         </TransformInput>
//         <Input path="label"/>
//       </Compare>
//     </Aggregate>
//   </LinkageRule>
//
// Within a <Compare>, the first value child reads from the source
// dataset and the second from the target dataset.

#ifndef GENLINK_RULE_XML_H_
#define GENLINK_RULE_XML_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "distance/registry.h"
#include "rule/linkage_rule.h"
#include "transform/registry.h"

namespace genlink {

/// Renders the rule as indented XML.
std::string ToXml(const LinkageRule& rule);

/// Parses a rule from the XML form. Function names resolve against the
/// given registries.
Result<LinkageRule> ParseRuleXml(
    std::string_view xml,
    const DistanceRegistry& distances = DistanceRegistry::Default(),
    const TransformRegistry& transforms = TransformRegistry::Default(),
    const AggregationRegistry& aggregations = AggregationRegistry::Default());

}  // namespace genlink

#endif  // GENLINK_RULE_XML_H_
