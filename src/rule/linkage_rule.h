// LinkageRule: the unit the learner evolves and the matcher executes
// (Definition 3 of the paper). Wraps the root similarity operator and
// provides tree-wide utilities (validation, node collection for the
// genetic operators, structural hashing).

#ifndef GENLINK_RULE_LINKAGE_RULE_H_
#define GENLINK_RULE_LINKAGE_RULE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "rule/operators.h"

namespace genlink {

/// Pairs above this similarity are considered matches (Definition 3).
inline constexpr double kMatchThreshold = 0.5;

/// A learnable, executable linkage rule. Move-only; use Clone() for deep
/// copies (copies are always intentional in GP code).
class LinkageRule {
 public:
  /// The empty rule; evaluates to 0 for every pair.
  LinkageRule() = default;

  explicit LinkageRule(std::unique_ptr<SimilarityOperator> root)
      : root_(std::move(root)) {}

  LinkageRule(LinkageRule&&) = default;
  LinkageRule& operator=(LinkageRule&&) = default;
  LinkageRule(const LinkageRule&) = delete;
  LinkageRule& operator=(const LinkageRule&) = delete;

  bool empty() const { return root_ == nullptr; }
  const SimilarityOperator* root() const { return root_.get(); }
  std::unique_ptr<SimilarityOperator>& mutable_root() { return root_; }

  /// Similarity of the pair (a, b) in [0,1]; 0 for the empty rule.
  double Evaluate(const Entity& a, const Entity& b, const Schema& schema_a,
                  const Schema& schema_b) const {
    if (!root_) return 0.0;
    return root_->Evaluate(a, b, schema_a, schema_b);
  }

  /// True when Evaluate(...) >= 0.5.
  bool Matches(const Entity& a, const Entity& b, const Schema& schema_a,
               const Schema& schema_b) const {
    return Evaluate(a, b, schema_a, schema_b) >= kMatchThreshold;
  }

  /// Deep copy.
  LinkageRule Clone() const {
    return root_ ? LinkageRule(root_->Clone()) : LinkageRule();
  }

  /// Total number of operators (used by the parsimony pressure).
  size_t OperatorCount() const { return root_ ? root_->CountOperators() : 0; }

  /// Structural hash for fitness caching and duplicate detection.
  uint64_t StructuralHash() const {
    return root_ ? root_->StructuralHash() : 0;
  }

  /// Checks the strong typing constraints of Figure 1: non-null children,
  /// transformation arity respected, aggregations non-empty, thresholds
  /// non-negative, weights positive.
  Status Validate() const;

 private:
  std::unique_ptr<SimilarityOperator> root_;
};

// ---------------------------------------------------------------------------
// Tree navigation helpers used by the genetic operators. "Slots" are
// pointers to the owning unique_ptr of a node, so callers can replace
// whole subtrees in place.
// ---------------------------------------------------------------------------

/// All similarity-operator slots of a rule, including the root slot.
std::vector<std::unique_ptr<SimilarityOperator>*> CollectSimilaritySlots(
    LinkageRule& rule);

/// All value-operator slots (comparison source/target slots and
/// transformation input slots).
std::vector<std::unique_ptr<ValueOperator>*> CollectValueSlots(LinkageRule& rule);

/// All comparison operators in the tree.
std::vector<ComparisonOperator*> CollectComparisons(const LinkageRule& rule);

/// All aggregation operators in the tree.
std::vector<AggregationOperator*> CollectAggregations(const LinkageRule& rule);

/// All transformation operators in the tree.
std::vector<TransformOperator*> CollectTransforms(const LinkageRule& rule);

/// All value-operator slots that hold a TransformOperator.
std::vector<std::unique_ptr<ValueOperator>*> CollectTransformSlots(
    LinkageRule& rule);

}  // namespace genlink

#endif  // GENLINK_RULE_LINKAGE_RULE_H_
