// Reference links (Definition 2 of the paper): known matching pairs R+
// and known non-matching pairs R-.

#ifndef GENLINK_MODEL_REFERENCE_LINKS_H_
#define GENLINK_MODEL_REFERENCE_LINKS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "model/dataset.h"

namespace genlink {

/// An assertion that entity `id_a` (in A) and `id_b` (in B) do / do not
/// refer to the same real-world object.
struct ReferenceLink {
  std::string id_a;
  std::string id_b;

  bool operator==(const ReferenceLink&) const = default;
};

/// A pair of entities resolved to their records, labelled with the ground
/// truth. This is the unit the fitness function consumes.
struct LabeledPair {
  const Entity* a = nullptr;
  const Entity* b = nullptr;
  bool is_match = false;
};

/// The set of positive and negative reference links for a matching task.
class ReferenceLinkSet {
 public:
  ReferenceLinkSet() = default;

  void AddPositive(std::string id_a, std::string id_b) {
    positives_.push_back({std::move(id_a), std::move(id_b)});
  }
  void AddNegative(std::string id_a, std::string id_b) {
    negatives_.push_back({std::move(id_a), std::move(id_b)});
  }

  const std::vector<ReferenceLink>& positives() const { return positives_; }
  const std::vector<ReferenceLink>& negatives() const { return negatives_; }
  size_t size() const { return positives_.size() + negatives_.size(); }

  /// Generates negative links from the positives using the paper's
  /// scheme: for positives (a,b) and (c,d), emit (a,d) and (c,b). Sound
  /// when entities within each source are internally unique. Produces
  /// `count` negatives (default: as many as there are positives), skipping
  /// candidates that coincide with a positive.
  void GenerateNegativesFromPositives(Rng& rng, size_t count = 0);

  /// Resolves the links against the datasets. Fails with NotFound if a
  /// referenced entity is missing.
  Result<std::vector<LabeledPair>> Resolve(const Dataset& a, const Dataset& b) const;

  /// Splits all resolved pairs into `num_folds` folds of near-equal size
  /// after shuffling (the paper uses 2-fold cross-validation). Positives
  /// and negatives are split independently so folds stay balanced.
  std::vector<ReferenceLinkSet> SplitFolds(size_t num_folds, Rng& rng) const;

  /// Merges the links of `other` into this set.
  void Merge(const ReferenceLinkSet& other);

 private:
  std::vector<ReferenceLink> positives_;
  std::vector<ReferenceLink> negatives_;
};

}  // namespace genlink

#endif  // GENLINK_MODEL_REFERENCE_LINKS_H_
