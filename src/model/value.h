// The value vocabulary of the linkage-rule semantics (Section 3 of the
// paper): value operators map an entity to a (possibly empty) *set* of
// string values, denoted Σ in the paper.

#ifndef GENLINK_MODEL_VALUE_H_
#define GENLINK_MODEL_VALUE_H_

#include <string>
#include <vector>

namespace genlink {

/// A (possibly empty) set of property values. Represented as a vector:
/// order is preserved for transformations such as `concatenate`, and
/// duplicates are allowed (set semantics are applied by the measures that
/// need them, e.g. Jaccard).
using ValueSet = std::vector<std::string>;

}  // namespace genlink

#endif  // GENLINK_MODEL_VALUE_H_
