#include "model/reference_links.h"

#include <unordered_set>

#include "common/hash.h"

namespace genlink {
namespace {

uint64_t LinkKey(const std::string& a, const std::string& b) {
  return HashCombine(HashBytes(a), HashBytes(b));
}

}  // namespace

void ReferenceLinkSet::GenerateNegativesFromPositives(Rng& rng, size_t count) {
  if (positives_.size() < 2) return;
  if (count == 0) count = positives_.size();

  std::unordered_set<uint64_t> taken;
  taken.reserve(positives_.size() + count);
  for (const auto& link : positives_) taken.insert(LinkKey(link.id_a, link.id_b));

  // The paper pairs up positives (a,b), (c,d) and emits (a,d), (c,b); we
  // draw the pairings at random and keep deduplicating until the target
  // count is reached (or no progress can be made).
  size_t stale = 0;
  while (negatives_.size() < count && stale < 50 * count + 100) {
    const ReferenceLink& first = positives_[rng.PickIndex(positives_.size())];
    const ReferenceLink& second = positives_[rng.PickIndex(positives_.size())];
    if (first.id_a == second.id_a || first.id_b == second.id_b) {
      ++stale;
      continue;
    }
    uint64_t key = LinkKey(first.id_a, second.id_b);
    if (!taken.insert(key).second) {
      ++stale;
      continue;
    }
    negatives_.push_back({first.id_a, second.id_b});
    stale = 0;
  }
}

Result<std::vector<LabeledPair>> ReferenceLinkSet::Resolve(const Dataset& a,
                                                           const Dataset& b) const {
  std::vector<LabeledPair> pairs;
  pairs.reserve(size());
  auto resolve_side = [&](const std::vector<ReferenceLink>& links,
                          bool is_match) -> Status {
    for (const auto& link : links) {
      const Entity* ea = a.FindEntity(link.id_a);
      if (ea == nullptr) {
        return Status::NotFound("entity not in source dataset: " + link.id_a);
      }
      const Entity* eb = b.FindEntity(link.id_b);
      if (eb == nullptr) {
        return Status::NotFound("entity not in target dataset: " + link.id_b);
      }
      pairs.push_back({ea, eb, is_match});
    }
    return Status::Ok();
  };
  Status s = resolve_side(positives_, true);
  if (!s.ok()) return s;
  s = resolve_side(negatives_, false);
  if (!s.ok()) return s;
  return pairs;
}

std::vector<ReferenceLinkSet> ReferenceLinkSet::SplitFolds(size_t num_folds,
                                                           Rng& rng) const {
  std::vector<ReferenceLinkSet> folds(num_folds == 0 ? 1 : num_folds);
  auto deal = [&](std::vector<ReferenceLink> links, bool positive) {
    rng.Shuffle(links);
    for (size_t i = 0; i < links.size(); ++i) {
      auto& fold = folds[i % folds.size()];
      if (positive) {
        fold.AddPositive(links[i].id_a, links[i].id_b);
      } else {
        fold.AddNegative(links[i].id_a, links[i].id_b);
      }
    }
  };
  deal(positives_, true);
  deal(negatives_, false);
  return folds;
}

void ReferenceLinkSet::Merge(const ReferenceLinkSet& other) {
  positives_.insert(positives_.end(), other.positives_.begin(), other.positives_.end());
  negatives_.insert(negatives_.end(), other.negatives_.begin(), other.negatives_.end());
}

}  // namespace genlink
