#include "model/dataset.h"

namespace genlink {

Status Dataset::AddEntity(Entity entity) {
  if (entity.id().empty()) {
    return Status::InvalidArgument("entity id must be non-empty");
  }
  auto [it, inserted] = index_by_id_.emplace(entity.id(), entities_.size());
  if (!inserted) {
    return Status::InvalidArgument("duplicate entity id: " + entity.id());
  }
  entities_.push_back(std::move(entity));
  return Status::Ok();
}

const Entity* Dataset::FindEntity(std::string_view id) const {
  auto it = index_by_id_.find(std::string(id));
  if (it == index_by_id_.end()) return nullptr;
  return &entities_[it->second];
}

}  // namespace genlink
