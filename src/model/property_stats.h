// Property statistics: coverage (fraction of entities with a value per
// property), as reported by Table 6 of the paper.

#ifndef GENLINK_MODEL_PROPERTY_STATS_H_
#define GENLINK_MODEL_PROPERTY_STATS_H_

#include <vector>

#include "model/dataset.h"

namespace genlink {

/// Per-property coverage statistics of one dataset.
struct PropertyStats {
  /// coverage[p] = fraction of entities that have >= 1 value for p.
  std::vector<double> coverage;
  /// mean_values[p] = average number of values among entities that have p.
  std::vector<double> mean_values;

  /// Mean of `coverage` over all properties (the C_A / C_B numbers of
  /// Table 6).
  double MeanCoverage() const;
};

/// Computes coverage statistics over all entities of `dataset`.
PropertyStats ComputePropertyStats(const Dataset& dataset);

}  // namespace genlink

#endif  // GENLINK_MODEL_PROPERTY_STATS_H_
