#include "model/schema.h"

namespace genlink {

Schema::Schema(const std::vector<std::string>& property_names) {
  for (const auto& name : property_names) AddProperty(name);
}

PropertyId Schema::AddProperty(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  PropertyId id = static_cast<PropertyId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<PropertyId> Schema::FindProperty(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace genlink
