// Dataset: a schema plus a collection of entities with id-based lookup.

#ifndef GENLINK_MODEL_DATASET_H_
#define GENLINK_MODEL_DATASET_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "model/entity.h"
#include "model/schema.h"

namespace genlink {

/// One data source (the paper's A or B).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  /// Adds an entity; its id must be unique within the dataset.
  Status AddEntity(Entity entity);

  size_t size() const { return entities_.size(); }
  bool empty() const { return entities_.empty(); }

  const Entity& entity(size_t index) const { return entities_[index]; }
  Entity& mutable_entity(size_t index) { return entities_[index]; }
  const std::vector<Entity>& entities() const { return entities_; }

  /// Returns the entity with the given id, or nullptr.
  const Entity* FindEntity(std::string_view id) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Entity> entities_;
  std::unordered_map<std::string, size_t> index_by_id_;
};

}  // namespace genlink

#endif  // GENLINK_MODEL_DATASET_H_
