#include "model/property_stats.h"

namespace genlink {

double PropertyStats::MeanCoverage() const {
  if (coverage.empty()) return 0.0;
  double sum = 0.0;
  for (double c : coverage) sum += c;
  return sum / static_cast<double>(coverage.size());
}

PropertyStats ComputePropertyStats(const Dataset& dataset) {
  PropertyStats stats;
  size_t num_props = dataset.schema().NumProperties();
  stats.coverage.assign(num_props, 0.0);
  stats.mean_values.assign(num_props, 0.0);
  if (dataset.empty() || num_props == 0) return stats;

  std::vector<size_t> present(num_props, 0);
  std::vector<size_t> value_count(num_props, 0);
  for (const Entity& e : dataset.entities()) {
    for (PropertyId p = 0; p < num_props; ++p) {
      const ValueSet& values = e.Values(p);
      if (!values.empty()) {
        ++present[p];
        value_count[p] += values.size();
      }
    }
  }
  for (PropertyId p = 0; p < num_props; ++p) {
    stats.coverage[p] = static_cast<double>(present[p]) / dataset.size();
    stats.mean_values[p] =
        present[p] == 0 ? 0.0
                        : static_cast<double>(value_count[p]) / present[p];
  }
  return stats;
}

}  // namespace genlink
