// Schema: the ordered set of property names of a data source.
//
// The two data sources being matched may adhere to different schemata
// (Section 1 of the paper); property operators store property *names*
// which are resolved against the schema of the side they read from.

#ifndef GENLINK_MODEL_SCHEMA_H_
#define GENLINK_MODEL_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace genlink {

/// Identifier of a property within one schema (dense, 0-based).
using PropertyId = uint32_t;

/// An immutable-after-construction mapping between property names and
/// dense ids.
class Schema {
 public:
  Schema() = default;

  /// Constructs a schema from an ordered list of property names.
  /// Duplicate names collapse to the first occurrence.
  explicit Schema(const std::vector<std::string>& property_names);

  /// Adds a property if absent; returns its id either way.
  PropertyId AddProperty(std::string_view name);

  /// Returns the id of `name`, or nullopt if the property is unknown.
  std::optional<PropertyId> FindProperty(std::string_view name) const;

  /// Returns the name of property `id`. `id` must be valid.
  const std::string& PropertyName(PropertyId id) const { return names_[id]; }

  size_t NumProperties() const { return names_.size(); }
  const std::vector<std::string>& property_names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, PropertyId> ids_;
};

}  // namespace genlink

#endif  // GENLINK_MODEL_SCHEMA_H_
