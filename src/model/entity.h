// Entity: a record described by a set of multi-valued properties
// (Section 2 of the paper). Values are stored densely indexed by the
// owning dataset's schema.

#ifndef GENLINK_MODEL_ENTITY_H_
#define GENLINK_MODEL_ENTITY_H_

#include <string>
#include <string_view>
#include <vector>

#include "model/schema.h"
#include "model/value.h"

namespace genlink {

/// A single entity (RDF resource / database record).
class Entity {
 public:
  Entity() = default;
  explicit Entity(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

  /// Returns the values of property `id`; empty set when unset. Safe for
  /// ids beyond the stored width (sparse entities).
  const ValueSet& Values(PropertyId id) const {
    static const ValueSet kEmpty;
    if (id >= values_.size()) return kEmpty;
    return values_[id];
  }

  /// Appends a value for property `id`, growing storage as needed.
  void AddValue(PropertyId id, std::string value);

  /// Replaces all values of property `id`.
  void SetValues(PropertyId id, ValueSet values);

  /// True if the property has at least one value.
  bool HasProperty(PropertyId id) const {
    return id < values_.size() && !values_[id].empty();
  }

  /// Number of property slots allocated (upper bound on set properties).
  size_t NumPropertySlots() const { return values_.size(); }

 private:
  std::string id_;
  std::vector<ValueSet> values_;
};

}  // namespace genlink

#endif  // GENLINK_MODEL_ENTITY_H_
