#include "model/entity.h"

namespace genlink {

void Entity::AddValue(PropertyId id, std::string value) {
  if (id >= values_.size()) values_.resize(id + 1);
  values_[id].push_back(std::move(value));
}

void Entity::SetValues(PropertyId id, ValueSet values) {
  if (id >= values_.size()) values_.resize(id + 1);
  values_[id] = std::move(values);
}

}  // namespace genlink
