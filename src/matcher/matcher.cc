#include "matcher/matcher.h"

#include <algorithm>
#include <mutex>

namespace genlink {

std::vector<GeneratedLink> GenerateLinks(const LinkageRule& rule,
                                         const Dataset& a, const Dataset& b,
                                         const MatchOptions& options) {
  std::vector<GeneratedLink> links;
  std::mutex links_mutex;

  std::unique_ptr<TokenBlockingIndex> index;
  if (options.use_blocking) {
    index = std::make_unique<TokenBlockingIndex>(b, TargetProperties(rule));
  }

  ThreadPool pool(options.num_threads);
  pool.ParallelFor(a.size(), [&](size_t i) {
    const Entity& ea = a.entity(i);
    std::vector<GeneratedLink> local;
    auto consider = [&](size_t j) {
      const Entity& eb = b.entity(j);
      if (&a == &b && ea.id() >= eb.id()) return;  // dedup: each pair once
      double score = rule.Evaluate(ea, eb, a.schema(), b.schema());
      if (score >= options.threshold) {
        local.push_back({ea.id(), eb.id(), score});
      }
    };
    if (index != nullptr) {
      for (size_t j : index->Candidates(ea, a.schema())) consider(j);
    } else {
      for (size_t j = 0; j < b.size(); ++j) consider(j);
    }
    if (options.best_match_only && local.size() > 1) {
      auto best = std::max_element(local.begin(), local.end(),
                                   [](const auto& x, const auto& y) {
                                     return x.score < y.score;
                                   });
      GeneratedLink keep = *best;
      local.clear();
      local.push_back(std::move(keep));
    }
    if (!local.empty()) {
      std::lock_guard<std::mutex> lock(links_mutex);
      for (auto& link : local) links.push_back(std::move(link));
    }
  });

  std::sort(links.begin(), links.end(), [](const auto& x, const auto& y) {
    if (x.score != y.score) return x.score > y.score;
    if (x.id_a != y.id_a) return x.id_a < y.id_a;
    return x.id_b < y.id_b;
  });
  return links;
}

}  // namespace genlink
