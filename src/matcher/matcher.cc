#include "matcher/matcher.h"

#include <algorithm>
#include <mutex>

#include "eval/value_store.h"

namespace genlink {

std::vector<GeneratedLink> GenerateLinks(const LinkageRule& rule,
                                         const Dataset& a, const Dataset& b,
                                         const MatchOptions& options) {
  std::vector<GeneratedLink> links;
  std::mutex links_mutex;

  std::unique_ptr<TokenBlockingIndex> index;
  if (options.use_blocking) {
    index = std::make_unique<TokenBlockingIndex>(b, TargetProperties(rule));
  }

  ThreadPool pool(options.num_threads);

  // Fast path: evaluate every value subtree once per entity up front
  // (store entity index == dataset entity index), then score candidate
  // pairs over interned values only. Falls back to the operator tree
  // when disabled; the generated links are bit-identical.
  std::unique_ptr<ValueStore> store;
  std::unique_ptr<CompiledRule> compiled;
  if (options.use_value_store && !rule.empty()) {
    store = std::make_unique<ValueStore>(a, b);
    compiled = std::make_unique<CompiledRule>(rule, *store, &pool);
  }

  pool.ParallelFor(a.size(), [&](size_t i) {
    const Entity& ea = a.entity(i);
    std::vector<GeneratedLink> local;
    auto consider = [&](size_t j) {
      const Entity& eb = b.entity(j);
      if (&a == &b && ea.id() >= eb.id()) return;  // dedup: each pair once
      double score = compiled != nullptr
                         ? compiled->Score(i, j)
                         : rule.Evaluate(ea, eb, a.schema(), b.schema());
      if (score >= options.threshold) {
        local.push_back({ea.id(), eb.id(), score});
      }
    };
    if (index != nullptr) {
      for (size_t j : index->Candidates(ea, a.schema())) consider(j);
    } else {
      for (size_t j = 0; j < b.size(); ++j) consider(j);
    }
    if (options.best_match_only && local.size() > 1) {
      auto best = std::max_element(local.begin(), local.end(),
                                   [](const auto& x, const auto& y) {
                                     return x.score < y.score;
                                   });
      GeneratedLink keep = *best;
      local.clear();
      local.push_back(std::move(keep));
    }
    if (!local.empty()) {
      std::lock_guard<std::mutex> lock(links_mutex);
      for (auto& link : local) links.push_back(std::move(link));
    }
  });

  std::sort(links.begin(), links.end(), [](const auto& x, const auto& y) {
    if (x.score != y.score) return x.score > y.score;
    if (x.id_a != y.id_a) return x.id_a < y.id_a;
    return x.id_b < y.id_b;
  });
  return links;
}

}  // namespace genlink
