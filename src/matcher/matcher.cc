#include "matcher/matcher.h"

#include "api/matcher_index.h"

namespace genlink {

std::vector<GeneratedLink> GenerateLinks(const LinkageRule& rule,
                                         const Dataset& a, const Dataset& b,
                                         const MatchOptions& options) {
  // One-shot convenience over the session API: build the artifacts
  // (blocking index, value store, compiled rule), run the full join,
  // throw the artifacts away. Callers that match more than once should
  // hold the MatcherIndex instead.
  return MatcherIndex::Build(a, b, rule, options)->MatchDataset();
}

}  // namespace genlink
