#include "matcher/blocking.h"

#include <algorithm>
#include <unordered_set>

#include "text/case_fold.h"
#include "text/tokenizer.h"

namespace genlink {
namespace {

void CollectPropertiesFromValue(const ValueOperator* op,
                                std::unordered_set<std::string>& out) {
  if (op == nullptr) return;
  if (op->kind() == OperatorKind::kProperty) {
    out.insert(static_cast<const PropertyOperator*>(op)->property());
    return;
  }
  const auto* tf = static_cast<const TransformOperator*>(op);
  for (const auto& input : tf->inputs()) {
    CollectPropertiesFromValue(input.get(), out);
  }
}

std::vector<std::string> CollectSideProperties(const LinkageRule& rule,
                                               bool source_side) {
  std::unordered_set<std::string> names;
  for (const auto* cmp : CollectComparisons(rule)) {
    CollectPropertiesFromValue(source_side ? cmp->source() : cmp->target(), names);
  }
  std::vector<std::string> out(names.begin(), names.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

TokenBlockingIndex::TokenBlockingIndex(const Dataset& dataset,
                                       const std::vector<std::string>& properties)
    : dataset_(&dataset) {
  if (properties.empty()) {
    for (PropertyId p = 0; p < dataset.schema().NumProperties(); ++p) {
      indexed_properties_.push_back(p);
    }
  } else {
    for (const auto& name : properties) {
      if (auto id = dataset.schema().FindProperty(name)) {
        indexed_properties_.push_back(*id);
      }
    }
  }
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Entity& entity = dataset.entity(i);
    std::unordered_set<std::string> seen;
    for (PropertyId p : indexed_properties_) {
      for (const auto& value : entity.Values(p)) {
        for (auto& token : TokenizeAlnum(ToLowerAscii(value))) {
          if (seen.insert(token).second) {
            index_[token].push_back(i);
          }
        }
      }
    }
  }
}

std::vector<size_t> TokenBlockingIndex::Candidates(const Entity& entity,
                                                   const Schema& schema) const {
  // Deduplicate posting-list hits with an epoch-stamped scratch array
  // instead of a hash set: candidate sets run to hundreds of entries
  // per query (one per shared token), and this path sits inside the
  // matcher's per-source-entity loop. The scratch is thread-local so
  // concurrent matcher tasks never share it; the epoch bump makes
  // clearing O(1).
  thread_local std::vector<uint32_t> stamp;
  thread_local uint32_t epoch = 0;
  if (stamp.size() < dataset_->size()) stamp.resize(dataset_->size(), 0);
  if (++epoch == 0) {  // wrapped: all stamps are stale but may collide
    std::fill(stamp.begin(), stamp.end(), 0);
    epoch = 1;
  }

  std::vector<size_t> out;
  // Probe with the tokens of every property of the query entity; the
  // source schema generally differs from the indexed one, so all
  // properties are used.
  for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
    for (const auto& value : entity.Values(p)) {
      for (auto& token : TokenizeAlnum(ToLowerAscii(value))) {
        auto it = index_.find(token);
        if (it == index_.end()) continue;
        for (size_t j : it->second) {
          if (stamp[j] != epoch) {
            stamp[j] = epoch;
            out.push_back(j);
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> SourceProperties(const LinkageRule& rule) {
  return CollectSideProperties(rule, /*source_side=*/true);
}

std::vector<std::string> TargetProperties(const LinkageRule& rule) {
  return CollectSideProperties(rule, /*source_side=*/false);
}

double BlockingRecall(const TokenBlockingIndex& index, const Dataset& a_set,
                      const Dataset& b_set, const ReferenceLinkSet& links) {
  if (links.positives().empty()) return 1.0;
  size_t found = 0;
  for (const ReferenceLink& link : links.positives()) {
    const Entity* a = a_set.FindEntity(link.id_a);
    if (a == nullptr) continue;
    for (size_t j : index.Candidates(*a, a_set.schema())) {
      if (b_set.entity(j).id() == link.id_b) {
        ++found;
        break;
      }
    }
  }
  return static_cast<double>(found) /
         static_cast<double>(links.positives().size());
}

}  // namespace genlink
