#include "matcher/blocking.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "text/case_fold.h"
#include "text/tokenizer.h"

namespace genlink {
namespace {

void CollectPropertiesFromValue(const ValueOperator* op,
                                std::unordered_set<std::string>& out) {
  if (op == nullptr) return;
  if (op->kind() == OperatorKind::kProperty) {
    out.insert(static_cast<const PropertyOperator*>(op)->property());
    return;
  }
  const auto* tf = static_cast<const TransformOperator*>(op);
  for (const auto& input : tf->inputs()) {
    CollectPropertiesFromValue(input.get(), out);
  }
}

std::vector<std::string> CollectSideProperties(const LinkageRule& rule,
                                               bool source_side) {
  std::unordered_set<std::string> names;
  for (const auto* cmp : CollectComparisons(rule)) {
    CollectPropertiesFromValue(source_side ? cmp->source() : cmp->target(), names);
  }
  std::vector<std::string> out(names.begin(), names.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PropertyId> ResolveProperties(
    const Schema& schema, const std::vector<std::string>& properties) {
  std::vector<PropertyId> out;
  if (properties.empty()) {
    for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
      out.push_back(p);
    }
  } else {
    for (const auto& name : properties) {
      if (auto id = schema.FindProperty(name)) {
        out.push_back(*id);
      }
    }
  }
  return out;
}

void AppendEntityTokens(const Entity& entity,
                        const std::vector<PropertyId>& properties,
                        std::vector<std::string>& out) {
  std::unordered_set<std::string> seen;
  for (PropertyId p : properties) {
    for (const auto& value : entity.Values(p)) {
      for (auto& token : TokenizeAlnum(ToLowerAscii(value))) {
        if (seen.insert(token).second) out.push_back(std::move(token));
      }
    }
  }
}

/// The blocking keys of every entity of `dataset`: lowercased alnum
/// tokens of the resolved properties, deduplicated per entity and, with
/// weighted options, pruned to the `max_tokens_per_entity` rarest
/// tokens (document frequency ascending, ties by token — a total order,
/// so the selection is deterministic) with df >= min_token_df. Both
/// index classes build from this, which is what makes the sharded and
/// single-map indexes agree for any option set.
std::vector<std::vector<std::string>> ComputeEntityKeys(
    const Dataset& dataset, const std::vector<PropertyId>& properties,
    const TokenBlockingOptions& options) {
  std::vector<std::vector<std::string>> keys(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    AppendEntityTokens(dataset.entity(i), properties, keys[i]);
  }
  const bool weighted =
      options.max_tokens_per_entity > 0 || options.min_token_df > 1;
  if (!weighted) return keys;

  // Document frequencies over the per-entity deduplicated token lists.
  std::unordered_map<std::string, size_t> df;
  for (const auto& entity_keys : keys) {
    for (const auto& token : entity_keys) ++df[token];
  }
  for (auto& entity_keys : keys) {
    if (options.min_token_df > 1) {
      entity_keys.erase(
          std::remove_if(entity_keys.begin(), entity_keys.end(),
                         [&](const std::string& token) {
                           return df.find(token)->second < options.min_token_df;
                         }),
          entity_keys.end());
    }
    const size_t k = options.max_tokens_per_entity;
    if (k > 0 && entity_keys.size() > k) {
      std::sort(entity_keys.begin(), entity_keys.end(),
                [&](const std::string& a, const std::string& b) {
                  const size_t da = df.find(a)->second;
                  const size_t db = df.find(b)->second;
                  if (da != db) return da < db;
                  return a < b;
                });
      entity_keys.resize(k);
    }
  }
  return keys;
}

/// Thread-local epoch-stamped membership scratch for candidate
/// deduplication: candidate sets run to hundreds of entries per query
/// (one per shared token) and this path sits inside the matcher's
/// per-source-entity loop, so a hash set per call would dominate.
/// Thread-local so concurrent queries — from the matcher pool or
/// external callers — never share it; the epoch bump makes clearing
/// O(1). Shared by all index instances on a thread: every call bumps
/// the epoch, so stale stamps from another index can never collide
/// within a call. tests/blocking_concurrency_test.cc exercises this
/// under TSan.
struct StampScratch {
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;

  /// Starts a new deduplication round over entity indexes [0, n).
  void Begin(size_t n) {
    if (stamp.size() < n) stamp.resize(n, 0);
    if (++epoch == 0) {  // wrapped: all stamps are stale but may collide
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }

  /// True the first time `j` is seen this round.
  bool Insert(size_t j) {
    if (stamp[j] == epoch) return false;
    stamp[j] = epoch;
    return true;
  }
};

StampScratch& TlsStamp() {
  thread_local StampScratch scratch;
  return scratch;
}

/// Probes `index` with every token of every property of `entity` and
/// appends the deduplicated hits (unsorted posting order) to `out`.
/// `accept_token` filters the probe tokens (sharding); the scratch must
/// have been Begin()-started by the caller.
template <typename AcceptToken>
void ProbePostings(
    const std::unordered_map<std::string, std::vector<size_t>>& index,
    const Entity& entity, const Schema& schema, StampScratch& scratch,
    const AcceptToken& accept_token, std::vector<size_t>& out) {
  // Probe with the tokens of every property of the query entity; the
  // source schema generally differs from the indexed one, so all
  // properties are used.
  for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
    for (const auto& value : entity.Values(p)) {
      for (auto& token : TokenizeAlnum(ToLowerAscii(value))) {
        if (!accept_token(token)) continue;
        auto it = index.find(token);
        if (it == index.end()) continue;
        for (size_t j : it->second) {
          if (scratch.Insert(j)) out.push_back(j);
        }
      }
    }
  }
}

size_t TokenShard(const std::string& token, size_t num_shards) {
  return BlockingTokenShard(token, num_shards);
}

}  // namespace

std::vector<std::vector<std::string>> ComputeBlockingKeys(
    const Dataset& dataset, const std::vector<std::string>& properties,
    const TokenBlockingOptions& options) {
  return ComputeEntityKeys(dataset, ResolveProperties(dataset.schema(), properties),
                           options);
}

std::vector<std::string> EntityBlockingKeys(
    const Entity& entity, const Schema& schema,
    const std::vector<std::string>& properties) {
  std::vector<std::string> out;
  AppendEntityTokens(entity, ResolveProperties(schema, properties), out);
  return out;
}

size_t BlockingTokenShard(std::string_view token, size_t num_shards) {
  return HashBytes(token) % num_shards;
}

TokenBlockingIndex::TokenBlockingIndex(const Dataset& dataset,
                                       const std::vector<std::string>& properties,
                                       const TokenBlockingOptions& options)
    : dataset_(&dataset) {
  const std::vector<PropertyId> resolved = ResolveProperties(dataset.schema(), properties);
  std::vector<std::vector<std::string>> keys =
      ComputeEntityKeys(dataset, resolved, options);
  for (size_t i = 0; i < keys.size(); ++i) {
    for (auto& token : keys[i]) {
      index_[std::move(token)].push_back(i);
      ++postings_;
    }
  }
}

std::vector<size_t> TokenBlockingIndex::Candidates(const Entity& entity,
                                                   const Schema& schema) const {
  std::vector<size_t> out;
  AppendShardCandidates(0, entity, schema, out);
  std::sort(out.begin(), out.end());
  return out;
}

void TokenBlockingIndex::AppendShardCandidates(size_t /*shard*/,
                                               const Entity& entity,
                                               const Schema& schema,
                                               std::vector<size_t>& out) const {
  StampScratch& scratch = TlsStamp();
  scratch.Begin(dataset_->size());
  ProbePostings(index_, entity, schema, scratch,
                [](const std::string&) { return true; }, out);
}

BlockingShardStats TokenBlockingIndex::ShardStats(size_t /*shard*/) const {
  return BlockingShardStats{index_.size(), postings_};
}

ShardedTokenBlockingIndex::ShardedTokenBlockingIndex(
    const Dataset& dataset, const std::vector<std::string>& properties,
    const TokenBlockingOptions& options)
    : dataset_(&dataset) {
  const size_t num_shards = std::max<size_t>(1, options.num_shards);
  shards_.resize(num_shards);
  const std::vector<PropertyId> resolved = ResolveProperties(dataset.schema(), properties);
  // Tokenize (and df-rank) once, then partition: shard s owns exactly
  // the tokens with hash % N == s, so shard builds touch disjoint state
  // and can run in parallel with no synchronization.
  const std::vector<std::vector<std::string>> keys =
      ComputeEntityKeys(dataset, resolved, options);
  const auto build_shard = [&](size_t s) {
    Shard& shard = shards_[s];
    for (size_t i = 0; i < keys.size(); ++i) {
      for (const auto& token : keys[i]) {
        if (TokenShard(token, num_shards) != s) continue;
        shard.index[token].push_back(i);
        ++shard.postings;
      }
    }
  };
  if (options.build_pool != nullptr && num_shards > 1) {
    options.build_pool->ParallelForEach(num_shards, build_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) build_shard(s);
  }
}

std::vector<size_t> ShardedTokenBlockingIndex::Candidates(
    const Entity& entity, const Schema& schema) const {
  // One scratch round and one tokenization pass: each query token is
  // looked up in the single shard that owns it. Sorted-unique output
  // makes the shard count invisible to callers.
  StampScratch& scratch = TlsStamp();
  scratch.Begin(dataset_->size());
  std::vector<size_t> out;
  const size_t num_shards = shards_.size();
  for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
    for (const auto& value : entity.Values(p)) {
      for (auto& token : TokenizeAlnum(ToLowerAscii(value))) {
        const auto& index = shards_[TokenShard(token, num_shards)].index;
        auto it = index.find(token);
        if (it == index.end()) continue;
        for (size_t j : it->second) {
          if (scratch.Insert(j)) out.push_back(j);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ShardedTokenBlockingIndex::AppendShardCandidates(
    size_t shard, const Entity& entity, const Schema& schema,
    std::vector<size_t>& out) const {
  StampScratch& scratch = TlsStamp();
  scratch.Begin(dataset_->size());
  const size_t num_shards = shards_.size();
  ProbePostings(
      shards_[shard].index, entity, schema, scratch,
      [&](const std::string& token) {
        return TokenShard(token, num_shards) == shard;
      },
      out);
}

size_t ShardedTokenBlockingIndex::NumTokens() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.index.size();
  return total;
}

size_t ShardedTokenBlockingIndex::NumPostings() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.postings;
  return total;
}

BlockingShardStats ShardedTokenBlockingIndex::ShardStats(size_t shard) const {
  return BlockingShardStats{shards_[shard].index.size(),
                            shards_[shard].postings};
}

std::vector<std::string> SourceProperties(const LinkageRule& rule) {
  return CollectSideProperties(rule, /*source_side=*/true);
}

std::vector<std::string> TargetProperties(const LinkageRule& rule) {
  return CollectSideProperties(rule, /*source_side=*/false);
}

double BlockingRecall(const BlockingIndex& index, const Dataset& a_set,
                      const Dataset& b_set, const ReferenceLinkSet& links) {
  if (links.positives().empty()) return 1.0;
  size_t found = 0;
  for (const ReferenceLink& link : links.positives()) {
    const Entity* a = a_set.FindEntity(link.id_a);
    if (a == nullptr) continue;
    for (size_t j : index.Candidates(*a, a_set.schema())) {
      if (b_set.entity(j).id() == link.id_b) {
        ++found;
        break;
      }
    }
  }
  return static_cast<double>(found) /
         static_cast<double>(links.positives().size());
}

}  // namespace genlink
