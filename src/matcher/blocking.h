// Token-based blocking: indexes target entities by the lowercased tokens
// of the properties a rule compares, so that rule execution over two
// datasets evaluates only candidate pairs that share at least one token
// instead of the full cross product. (The paper defers efficient
// execution to [19]; this index is this library's implementation of that
// substrate.)

#ifndef GENLINK_MATCHER_BLOCKING_H_
#define GENLINK_MATCHER_BLOCKING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "model/dataset.h"
#include "model/reference_links.h"
#include "rule/linkage_rule.h"

namespace genlink {

/// Inverted index from token to entity indexes of the target dataset.
///
/// Thread safety: immutable after construction; Candidates() is const
/// and safe to call concurrently from any number of threads. Its only
/// mutable state is a thread_local epoch-stamped scratch array (see
/// blocking.cc and docs/CONCURRENCY.md), so concurrent callers never
/// share scratch and no locking is needed. api/matcher_index.cc shares
/// one index across rule generations through a shared_ptr<const
/// TokenBlockingIndex> in a cache guarded by the corpus lock.
class TokenBlockingIndex {
 public:
  /// Indexes `dataset` over the given properties (all properties when
  /// empty). Tokens are lowercased alphanumeric runs.
  TokenBlockingIndex(const Dataset& dataset,
                     const std::vector<std::string>& properties = {});

  /// Returns the indexes of candidate entities sharing at least one
  /// token with `entity` (whose properties live in `schema`), restricted
  /// to `properties` given at construction. Sorted, deduplicated.
  std::vector<size_t> Candidates(const Entity& entity,
                                 const Schema& schema) const;

  /// Number of distinct tokens in the index.
  size_t NumTokens() const { return index_.size(); }

 private:
  const Dataset* dataset_;
  std::vector<PropertyId> indexed_properties_;  // in dataset_'s schema
  /// Read-only after construction (the const-thread-safety contract
  /// above). Iteration order never reaches output: Candidates() probes
  /// by key and sorts its result.
  std::unordered_map<std::string, std::vector<size_t>> index_;
};

/// Extracts the source-side / target-side property names a rule reads
/// (from its property operators).
std::vector<std::string> SourceProperties(const LinkageRule& rule);
std::vector<std::string> TargetProperties(const LinkageRule& rule);

/// Blocking recall on reference links: the fraction of positive links
/// (a, b) whose target entity b appears in `index.Candidates(a)`, where
/// `index` was built over dataset `b_set` and `a` lives in `a_set`.
/// 1.0 means the index never discards a known match (the soundness
/// criterion the matcher relies on; asserted on the Restaurant data by
/// tests/blocking_soundness_test.cc). Links whose entities cannot be
/// resolved are counted as missed.
double BlockingRecall(const TokenBlockingIndex& index, const Dataset& a_set,
                      const Dataset& b_set, const ReferenceLinkSet& links);

}  // namespace genlink

#endif  // GENLINK_MATCHER_BLOCKING_H_
