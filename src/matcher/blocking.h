// Token-based blocking: indexes target entities by the lowercased tokens
// of the properties a rule compares, so that rule execution over two
// datasets evaluates only candidate pairs that share at least one token
// instead of the full cross product. (The paper defers efficient
// execution to [19]; this index is this library's implementation of that
// substrate.)
//
// Two implementations share the BlockingIndex interface:
//   * TokenBlockingIndex — one postings map; the default.
//   * ShardedTokenBlockingIndex — postings partitioned across N shards
//     by token hash, built shard-parallel and queried shard-by-shard
//     (api/matcher_index.cc fans MatchBatch candidate generation out
//     per shard). Bit-identical candidate sets for any shard count.
//
// Both support weighted (rare-token) key selection via
// TokenBlockingOptions: instead of indexing every token, each entity is
// indexed under only its k rarest tokens (document frequency ascending,
// ties broken by the token string, so selection is deterministic).
// Weighted candidates are always a subset of unweighted candidates;
// recall floors are gated by tests/blocking_scale_test.cc and
// bench/blocking_scale.cc.

#ifndef GENLINK_MATCHER_BLOCKING_H_
#define GENLINK_MATCHER_BLOCKING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "model/dataset.h"
#include "model/reference_links.h"
#include "rule/linkage_rule.h"

namespace genlink {

class ThreadPool;

/// Key-selection and sharding knobs of the blocking indexes. The
/// defaults reproduce the classic unweighted single-shard index.
struct TokenBlockingOptions {
  /// Index each entity under only its `max_tokens_per_entity` rarest
  /// tokens (document frequency ascending, then token). 0 = all tokens.
  size_t max_tokens_per_entity = 0;
  /// Skip tokens occurring in fewer than this many indexed entities.
  /// 1 = keep all (default). 2 prunes tokens unique to one entity —
  /// useful on a self-indexed (dedup) corpus, where a unique token can
  /// never produce a candidate other than the query entity itself.
  size_t min_token_df = 1;
  /// Number of hash shards (ShardedTokenBlockingIndex only; the plain
  /// index ignores it). 0 or 1 = single shard.
  size_t num_shards = 1;
  /// When set, ShardedTokenBlockingIndex builds its shards in parallel
  /// on this pool (one task per shard). The result is identical with or
  /// without a pool: each shard's postings depend only on the corpus.
  ThreadPool* build_pool = nullptr;
};

/// Size counters of one postings shard (stats()).
struct BlockingShardStats {
  size_t tokens = 0;
  size_t postings = 0;
};

/// Candidate generation interface shared by the single-map and sharded
/// indexes. Implementations are immutable after construction and safe
/// to query concurrently (see TokenBlockingIndex for the scratch
/// contract).
class BlockingIndex {
 public:
  virtual ~BlockingIndex() = default;

  /// Returns the indexes of candidate entities sharing at least one
  /// indexed token with `entity` (whose properties live in `schema`).
  /// Sorted, deduplicated.
  virtual std::vector<size_t> Candidates(const Entity& entity,
                                         const Schema& schema) const = 0;

  /// Appends the candidates contributed by shard `shard` (tokens whose
  /// hash maps to that shard) to `out`: deduplicated within the shard,
  /// unsorted. The sorted union over all shards equals Candidates() —
  /// the contract MatcherIndex::MatchBatch's per-shard fan-out relies
  /// on. `shard` must be < NumShards().
  virtual void AppendShardCandidates(size_t shard, const Entity& entity,
                                     const Schema& schema,
                                     std::vector<size_t>& out) const = 0;

  virtual size_t NumShards() const = 0;
  /// Number of distinct tokens in the index (summed over shards).
  virtual size_t NumTokens() const = 0;
  /// Number of (token, entity) postings (summed over shards).
  virtual size_t NumPostings() const = 0;
  /// Size counters of one shard. `shard` must be < NumShards().
  virtual BlockingShardStats ShardStats(size_t shard) const = 0;
};

/// Inverted index from token to entity indexes of the target dataset.
///
/// Thread safety: immutable after construction; Candidates() is const
/// and safe to call concurrently from any number of threads. Its only
/// mutable state is a thread_local epoch-stamped scratch array (see
/// blocking.cc and docs/CONCURRENCY.md), so concurrent callers never
/// share scratch and no locking is needed
/// (tests/blocking_concurrency_test.cc exercises this under TSan).
/// api/matcher_index.cc shares one index across rule generations
/// through a shared_ptr<const BlockingIndex> in a cache guarded by the
/// corpus lock.
class TokenBlockingIndex : public BlockingIndex {
 public:
  /// Indexes `dataset` over the given properties (all properties when
  /// empty). Tokens are lowercased alphanumeric runs; `options` selects
  /// weighted keys (the default indexes every token).
  TokenBlockingIndex(const Dataset& dataset,
                     const std::vector<std::string>& properties = {},
                     const TokenBlockingOptions& options = {});

  std::vector<size_t> Candidates(const Entity& entity,
                                 const Schema& schema) const override;
  void AppendShardCandidates(size_t shard, const Entity& entity,
                             const Schema& schema,
                             std::vector<size_t>& out) const override;
  size_t NumShards() const override { return 1; }
  size_t NumTokens() const override { return index_.size(); }
  size_t NumPostings() const override { return postings_; }
  BlockingShardStats ShardStats(size_t shard) const override;

 private:
  const Dataset* dataset_;
  size_t postings_ = 0;
  /// Read-only after construction (the const-thread-safety contract
  /// above). Iteration order never reaches output: Candidates() probes
  /// by key and sorts its result.
  std::unordered_map<std::string, std::vector<size_t>> index_;
};

/// Postings partitioned across N shards by token hash. Each token lives
/// in exactly one shard, so the sorted union of per-shard candidate
/// sets is bit-identical to the single-map index built with the same
/// options — for any shard count (tests/blocking_scale_test.cc).
/// Shards build in parallel when the options carry a pool. Thread
/// safety matches TokenBlockingIndex: immutable after construction,
/// concurrent queries share nothing but thread-local scratch.
class ShardedTokenBlockingIndex : public BlockingIndex {
 public:
  ShardedTokenBlockingIndex(const Dataset& dataset,
                            const std::vector<std::string>& properties,
                            const TokenBlockingOptions& options);

  std::vector<size_t> Candidates(const Entity& entity,
                                 const Schema& schema) const override;
  void AppendShardCandidates(size_t shard, const Entity& entity,
                             const Schema& schema,
                             std::vector<size_t>& out) const override;
  size_t NumShards() const override { return shards_.size(); }
  size_t NumTokens() const override;
  size_t NumPostings() const override;
  BlockingShardStats ShardStats(size_t shard) const override;

 private:
  struct Shard {
    std::unordered_map<std::string, std::vector<size_t>> index;
    size_t postings = 0;
  };

  const Dataset* dataset_;
  std::vector<Shard> shards_;
};

/// The blocking keys of every entity of `dataset` over `properties`
/// (all properties when empty): lowercased alnum tokens, deduplicated
/// per entity and, with weighted options, pruned to the rarest
/// `max_tokens_per_entity` tokens with df >= min_token_df — exactly the
/// postings both index classes build from, which is what lets the
/// corpus artifact writer (io/corpus_artifact.cc) serialize postings
/// bit-identical to a fresh TokenBlockingIndex build.
std::vector<std::vector<std::string>> ComputeBlockingKeys(
    const Dataset& dataset, const std::vector<std::string>& properties,
    const TokenBlockingOptions& options);

/// The blocking keys of ONE entity (whose properties live in `schema`)
/// over `properties` (all schema properties when empty): lowercased
/// alnum tokens, deduplicated, in first-seen order — exactly the row
/// ComputeBlockingKeys would produce for this entity under the default
/// (unweighted) options. Only valid for the df-independent
/// configuration: weighted key selection needs corpus-wide document
/// frequencies, which a single entity cannot supply. The live corpus
/// layer (live/live_corpus.h) indexes delta entities with this, which
/// is what keeps its candidate sets bit-identical to a fresh build.
std::vector<std::string> EntityBlockingKeys(
    const Entity& entity, const Schema& schema,
    const std::vector<std::string>& properties);

/// Deterministic shard of `token` under `num_shards` — the partition
/// the sharded index and the mapped postings agree on. `num_shards`
/// must be >= 1.
size_t BlockingTokenShard(std::string_view token, size_t num_shards);

/// Extracts the source-side / target-side property names a rule reads
/// (from its property operators).
std::vector<std::string> SourceProperties(const LinkageRule& rule);
std::vector<std::string> TargetProperties(const LinkageRule& rule);

/// Blocking recall on reference links: the fraction of positive links
/// (a, b) whose target entity b appears in `index.Candidates(a)`, where
/// `index` was built over dataset `b_set` and `a` lives in `a_set`.
/// 1.0 means the index never discards a known match (the soundness
/// criterion the matcher relies on; asserted on the Restaurant data by
/// tests/blocking_soundness_test.cc). Links whose entities cannot be
/// resolved are counted as missed.
double BlockingRecall(const BlockingIndex& index, const Dataset& a_set,
                      const Dataset& b_set, const ReferenceLinkSet& links);

}  // namespace genlink

#endif  // GENLINK_MATCHER_BLOCKING_H_
