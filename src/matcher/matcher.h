// Rule execution over whole datasets: generates the set of links
// M_l = {(a,b) : l(a,b) >= 0.5} (Definition 3 of the paper), using token
// blocking or the exhaustive cross product.
//
// GenerateLinks is the one-shot convenience surface: it rebuilds every
// execution artifact (blocking index, value store, compiled rule) per
// call. Long-lived deployments — request serving, repeated matching,
// rule hot swap — should build a MatcherIndex (api/matcher_index.h)
// once and query it; GenerateLinks forwards to that layer and is
// bit-identical to MatcherIndex::MatchDataset.

#ifndef GENLINK_MATCHER_MATCHER_H_
#define GENLINK_MATCHER_MATCHER_H_

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "matcher/blocking.h"
#include "model/dataset.h"
#include "rule/linkage_rule.h"

namespace genlink {

class CancelToken;  // common/clock.h

/// A generated link with its similarity score.
struct GeneratedLink {
  std::string id_a;
  std::string id_b;
  double score = 0.0;
};

/// Options for link generation.
struct MatchOptions {
  /// Use the token blocking index (recommended); exhaustive cross
  /// product otherwise.
  bool use_blocking = true;
  /// Compile the rule against a value store (eval/value_store.h):
  /// transformations run once per entity instead of once per candidate
  /// pair, and distances run over interned values with the comparison
  /// threshold as cutoff. Links are bit-identical either way
  /// (tests/matcher_test.cc); off only for A/B measurements.
  bool use_value_store = true;
  /// Minimum similarity for a link to be emitted.
  double threshold = 0.5;
  /// Keep only the best-scoring target per source entity when true.
  /// Ties are broken deterministically: highest score first, then the
  /// lexicographically smallest id_b — so the kept link never depends
  /// on candidate enumeration order or thread count
  /// (tests/matcher_test.cc, BestMatchTieBreak*).
  bool best_match_only = false;
  /// Worker threads (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Weighted blocking (opt-in): index each target entity under only
  /// its k rarest tokens (document frequency ascending, ties by token)
  /// instead of every token. 0 = index all tokens — the default path,
  /// unchanged. Shrinks candidate sets to a subset of the unweighted
  /// ones at a small recall risk; floors are gated by
  /// tests/blocking_scale_test.cc and bench/blocking_scale.cc.
  size_t blocking_max_tokens = 0;
  /// Skip blocking tokens seen in fewer than this many target entities.
  /// 1 = keep all (default). See TokenBlockingOptions::min_token_df.
  size_t blocking_min_token_df = 1;
  /// Partition the blocking postings across this many hash shards;
  /// MatchBatch fans candidate generation out per shard on the pool.
  /// Links are bit-identical for any shard count (enforced by
  /// tests/blocking_scale_test.cc). 0 or 1 = single shard (default).
  size_t blocking_shards = 1;
  /// Cooperative cancellation (common/clock.h). Not a matching knob:
  /// never serialized into artifacts and never part of result
  /// identity. When non-null, the full-join and batch surfaces poll it
  /// between entities (and within large candidate scans) and return
  /// early with whatever links were already scored — the caller must
  /// treat the result as truncated when the token fired (the CLI's
  /// SIGINT path and the serve daemon's per-request deadlines both
  /// discard-or-flag on cancellation). Null = run to completion; the
  /// non-cancelled path is bit-identical with or without a token.
  const CancelToken* cancel = nullptr;
};

/// Executes `rule` over all pairs of `a` x `b` and returns the links
/// whose similarity reaches the threshold, sorted by descending score.
std::vector<GeneratedLink> GenerateLinks(const LinkageRule& rule,
                                         const Dataset& a, const Dataset& b,
                                         const MatchOptions& options = {});

}  // namespace genlink

#endif  // GENLINK_MATCHER_MATCHER_H_
