#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "io/link_io.h"
#include "live/live_corpus.h"

namespace genlink {

namespace {

constexpr int kPollSliceMs = 50;

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

/// Maps a library Status onto the closest HTTP status for the live
/// mutation endpoints.
int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    default:
      return 500;
  }
}

bool HeaderEquals(const std::string& value, std::string_view expected) {
  if (value.size() != expected.size()) return false;
  for (size_t i = 0; i < value.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(value[i])) !=
        std::tolower(static_cast<unsigned char>(expected[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

ServeDaemon::ServeDaemon(ServingState& state, ServeOptions options)
    : state_(state), options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
}

ServeDaemon::~ServeDaemon() {
  if (started_) {
    RequestShutdown();
    WaitForDrain();
  } else if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
  for (const int fd : shutdown_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

Status ServeDaemon::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind(127.0.0.1:" +
                           std::to_string(options_.port) + ") failed: " + error);
  }
  if (::listen(listen_fd_, 128) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed: " + error);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  if (::pipe(shutdown_pipe_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("pipe() failed");
  }

  started_ = true;
  listener_ = std::thread([this] { ListenerLoop(); });
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void ServeDaemon::RequestShutdown() {
  if (shutdown_pipe_[1] < 0) return;
  const char byte = 1;
  // Async-signal-safe; a full pipe means shutdown is already pending.
  [[maybe_unused]] const ssize_t n = ::write(shutdown_pipe_[1], &byte, 1);
}

bool ServeDaemon::WaitForDrain() {
  if (listener_.joinable()) listener_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  return counters_.drain_aborts.load(std::memory_order_relaxed) == 0;
}

Deadline ServeDaemon::DrainDeadline() const {
  MutexLock lock(queue_mutex_);
  return drain_deadline_;
}

void ServeDaemon::ListenerLoop() {
  // The canned shed response, built once: the overload path allocates
  // nothing per connection.
  const std::string shed_response =
      "HTTP/1.1 503 Service Unavailable\r\nRetry-After: " +
      std::to_string(options_.retry_after_seconds) +
      "\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";

  for (;;) {
    struct pollfd pfds[2] = {{listen_fd_, POLLIN, 0},
                             {shutdown_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(pfds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents != 0) break;  // shutdown byte arrived
    if ((pfds[0].revents & POLLIN) == 0) continue;
    for (;;) {
      const int conn =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (conn < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
          counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      counters_.accepted.fetch_add(1, std::memory_order_relaxed);
      bool admit = false;
      {
        MutexLock lock(queue_mutex_);
        if (queue_.size() < options_.max_queue) {
          queue_.push_back(conn);
          admit = true;
        }
      }
      if (admit) {
        queue_cv_.NotifyOne();
      } else {
        // Admission control: turn the connection away immediately with
        // the preformatted 503 — best effort, never blocking. Drain
        // whatever request bytes already arrived first: closing a
        // socket with unread data makes the kernel send an RST, which
        // can destroy the 503 before the peer reads it.
        counters_.shed.fetch_add(1, std::memory_order_relaxed);
        char sink[4096];
        while (::recv(conn, sink, sizeof(sink), MSG_DONTWAIT) > 0) {
        }
        (void)::send(conn, shed_response.data(), shed_response.size(),
                     MSG_NOSIGNAL | MSG_DONTWAIT);
        ::close(conn);
      }
    }
  }

  // Begin the drain: publish the budget, then the flag, then wake
  // every worker (blocked ones see the empty-queue + draining exit).
  {
    MutexLock lock(queue_mutex_);
    drain_deadline_ = Deadline::After(options_.drain_deadline, options_.clock);
    draining_.store(true, std::memory_order_release);
  }
  queue_cv_.NotifyAll();
  ::close(listen_fd_);
}

int ServeDaemon::NextConnection() {
  MutexLock lock(queue_mutex_);
  while (queue_.empty() && !draining_.load(std::memory_order_acquire)) {
    queue_cv_.Wait(lock);
  }
  if (queue_.empty()) return -1;
  const int fd = queue_.front();
  queue_.pop_front();
  return fd;
}

void ServeDaemon::WorkerLoop() {
  for (;;) {
    const int fd = NextConnection();
    if (fd < 0) return;
    HandleConnection(fd);
  }
}

void ServeDaemon::HandleConnection(int fd) {
  char buf[8192];
  HttpRequestParser parser(options_.max_header_bytes, options_.max_body_bytes);
  bool close_connection = false;

  auto count_response = [this](int status) {
    if (status < 400) {
      counters_.responses_2xx.fetch_add(1, std::memory_order_relaxed);
    } else if (status < 500) {
      counters_.responses_4xx.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.responses_5xx.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto respond = [&](HttpResponse response) -> bool {
    if (close_connection) {
      response.extra_headers.emplace_back("Connection", "close");
    }
    count_response(response.status);
    // The send budget is deliberately NOT the request deadline (which
    // is often already expired when sending a 504) — just a bound so a
    // jammed peer cannot hold the worker.
    const Deadline send_deadline =
        Deadline::After(options_.read_timeout, options_.clock);
    if (!SendAll(fd, SerializeHttpResponse(response), send_deadline)) {
      counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  };

  while (!close_connection) {
    const Deadline read_deadline =
        Deadline::After(options_.read_timeout, options_.clock);
    // --- Read until the parser holds a full request.
    while (parser.state() == HttpRequestParser::State::kNeedMore) {
      if (Draining()) {
        if (!parser.started()) goto done;  // idle keep-alive: close now
        if (DrainDeadline().Expired()) {
          counters_.drain_aborts.fetch_add(1, std::memory_order_relaxed);
          goto done;
        }
      }
      if (read_deadline.Expired()) {
        if (parser.started()) {
          close_connection = true;
          counters_.deadline_hits.fetch_add(1, std::memory_order_relaxed);
          respond(TextResponse(408, "request read timed out\n"));
        }
        goto done;
      }
      struct pollfd pfd = {fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, kPollSliceMs);
      if (rc < 0 && errno != EINTR) {
        counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
        goto done;
      }
      if (rc <= 0) continue;
      if (GENLINK_FAILPOINT("serve.slow_read")) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      int injected_errno = 0;
      if (GENLINK_FAILPOINT_E("serve.recv_error", &injected_errno)) {
        errno = injected_errno;
        counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
        goto done;
      }
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) goto done;  // peer closed
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        counters_.io_errors.fetch_add(1, std::memory_order_relaxed);
        goto done;
      }
      parser.Consume(std::string_view(buf, static_cast<size_t>(n)));
    }
    if (parser.state() == HttpRequestParser::State::kError) {
      close_connection = true;
      counters_.requests.fetch_add(1, std::memory_order_relaxed);
      respond(TextResponse(parser.error_status(), "malformed request\n"));
      goto done;
    }

    // --- Dispatch.
    counters_.requests.fetch_add(1, std::memory_order_relaxed);
    const HttpRequest& request = parser.request();
    if (const std::string* connection = request.FindHeader("Connection");
        connection != nullptr && HeaderEquals(*connection, "close")) {
      close_connection = true;
    }
    Deadline deadline =
        Deadline::After(options_.request_deadline, options_.clock);
    if (Draining()) {
      close_connection = true;
      deadline = Deadline::Earlier(deadline, DrainDeadline());
    }
    const Clock::TimePoint start = options_.clock->Now();
    HttpResponse response = Dispatch(request, deadline);
    latency_.Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
        options_.clock->Now() - start));
    if (!respond(std::move(response))) goto done;
    parser.Reset();
  }

done:
  ::close(fd);
}

HttpResponse ServeDaemon::Dispatch(const HttpRequest& request,
                                   const Deadline& deadline) {
  const std::string_view path = request.Path();
  if (path == "/healthz") {
    if (request.method != "GET") return TextResponse(405, "GET only\n");
    const ServingState::Snapshot snapshot = state_.snapshot();
    std::string body = "ok generation=" + std::to_string(snapshot.generation) +
                       " stale=" + (snapshot.stale ? "1" : "0");
    if (snapshot.live_mode) body += " epoch=" + std::to_string(snapshot.epoch);
    if (Draining()) body += " draining=1";
    body += '\n';
    return TextResponse(200, std::move(body));
  }
  if (path == "/varz") {
    if (request.method != "GET") return TextResponse(405, "GET only\n");
    return TextResponse(200, RenderVarz());
  }
  if (path == "/reload") {
    if (request.method != "POST") return TextResponse(405, "POST only\n");
    const Status status = state_.ReloadFromFile(std::string(request.body));
    if (!status.ok()) {
      // The old rule keeps serving; the failure is visible here and as
      // stale=1 on /healthz.
      return TextResponse(500, status.ToString() + "\n");
    }
    return TextResponse(
        200, "reloaded generation=" +
                 std::to_string(state_.snapshot().generation) + "\n");
  }
  if (path == "/match") {
    if (request.method != "POST") return TextResponse(405, "POST only\n");
    return HandleMatch(request, deadline);
  }
  if (path == "/upsert") {
    if (request.method != "POST") return TextResponse(405, "POST only\n");
    return HandleUpsert(request);
  }
  if (path == "/delete") {
    if (request.method != "POST") return TextResponse(405, "POST only\n");
    return HandleDelete(request);
  }
  if (path == "/compact") {
    if (request.method != "POST") return TextResponse(405, "POST only\n");
    return HandleCompact(request);
  }
  return TextResponse(404, "no such endpoint\n");
}

HttpResponse ServeDaemon::HandleMatch(const HttpRequest& request,
                                      const Deadline& deadline) {
  CancelToken cancel(deadline);
  // Fault injection: a handler that cannot make progress until its
  // deadline fires (drives the 504 and admission-control tests).
  while (GENLINK_FAILPOINT("serve.match_block") && !cancel.Cancelled()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const std::shared_ptr<LiveCorpus> live = state_.live();
  const std::shared_ptr<const MatcherIndex> index =
      live == nullptr ? state_.index() : nullptr;
  if (live == nullptr && index == nullptr) {
    return TextResponse(503, "no rule deployed\n");
  }
  std::istringstream in{request.body};
  CsvEntityStream queries(in, options_.csv);
  if (!queries.status().ok()) {
    return TextResponse(400, queries.status().ToString() + "\n");
  }
  std::vector<Entity> entities;
  Entity entity;
  while (queries.Next(&entity)) entities.push_back(std::move(entity));
  if (!queries.status().ok()) {
    return TextResponse(400, queries.status().ToString() + "\n");
  }

  const std::vector<GeneratedLink> links =
      live != nullptr
          ? live->MatchBatch(entities, queries.schema(), &cancel)
          : index->MatchBatch(entities, queries.schema(), &cancel);
  if (cancel.Cancelled()) {
    // The result is truncated — never serve partial links.
    counters_.deadline_hits.fetch_add(1, std::memory_order_relaxed);
    return TextResponse(504, "request deadline exceeded\n");
  }

  HttpResponse response;
  response.content_type = "text/csv";
  response.body.reserve(kGeneratedLinksCsvHeader.size() + links.size() * 32);
  response.body = kGeneratedLinksCsvHeader;
  for (const GeneratedLink& link : links) {
    response.body += GeneratedLinkCsvRow(link);
  }
  return response;
}

HttpResponse ServeDaemon::HandleUpsert(const HttpRequest& request) {
  const std::shared_ptr<LiveCorpus> live = state_.live();
  if (live == nullptr) {
    return TextResponse(404, "live updates are off (start with --live)\n");
  }
  std::istringstream in{request.body};
  CsvEntityStream entities(in, options_.csv);
  if (!entities.status().ok()) {
    return TextResponse(400, entities.status().ToString() + "\n");
  }
  std::vector<LiveOp> ops;
  Entity entity;
  while (entities.Next(&entity)) {
    LiveOp op;
    op.kind = LiveOp::Kind::kUpsert;
    op.entity = std::move(entity);
    ops.push_back(std::move(op));
  }
  if (!entities.status().ok()) {
    return TextResponse(400, entities.status().ToString() + "\n");
  }
  if (ops.empty()) return TextResponse(400, "no entities in body\n");
  const Status status = live->ApplyBatch(ops, entities.schema());
  if (!status.ok()) {
    return TextResponse(HttpStatusFor(status), status.ToString() + "\n");
  }
  return TextResponse(200, "upserted " + std::to_string(ops.size()) +
                               " epoch=" + std::to_string(live->epoch()) +
                               "\n");
}

HttpResponse ServeDaemon::HandleDelete(const HttpRequest& request) {
  const std::shared_ptr<LiveCorpus> live = state_.live();
  if (live == nullptr) {
    return TextResponse(404, "live updates are off (start with --live)\n");
  }
  std::vector<LiveOp> ops;
  std::string_view body = request.body;
  while (!body.empty()) {
    const size_t eol = body.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? body : body.substr(0, eol);
    body = eol == std::string_view::npos ? std::string_view()
                                         : body.substr(eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    LiveOp op;
    op.kind = LiveOp::Kind::kRemove;
    op.id = std::string(line);
    ops.push_back(std::move(op));
  }
  if (ops.empty()) return TextResponse(400, "no entity ids in body\n");
  const Status status = live->ApplyBatch(ops, live->schema());
  if (!status.ok()) {
    return TextResponse(HttpStatusFor(status), status.ToString() + "\n");
  }
  return TextResponse(200, "deleted " + std::to_string(ops.size()) +
                               " epoch=" + std::to_string(live->epoch()) +
                               "\n");
}

HttpResponse ServeDaemon::HandleCompact(const HttpRequest& request) {
  const std::shared_ptr<LiveCorpus> live = state_.live();
  if (live == nullptr) {
    return TextResponse(404, "live updates are off (start with --live)\n");
  }
  // A non-empty body names an artifact path to persist the compacted
  // corpus at (the `genlink index` output, reloadable with --index).
  std::string_view path = request.body;
  while (!path.empty() &&
         (path.back() == '\n' || path.back() == '\r' || path.back() == ' ')) {
    path.remove_suffix(1);
  }
  const Status status = path.empty() ? live->Compact()
                                     : live->CompactTo(std::string(path));
  if (!status.ok()) {
    return TextResponse(HttpStatusFor(status), status.ToString() + "\n");
  }
  return TextResponse(
      200, "compacted epoch=" + std::to_string(live->epoch()) + "\n");
}

bool ServeDaemon::SendAll(int fd, std::string_view data,
                          const Deadline& deadline) {
  int injected_errno = 0;
  if (GENLINK_FAILPOINT_E("serve.send_error", &injected_errno)) {
    errno = injected_errno;
    return false;
  }
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (deadline.Expired()) return false;
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, kPollSliceMs);
      if (rc < 0 && errno != EINTR) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string ServeDaemon::RenderVarz() const {
  const ServingState::Snapshot snapshot = state_.snapshot();
  size_t queue_depth = 0;
  {
    MutexLock lock(queue_mutex_);
    queue_depth = queue_.size();
  }
  const auto counter = [](const std::atomic<uint64_t>& c) {
    return std::to_string(c.load(std::memory_order_relaxed));
  };
  std::string out;
  out.reserve(512);
  out += "serve_generation " + std::to_string(snapshot.generation) + "\n";
  out += "serve_stale ";
  out += snapshot.stale ? "1\n" : "0\n";
  out += "serve_failed_reloads " + std::to_string(snapshot.failed_reloads) +
         "\n";
  out += "serve_rule_build_seconds " + std::to_string(snapshot.build_seconds) +
         "\n";
  out += "serve_draining ";
  out += Draining() ? "1\n" : "0\n";
  out += "serve_queue_depth " + std::to_string(queue_depth) + "\n";
  out += "serve_accepted " + counter(counters_.accepted) + "\n";
  out += "serve_shed " + counter(counters_.shed) + "\n";
  out += "serve_requests " + counter(counters_.requests) + "\n";
  out += "serve_responses_2xx " + counter(counters_.responses_2xx) + "\n";
  out += "serve_responses_4xx " + counter(counters_.responses_4xx) + "\n";
  out += "serve_responses_5xx " + counter(counters_.responses_5xx) + "\n";
  out += "serve_deadline_hits " + counter(counters_.deadline_hits) + "\n";
  out += "serve_io_errors " + counter(counters_.io_errors) + "\n";
  out += "serve_drain_aborts " + counter(counters_.drain_aborts) + "\n";
  out += "serve_latency_p50_seconds " +
         std::to_string(latency_.PercentileSeconds(50)) + "\n";
  out += "serve_latency_p99_seconds " +
         std::to_string(latency_.PercentileSeconds(99)) + "\n";
  if (const std::shared_ptr<LiveCorpus> live = state_.live();
      live != nullptr) {
    const LiveCorpusStats stats = live->stats();
    out += "live_epoch " + std::to_string(stats.epoch) + "\n";
    out += "live_entities " + std::to_string(stats.live_entities) + "\n";
    out += "live_base_entities " + std::to_string(stats.base_entities) + "\n";
    out += "live_delta_entities " + std::to_string(stats.delta_entities) +
           "\n";
    out += "live_delta_log_entries " +
           std::to_string(stats.delta_log_entries) + "\n";
    out += "live_tombstones " + std::to_string(stats.tombstones) + "\n";
    out += "live_delta_store_bytes " +
           std::to_string(stats.delta_store_bytes) + "\n";
    out += "live_upserts " + std::to_string(stats.upserts) + "\n";
    out += "live_removes " + std::to_string(stats.removes) + "\n";
    out += "live_compactions " + std::to_string(stats.compactions) + "\n";
    out += "live_last_compact_seconds " +
           std::to_string(stats.last_compact_seconds) + "\n";
  }
  return out;
}

}  // namespace genlink
