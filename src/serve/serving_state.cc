#include "serve/serving_state.h"

#include <utility>

#include "io/corpus_artifact.h"

namespace genlink {

ServingState::ServingState(const Dataset& corpus, size_t num_threads,
                           std::optional<LiveCorpusOptions> live)
    : corpus_(&corpus), num_threads_(num_threads),
      live_options_(std::move(live)) {}

ServingState::ServingState(std::shared_ptr<const MappedCorpus> corpus,
                           size_t num_threads,
                           std::optional<LiveCorpusOptions> live)
    : mapped_(std::move(corpus)), num_threads_(num_threads),
      live_options_(std::move(live)) {}

Status ServingState::DeployLocked(const RuleArtifact& artifact) {
  if (live_options_.has_value()) {
    // Live mode: the first deploy builds the live corpus, later deploys
    // hot-swap the rule in place. DeployRule has the same
    // graceful-degradation contract as TryWithRule — on failure the old
    // rule keeps serving untouched.
    const std::shared_ptr<LiveCorpus> current = live();
    if (current == nullptr) {
      MatchOptions options = artifact.options;
      options.num_threads = num_threads_;
      Result<std::unique_ptr<LiveCorpus>> built =
          mapped_ != nullptr
              ? LiveCorpus::Create(mapped_, artifact.rule, options,
                                   *live_options_)
              : LiveCorpus::Create(*corpus_, artifact.rule, options,
                                   *live_options_);
      if (!built.ok()) return built.status();
      std::atomic_store(&live_,
                        std::shared_ptr<LiveCorpus>(std::move(built).value()));
    } else {
      const Status redeployed =
          current->DeployRule(artifact.rule, artifact.options);
      if (!redeployed.ok()) return redeployed;
    }
    MutexLock lock(mutex_);
    ++generation_;
    last_error_.clear();
    rule_name_ = artifact.name;
    return Status::Ok();
  }

  const std::shared_ptr<const MatcherIndex> old = index();
  std::shared_ptr<const MatcherIndex> next;
  if (old == nullptr) {
    MatchOptions options = artifact.options;
    options.num_threads = num_threads_;
    if (mapped_ != nullptr) {
      Result<std::shared_ptr<const MatcherIndex>> built =
          MatcherIndex::Build(mapped_, artifact.rule, options);
      if (!built.ok()) return built.status();
      next = std::move(built).value();
    } else {
      next = MatcherIndex::Build(*corpus_, artifact.rule, options);
    }
  } else {
    // Shares the corpus stores with the live index; TryWithRule pins
    // num_threads and use_value_store to the corpus values and surfaces
    // mapped-corpus compile failures (plan or blocking config missing
    // from the artifact) without touching the published index.
    Result<std::shared_ptr<const MatcherIndex>> rebuilt =
        old->TryWithRule(artifact.rule, artifact.options);
    if (!rebuilt.ok()) return rebuilt.status();
    next = std::move(rebuilt).value();
  }
  std::atomic_store(&index_, std::move(next));
  MutexLock lock(mutex_);
  ++generation_;
  last_error_.clear();
  rule_name_ = artifact.name;
  return Status::Ok();
}

Status ServingState::Deploy(const RuleArtifact& artifact) {
  MutexLock reload(reload_mutex_);
  const Status status = DeployLocked(artifact);
  if (!status.ok()) {
    // The undeployable rule never reaches the index: the previous
    // deployment keeps serving, the state goes stale.
    MutexLock lock(mutex_);
    ++failed_reloads_;
    last_error_ =
        "deploy of '" + artifact.name + "' failed: " + status.ToString();
    return Status(status.code(), last_error_);
  }
  return Status::Ok();
}

Status ServingState::ReloadFromFile(const std::string& path) {
  MutexLock reload(reload_mutex_);
  std::string resolved = path;
  {
    MutexLock lock(mutex_);
    if (resolved.empty()) resolved = artifact_path_;
    if (resolved.empty()) {
      const Status status =
          Status::FailedPrecondition("no artifact path to reload from");
      ++failed_reloads_;
      last_error_ = status.ToString();
      return status;
    }
    artifact_path_ = resolved;
  }
  Result<RuleArtifact> artifact = LoadArtifact(resolved);
  if (!artifact.ok()) {
    // The corrupt/mismatched artifact never reaches the index: the
    // previous deployment keeps serving, the state goes stale.
    MutexLock lock(mutex_);
    ++failed_reloads_;
    last_error_ = "reload of '" + resolved + "' failed: " +
                  artifact.status().ToString();
    return Status(artifact.status().code(), last_error_);
  }

  // Same commit path as Deploy (reload_mutex_ is already held; Mutex is
  // not recursive).
  const Status status = DeployLocked(*artifact);
  if (!status.ok()) {
    MutexLock lock(mutex_);
    ++failed_reloads_;
    last_error_ =
        "reload of '" + resolved + "' failed: " + status.ToString();
    return Status(status.code(), last_error_);
  }
  return Status::Ok();
}

std::shared_ptr<const MatcherIndex> ServingState::index() const {
  return std::atomic_load(&index_);
}

std::shared_ptr<LiveCorpus> ServingState::live() const {
  return std::atomic_load(&live_);
}

ServingState::Snapshot ServingState::snapshot() const {
  Snapshot snapshot;
  const std::shared_ptr<const MatcherIndex> live_index = index();
  if (live_index != nullptr) {
    snapshot.build_seconds = live_index->stats().build_seconds;
  }
  snapshot.live_mode = live_options_.has_value();
  if (const std::shared_ptr<LiveCorpus> live_corpus = live();
      live_corpus != nullptr) {
    snapshot.epoch = live_corpus->epoch();
  }
  MutexLock lock(mutex_);
  snapshot.generation = generation_;
  snapshot.failed_reloads = failed_reloads_;
  snapshot.stale = !last_error_.empty();
  snapshot.last_error = last_error_;
  snapshot.rule_name = rule_name_;
  return snapshot;
}

}  // namespace genlink
