#include "serve/serving_state.h"

#include <utility>

namespace genlink {

ServingState::ServingState(const Dataset& corpus, size_t num_threads)
    : corpus_(&corpus), num_threads_(num_threads) {}

Status ServingState::Deploy(const RuleArtifact& artifact) {
  MutexLock reload(reload_mutex_);
  const std::shared_ptr<const MatcherIndex> old = index();
  std::shared_ptr<const MatcherIndex> next;
  if (old == nullptr) {
    MatchOptions options = artifact.options;
    options.num_threads = num_threads_;
    next = MatcherIndex::Build(*corpus_, artifact.rule, options);
  } else {
    // Shares the corpus stores with the live index; WithRule pins
    // num_threads and use_value_store to the corpus values.
    next = old->WithRule(artifact.rule, artifact.options);
  }
  std::atomic_store(&index_, std::move(next));
  MutexLock lock(mutex_);
  ++generation_;
  last_error_.clear();
  rule_name_ = artifact.name;
  return Status::Ok();
}

Status ServingState::ReloadFromFile(const std::string& path) {
  MutexLock reload(reload_mutex_);
  std::string resolved = path;
  {
    MutexLock lock(mutex_);
    if (resolved.empty()) resolved = artifact_path_;
    if (resolved.empty()) {
      const Status status =
          Status::FailedPrecondition("no artifact path to reload from");
      ++failed_reloads_;
      last_error_ = status.ToString();
      return status;
    }
    artifact_path_ = resolved;
  }
  Result<RuleArtifact> artifact = LoadArtifact(resolved);
  if (!artifact.ok()) {
    // The corrupt/mismatched artifact never reaches the index: the
    // previous deployment keeps serving, the state goes stale.
    MutexLock lock(mutex_);
    ++failed_reloads_;
    last_error_ = "reload of '" + resolved + "' failed: " +
                  artifact.status().ToString();
    return Status(artifact.status().code(), last_error_);
  }

  // Same commit path as Deploy, inlined because reload_mutex_ is
  // already held (Mutex is not recursive).
  const std::shared_ptr<const MatcherIndex> old = index();
  std::shared_ptr<const MatcherIndex> next;
  if (old == nullptr) {
    MatchOptions options = artifact->options;
    options.num_threads = num_threads_;
    next = MatcherIndex::Build(*corpus_, artifact->rule, options);
  } else {
    next = old->WithRule(artifact->rule, artifact->options);
  }
  std::atomic_store(&index_, std::move(next));
  MutexLock lock(mutex_);
  ++generation_;
  last_error_.clear();
  rule_name_ = artifact->name;
  return Status::Ok();
}

std::shared_ptr<const MatcherIndex> ServingState::index() const {
  return std::atomic_load(&index_);
}

ServingState::Snapshot ServingState::snapshot() const {
  Snapshot snapshot;
  const std::shared_ptr<const MatcherIndex> live = index();
  if (live != nullptr) snapshot.build_seconds = live->stats().build_seconds;
  MutexLock lock(mutex_);
  snapshot.generation = generation_;
  snapshot.failed_reloads = failed_reloads_;
  snapshot.stale = !last_error_.empty();
  snapshot.last_error = last_error_;
  snapshot.rule_name = rule_name_;
  return snapshot;
}

}  // namespace genlink
