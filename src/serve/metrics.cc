#include "serve/metrics.h"

#include <bit>

namespace genlink {

size_t LatencyHistogram::BucketFor(uint64_t us) {
  if (us < kLinear) return static_cast<size_t>(us);
  // Power-of-two bucket with 16 linear sub-buckets: top 4 bits after
  // the leading bit select the sub-bucket.
  const int width = std::bit_width(us);  // >= 6 here
  const size_t power = static_cast<size_t>(width) - 6;
  const size_t sub =
      static_cast<size_t>((us >> (width - 5)) & (kSubBuckets - 1));
  const size_t bucket = kLinear + power * kSubBuckets + sub;
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

double LatencyHistogram::UpperBoundSeconds(size_t bucket) {
  if (bucket < kLinear) return static_cast<double>(bucket + 1) * 1e-6;
  const size_t power = (bucket - kLinear) / kSubBuckets;
  const size_t sub = (bucket - kLinear) % kSubBuckets;
  // Inverse of BucketFor: the bucket holds [base + sub*step, base +
  // (sub+1)*step) microseconds, base = 2^(power+5), step = base/16.
  const double base = static_cast<double>(1ull << (power + 5));
  const double step = base / static_cast<double>(kSubBuckets);
  return (base + step * static_cast<double>(sub + 1)) * 1e-6;
}

void LatencyHistogram::Record(std::chrono::nanoseconds latency) {
  const int64_t us =
      std::chrono::duration_cast<std::chrono::microseconds>(latency).count();
  const size_t bucket = BucketFor(us < 0 ? 0 : static_cast<uint64_t>(us));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::PercentileSeconds(double p) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the percentile sample, 1-based.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return UpperBoundSeconds(i);
  }
  return UpperBoundSeconds(kBuckets - 1);
}

}  // namespace genlink
