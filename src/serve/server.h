// The `genlink serve` daemon: a small fault-tolerant HTTP/1.1 server
// over a ServingState. Robustness-first design:
//
//   * Admission control — accepted connections go into a bounded
//     queue; when it is full the listener sheds the connection with a
//     canned, allocation-free `503 Service Unavailable` +
//     `Retry-After` and counts it. Under overload the daemon degrades
//     by turning traffic away fast, never by queueing without bound.
//   * Deadlines — every request carries a Deadline from the moment its
//     bytes are complete; the handler threads a CancelToken through
//     MatcherIndex::MatchBatch, which polls it between entities and
//     inside candidate scans. A request that cannot finish in time is
//     answered `504` (processing) or `408` (stalled read) instead of
//     holding a worker hostage.
//   * Graceful drain — RequestShutdown() (or one byte written to
//     shutdown_fd(), which is all a SIGTERM handler is allowed to do)
//     stops the listener; workers finish queued and in-flight requests
//     with deadlines clamped to the drain budget, then exit. Idle
//     keep-alive connections are closed immediately.
//   * Fault injection — the socket paths evaluate failpoints
//     (common/failpoint.h: "serve.recv_error", "serve.send_error",
//     "serve.slow_read", "serve.match_block") so tests drive error
//     handling deterministically.
//
// Endpoints (docs/SERVING.md has the full table):
//
//   GET  /healthz  liveness + staleness one-liner (live mode appends
//                  the corpus epoch)
//   GET  /varz     plain-text metrics (counters, queue depth, p50/p99;
//                  live mode adds live_* corpus counters)
//   POST /match    CSV query entities in, generated-links CSV out
//   POST /reload   re-deploy the artifact file; failure leaves the old
//                  rule serving and reports stale
//   POST /upsert   live mode: CSV entities in, applied as one atomic
//                  batch publishing one epoch (404 outside live mode)
//   POST /delete   live mode: newline-separated entity ids to tombstone
//   POST /compact  live mode: rewrite base+delta into a fresh corpus;
//                  a non-empty body is a path to also persist a v2
//                  corpus artifact there (crash-safe)
//
// Threading: one listener thread plus `num_workers` connection
// handlers. All daemon state is either relaxed-atomic counters
// (serve/metrics.h) or guarded by the queue Mutex; there are no other
// locks, so no ordering to get wrong.

#ifndef GENLINK_SERVE_SERVER_H_
#define GENLINK_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "io/csv.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/serving_state.h"

namespace genlink {

struct ServeOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// from port() after Start).
  uint16_t port = 0;
  /// Connection handler threads.
  size_t num_workers = 2;
  /// Accepted connections waiting for a worker before admission
  /// control sheds new ones.
  size_t max_queue = 16;
  /// Processing budget per request (parse-complete to response);
  /// exceeding it cancels the match and answers 504.
  std::chrono::milliseconds request_deadline{2000};
  /// Budget for a request's bytes to arrive (and keep-alive idle
  /// limit); a started-but-stalled request is answered 408.
  std::chrono::milliseconds read_timeout{5000};
  /// After shutdown is requested, in-flight work past this budget is
  /// aborted (counted in ServeCounters::drain_aborts).
  std::chrono::milliseconds drain_deadline{5000};
  /// Seconds advertised in the shed response's Retry-After header.
  int retry_after_seconds = 1;
  size_t max_header_bytes = 8192;
  size_t max_body_bytes = 4 << 20;
  /// How /match interprets query CSV (id column etc.).
  CsvDatasetOptions csv;
  /// Injectable time source for deadline tests.
  const Clock* clock = Clock::Real();
};

class ServeDaemon {
 public:
  /// `state` must outlive the daemon and have a deployed index before
  /// traffic arrives (a /match without one answers 503).
  ServeDaemon(ServingState& state, ServeOptions options);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds 127.0.0.1:port, starts the listener and workers. Fails with
  /// IoError when the port cannot be bound.
  Status Start();

  /// The bound port (after Start).
  uint16_t port() const { return port_; }

  /// Write end of the shutdown self-pipe: writing a single byte is
  /// async-signal-safe and triggers the same drain as
  /// RequestShutdown(). -1 before Start.
  int shutdown_fd() const { return shutdown_pipe_[1]; }

  /// Begins the graceful drain: stop accepting, finish queued and
  /// in-flight requests within the drain budget. Idempotent.
  void RequestShutdown();

  /// Blocks until every thread has exited (Start must have
  /// succeeded; returns immediately otherwise). True when the drain
  /// was clean — no in-flight request had to be aborted.
  bool WaitForDrain();

  const ServeCounters& counters() const { return counters_; }
  const LatencyHistogram& latency() const { return latency_; }

  /// The /varz body (also useful for logging after drain).
  std::string RenderVarz() const;

 private:
  void ListenerLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  /// Routes one parsed request. `deadline` bounds processing.
  HttpResponse Dispatch(const HttpRequest& request, const Deadline& deadline);
  HttpResponse HandleMatch(const HttpRequest& request,
                           const Deadline& deadline);
  /// Live-mode mutation endpoints. Mutations are not deadline-bounded
  /// (a half-applied batch is worse than a slow response; ApplyBatch is
  /// atomic per batch); queries racing them never block.
  HttpResponse HandleUpsert(const HttpRequest& request);
  HttpResponse HandleDelete(const HttpRequest& request);
  HttpResponse HandleCompact(const HttpRequest& request);
  /// Pops the next queued connection, waiting until one arrives or the
  /// drain begins; -1 = drain begun and queue empty (worker exits).
  int NextConnection();
  bool Draining() const { return draining_.load(std::memory_order_acquire); }
  /// The drain budget's deadline; infinite before shutdown.
  Deadline DrainDeadline() const;
  /// Writes all of `data`, polling for writability, bounded by
  /// `deadline`. False on error/timeout.
  bool SendAll(int fd, std::string_view data, const Deadline& deadline);

  ServingState& state_;
  ServeOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int shutdown_pipe_[2] = {-1, -1};
  bool started_ = false;

  std::thread listener_;
  std::vector<std::thread> workers_;

  mutable Mutex queue_mutex_;
  CondVar queue_cv_;
  std::deque<int> queue_ GENLINK_GUARDED_BY(queue_mutex_);
  /// Set once at shutdown, before draining_ (release) so workers that
  /// observe draining_ see it.
  Deadline drain_deadline_ GENLINK_GUARDED_BY(queue_mutex_);
  std::atomic<bool> draining_{false};

  ServeCounters counters_;
  LatencyHistogram latency_;
};

}  // namespace genlink

#endif  // GENLINK_SERVE_SERVER_H_
