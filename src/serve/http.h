// Minimal HTTP/1.1 vocabulary for the serve daemon: an incremental
// request parser with hard size limits, response serialization, and a
// small blocking client used by tests and the closed-loop load bench.
//
// This is deliberately not a general HTTP implementation. It parses
// exactly what the daemon accepts — a request line, headers, and a
// Content-Length body — and maps every malformed or oversized input to
// a 4xx status instead of undefined behavior:
//
//   * headers exceeding `max_header_bytes`  -> 431
//   * a body exceeding `max_body_bytes`     -> 413
//   * anything else malformed               -> 400
//
// The parser is incremental (feed it whatever recv returned, in any
// split), allocation-bounded (its buffer never grows past the limits
// above plus one read), and reusable across keep-alive requests via
// Reset().

#ifndef GENLINK_SERVE_HTTP_H_
#define GENLINK_SERVE_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace genlink {

/// A parsed request. Header names are matched case-insensitively via
/// FindHeader; values keep their original bytes (outer whitespace
/// trimmed).
struct HttpRequest {
  std::string method;  // as sent, e.g. "GET"
  std::string target;  // as sent, e.g. "/match?id=row"
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;

  /// Case-insensitive header lookup; null when absent.
  const std::string* FindHeader(std::string_view name) const;

  /// The target without its query string ("/match?x=1" -> "/match").
  std::string_view Path() const;
};

/// A response under construction. SerializeHttpResponse emits the
/// status line, Content-Type, Content-Length, the extra headers, and
/// the body.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
};

/// The canonical reason phrase for the codes the daemon emits
/// ("Unknown" otherwise).
std::string_view HttpStatusReason(int status);

std::string SerializeHttpResponse(const HttpResponse& response);

/// Incremental request parser. Feed it bytes as they arrive; it
/// reports kNeedMore until a full request (headers + declared body) is
/// buffered. After kComplete, request() is valid and Reset() prepares
/// the parser for the next keep-alive request, carrying over any
/// pipelined bytes already consumed.
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  HttpRequestParser(size_t max_header_bytes, size_t max_body_bytes)
      : max_header_bytes_(max_header_bytes), max_body_bytes_(max_body_bytes) {}

  /// Consumes `data` and returns the parse state. Once kComplete or
  /// kError is returned, further Consume calls are no-ops until
  /// Reset().
  State Consume(std::string_view data);

  State state() const { return state_; }

  /// The HTTP status describing the parse failure (400/413/431);
  /// meaningful only in kError.
  int error_status() const { return error_status_; }

  /// The parsed request; meaningful only in kComplete.
  const HttpRequest& request() const { return request_; }

  /// True once any byte of the current request has been consumed (used
  /// to tell an idle keep-alive connection from a stalled request).
  bool started() const { return started_; }

  /// Prepares for the next request on the same connection, keeping
  /// already buffered pipelined bytes.
  void Reset();

 private:
  State Fail(int status) {
    error_status_ = status;
    return state_ = State::kError;
  }
  /// Parses the request line + headers in buffer_[0, header_end);
  /// `body_start` is the offset just past the blank line.
  State ParseHeaders(size_t header_end, size_t body_start);

  size_t max_header_bytes_;
  size_t max_body_bytes_;
  State state_ = State::kNeedMore;
  int error_status_ = 400;
  bool started_ = false;
  bool in_body_ = false;
  size_t body_length_ = 0;
  std::string buffer_;
  HttpRequest request_;
};

/// Blocking loopback client: connects to 127.0.0.1:`port`, sends one
/// request with `Connection: close`, and returns the parsed response.
/// Fails with IoError on connect/read failure or when the full
/// response does not arrive within `timeout_ms`. Test and bench
/// utility; the daemon never calls it.
Result<HttpResponse> HttpCall(uint16_t port, std::string_view method,
                              std::string_view target,
                              std::string_view body = {},
                              std::string_view content_type = "text/csv",
                              int timeout_ms = 10000);

}  // namespace genlink

#endif  // GENLINK_SERVE_HTTP_H_
