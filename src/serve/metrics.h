// Serving metrics: lock-free counters and a fixed-bucket latency
// histogram, cheap enough to update on every request and readable at
// any time by /varz without pausing traffic.

#ifndef GENLINK_SERVE_METRICS_H_
#define GENLINK_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace genlink {

/// A log-linear latency histogram (HdrHistogram-style): values are
/// bucketed by their power of two with 16 linear sub-buckets each, so
/// a recorded value is attributed with at most ~6% relative error —
/// tight enough for the p50/p99 gates in bench/serve_load. Record is
/// one relaxed fetch_add; concurrent Record/Percentile races only
/// blur percentiles by in-flight samples, which is the usual contract
/// for serving metrics.
class LatencyHistogram {
 public:
  void Record(std::chrono::nanoseconds latency);

  uint64_t TotalCount() const;

  /// An upper bound for the `p`-th percentile (p in [0,100]) of the
  /// recorded latencies, in seconds; 0 when nothing was recorded.
  double PercentileSeconds(double p) const;

 private:
  // Bucket layout over microseconds: values < 32us map linearly
  // (buckets 0..31), larger values to 16 sub-buckets per power of two.
  static constexpr size_t kLinear = 32;
  static constexpr size_t kSubBuckets = 16;
  static constexpr size_t kPowers = 36;  // up to ~2^40 us (~12 days)
  static constexpr size_t kBuckets = kLinear + kPowers * kSubBuckets;

  static size_t BucketFor(uint64_t us);
  static double UpperBoundSeconds(size_t bucket);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Monotonic counters of the serve daemon; all relaxed atomics.
struct ServeCounters {
  /// Connections accepted from the listen socket (including ones later
  /// shed); `shed` of them were turned away by admission control with
  /// the canned 503.
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> shed{0};
  /// Complete requests parsed off connections.
  std::atomic<uint64_t> requests{0};
  /// Responses by class.
  std::atomic<uint64_t> responses_2xx{0};
  std::atomic<uint64_t> responses_4xx{0};
  std::atomic<uint64_t> responses_5xx{0};
  /// Requests that hit a deadline: 408 (stalled read) or 504
  /// (processing deadline). Also counted in their 4xx/5xx class.
  std::atomic<uint64_t> deadline_hits{0};
  /// Socket-level failures (recv/send errors, injected or real).
  std::atomic<uint64_t> io_errors{0};
  /// Connections torn down because the drain deadline passed with the
  /// request still in flight. 0 across a clean SIGTERM drain.
  std::atomic<uint64_t> drain_aborts{0};
};

}  // namespace genlink

#endif  // GENLINK_SERVE_METRICS_H_
