// The daemon's deployed-rule slot: owns the currently serving
// MatcherIndex and implements graceful degradation on reload.
//
// Exactly one rule artifact is "live" at a time. Reloads go through
// the full failure-checked path — read file, parse versioned artifact
// (io/artifact.h), compile via MatcherIndex::WithRule — and commit
// atomically at the very end: until the new index is fully built, and
// forever if any step fails, queries keep hitting the OLD index
// untouched. A failed reload therefore degrades the deployment to
// *stale* (observable via snapshot(), surfaced on /healthz and /varz)
// but never to *broken*; tests/serve_test.cc and the failing-reload
// leg of tests/stress_swap_tsan_test.cc pin this down, including
// bit-identical answers across a mid-query failed reload.
//
// Publication uses the repo's standard hot-swap idiom
// (api/matcher_index.h): std::atomic_load/atomic_store on a
// shared_ptr<const MatcherIndex>. Readers never block on a reload;
// reloads serialize among themselves on a Mutex.

#ifndef GENLINK_SERVE_SERVING_STATE_H_
#define GENLINK_SERVE_SERVING_STATE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "api/matcher_index.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "io/artifact.h"
#include "live/live_corpus.h"
#include "model/dataset.h"

namespace genlink {

class MappedCorpus;

/// Owns the serving index for one corpus. Thread-safe: index() may be
/// called from any number of request threads while one thread reloads.
class ServingState {
 public:
  /// `corpus` must outlive the state. `num_threads` is the pool size
  /// every deployed index uses (0 = hardware concurrency); artifacts
  /// do not carry one (io/artifact.h). A non-nullopt `live` turns on
  /// live mode: the first Deploy builds a LiveCorpus instead of a
  /// MatcherIndex, later deploys hot-swap the rule via DeployRule, and
  /// the daemon's /upsert, /delete and /compact endpoints mutate the
  /// corpus between queries (docs/STREAMING.md). index() stays null in
  /// live mode; query through live().
  explicit ServingState(const Dataset& corpus, size_t num_threads = 0,
                        std::optional<LiveCorpusOptions> live = std::nullopt);

  /// Serves a mapped v2 corpus artifact (io/corpus_artifact.h) instead
  /// of an in-memory dataset: deployments build zero-copy indexes over
  /// the mapping. A rule the artifact has no precomputed plans (or
  /// blocking configuration) for fails the deploy through the same
  /// graceful-degradation path as a corrupt artifact — the previous
  /// index keeps serving and the state reports stale. Live mode over a
  /// mapped corpus serves upserts/removes but cannot compact
  /// (live/live_corpus.h).
  explicit ServingState(std::shared_ptr<const MappedCorpus> corpus,
                        size_t num_threads = 0,
                        std::optional<LiveCorpusOptions> live = std::nullopt);

  /// Deploys `artifact`: the first call builds the corpus index, later
  /// calls compile the new rule against the shared corpus stores
  /// (MatcherIndex::WithRule). On error the previous deployment keeps
  /// serving and the state reports stale.
  Status Deploy(const RuleArtifact& artifact);

  /// Loads `path` (empty = the path of the last Deploy/ReloadFromFile
  /// attempt with a non-empty path) and deploys it. Any failure — file
  /// unreadable, version mismatch, unknown key, rule that fails to
  /// parse — leaves the previous deployment serving.
  Status ReloadFromFile(const std::string& path);

  /// The serving index; null until the first successful Deploy, and
  /// always null in live mode (query through live()). Lock-free read
  /// (atomic shared_ptr load) — never blocked by a concurrent reload.
  std::shared_ptr<const MatcherIndex> index() const;

  /// The live corpus; null outside live mode and until the first
  /// successful Deploy. Lock-free read. The LiveCorpus is internally
  /// thread-safe: handlers may query and mutate it concurrently.
  std::shared_ptr<LiveCorpus> live() const;

  struct Snapshot {
    /// Successful deployments so far (1 = the initial artifact).
    uint64_t generation = 0;
    uint64_t failed_reloads = 0;
    /// True when the most recent Deploy/ReloadFromFile attempt failed:
    /// the live rule is older than the artifact someone tried to push.
    bool stale = false;
    /// The failure that made the state stale; empty when !stale.
    std::string last_error;
    /// Name of the live artifact (may be empty).
    std::string rule_name;
    /// Compile seconds of the live index (incremental for reloads).
    double build_seconds = 0.0;
    /// True when the state was constructed in live mode.
    bool live_mode = false;
    /// Epoch of the live corpus's published snapshot (0 outside live
    /// mode and before the first deploy).
    uint64_t epoch = 0;
  };
  Snapshot snapshot() const;

 private:
  /// The Deploy/ReloadFromFile commit path: builds (or rebuilds via
  /// TryWithRule) the index and publishes it. Returns the compile
  /// failure without touching the published index; callers record the
  /// failure. reload_mutex_ must be held.
  Status DeployLocked(const RuleArtifact& artifact)
      GENLINK_REQUIRES(reload_mutex_);

  /// Exactly one of corpus_ / mapped_ is set (dataset-backed vs
  /// mapped-artifact serving).
  const Dataset* corpus_ = nullptr;
  std::shared_ptr<const MappedCorpus> mapped_;
  size_t num_threads_;
  /// Live mode: set at construction, immutable afterwards.
  std::optional<LiveCorpusOptions> live_options_;

  /// Serializes Deploy/ReloadFromFile against each other; never held
  /// while answering index()/snapshot(), so a slow compile cannot
  /// stall /healthz or /varz. Acquired before mutex_ (lock order).
  Mutex reload_mutex_;
  /// Guards the bookkeeping fields; held only for short updates.
  mutable Mutex mutex_;
  /// Published with std::atomic_store under mutex_; read anywhere with
  /// std::atomic_load.
  std::shared_ptr<const MatcherIndex> index_;
  /// The live-mode counterpart of index_: created by the first
  /// successful Deploy, then mutated in place (LiveCorpus serializes
  /// its own writers and publishes epoch snapshots internally).
  std::shared_ptr<LiveCorpus> live_;
  uint64_t generation_ GENLINK_GUARDED_BY(mutex_) = 0;
  uint64_t failed_reloads_ GENLINK_GUARDED_BY(mutex_) = 0;
  std::string last_error_ GENLINK_GUARDED_BY(mutex_);
  std::string rule_name_ GENLINK_GUARDED_BY(mutex_);
  std::string artifact_path_ GENLINK_GUARDED_BY(mutex_);
};

}  // namespace genlink

#endif  // GENLINK_SERVE_SERVING_STATE_H_
