#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace genlink {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

std::string_view HttpRequest::Path() const {
  const size_t query = target.find('?');
  return std::string_view(target).substr(0, query);
}

std::string_view HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpStatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  for (const auto& [key, value] : response.extra_headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

HttpRequestParser::State HttpRequestParser::Consume(std::string_view data) {
  if (state_ != State::kNeedMore) return state_;
  if (!data.empty()) started_ = true;
  buffer_.append(data);
  if (!in_body_) {
    // Terminator: CRLFCRLF, or bare LFLF for hand-written test input.
    size_t header_end = std::string::npos;
    size_t body_start = 0;
    const size_t crlf = buffer_.find("\r\n\r\n");
    const size_t lf = buffer_.find("\n\n");
    if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
      header_end = crlf;
      body_start = crlf + 4;
    } else if (lf != std::string::npos) {
      header_end = lf;
      body_start = lf + 2;
    }
    if (header_end == std::string::npos) {
      if (buffer_.size() > max_header_bytes_) return Fail(431);
      return state_;
    }
    if (header_end > max_header_bytes_) return Fail(431);
    if (ParseHeaders(header_end, body_start) == State::kError) return state_;
  }
  if (buffer_.size() < body_length_) return state_;
  request_.body = buffer_.substr(0, body_length_);
  buffer_.erase(0, body_length_);
  return state_ = State::kComplete;
}

HttpRequestParser::State HttpRequestParser::ParseHeaders(size_t header_end,
                                                         size_t body_start) {
  std::string_view block(buffer_.data(), header_end);
  bool first = true;
  while (!block.empty()) {
    const size_t eol = block.find('\n');
    std::string_view line = block.substr(0, eol);
    block.remove_prefix(eol == std::string_view::npos ? block.size() : eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (first) {
      // "METHOD SP target SP HTTP/1.x"
      const size_t sp1 = line.find(' ');
      const size_t sp2 = line.rfind(' ');
      if (sp1 == std::string_view::npos || sp2 == sp1) return Fail(400);
      const std::string_view version = line.substr(sp2 + 1);
      if (!version.starts_with("HTTP/1.")) return Fail(400);
      request_.method = std::string(line.substr(0, sp1));
      request_.target = std::string(Trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
      if (request_.method.empty() || request_.target.empty()) return Fail(400);
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return Fail(400);
    request_.headers.emplace_back(std::string(Trim(line.substr(0, colon))),
                                  std::string(Trim(line.substr(colon + 1))));
  }
  if (first) return Fail(400);  // no request line at all

  if (request_.FindHeader("Transfer-Encoding") != nullptr) {
    return Fail(400);  // chunked bodies are not accepted
  }
  body_length_ = 0;
  if (const std::string* cl = request_.FindHeader("Content-Length")) {
    if (cl->empty()) return Fail(400);
    uint64_t length = 0;
    for (const char c : *cl) {
      if (c < '0' || c > '9') return Fail(400);
      length = length * 10 + static_cast<uint64_t>(c - '0');
      if (length > max_body_bytes_) return Fail(413);
    }
    body_length_ = static_cast<size_t>(length);
  }
  buffer_.erase(0, body_start);
  in_body_ = true;
  return state_;
}

void HttpRequestParser::Reset() {
  state_ = State::kNeedMore;
  error_status_ = 400;
  in_body_ = false;
  body_length_ = 0;
  request_ = HttpRequest{};
  started_ = !buffer_.empty();
  if (started_) Consume({});  // pipelined bytes may already hold a request
}

namespace {

/// Waits until `fd` is ready for `events` or the deadline passes.
bool PollFor(int fd, short events, std::chrono::steady_clock::time_point until) {
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= until) return false;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(until - now);
    struct pollfd pfd = {fd, events, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()) + 1);
    if (rc > 0) return true;
    if (rc < 0 && errno != EINTR) return false;
  }
}

/// True when `raw` already holds a full response: complete header
/// block plus Content-Length body bytes (responses without a
/// Content-Length are only complete at EOF, so they return false).
bool ResponseComplete(const std::string& raw) {
  size_t body_start = raw.find("\r\n\r\n");
  size_t header_end = body_start;
  if (body_start != std::string::npos) {
    body_start += 4;
  } else {
    header_end = body_start = raw.find("\n\n");
    if (body_start == std::string::npos) return false;
    body_start += 2;
  }
  std::string_view block(raw.data(), header_end);
  while (!block.empty()) {
    const size_t eol = block.find('\n');
    std::string_view line = block.substr(0, eol);
    block.remove_prefix(eol == std::string_view::npos ? block.size() : eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    if (!EqualsIgnoreCase(Trim(line.substr(0, colon)), "Content-Length")) {
      continue;
    }
    uint64_t length = 0;
    const std::string_view value = Trim(line.substr(colon + 1));
    if (value.empty()) return false;
    for (const char c : value) {
      if (c < '0' || c > '9') return false;
      length = length * 10 + static_cast<uint64_t>(c - '0');
    }
    return raw.size() - body_start >= length;
  }
  return false;
}

}  // namespace

Result<HttpResponse> HttpCall(uint16_t port, std::string_view method,
                              std::string_view target, std::string_view body,
                              std::string_view content_type, int timeout_ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) {
      return Status::IoError("connect() failed: " +
                             std::string(std::strerror(errno)));
    }
    if (!PollFor(fd, POLLOUT, until)) {
      return Status::IoError("connect timeout");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      return Status::IoError("connect() failed: " +
                             std::string(std::strerror(so_error)));
    }
  }

  std::string request;
  request.reserve(128 + body.size());
  request += method;
  request += ' ';
  request += target;
  request += " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n";
  if (!body.empty()) {
    request += "Content-Type: ";
    request += content_type;
    request += "\r\n";
  }
  request += "Content-Length: ";
  request += std::to_string(body.size());
  request += "\r\n\r\n";
  request += body;

  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!PollFor(fd, POLLOUT, until)) return Status::IoError("send timeout");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IoError("send() failed: " +
                           std::string(std::strerror(errno)));
  }

  // Connection: close — the full response is everything until EOF.
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      raw.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!PollFor(fd, POLLIN, until)) return Status::IoError("read timeout");
      continue;
    }
    if (errno == EINTR) continue;
    // A reset after the full response was buffered is a success: the
    // daemon's shed path answers 503 and closes without reading the
    // request, and request bytes racing that close can turn the FIN
    // into an RST on some schedules.
    if (errno == ECONNRESET && ResponseComplete(raw)) break;
    return Status::IoError("recv() failed: " +
                           std::string(std::strerror(errno)));
  }

  const size_t crlf = raw.find("\r\n\r\n");
  const size_t lf = raw.find("\n\n");
  size_t header_end = std::string::npos;
  size_t body_start = 0;
  if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
    header_end = crlf;
    body_start = crlf + 4;
  } else if (lf != std::string::npos) {
    header_end = lf;
    body_start = lf + 2;
  }
  if (header_end == std::string::npos) {
    return Status::ParseError("malformed HTTP response (no header end)");
  }

  HttpResponse response;
  std::string_view block(raw.data(), header_end);
  bool first = true;
  while (!block.empty()) {
    const size_t eol = block.find('\n');
    std::string_view line = block.substr(0, eol);
    block.remove_prefix(eol == std::string_view::npos ? block.size() : eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (first) {
      // "HTTP/1.1 200 OK"
      const size_t sp1 = line.find(' ');
      if (sp1 == std::string_view::npos) {
        return Status::ParseError("malformed HTTP status line");
      }
      response.status = 0;
      for (const char c : line.substr(sp1 + 1, 3)) {
        if (c < '0' || c > '9') {
          return Status::ParseError("malformed HTTP status code");
        }
        response.status = response.status * 10 + (c - '0');
      }
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string key(Trim(line.substr(0, colon)));
    std::string value(Trim(line.substr(colon + 1)));
    if (EqualsIgnoreCase(key, "Content-Type")) response.content_type = value;
    response.extra_headers.emplace_back(std::move(key), std::move(value));
  }
  response.body = raw.substr(body_start);
  return response;
}

}  // namespace genlink
