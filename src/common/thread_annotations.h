// Clang thread-safety-analysis macros (a no-op on every other
// compiler). Wrapping the attributes keeps the annotated headers
// portable: GCC builds them as plain C++, while the CI `analysis` job
// compiles with `clang++ -Wthread-safety -Werror`, turning an
// unguarded access to annotated shared state into a build break
// instead of a flaky test.
//
// The names mirror the standard capability vocabulary
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   GENLINK_CAPABILITY(x)        — a class is a lockable capability
//   GENLINK_SCOPED_CAPABILITY    — an RAII guard acquiring/releasing one
//   GENLINK_GUARDED_BY(mu)       — data requiring `mu` to touch
//   GENLINK_PT_GUARDED_BY(mu)    — pointee requiring `mu` to touch
//   GENLINK_REQUIRES(mu)         — function precondition: `mu` held
//   GENLINK_REQUIRES_SHARED(mu)  — precondition: `mu` held shared
//   GENLINK_ACQUIRE(...) / GENLINK_RELEASE(...)            — exclusive
//   GENLINK_ACQUIRE_SHARED(...) / GENLINK_RELEASE_SHARED(...) — shared
//   GENLINK_RELEASE_GENERIC(...) — releases either mode
//   GENLINK_TRY_ACQUIRE(b, ...)  — conditional acquire, true on success
//   GENLINK_EXCLUDES(mu)         — function must NOT hold `mu` (non-
//                                  reentrancy; analysis-only)
//   GENLINK_ASSERT_CAPABILITY(mu)        — runtime claim: `mu` is held
//   GENLINK_ASSERT_SHARED_CAPABILITY(mu) — claim: held at least shared
//   GENLINK_RETURN_CAPABILITY(mu)        — function returns a ref to `mu`
//   GENLINK_NO_THREAD_SAFETY_ANALYSIS    — opt a definition out (last
//                                          resort; say why in a comment)
//
// The concrete capability types (Mutex, WriterPriorityMutex, the
// PhaseRole discipline token) live in common/mutex.h; the lock
// hierarchy and what each capability guards are documented in
// docs/CONCURRENCY.md.

#ifndef GENLINK_COMMON_THREAD_ANNOTATIONS_H_
#define GENLINK_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define GENLINK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GENLINK_THREAD_ANNOTATION(x)  // no-op
#endif

#define GENLINK_CAPABILITY(x) GENLINK_THREAD_ANNOTATION(capability(x))

#define GENLINK_SCOPED_CAPABILITY GENLINK_THREAD_ANNOTATION(scoped_lockable)

#define GENLINK_GUARDED_BY(x) GENLINK_THREAD_ANNOTATION(guarded_by(x))

#define GENLINK_PT_GUARDED_BY(x) GENLINK_THREAD_ANNOTATION(pt_guarded_by(x))

#define GENLINK_ACQUIRED_BEFORE(...) \
  GENLINK_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define GENLINK_ACQUIRED_AFTER(...) \
  GENLINK_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define GENLINK_REQUIRES(...) \
  GENLINK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define GENLINK_REQUIRES_SHARED(...) \
  GENLINK_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define GENLINK_ACQUIRE(...) \
  GENLINK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define GENLINK_ACQUIRE_SHARED(...) \
  GENLINK_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define GENLINK_RELEASE(...) \
  GENLINK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define GENLINK_RELEASE_SHARED(...) \
  GENLINK_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define GENLINK_RELEASE_GENERIC(...) \
  GENLINK_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define GENLINK_TRY_ACQUIRE(...) \
  GENLINK_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define GENLINK_TRY_ACQUIRE_SHARED(...) \
  GENLINK_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define GENLINK_EXCLUDES(...) \
  GENLINK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define GENLINK_ASSERT_CAPABILITY(x) \
  GENLINK_THREAD_ANNOTATION(assert_capability(x))

#define GENLINK_ASSERT_SHARED_CAPABILITY(x) \
  GENLINK_THREAD_ANNOTATION(assert_shared_capability(x))

#define GENLINK_RETURN_CAPABILITY(x) GENLINK_THREAD_ANNOTATION(lock_returned(x))

#define GENLINK_NO_THREAD_SAFETY_ANALYSIS \
  GENLINK_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // GENLINK_COMMON_THREAD_ANNOTATIONS_H_
