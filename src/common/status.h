// Error handling vocabulary for the GenLink library.
//
// Library code does not throw exceptions; fallible operations return a
// `Status` or a `Result<T>` (a value-or-status union, similar in spirit to
// absl::StatusOr / rocksdb::Status).

#ifndef GENLINK_COMMON_STATUS_H_
#define GENLINK_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace genlink {

/// Canonical error codes used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kInternal,
};

/// Returns a stable human-readable name for a status code (e.g. "NotFound").
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value.
///
/// The default-constructed `Status` is OK. Error statuses carry a code and a
/// message describing the failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders the status as "<CodeName>: <message>" ("OK" when ok).
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type `T` or an error `Status`.
///
/// Access to the value when the result holds an error is a programming bug
/// and is guarded by assertions in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result error constructor requires non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this result is an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace genlink

/// Propagates a non-OK status from an expression, RocksDB-style.
#define GENLINK_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::genlink::Status _genlink_status = (expr);        \
    if (!_genlink_status.ok()) return _genlink_status; \
  } while (false)

#endif  // GENLINK_COMMON_STATUS_H_
