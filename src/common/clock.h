// Injectable monotonic time: the deadline/cancellation vocabulary for
// request serving, and the seam fault-injection tests use to make
// timeout paths deterministic.
//
//   * Clock      — a monotonic now() source. Clock::Real() wraps
//     std::chrono::steady_clock (the only clock determinism policy
//     allows to feed behavior; see tools/genlink_lint.py). Production
//     code takes a `const Clock*` so tests can substitute a FakeClock.
//   * FakeClock  — a manually advanced clock. Thread-safe: Advance may
//     race Now() calls from worker threads (serve deadline tests).
//   * Deadline   — a point in time on some Clock, or infinite. Cheap
//     to copy, never expires when infinite.
//   * CancelToken — cooperative cancellation: an explicit cancel flag
//     OR an expired deadline. Long operations (MatcherIndex::MatchBatch
//     chunks, serve request handlers) poll Cancelled() between units of
//     work and return early with partial results; the caller decides
//     what a truncated result means (the serve daemon answers 504).
//
// None of this feeds learned rules or generated links: cancellation
// only ever truncates work whose output the caller then discards, so
// the library's bit-identity contracts are unaffected on the
// non-cancelled path.

#ifndef GENLINK_COMMON_CLOCK_H_
#define GENLINK_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace genlink {

/// A monotonic time source. Implementations must be thread-safe.
class Clock {
 public:
  using Duration = std::chrono::steady_clock::duration;
  using TimePoint = std::chrono::steady_clock::time_point;

  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;

  /// The process-wide steady_clock-backed instance.
  static const Clock* Real();
};

/// A manually advanced clock for deterministic timeout tests.
class FakeClock final : public Clock {
 public:
  FakeClock() = default;

  TimePoint Now() const override {
    return TimePoint(
        std::chrono::nanoseconds(now_ns_.load(std::memory_order_acquire)));
  }

  /// Moves time forward (never backward; monotonic by construction).
  void Advance(Duration d) {
    now_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count(),
        std::memory_order_acq_rel);
  }

 private:
  std::atomic<int64_t> now_ns_{0};
};

/// A point in time on a clock, or "never". Copyable and cheap; the
/// clock must outlive the deadline.
class Deadline {
 public:
  /// The infinite deadline: never expires.
  Deadline() = default;
  static Deadline Infinite() { return Deadline(); }

  /// Expires `d` after `clock->Now()`.
  static Deadline After(Clock::Duration d, const Clock* clock = Clock::Real()) {
    Deadline deadline;
    deadline.clock_ = clock;
    deadline.at_ = clock->Now() + d;
    return deadline;
  }

  bool infinite() const { return clock_ == nullptr; }

  bool Expired() const { return clock_ != nullptr && clock_->Now() >= at_; }

  /// Time left before expiry; zero when expired, Duration::max() when
  /// infinite.
  Clock::Duration Remaining() const {
    if (clock_ == nullptr) return Clock::Duration::max();
    const Clock::TimePoint now = clock_->Now();
    return now >= at_ ? Clock::Duration::zero() : at_ - now;
  }

  /// The earlier of two deadlines (infinite is later than everything).
  static Deadline Earlier(const Deadline& x, const Deadline& y) {
    if (x.infinite()) return y;
    if (y.infinite()) return x;
    return x.at_ <= y.at_ ? x : y;
  }

 private:
  const Clock* clock_ = nullptr;  // null = infinite
  Clock::TimePoint at_{};
};

/// Cooperative cancellation: fires when RequestCancel() was called or
/// the deadline expired. Safe to poll from any number of threads while
/// another thread calls RequestCancel (the serve daemon's workers poll
/// it from MatchBatch pool tasks). Not copyable — share by pointer.
class CancelToken {
 public:
  /// A token that never fires.
  CancelToken() = default;
  /// A token that fires when `deadline` expires.
  explicit CancelToken(Deadline deadline) : deadline_(deadline) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Lock-free (a relaxed atomic store), hence
  /// safe from a signal handler — the CLI's SIGINT path relies on it.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) || deadline_.Expired();
  }

  const Deadline& deadline() const { return deadline_; }

 private:
  std::atomic<bool> cancelled_{false};
  Deadline deadline_;
};

}  // namespace genlink

#endif  // GENLINK_COMMON_CLOCK_H_
