// Deterministic, seedable random number generation.
//
// All stochastic components of the library (GP evolution, dataset
// generators, cross-validation splits) draw from `Rng` so that every
// experiment is reproducible from a single 64-bit seed.

#ifndef GENLINK_COMMON_RANDOM_H_
#define GENLINK_COMMON_RANDOM_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace genlink {

/// xoshiro256** PRNG seeded via SplitMix64.
///
/// Fast, high-quality, and fully deterministic across platforms (unlike
/// std::mt19937 + std::uniform_*_distribution whose outputs vary between
/// standard library implementations).
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64();

  /// Returns a uniformly distributed double in [0, 1).
  double Uniform01();

  /// Returns a uniformly distributed double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a uniformly distributed integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns an index uniformly distributed in [0, n). `n` must be > 0.
  size_t PickIndex(size_t n);

  /// Returns true with probability `p`.
  bool Bernoulli(double p);

  /// Returns a normally distributed value (Box-Muller).
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = PickIndex(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Returns a reference to a uniformly chosen element. `items` must be
  /// non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[PickIndex(items.size())];
  }

  /// Derives an independent child generator; used to give each thread or
  /// each experiment run its own deterministic stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace genlink

#endif  // GENLINK_COMMON_RANDOM_H_
