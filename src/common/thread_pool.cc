#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>

namespace genlink {
namespace {

/// Collects the exception of the smallest failing index across the
/// tasks of one parallel call, so the exception rethrown to the caller
/// is the same no matter how the indices were scheduled.
class FirstErrorCollector {
 public:
  /// Records std::current_exception() for index `i`; keeps the one
  /// with the smallest index.
  void Record(size_t i) noexcept {
    std::exception_ptr error = std::current_exception();
    MutexLock lock(mutex_);
    if (i < index_) {
      index_ = i;
      error_ = error;
    }
  }

  /// Rethrows the recorded exception, if any. Call after every task of
  /// the parallel call has finished.
  void Rethrow() {
    MutexLock lock(mutex_);
    if (error_ != nullptr) std::rethrow_exception(error_);
  }

 private:
  Mutex mutex_;
  size_t index_ GENLINK_GUARDED_BY(mutex_) =
      std::numeric_limits<size_t>::max();
  std::exception_ptr error_ GENLINK_GUARDED_BY(mutex_);
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && tasks_.empty()) task_available_.Wait(lock);
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // Tasks are exception-free by construction: the parallel helpers
    // wrap user code in a try/catch (FirstErrorCollector), so nothing
    // can escape here and kill the worker.
    task();
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  FirstErrorCollector errors;
  auto run_index = [&](size_t i) {
    try {
      fn(i);
    } catch (...) {
      errors.Record(i);
    }
  };
  const size_t workers = threads_.size();
  if (workers <= 1 || count < 2 * workers) {
    for (size_t i = 0; i < count; ++i) run_index(i);
    errors.Rethrow();
    return;
  }
  // Static chunking: each worker claims a contiguous slice. Fitness costs
  // are roughly uniform across a population, so static split is adequate
  // and avoids per-index synchronization.
  const size_t num_chunks = workers;
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  std::atomic<size_t> remaining(num_chunks);
  Mutex done_mutex;
  CondVar done_cv;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(count, begin + chunk);
    Submit([&, begin, end] {
      for (size_t i = begin; i < end; ++i) run_index(i);
      if (remaining.fetch_sub(1) == 1) {
        MutexLock lock(done_mutex);
        done_cv.NotifyOne();
      }
    });
  }
  {
    MutexLock lock(done_mutex);
    while (remaining.load() != 0) done_cv.Wait(lock);
  }
  errors.Rethrow();
}

void ThreadPool::ParallelForEach(size_t count,
                                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  FirstErrorCollector errors;
  auto run_index = [&](size_t i) {
    try {
      fn(i);
    } catch (...) {
      errors.Record(i);
    }
  };
  if (threads_.size() <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) run_index(i);
    errors.Rethrow();
    return;
  }
  std::atomic<size_t> remaining(count);
  Mutex done_mutex;
  CondVar done_cv;
  for (size_t i = 0; i < count; ++i) {
    Submit([&, i] {
      run_index(i);
      if (remaining.fetch_sub(1) == 1) {
        MutexLock lock(done_mutex);
        done_cv.NotifyOne();
      }
    });
  }
  {
    MutexLock lock(done_mutex);
    while (remaining.load() != 0) done_cv.Wait(lock);
  }
  errors.Rethrow();
}

}  // namespace genlink
