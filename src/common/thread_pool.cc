#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace genlink {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  const size_t workers = threads_.size();
  if (workers <= 1 || count < 2 * workers) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // Static chunking: each worker claims a contiguous slice. Fitness costs
  // are roughly uniform across a population, so static split is adequate
  // and avoids per-index synchronization.
  const size_t num_chunks = workers;
  const size_t chunk = (count + num_chunks - 1) / num_chunks;
  std::atomic<size_t> remaining(num_chunks);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(count, begin + chunk);
    Submit([&, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

void ThreadPool::ParallelForEach(size_t count,
                                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (threads_.size() <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> remaining(count);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  for (size_t i = 0; i < count; ++i) {
    Submit([&, i] {
      fn(i);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
}

}  // namespace genlink
