// A small fixed-size thread pool with a parallel-for helper.
//
// GenLink evaluates the fitness of every rule in a population each
// generation; those evaluations are independent and dominate runtime, so
// they are dispatched through this pool (the paper notes tournament
// selection was chosen partly because it is easy to parallelize).

#ifndef GENLINK_COMMON_THREAD_POOL_H_
#define GENLINK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace genlink {

/// Fixed-size worker pool. Tasks are `void()` closures; `ParallelFor`
/// blocks until the whole index range has been processed.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 means
  /// hardware_concurrency, minimum 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for every i in [0, count), distributing chunks over the
  /// workers, and returns when all indices are done. Runs inline when the
  /// pool has a single worker or `count` is small.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Like ParallelFor, but submits one task per index with no
  /// small-count inline shortcut: the right shape when `count` is small
  /// and each task is heavy and unequal (e.g. one island's breeding
  /// step), where chunking would serialize the work. Runs inline only
  /// with a single worker or a single index.
  void ParallelForEach(size_t count, const std::function<void(size_t)>& fn);

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  bool shutting_down_ = false;
};

}  // namespace genlink

#endif  // GENLINK_COMMON_THREAD_POOL_H_
