// A small fixed-size thread pool with a parallel-for helper.
//
// GenLink evaluates the fitness of every rule in a population each
// generation; those evaluations are independent and dominate runtime, so
// they are dispatched through this pool (the paper notes tournament
// selection was chosen partly because it is easy to parallelize).
//
// Thread-safety: Submit/ParallelFor/ParallelForEach may be called from
// any thread, but one call at a time per pool (the engine and the
// island model alternate breeding and evaluation on one thread). The
// task queue and the shutdown flag are guarded by `mutex_` and
// annotated for clang -Wthread-safety (common/thread_annotations.h);
// see docs/CONCURRENCY.md for the lock hierarchy.
//
// Exceptions: a task that throws does not kill the worker or poison
// the pool. Both parallel helpers run *every* index regardless of
// failures, record the exception thrown by the smallest failing index,
// and rethrow it after the whole range has been processed — the same
// exception for any thread count, keeping error paths as deterministic
// as success paths. The pool stays usable afterwards
// (tests/thread_pool_test.cc).

#ifndef GENLINK_COMMON_THREAD_POOL_H_
#define GENLINK_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace genlink {

/// Fixed-size worker pool. Tasks are `void()` closures; `ParallelFor`
/// blocks until the whole index range has been processed.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (0 means
  /// hardware_concurrency, minimum 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for every i in [0, count), distributing chunks over the
  /// workers, and returns when all indices are done. Runs inline when the
  /// pool has a single worker or `count` is small. If any `fn(i)` throws,
  /// every other index still runs and the smallest failing index's
  /// exception is rethrown here.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  /// Like ParallelFor, but submits one task per index with no
  /// small-count inline shortcut: the right shape when `count` is small
  /// and each task is heavy and unequal (e.g. one island's breeding
  /// step), where chunking would serialize the work. Runs inline only
  /// with a single worker or a single index. Same exception contract as
  /// ParallelFor.
  void ParallelForEach(size_t count, const std::function<void(size_t)>& fn);

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> threads_;
  Mutex mutex_;
  CondVar task_available_;
  std::queue<std::function<void()>> tasks_ GENLINK_GUARDED_BY(mutex_);
  bool shutting_down_ GENLINK_GUARDED_BY(mutex_) = false;
};

}  // namespace genlink

#endif  // GENLINK_COMMON_THREAD_POOL_H_
