#include "common/hash.h"

#include <cstring>

namespace genlink {

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // Asymmetric in (seed, value) so that combining is order-sensitive.
  uint64_t z = seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t HashDouble(double value) {
  if (value == 0.0) value = 0.0;  // normalize -0.0
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return HashCombine(0x2545F4914F6CDD1DULL, bits);
}

}  // namespace genlink
