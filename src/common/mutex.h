// Annotated synchronization primitives: the only lock types genlink
// code outside common/ is allowed to own.
//
// The standard library's std::mutex / std::shared_mutex carry no
// thread-safety attributes on libstdc++, so state they guard is
// invisible to `clang -Wthread-safety` — and tools/genlink_lint.py
// therefore rejects raw standard mutex members outside common/. These
// wrappers restore the checking:
//
//   * Mutex / MutexLock       — std::mutex as an annotated capability
//     with an RAII guard. CondVar pairs with MutexLock for waits; the
//     predicate is written as a plain while-loop in the caller so the
//     analysis sees every guarded read under the lock.
//   * WriterPriorityMutex     — the hand-rolled writer-priority
//     reader/writer lock (moved here from api/matcher_index.cc) as a
//     shared capability, with ReaderMutexLock / WriterMutexLock scoped
//     guards and AssertReaderHeld() for code reached from worker
//     threads whose caller holds the lock.
//   * PhaseRole / PhaseGuard  — a zero-cost "role" capability (clang's
//     role-based discipline pattern) for state that is protected by
//     *phase structure* rather than by a lock: the evaluation engine's
//     caches are touched only in the serial phases between parallel
//     sections, and marking them GENLINK_GUARDED_BY(serial_phase_)
//     turns a cache access from inside a worker task into a compile
//     error instead of a data race.
//
// Lock hierarchy and which state each capability guards:
// docs/CONCURRENCY.md.

#ifndef GENLINK_COMMON_MUTEX_H_
#define GENLINK_COMMON_MUTEX_H_

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace genlink {

/// std::mutex as an annotated capability.
class GENLINK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GENLINK_ACQUIRE() { mutex_.lock(); }
  void Unlock() GENLINK_RELEASE() { mutex_.unlock(); }
  bool TryLock() GENLINK_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII guard over Mutex; the annotated stand-in for std::lock_guard.
class GENLINK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) GENLINK_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() GENLINK_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mutex_;
};

/// Condition variable paired with Mutex/MutexLock. No predicate
/// overload on purpose: a predicate lambda is analyzed as a separate
/// function that does not hold the lock, so guarded reads inside it
/// would (rightly) fail -Wthread-safety. Callers spell the loop out:
///
///   MutexLock lock(mutex_);
///   while (!condition_over_guarded_state) cv_.Wait(lock);
class CondVar {
 public:
  /// Atomically releases `lock`'s mutex, waits, and reacquires it
  /// before returning. The capability is held again on return, which
  /// is what the (lack of an) annotation says: from the analysis's
  /// point of view the lock never left this scope.
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mutex_.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership returns to `lock`
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Writer-priority shared mutex. std::shared_mutex on glibc prefers
/// readers: under continuous query traffic a writer could wait forever
/// for a gap in the read lock. Here a *waiting* writer blocks NEW
/// readers, so writers complete after at most the in-flight readers
/// drain (tests/api_test.cc hammers this with four query threads
/// against 21 back-to-back rule swaps; tests/stress_swap_tsan_test.cc
/// runs the same shape under ThreadSanitizer). Used by
/// api/matcher_index.cc to order value-store appends (rule hot swaps)
/// against concurrent queries.
class GENLINK_CAPABILITY("mutex") WriterPriorityMutex {
 public:
  WriterPriorityMutex() = default;
  WriterPriorityMutex(const WriterPriorityMutex&) = delete;
  WriterPriorityMutex& operator=(const WriterPriorityMutex&) = delete;

  void ReaderLock() GENLINK_ACQUIRE_SHARED() {
    std::unique_lock<std::mutex> lock(mutex_);
    readers_allowed_.wait(lock, [&] {
      return !writer_active_.load(std::memory_order_relaxed) &&
             waiting_writers_ == 0;
    });
    active_readers_.fetch_add(1, std::memory_order_relaxed);
  }
  void ReaderUnlock() GENLINK_RELEASE_SHARED() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (active_readers_.fetch_sub(1, std::memory_order_relaxed) == 1 &&
        waiting_writers_ > 0) {
      writers_allowed_.notify_one();
    }
  }
  void WriterLock() GENLINK_ACQUIRE() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++waiting_writers_;
    writers_allowed_.wait(lock, [&] {
      return !writer_active_.load(std::memory_order_relaxed) &&
             active_readers_.load(std::memory_order_relaxed) == 0;
    });
    --waiting_writers_;
    writer_active_.store(true, std::memory_order_relaxed);
  }
  void WriterUnlock() GENLINK_RELEASE() {
    std::unique_lock<std::mutex> lock(mutex_);
    writer_active_.store(false, std::memory_order_relaxed);
    if (waiting_writers_ > 0) {
      writers_allowed_.notify_one();
    } else {
      readers_allowed_.notify_all();
    }
  }

  /// Static + (debug-build) runtime claim that the calling thread is
  /// inside a read- or write-locked region. For code reached from pool
  /// workers whose *dispatching* call frame holds the lock (e.g.
  /// MatchBatch tasks): the analysis cannot see through the task
  /// boundary, so the worker asserts the capability instead of
  /// reacquiring it. Sits on query hot paths, hence assert()-only: the
  /// relaxed atomic loads compile to nothing under NDEBUG. (The check
  /// is necessarily approximate — *some* reader or writer is active —
  /// but a stray call from an unlocked context trips it immediately in
  /// the concurrency tests.)
  void AssertReaderHeld() const GENLINK_ASSERT_SHARED_CAPABILITY(this) {
    assert(active_readers_.load(std::memory_order_relaxed) > 0 ||
           writer_active_.load(std::memory_order_relaxed));
  }
  /// Same claim for the exclusive mode (e.g. compile steps that must
  /// run under the writer lock).
  void AssertWriterHeld() const GENLINK_ASSERT_CAPABILITY(this) {
    assert(writer_active_.load(std::memory_order_relaxed));
  }

 private:
  // The counters are mutated only under mutex_ (the condition-variable
  // protocol needs that anyway); they are atomics so the Assert*Held
  // debug checks may read them from unlocked contexts without a data
  // race.
  mutable std::mutex mutex_;
  std::condition_variable readers_allowed_;
  std::condition_variable writers_allowed_;
  std::atomic<int> active_readers_{0};
  int waiting_writers_ = 0;
  std::atomic<bool> writer_active_{false};
};

/// RAII shared (read) lock over WriterPriorityMutex.
class GENLINK_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(WriterPriorityMutex& mutex)
      GENLINK_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.ReaderLock();
  }
  ~ReaderMutexLock() GENLINK_RELEASE() { mutex_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  WriterPriorityMutex& mutex_;
};

/// RAII exclusive (write) lock over WriterPriorityMutex.
class GENLINK_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(WriterPriorityMutex& mutex) GENLINK_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.WriterLock();
  }
  ~WriterMutexLock() GENLINK_RELEASE() { mutex_.WriterUnlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  WriterPriorityMutex& mutex_;
};

/// A zero-cost capability for phase-structured code (clang's
/// role-based discipline pattern): Acquire/Release move no bits, they
/// only tell the analysis which stretches of a function are "the
/// serial phase". State marked GENLINK_GUARDED_BY(role) can then only
/// be touched where the role is held — a worker-task lambda, analyzed
/// as its own function, does not hold it, so a cache or counter access
/// from inside a parallel section becomes a -Wthread-safety error.
/// This encodes (not replaces) the engine's determinism discipline:
/// caches are read/written only between parallel sections, never from
/// them.
class GENLINK_CAPABILITY("role") PhaseRole {
 public:
  PhaseRole() = default;
  PhaseRole(const PhaseRole&) = delete;
  PhaseRole& operator=(const PhaseRole&) = delete;

  void Acquire() GENLINK_ACQUIRE() {}
  void Release() GENLINK_RELEASE() {}
};

/// RAII scope of a PhaseRole (one serial stretch).
class GENLINK_SCOPED_CAPABILITY PhaseGuard {
 public:
  explicit PhaseGuard(PhaseRole& role) GENLINK_ACQUIRE(role) : role_(role) {
    role_.Acquire();
  }
  ~PhaseGuard() GENLINK_RELEASE() { role_.Release(); }

  PhaseGuard(const PhaseGuard&) = delete;
  PhaseGuard& operator=(const PhaseGuard&) = delete;

 private:
  PhaseRole& role_;
};

}  // namespace genlink

#endif  // GENLINK_COMMON_MUTEX_H_
