#include "common/random.h"

#include <cmath>

namespace genlink {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform01(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t x;
  do {
    x = NextUint64();
  } while (x >= limit);
  return lo + static_cast<int64_t>(x % span);
}

size_t Rng::PickIndex(size_t n) {
  return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
}

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

double Rng::Gaussian(double mean, double stddev) {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform01();
  } while (u1 <= 1e-300);
  u2 = Uniform01();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace genlink
