#include "common/failpoint.h"

namespace genlink {

std::atomic<int> Failpoints::armed_count_{0};

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();  // never destroyed
  return *instance;
}

void Failpoints::Arm(std::string_view name, FailpointSpec spec) {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(std::string(name), Point{}).first;
  }
  if (!it->second.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  it->second.spec = spec;
  it->second.hits = 0;
  it->second.armed = true;
}

void Failpoints::Disarm(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void Failpoints::DisarmAll() {
  MutexLock lock(mutex_);
  for (auto& [name, point] : points_) {
    if (point.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
    point.armed = false;
  }
  points_.clear();
}

bool Failpoints::ShouldFail(std::string_view name, int* error_code) {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return false;
  Point& point = it->second;
  const uint64_t hit = point.hits++;
  if (hit < point.spec.skip) return false;
  if (hit - point.spec.skip >= point.spec.count) return false;
  if (error_code != nullptr) *error_code = point.spec.error_code;
  return true;
}

uint64_t Failpoints::Hits(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

}  // namespace genlink
