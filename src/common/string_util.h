// Small string helpers shared across the library. ASCII-oriented: the
// reproduction's data generators emit ASCII, matching the paper's datasets.

#ifndef GENLINK_COMMON_STRING_UTIL_H_
#define GENLINK_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace genlink {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits `text` on any amount of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view text);
std::string Trim(std::string_view text);

/// True if `text` begins with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Parses a double; returns false on malformed input or trailing garbage.
bool ParseDouble(std::string_view text, double* out);

/// Parses a signed integer; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* out);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("1.5", not "1.500000").
std::string FormatDouble(double value, int digits = 6);

/// Formats a double with the fewest digits that still parse back to the
/// exact same value (used by serializers that must round-trip).
std::string FormatDoubleExact(double value);

}  // namespace genlink

#endif  // GENLINK_COMMON_STRING_UTIL_H_
