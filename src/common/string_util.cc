#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstdio>

namespace genlink {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimView(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string Trim(std::string_view text) { return std::string(TrimView(text)); }

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      break;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

// Both parsers run on the distance hot path (numeric and date measures
// parse operands per value), so they work on the view directly via
// std::from_chars — no NUL-terminated copy, no errno. A leading '+' is
// accepted for strtod/strtoll compatibility; a second sign after it is
// not ("+-5" must fail, as it did under strtod). Unlike strtod,
// hexadecimal floats ("0x10") are rejected — the evaluation datasets
// are decimal, and accepting per-parser bases invites silent surprises.

namespace {
// Strips one optional leading '+' (which from_chars does not accept but
// strtod/strtoll did). A sign left after stripping ("+-5", "++5") is
// rejected here; from_chars itself rejects "--5" and "-+5".
bool StripLeadingPlus(std::string_view& text) {
  if (text.empty()) return false;
  if (text.front() != '+') return true;
  text.remove_prefix(1);
  return !text.empty() && text.front() != '+' && text.front() != '-';
}
}  // namespace

bool ParseDouble(std::string_view text, double* out) {
  std::string_view trimmed = TrimView(text);
  if (!StripLeadingPlus(trimmed)) return false;
  double value = 0.0;
  auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  std::string_view trimmed = TrimView(text);
  if (!StripLeadingPlus(trimmed)) return false;
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) return false;
  *out = value;
  return true;
}

std::string FormatDoubleExact(double value) {
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    if (ParseDouble(buf, &parsed) && parsed == value) return buf;
  }
  return buf;  // %.17g always round-trips for finite doubles
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace genlink
