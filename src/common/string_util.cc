#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstdio>

namespace genlink {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimView(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string Trim(std::string_view text) { return std::string(TrimView(text)); }

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      break;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string_view trimmed = TrimView(text);
  if (trimmed.empty()) return false;
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  std::string_view trimmed = TrimView(text);
  if (trimmed.empty()) return false;
  std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = value;
  return true;
}

std::string FormatDoubleExact(double value) {
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    if (ParseDouble(buf, &parsed) && parsed == value) return buf;
  }
  return buf;  // %.17g always round-trips for finite doubles
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') --last;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace genlink
