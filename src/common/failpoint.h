// Deterministic fault injection: named failpoints that tests arm to
// force error paths that real traffic only hits rarely (socket resets,
// short reads, blocked handlers), with hit windows instead of
// probabilities so every failure is reproducible.
//
//   // production code (the serve daemon's recv wrapper):
//   int injected_errno = 0;
//   if (GENLINK_FAILPOINT_E("serve.recv_error", &injected_errno)) {
//     errno = injected_errno;
//     return -1;
//   }
//
//   // test code:
//   Failpoints::Instance().Arm("serve.recv_error",
//                              {.skip = 1, .count = 2, .error_code = ECONNRESET});
//   ... drive three requests: the 2nd and 3rd see a reset ...
//   Failpoints::Instance().DisarmAll();
//
// Cost when nothing is armed — the only state production ever runs in —
// is one relaxed atomic load (the GENLINK_FAILPOINT* macros check the
// global armed count before touching the registry). The armed path
// takes a Mutex; that is fine, failpoints exist for tests. Lookups are
// transparent (string_view keyed), so the *error paths themselves stay
// allocation-free: a fired failpoint never forces the caller to build
// a std::string.
//
// Hit counting: every evaluation of an ARMED failpoint counts as one
// hit, whether or not it fires; `Hits(name)` exposes the counter so
// tests can assert a site was actually reached. Windows are expressed
// in hits: fire on hits [skip, skip + count).

#ifndef GENLINK_COMMON_FAILPOINT_H_
#define GENLINK_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace genlink {

/// When an armed failpoint fires.
struct FailpointSpec {
  /// Hits to let through before firing.
  uint64_t skip = 0;
  /// Number of hits that fire after the skip window (default: forever).
  uint64_t count = std::numeric_limits<uint64_t>::max();
  /// Errno-style code handed back through GENLINK_FAILPOINT_E sites
  /// (e.g. ECONNRESET for a simulated socket error). 0 when the site
  /// does not need one.
  int error_code = 0;
};

/// Process-wide failpoint registry. All methods are thread-safe.
class Failpoints {
 public:
  static Failpoints& Instance();

  /// Arms (or re-arms, resetting the hit counter of) `name`.
  void Arm(std::string_view name, FailpointSpec spec);

  /// Disarms `name`; keeps its lifetime hit counter readable.
  void Disarm(std::string_view name);

  /// Disarms everything and clears all counters (test teardown).
  void DisarmAll();

  /// Evaluates the failpoint: counts a hit when armed, returns true
  /// when this hit falls in the armed firing window. `error_code`
  /// (optional) receives the spec's code when firing. Never fires when
  /// `name` is not armed.
  bool ShouldFail(std::string_view name, int* error_code = nullptr);

  /// Hits recorded for `name` since it was (last) armed; 0 when never
  /// armed.
  uint64_t Hits(std::string_view name) const;

  /// True when at least one failpoint is armed anywhere; a single
  /// relaxed load, the macros' fast path.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  Failpoints() = default;

  struct Point {
    FailpointSpec spec;
    uint64_t hits = 0;
    bool armed = false;
  };

  mutable Mutex mutex_;
  std::map<std::string, Point, std::less<>> points_ GENLINK_GUARDED_BY(mutex_);

  static std::atomic<int> armed_count_;
};

}  // namespace genlink

/// True when the named failpoint is armed and fires on this hit.
#define GENLINK_FAILPOINT(name)          \
  (::genlink::Failpoints::AnyArmed() &&  \
   ::genlink::Failpoints::Instance().ShouldFail(name))

/// Same, delivering the armed error code into `*errp` when firing.
#define GENLINK_FAILPOINT_E(name, errp)  \
  (::genlink::Failpoints::AnyArmed() &&  \
   ::genlink::Failpoints::Instance().ShouldFail(name, errp))

#endif  // GENLINK_COMMON_FAILPOINT_H_
