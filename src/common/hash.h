// Hashing helpers: FNV-1a for strings and a mix-based combiner, used for
// structural hashing of linkage-rule trees (fitness caching) and token
// indexes.

#ifndef GENLINK_COMMON_HASH_H_
#define GENLINK_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace genlink {

/// 64-bit FNV-1a over bytes.
uint64_t HashBytes(std::string_view bytes);

/// Mixes `value` into `seed` (splitmix-style avalanche), order-sensitive.
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// Hashes a double by its bit pattern (normalizing -0.0 to 0.0).
uint64_t HashDouble(double value);

}  // namespace genlink

#endif  // GENLINK_COMMON_HASH_H_
