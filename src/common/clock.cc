#include "common/clock.h"

namespace genlink {

namespace {

class RealClock final : public Clock {
 public:
  TimePoint Now() const override { return std::chrono::steady_clock::now(); }
};

}  // namespace

const Clock* Clock::Real() {
  static const RealClock kRealClock;
  return &kRealClock;
}

}  // namespace genlink
