#include "text/ngram.h"

namespace genlink {

std::vector<std::string> CharNgrams(std::string_view text, size_t n) {
  std::vector<std::string> grams;
  if (text.empty() || n == 0) return grams;
  if (text.size() <= n) {
    grams.emplace_back(text);
    return grams;
  }
  grams.reserve(text.size() - n + 1);
  for (size_t i = 0; i + n <= text.size(); ++i) {
    grams.emplace_back(text.substr(i, n));
  }
  return grams;
}

std::vector<std::string> PaddedCharNgrams(std::string_view text, size_t n, char pad) {
  if (text.empty() || n == 0) return {};
  std::string padded;
  padded.reserve(text.size() + 2 * (n - 1));
  padded.append(n - 1, pad);
  padded.append(text);
  padded.append(n - 1, pad);
  return CharNgrams(padded, n);
}

}  // namespace genlink
