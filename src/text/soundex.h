// American Soundex phonetic encoding, offered as an additional
// transformation for matching misspelled person names.

#ifndef GENLINK_TEXT_SOUNDEX_H_
#define GENLINK_TEXT_SOUNDEX_H_

#include <string>
#include <string_view>

namespace genlink {

/// Returns the 4-character Soundex code of `word` (e.g. "Robert" ->
/// "R163"). Returns an empty string when the word contains no ASCII
/// letter.
std::string Soundex(std::string_view word);

}  // namespace genlink

#endif  // GENLINK_TEXT_SOUNDEX_H_
