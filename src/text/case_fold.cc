#include "text/case_fold.h"

#include <cctype>

namespace genlink {

std::string ToLowerAscii(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string ToUpperAscii(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string StripPunctuation(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (!std::ispunct(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

bool IsAsciiDigits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace genlink
