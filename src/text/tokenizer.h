// Tokenization used by the `tokenize` transformation (Table 1 of the
// paper) and by token-based distance measures and the blocking index.

#ifndef GENLINK_TEXT_TOKENIZER_H_
#define GENLINK_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace genlink {

/// Splits `text` into maximal runs of ASCII alphanumeric characters.
/// "J. Doe (ed.)" -> {"J", "Doe", "ed"}.
std::vector<std::string> TokenizeAlnum(std::string_view text);

/// Splits on whitespace only, keeping interior punctuation.
/// "J. Doe" -> {"J.", "Doe"}.
std::vector<std::string> TokenizeWhitespace(std::string_view text);

}  // namespace genlink

#endif  // GENLINK_TEXT_TOKENIZER_H_
