#include "text/tokenizer.h"

#include <cctype>

namespace genlink {
namespace {

inline bool IsAlnum(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

inline bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

// Splits `text` into maximal runs of characters satisfying `keep`. A
// counting pre-pass sizes the vector exactly (tokenization runs once
// per entity value in blocking and the `tokenize` transformation, so
// reallocation churn matters); tokens are built straight from the input
// view, with no intermediate substring.
template <typename Pred>
std::vector<std::string> SplitRuns(std::string_view text, Pred keep) {
  size_t count = 0;
  bool in_token = false;
  for (char c : text) {
    const bool k = keep(c);
    count += (k && !in_token) ? 1 : 0;
    in_token = k;
  }
  std::vector<std::string> tokens;
  tokens.reserve(count);
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !keep(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && keep(text[i])) ++i;
    if (i > start) tokens.emplace_back(text.data() + start, i - start);
  }
  return tokens;
}

}  // namespace

std::vector<std::string> TokenizeAlnum(std::string_view text) {
  return SplitRuns(text, IsAlnum);
}

std::vector<std::string> TokenizeWhitespace(std::string_view text) {
  return SplitRuns(text, [](char c) { return !IsSpace(c); });
}

}  // namespace genlink
