#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace genlink {

std::vector<std::string> TokenizeAlnum(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !std::isalnum(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && std::isalnum(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

std::vector<std::string> TokenizeWhitespace(std::string_view text) {
  return SplitWhitespace(text);
}

}  // namespace genlink
