// Porter stemming algorithm (M.F. Porter, 1980), used by the `stem`
// transformation that appears in the paper's transformation-crossover
// example (Figure 6).

#ifndef GENLINK_TEXT_PORTER_STEMMER_H_
#define GENLINK_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace genlink {

/// Returns the Porter stem of a single lowercase ASCII word.
/// Words shorter than 3 characters are returned unchanged, per the
/// original algorithm. Non-alphabetic input passes through unchanged.
std::string PorterStem(std::string_view word);

}  // namespace genlink

#endif  // GENLINK_TEXT_PORTER_STEMMER_H_
