// ASCII case folding and punctuation stripping.

#ifndef GENLINK_TEXT_CASE_FOLD_H_
#define GENLINK_TEXT_CASE_FOLD_H_

#include <string>
#include <string_view>

namespace genlink {

/// Lowercases ASCII letters; other bytes pass through unchanged.
std::string ToLowerAscii(std::string_view text);

/// Uppercases ASCII letters; other bytes pass through unchanged.
std::string ToUpperAscii(std::string_view text);

/// Removes ASCII punctuation characters.
std::string StripPunctuation(std::string_view text);

/// True if the string contains only ASCII digits (and is non-empty).
bool IsAsciiDigits(std::string_view text);

}  // namespace genlink

#endif  // GENLINK_TEXT_CASE_FOLD_H_
