#include "text/soundex.h"

#include <cctype>

namespace genlink {
namespace {

char SoundexDigit(char c) {
  switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'b': case 'f': case 'p': case 'v':
      return '1';
    case 'c': case 'g': case 'j': case 'k': case 'q': case 's': case 'x': case 'z':
      return '2';
    case 'd': case 't':
      return '3';
    case 'l':
      return '4';
    case 'm': case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';  // vowels and h/w/y
  }
}

bool IsHw(char c) {
  char l = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return l == 'h' || l == 'w';
}

}  // namespace

std::string Soundex(std::string_view word) {
  size_t i = 0;
  while (i < word.size() && !std::isalpha(static_cast<unsigned char>(word[i]))) ++i;
  if (i == word.size()) return "";

  std::string code;
  code.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(word[i]))));
  char prev_digit = SoundexDigit(word[i]);
  ++i;
  for (; i < word.size() && code.size() < 4; ++i) {
    char c = word[i];
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      prev_digit = '0';
      continue;
    }
    // h and w do not reset the previous digit (classic Soundex rule).
    if (IsHw(c)) continue;
    char digit = SoundexDigit(c);
    if (digit != '0' && digit != prev_digit) code.push_back(digit);
    prev_digit = digit;
  }
  while (code.size() < 4) code.push_back('0');
  return code;
}

}  // namespace genlink
