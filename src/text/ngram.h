// Character n-grams, used by the q-gram based blocking index and the
// cosine distance measure.

#ifndef GENLINK_TEXT_NGRAM_H_
#define GENLINK_TEXT_NGRAM_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace genlink {

/// Returns all contiguous character n-grams of `text`. Strings shorter
/// than `n` yield a single gram equal to the whole string (if non-empty).
std::vector<std::string> CharNgrams(std::string_view text, size_t n);

/// Like CharNgrams but pads with `pad` on both sides first, so boundary
/// characters participate in `n` grams each ("##ab", padding "#", n=2 ->
/// {"#a","ab","b#"}).
std::vector<std::string> PaddedCharNgrams(std::string_view text, size_t n,
                                          char pad = '#');

}  // namespace genlink

#endif  // GENLINK_TEXT_NGRAM_H_
