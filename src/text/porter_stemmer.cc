#include "text/porter_stemmer.h"

#include <cctype>

namespace genlink {
namespace {

// The implementation follows the original 1980 paper structure: steps
// 1a/1b/1c, 2, 3, 4, 5a/5b operating on a mutable buffer.

bool IsVowelAt(const std::string& w, size_t i) {
  char c = w[i];
  if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') return true;
  // 'y' is a vowel when preceded by a consonant.
  if (c == 'y') return i > 0 && !IsVowelAt(w, i - 1);
  return false;
}

// Measure m: number of VC sequences in w[0..end).
int Measure(const std::string& w, size_t end) {
  int m = 0;
  size_t i = 0;
  // Skip initial consonants.
  while (i < end && !IsVowelAt(w, i)) ++i;
  while (i < end) {
    // Inside a V run.
    while (i < end && IsVowelAt(w, i)) ++i;
    if (i >= end) break;
    // A C run after a V run -> one VC.
    ++m;
    while (i < end && !IsVowelAt(w, i)) ++i;
  }
  return m;
}

bool ContainsVowel(const std::string& w, size_t end) {
  for (size_t i = 0; i < end; ++i) {
    if (IsVowelAt(w, i)) return true;
  }
  return false;
}

bool EndsWithDoubleConsonant(const std::string& w) {
  size_t n = w.size();
  return n >= 2 && w[n - 1] == w[n - 2] && !IsVowelAt(w, n - 1);
}

// *o: stem ends cvc where the final c is not w, x or y.
bool EndsCvc(const std::string& w) {
  size_t n = w.size();
  if (n < 3) return false;
  if (IsVowelAt(w, n - 3) || !IsVowelAt(w, n - 2) || IsVowelAt(w, n - 1)) return false;
  char c = w[n - 1];
  return c != 'w' && c != 'x' && c != 'y';
}

bool HasSuffix(const std::string& w, std::string_view suffix) {
  return w.size() >= suffix.size() &&
         w.compare(w.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// If w ends with `suffix` and the measure of the stem is > m_min, replace
// the suffix with `replacement` and return true.
bool ReplaceSuffix(std::string& w, std::string_view suffix,
                   std::string_view replacement, int m_min) {
  if (!HasSuffix(w, suffix)) return false;
  size_t stem_len = w.size() - suffix.size();
  if (Measure(w, stem_len) <= m_min) return false;
  w.resize(stem_len);
  w.append(replacement);
  return true;
}

void Step1a(std::string& w) {
  if (HasSuffix(w, "sses")) {
    w.resize(w.size() - 2);
  } else if (HasSuffix(w, "ies")) {
    w.resize(w.size() - 2);
  } else if (HasSuffix(w, "ss")) {
    // unchanged
  } else if (HasSuffix(w, "s")) {
    w.resize(w.size() - 1);
  }
}

void Step1bCleanup(std::string& w) {
  if (HasSuffix(w, "at") || HasSuffix(w, "bl") || HasSuffix(w, "iz")) {
    w.push_back('e');
  } else if (EndsWithDoubleConsonant(w)) {
    char c = w.back();
    if (c != 'l' && c != 's' && c != 'z') w.resize(w.size() - 1);
  } else if (Measure(w, w.size()) == 1 && EndsCvc(w)) {
    w.push_back('e');
  }
}

void Step1b(std::string& w) {
  if (HasSuffix(w, "eed")) {
    if (Measure(w, w.size() - 3) > 0) w.resize(w.size() - 1);
    return;
  }
  if (HasSuffix(w, "ed") && ContainsVowel(w, w.size() - 2)) {
    w.resize(w.size() - 2);
    Step1bCleanup(w);
  } else if (HasSuffix(w, "ing") && ContainsVowel(w, w.size() - 3)) {
    w.resize(w.size() - 3);
    Step1bCleanup(w);
  }
}

void Step1c(std::string& w) {
  if (HasSuffix(w, "y") && ContainsVowel(w, w.size() - 1)) {
    w.back() = 'i';
  }
}

void Step2(std::string& w) {
  static constexpr struct {
    std::string_view from, to;
  } kRules[] = {
      {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
      {"izer", "ize"},    {"abli", "able"},   {"alli", "al"},   {"entli", "ent"},
      {"eli", "e"},       {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
      {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"}, {"fulness", "ful"},
      {"ousness", "ous"}, {"aliti", "al"},    {"iviti", "ive"},   {"biliti", "ble"},
  };
  for (const auto& rule : kRules) {
    if (HasSuffix(w, rule.from)) {
      ReplaceSuffix(w, rule.from, rule.to, 0);
      return;
    }
  }
}

void Step3(std::string& w) {
  static constexpr struct {
    std::string_view from, to;
  } kRules[] = {
      {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
      {"ical", "ic"},  {"ful", ""},   {"ness", ""},
  };
  for (const auto& rule : kRules) {
    if (HasSuffix(w, rule.from)) {
      ReplaceSuffix(w, rule.from, rule.to, 0);
      return;
    }
  }
}

void Step4(std::string& w) {
  static constexpr std::string_view kSuffixes[] = {
      "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
      "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
  };
  for (std::string_view suffix : kSuffixes) {
    if (!HasSuffix(w, suffix)) continue;
    size_t stem_len = w.size() - suffix.size();
    // "ion" needs the stem to end in s or t; handled separately below.
    if (Measure(w, stem_len) > 1) w.resize(stem_len);
    return;
  }
  if (HasSuffix(w, "ion")) {
    size_t stem_len = w.size() - 3;
    if (stem_len > 0 && (w[stem_len - 1] == 's' || w[stem_len - 1] == 't') &&
        Measure(w, stem_len) > 1) {
      w.resize(stem_len);
    }
  }
}

void Step5a(std::string& w) {
  if (!HasSuffix(w, "e")) return;
  size_t stem_len = w.size() - 1;
  int m = Measure(w, stem_len);
  if (m > 1) {
    w.resize(stem_len);
  } else if (m == 1) {
    std::string stem = w.substr(0, stem_len);
    if (!EndsCvc(stem)) w.resize(stem_len);
  }
}

void Step5b(std::string& w) {
  if (EndsWithDoubleConsonant(w) && w.back() == 'l' && Measure(w, w.size()) > 1) {
    w.resize(w.size() - 1);
  }
}

}  // namespace

std::string PorterStem(std::string_view word) {
  std::string w(word);
  if (w.size() < 3) return w;
  for (char c : w) {
    if (!std::islower(static_cast<unsigned char>(c))) return w;
  }
  Step1a(w);
  Step1b(w);
  Step1c(w);
  Step2(w);
  Step3(w);
  Step4(w);
  Step5a(w);
  Step5b(w);
  return w;
}

}  // namespace genlink
