// Crash-safe file replacement: content is staged in a same-directory
// temp file, fsync'd, and renamed over the destination, so the live
// path never holds a torn write. Either the old file survives intact
// (any failure before the rename — crash, full disk, injected error)
// or the new content is fully there; readers can never observe a
// partially written artifact at the published path.
//
// Two surfaces:
//
//   * WriteFileAtomic — one-shot replacement of small text artifacts
//     (io/artifact.h SaveArtifact).
//   * AtomicFileWriter — streaming writer for large binary artifacts
//     (io/corpus_artifact.h), with PatchAt for formats whose header
//     carries a checksum over the payload that follows it.
//
// Fault injection: every write syscall site evaluates the
// `io.write_error` failpoint (common/failpoint.h), so tests drive the
// torn-write leg deterministically and assert the destination
// survives. A failed or abandoned writer unlinks its temp file.

#ifndef GENLINK_IO_ATOMIC_WRITE_H_
#define GENLINK_IO_ATOMIC_WRITE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace genlink {

/// Streams bytes into `<path>.tmp.<pid>` and publishes them to `path`
/// only on Commit(). Move-only; destroying an uncommitted writer
/// removes the temp file and leaves `path` untouched.
class AtomicFileWriter {
 public:
  /// Opens the temp file next to `path` (same directory, so the final
  /// rename cannot cross filesystems).
  static Result<AtomicFileWriter> Create(const std::string& path);

  AtomicFileWriter(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter& operator=(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;
  ~AtomicFileWriter();

  /// Appends `bytes` at the current end of the temp file.
  Status Append(std::string_view bytes);

  /// Overwrites previously appended bytes at `offset` without moving
  /// the append position — the header-patch step of formats that write
  /// a placeholder header first and a payload checksum last.
  /// `offset + bytes.size()` must not extend the file.
  Status PatchAt(uint64_t offset, std::string_view bytes);

  /// Flushes, fsyncs, closes and atomically renames the temp file over
  /// the destination (then best-effort fsyncs the directory so the
  /// rename itself survives a crash). On error the temp file is
  /// removed and the destination is left as it was.
  Status Commit();

  /// Removes the temp file without touching the destination. Safe to
  /// call on a moved-from or already finished writer.
  void Abort();

  /// Bytes appended so far (PatchAt does not move this).
  uint64_t bytes_written() const { return bytes_; }

 private:
  AtomicFileWriter(std::string path, std::string temp_path, int fd)
      : path_(std::move(path)), temp_path_(std::move(temp_path)), fd_(fd) {}

  std::string path_;
  std::string temp_path_;
  int fd_ = -1;
  uint64_t bytes_ = 0;
};

/// One-shot crash-safe replacement of `path` with `content`.
Status WriteFileAtomic(const std::string& path, std::string_view content);

}  // namespace genlink

#endif  // GENLINK_IO_ATOMIC_WRITE_H_
