// Corpus artifact v2: the precomputed serving corpus as one flat,
// versioned, mmap-able binary file — string pool, per-entity value
// spans, sorted token-id spans + counts, and token-blocking postings,
// all offset-based and 8-byte-aligned — so a serving process
// cold-starts in milliseconds (`genlink serve --index`) instead of
// re-parsing CSV, re-running transform plans and re-interning strings,
// and N processes mapping the same artifact share one page-cache copy.
//
// Layout (all integers little-endian, fixed-width; every section
// starts at an 8-byte-aligned offset, zero-padded in between):
//
//   CorpusArtifactHeader        magic "GLCORP2\n", version, checksum,
//                               counts, blocking knobs, and an
//                               (offset, bytes) table with one entry
//                               per section below
//   StringOffsets  u64[S+1]     string id -> byte range in the blob
//   StringBlob     bytes        pooled string bytes, back to back
//   EntityIds      u32[N]       entity index -> string id of its id
//   SchemaProps    u32[P]       property names, schema order
//   BlockingProps  u32[BP]      indexed property names, sorted
//   PlanDirectory  {u64 hash, u64 values_begin, u64 sorted_begin}[PL]
//   PlanOffsets    u32[PL*(N+1)] per-plan, per-entity value offsets
//   PlanValues     u32[..]      value string ids, all plans back to back
//   PlanSortedOffs u32[PL*(N+1)] per-plan, per-entity sorted offsets
//   PlanSortedIds  u32[..]      strictly-increasing distinct value ids
//   PlanSortedCnts u32[..]      multiplicities, parallel to SortedIds
//   TokenIds       u32[T]       blocking tokens as string ids, sorted
//                               by token bytes (binary-searched at
//                               query time)
//   PostingOffsets u64[T+1]     token -> range in Postings
//   Postings       u32[..]      entity indexes, ascending per token
//
// The plan directory keys each plan by its cross-process-stable
// structural hash (rule/rule_hash.h StableValueOperatorHash — the
// in-process ValueOperatorHash mixes instance pointers and cannot key
// a file), so a loaded corpus can serve
// any rule whose target-side value subtrees were precomputed —
// MatcherIndex resolves plans via ValueReader::FindPlan and fails with
// a named error (re-run `genlink index`) on a miss. Value ids, spans
// and interning order are exactly those of a fresh serving-only
// ValueStore build, which is what makes mapped query results
// bit-identical to a fresh MatcherIndex::Build (including the
// summation order of accumulating measures like cosine).
//
// Versioning: the magic pins the family, `version` the layout; readers
// reject any version they do not know (and name a byte-swapped
// version, which means a different-endian writer). New fields must
// bump the version; the header's section table means readers never
// infer offsets.
//
// Safety: Load() validates everything before handing out a view —
// magic/version/size, per-section alignment and bounds, a whole-file
// checksum (optional to skip), string-offset monotonicity, id ranges,
// plan-offset monotonicity, token ordering and posting bounds. Any
// violation (truncation at any byte, a flipped bit, a v1 text
// artifact) degrades to a named Status; mapped data is never
// dereferenced out of bounds. Writes go through io/atomic_write.h, so
// a crashed `genlink index` never leaves a torn file at the live path.

#ifndef GENLINK_IO_CORPUS_ARTIFACT_H_
#define GENLINK_IO_CORPUS_ARTIFACT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "eval/value_store.h"
#include "io/mmap_file.h"
#include "matcher/blocking.h"
#include "matcher/matcher.h"
#include "model/dataset.h"
#include "rule/linkage_rule.h"

namespace genlink {

class ThreadPool;

/// Size counters reported by WriteCorpusArtifact.
struct CorpusArtifactStats {
  uint64_t file_bytes = 0;
  uint64_t num_entities = 0;
  uint64_t num_strings = 0;
  uint64_t num_plans = 0;
  uint64_t num_tokens = 0;
  uint64_t num_postings = 0;
};

/// Precomputes `target` for serving under `rule` and writes the v2
/// artifact to `path` (crash-safe): compiles the rule's target-side
/// value plans into a serving-shape value store, builds the blocking
/// postings for the rule's target properties under the options'
/// blocking knobs (skipped when options.use_blocking is false), and
/// serializes both. Fails on an empty rule or when
/// options.use_value_store is false — a corpus artifact IS the value
/// store. `pool` parallelizes plan evaluation.
Status WriteCorpusArtifact(const std::string& path, const Dataset& target,
                           const LinkageRule& rule, const MatchOptions& options,
                           ThreadPool* pool = nullptr,
                           CorpusArtifactStats* stats = nullptr);

struct MappedCorpusOptions {
  /// Verify the payload checksum at load (one pass over the file).
  /// Disable only for trusted artifacts where cold start must not
  /// touch every page; structural validation always runs.
  bool verify_checksum = true;
};

class MappedBlockingIndex;

/// A zero-copy view of a v2 corpus artifact: implements the value-store
/// read interface (ValueReader, target side; the source side is empty,
/// exactly like a serving-only build) and exposes the mapped blocking
/// postings as a BlockingIndex. Immutable and safe for concurrent
/// reads; all spans point into the mapping and live as long as the
/// corpus. Create via Load().
class MappedCorpus final : public ValueReader {
 public:
  /// Maps and validates `path`. Every failure — unreadable file,
  /// truncation, checksum mismatch, version from the future, a v1 text
  /// artifact — is a named ParseError/IoError, never UB.
  static Result<std::shared_ptr<const MappedCorpus>> Load(
      const std::string& path, const MappedCorpusOptions& options = {});

  ~MappedCorpus() override;

  // ValueReader. Side::kSource has no entities and no plans.
  std::span<const ValueId> Values(Side side, PlanId plan,
                                  size_t entity_index) const override;
  std::span<const ValueId> SortedIds(Side side, PlanId plan,
                                     size_t entity_index) const override;
  std::span<const uint32_t> SortedCounts(Side side, PlanId plan,
                                         size_t entity_index) const override;
  std::string_view View(ValueId id) const override {
    return std::string_view(string_blob_ + string_offsets_[id],
                            string_offsets_[id + 1] - string_offsets_[id]);
  }
  size_t num_entities(Side side) const override {
    return side == Side::kTarget ? num_entities_ : 0;
  }
  std::optional<PlanId> FindPlan(Side side, uint64_t hash) const override;

  /// Entities in the corpus.
  size_t size() const { return num_entities_; }
  /// The id string of entity `index`.
  std::string_view entity_id(size_t index) const {
    return View(entity_ids_[index]);
  }
  /// The corpus schema (property names), materialized at load.
  const Schema& schema() const { return schema_; }

  /// True when the artifact carries blocking postings.
  bool has_blocking() const { return blocking_ != nullptr; }
  /// The mapped postings as a BlockingIndex; null when !has_blocking().
  const BlockingIndex* blocking() const;
  /// The (sorted) property names the postings index, and the key
  /// -selection knobs they were built with — MatcherIndex refuses to
  /// serve blocking configurations the artifact does not carry.
  const std::vector<std::string>& blocking_properties() const {
    return blocking_properties_;
  }
  size_t blocking_max_tokens() const { return blocking_max_tokens_; }
  size_t blocking_min_token_df() const { return blocking_min_token_df_; }
  size_t blocking_shards() const { return blocking_shards_; }

  /// StableRuleHash of the rule the artifact was indexed for
  /// (provenance; serving any rule whose plans are present is allowed).
  uint64_t rule_hash() const { return rule_hash_; }
  size_t num_plans() const { return num_plans_; }
  size_t file_bytes() const { return file_.size(); }
  const std::string& path() const { return file_.path(); }

 private:
  friend class MappedBlockingIndex;
  /// One plan directory entry as laid out in the file.
  struct PlanDir {
    uint64_t hash;
    uint64_t values_begin;
    uint64_t sorted_begin;
  };

  MappedCorpus() = default;

  MappedFile file_;
  const uint64_t* string_offsets_ = nullptr;
  const char* string_blob_ = nullptr;
  const uint32_t* entity_ids_ = nullptr;
  const PlanDir* plans_ = nullptr;
  const uint32_t* plan_offsets_ = nullptr;         // num_plans_ * (N + 1)
  const uint32_t* plan_values_ = nullptr;
  const uint32_t* plan_sorted_offsets_ = nullptr;  // num_plans_ * (N + 1)
  const uint32_t* plan_sorted_ids_ = nullptr;
  const uint32_t* plan_sorted_counts_ = nullptr;
  const uint32_t* token_ids_ = nullptr;
  const uint64_t* posting_offsets_ = nullptr;
  const uint32_t* postings_ = nullptr;

  uint64_t num_entities_ = 0;
  uint64_t num_strings_ = 0;
  uint64_t num_plans_ = 0;
  uint64_t num_tokens_ = 0;
  uint64_t num_postings_ = 0;
  uint64_t blocking_max_tokens_ = 0;
  uint64_t blocking_min_token_df_ = 1;
  uint64_t blocking_shards_ = 1;
  uint64_t rule_hash_ = 0;

  Schema schema_;
  std::vector<std::string> blocking_properties_;
  std::unique_ptr<MappedBlockingIndex> blocking_;
};

}  // namespace genlink

#endif  // GENLINK_IO_CORPUS_ARTIFACT_H_
