#include "io/link_io.h"

#include "common/string_util.h"
#include "io/csv.h"
#include "io/ntriples.h"
#include "matcher/matcher.h"

namespace genlink {
namespace {

constexpr std::string_view kSameAsIri = "http://www.w3.org/2002/07/owl#sameAs";

bool IsPositiveLabel(std::string_view label) {
  return label == "1" || label == "true" || label == "+" || label == "positive";
}

}  // namespace

Result<ReferenceLinkSet> ReadLinksCsv(std::string_view text, char separator) {
  auto rows = ParseCsv(text, separator);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return Status::ParseError("link CSV has no header");

  ReferenceLinkSet links;
  for (size_t r = 1; r < rows->size(); ++r) {
    const auto& row = (*rows)[r];
    if (row.size() < 2) {
      return Status::ParseError("link CSV row " + std::to_string(r) +
                                " has fewer than 2 columns");
    }
    bool positive = row.size() < 3 || IsPositiveLabel(row[2]);
    if (positive) {
      links.AddPositive(row[0], row[1]);
    } else {
      links.AddNegative(row[0], row[1]);
    }
  }
  return links;
}

std::string WriteLinksCsv(const ReferenceLinkSet& links, char separator) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"id_a", "id_b", "label"});
  for (const auto& link : links.positives()) {
    rows.push_back({link.id_a, link.id_b, "1"});
  }
  for (const auto& link : links.negatives()) {
    rows.push_back({link.id_a, link.id_b, "0"});
  }
  return WriteCsv(rows, separator);
}

Result<ReferenceLinkSet> ReadSameAsLinks(std::string_view text) {
  ReferenceLinkSet links;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    auto triple = ParseNTriplesLine(line);
    if (!triple.ok()) {
      if (triple.status().code() == StatusCode::kNotFound) continue;
      return triple.status();
    }
    if (triple->predicate == kSameAsIri && triple->object_is_iri) {
      links.AddPositive(triple->subject, triple->object);
    }
  }
  return links;
}

std::string WriteSameAsLinks(const ReferenceLinkSet& links) {
  std::string out;
  for (const auto& link : links.positives()) {
    out += "<" + link.id_a + "> <" + std::string(kSameAsIri) + "> <" + link.id_b +
           "> .\n";
  }
  return out;
}

std::string GeneratedLinkCsvRow(const GeneratedLink& link) {
  return link.id_a + "," + link.id_b + "," + FormatDouble(link.score, 4) + "\n";
}

std::string WriteGeneratedLinksCsv(const std::vector<GeneratedLink>& links) {
  std::string csv(kGeneratedLinksCsvHeader);
  for (const auto& link : links) {
    csv += GeneratedLinkCsvRow(link);
  }
  return csv;
}

std::string WriteGeneratedLinksNt(const std::vector<GeneratedLink>& links) {
  std::string nt;
  for (const auto& link : links) {
    nt += "<" + link.id_a + "> <" + std::string(kSameAsIri) + "> <" + link.id_b +
          "> .\n";
  }
  return nt;
}

}  // namespace genlink
