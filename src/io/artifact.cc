#include "io/artifact.h"

#include <unordered_set>
#include <utility>

#include "common/string_util.h"
#include "io/atomic_write.h"
#include "io/csv.h"
#include "rule/parse.h"
#include "rule/serialize.h"
#include "rule/xml.h"

namespace genlink {
namespace {

constexpr std::string_view kMagic = "genlink-artifact";
constexpr std::string_view kVersion = "v1";
constexpr std::string_view kSeparator = "---";

Result<bool> ParseBoolValue(std::string_view key, std::string_view value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  return Status::ParseError("artifact: '" + std::string(key) +
                            "' expects 0/1, got '" + std::string(value) + "'");
}

}  // namespace

std::string WriteRuleArtifact(const RuleArtifact& artifact,
                              ArtifactRuleFormat format) {
  std::string out;
  out += kMagic;
  out += ' ';
  out += kVersion;
  out += '\n';
  if (!artifact.name.empty()) {
    out += "name: " + artifact.name + "\n";
  }
  out += "threshold: " + FormatDoubleExact(artifact.options.threshold) + "\n";
  out += "use-blocking: ";
  out += artifact.options.use_blocking ? '1' : '0';
  out += "\nuse-value-store: ";
  out += artifact.options.use_value_store ? '1' : '0';
  out += "\nbest-match-only: ";
  out += artifact.options.best_match_only ? '1' : '0';
  out += "\nrule-format: ";
  out += format == ArtifactRuleFormat::kXml ? "xml" : "sexpr";
  out += '\n';
  out += kSeparator;
  out += '\n';
  out += format == ArtifactRuleFormat::kXml ? ToXml(artifact.rule)
                                            : ToPrettySexpr(artifact.rule);
  if (!out.empty() && out.back() != '\n') out += '\n';
  return out;
}

Result<RuleArtifact> ReadRuleArtifact(std::string_view text) {
  RuleArtifact artifact;
  std::string rule_format = "xml";

  // Header: first line is the versioned magic, then `key: value` lines
  // until the `---` separator; everything after it is the rule payload.
  size_t pos = 0;
  bool saw_magic = false;
  bool saw_separator = false;
  // Each header key may appear at most once: silently letting a later
  // `threshold:` override an earlier one would deploy a rule under
  // options nobody reviewed, so duplicates are rejected with the same
  // strictness as unknown keys. Keys are views into `text` (stable).
  std::unordered_set<std::string_view> seen_keys;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = TrimView(
        text.substr(pos, eol == std::string_view::npos ? eol : eol - pos));
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    if (!saw_magic) {
      if (!StartsWith(line, kMagic)) {
        return Status::ParseError(
            "artifact: missing 'genlink-artifact <version>' header line");
      }
      std::string_view version = TrimView(line.substr(kMagic.size()));
      if (version != kVersion) {
        return Status::ParseError("artifact: unsupported version '" +
                                  std::string(version) + "' (this build reads " +
                                  std::string(kVersion) + ")");
      }
      saw_magic = true;
      continue;
    }
    if (line == kSeparator) {
      saw_separator = true;
      break;
    }
    if (line.empty()) continue;

    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("artifact: malformed header line '" +
                                std::string(line) + "' (expected 'key: value')");
    }
    const std::string_view key = TrimView(line.substr(0, colon));
    const std::string_view value = TrimView(line.substr(colon + 1));
    if (!seen_keys.insert(key).second) {
      return Status::ParseError("artifact: duplicate header key '" +
                                std::string(key) + "'");
    }
    if (key == "name") {
      artifact.name = std::string(value);
    } else if (key == "threshold") {
      if (!ParseDouble(value, &artifact.options.threshold)) {
        return Status::ParseError("artifact: bad threshold '" +
                                  std::string(value) + "'");
      }
    } else if (key == "use-blocking") {
      auto flag = ParseBoolValue(key, value);
      if (!flag.ok()) return flag.status();
      artifact.options.use_blocking = *flag;
    } else if (key == "use-value-store") {
      auto flag = ParseBoolValue(key, value);
      if (!flag.ok()) return flag.status();
      artifact.options.use_value_store = *flag;
    } else if (key == "best-match-only") {
      auto flag = ParseBoolValue(key, value);
      if (!flag.ok()) return flag.status();
      artifact.options.best_match_only = *flag;
    } else if (key == "rule-format") {
      rule_format = std::string(value);
      if (rule_format != "xml" && rule_format != "sexpr") {
        return Status::ParseError("artifact: unknown rule-format '" +
                                  rule_format + "' (expected xml or sexpr)");
      }
    } else {
      return Status::ParseError("artifact: unknown header key '" +
                                std::string(key) + "'");
    }
  }
  if (!saw_separator) {
    return Status::ParseError("artifact: missing '---' separator before rule");
  }

  const std::string_view payload =
      pos <= text.size() ? text.substr(pos) : std::string_view{};
  auto rule = rule_format == "xml" ? ParseRuleXml(payload)
                                   : ParseRule(payload);
  if (!rule.ok()) return rule.status();
  artifact.rule = std::move(*rule);
  return artifact;
}

Status SaveArtifact(const std::string& path, const RuleArtifact& artifact,
                    ArtifactRuleFormat format) {
  // Crash-safe: staged in a same-directory temp file and renamed over
  // `path`, so a crash or full disk mid-save can never leave a torn
  // artifact where a serving process reloads from (io/atomic_write.h).
  return WriteFileAtomic(path, WriteRuleArtifact(artifact, format));
}

Result<RuleArtifact> LoadArtifact(const std::string& path) {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  return ReadRuleArtifact(*content);
}

}  // namespace genlink
