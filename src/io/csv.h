// RFC 4180-style CSV reading/writing and loading datasets from CSV
// files (one row per entity, one column per property; a designated id
// column).

#ifndef GENLINK_IO_CSV_H_
#define GENLINK_IO_CSV_H_

#include <deque>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "model/dataset.h"

namespace genlink {

/// Parses CSV text into rows of fields. Handles quoted fields, embedded
/// separators/newlines and doubled quotes. Rows keep ragged widths.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       char separator = ',');

/// Serializes rows to CSV, quoting fields when needed.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char separator = ',');

/// Options for ReadCsvDataset.
struct CsvDatasetOptions {
  char separator = ',';
  /// Name of the column holding entity ids; when empty, row numbers are
  /// used ("row0", "row1", ...).
  std::string id_column;
  /// Values equal to this string are treated as missing.
  std::string missing_marker;
  /// When non-empty, multi-valued cells are split on this character
  /// (e.g. '|').
  char value_separator = '\0';
};

/// Loads a dataset from CSV text. The first row must be the header with
/// property names.
Result<Dataset> ReadCsvDataset(std::string_view text, std::string name,
                               const CsvDatasetOptions& options = {});

/// Incremental CSV entity reader: parses the header as soon as it
/// arrives, then yields one entity per record without waiting for end
/// of input — so `genlink query` can serve a stdin pipe as queries are
/// written to it. Quoted fields spanning multiple lines are handled;
/// decoding of each row matches ReadCsvDataset (same options, same
/// id/property/missing/value-separator semantics), except that blank
/// lines are skipped and duplicate ids are allowed (a query stream is
/// not a dataset).
class CsvEntityStream {
 public:
  /// Reads the header row from `in` immediately; check status().
  /// `in` must outlive the stream.
  explicit CsvEntityStream(std::istream& in,
                           const CsvDatasetOptions& options = {});

  /// Ok while the header parsed and no record has failed to parse.
  const Status& status() const { return status_; }

  /// The header's property names (the id column excluded).
  const Schema& schema() const { return schema_; }

  /// Reads the next entity. Returns false at end of input or on a
  /// parse error (status() tells them apart).
  bool Next(Entity* out);

 private:
  /// Reads one CSV record (joining lines while a quoted field is
  /// open). False at end of input.
  bool ReadRecord(std::string* record);

  std::istream* in_;
  CsvDatasetOptions options_;
  Status status_;
  Schema schema_;
  int id_col_ = -1;
  std::vector<int> prop_of_col_;
  /// Rows parsed but not yet served (one input record can hold several
  /// rows, e.g. around a bare '\r' row terminator).
  std::deque<std::vector<std::string>> pending_;
  size_t row_index_ = 0;
};

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file, replacing its contents.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace genlink

#endif  // GENLINK_IO_CSV_H_
