// RFC 4180-style CSV reading/writing and loading datasets from CSV
// files (one row per entity, one column per property; a designated id
// column).

#ifndef GENLINK_IO_CSV_H_
#define GENLINK_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "model/dataset.h"

namespace genlink {

/// Parses CSV text into rows of fields. Handles quoted fields, embedded
/// separators/newlines and doubled quotes. Rows keep ragged widths.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       char separator = ',');

/// Serializes rows to CSV, quoting fields when needed.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char separator = ',');

/// Options for ReadCsvDataset.
struct CsvDatasetOptions {
  char separator = ',';
  /// Name of the column holding entity ids; when empty, row numbers are
  /// used ("row0", "row1", ...).
  std::string id_column;
  /// Values equal to this string are treated as missing.
  std::string missing_marker;
  /// When non-empty, multi-valued cells are split on this character
  /// (e.g. '|').
  char value_separator = '\0';
};

/// Loads a dataset from CSV text. The first row must be the header with
/// property names.
Result<Dataset> ReadCsvDataset(std::string_view text, std::string name,
                               const CsvDatasetOptions& options = {});

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a string to a file, replacing its contents.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace genlink

#endif  // GENLINK_IO_CSV_H_
