#include "io/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace genlink {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       char separator) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  size_t i = 0;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && field.empty() && !field_was_quoted) {
      in_quotes = true;
      field_was_quoted = true;
      ++i;
      continue;
    }
    if (c == separator) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\r') {
      if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
      end_row();
      ++i;
      continue;
    }
    if (c == '\n') {
      end_row();
      ++i;
      continue;
    }
    field.push_back(c);
    ++i;
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  // Final row without trailing newline.
  if (!field.empty() || !row.empty() || field_was_quoted) end_row();
  return rows;
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char separator) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(separator);
      const std::string& f = row[i];
      bool needs_quotes = f.find_first_of("\"\r\n") != std::string::npos ||
                          f.find(separator) != std::string::npos;
      if (needs_quotes) {
        out.push_back('"');
        for (char c : f) {
          if (c == '"') out.push_back('"');
          out.push_back(c);
        }
        out.push_back('"');
      } else {
        out += f;
      }
    }
    out.push_back('\n');
  }
  return out;
}

Result<Dataset> ReadCsvDataset(std::string_view text, std::string name,
                               const CsvDatasetOptions& options) {
  auto rows = ParseCsv(text, options.separator);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return Status::ParseError("CSV input has no header row");

  Dataset dataset(std::move(name));
  const std::vector<std::string>& header = (*rows)[0];
  int id_col = -1;
  std::vector<int> prop_of_col(header.size(), -1);
  for (size_t c = 0; c < header.size(); ++c) {
    if (!options.id_column.empty() && header[c] == options.id_column) {
      id_col = static_cast<int>(c);
      continue;
    }
    prop_of_col[c] = static_cast<int>(dataset.schema().AddProperty(header[c]));
  }
  if (!options.id_column.empty() && id_col < 0) {
    return Status::NotFound("id column '" + options.id_column +
                            "' not present in CSV header");
  }

  for (size_t r = 1; r < rows->size(); ++r) {
    const auto& row = (*rows)[r];
    std::string id = id_col >= 0 && static_cast<size_t>(id_col) < row.size()
                         ? row[id_col]
                         : "row" + std::to_string(r - 1);
    Entity entity(std::move(id));
    for (size_t c = 0; c < row.size() && c < header.size(); ++c) {
      if (prop_of_col[c] < 0) continue;
      const std::string& cell = row[c];
      if (cell.empty()) continue;
      if (!options.missing_marker.empty() && cell == options.missing_marker) {
        continue;
      }
      PropertyId pid = static_cast<PropertyId>(prop_of_col[c]);
      if (options.value_separator != '\0') {
        for (auto& value : Split(cell, options.value_separator)) {
          if (!value.empty()) entity.AddValue(pid, std::move(value));
        }
      } else {
        entity.AddValue(pid, cell);
      }
    }
    GENLINK_RETURN_IF_ERROR(dataset.AddEntity(std::move(entity)));
  }
  return dataset;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("error reading file: " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open file for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IoError("error writing file: " + path);
  return Status::Ok();
}

}  // namespace genlink
