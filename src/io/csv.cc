#include "io/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace genlink {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       char separator) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  size_t i = 0;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && field.empty() && !field_was_quoted) {
      in_quotes = true;
      field_was_quoted = true;
      ++i;
      continue;
    }
    if (c == separator) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\r') {
      if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
      end_row();
      ++i;
      continue;
    }
    if (c == '\n') {
      end_row();
      ++i;
      continue;
    }
    field.push_back(c);
    ++i;
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  // Final row without trailing newline.
  if (!field.empty() || !row.empty() || field_was_quoted) end_row();
  return rows;
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char separator) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(separator);
      const std::string& f = row[i];
      bool needs_quotes = f.find_first_of("\"\r\n") != std::string::npos ||
                          f.find(separator) != std::string::npos;
      if (needs_quotes) {
        out.push_back('"');
        for (char c : f) {
          if (c == '"') out.push_back('"');
          out.push_back(c);
        }
        out.push_back('"');
      } else {
        out += f;
      }
    }
    out.push_back('\n');
  }
  return out;
}

namespace {

/// Header-driven row decoding shared by ReadCsvDataset and
/// CsvEntityStream, so batch loads and streamed queries cannot drift.
Status MapCsvHeader(const std::vector<std::string>& header,
                    const CsvDatasetOptions& options, Schema& schema,
                    int* id_col, std::vector<int>* prop_of_col) {
  *id_col = -1;
  prop_of_col->assign(header.size(), -1);
  for (size_t c = 0; c < header.size(); ++c) {
    if (!options.id_column.empty() && header[c] == options.id_column) {
      *id_col = static_cast<int>(c);
      continue;
    }
    (*prop_of_col)[c] = static_cast<int>(schema.AddProperty(header[c]));
  }
  if (!options.id_column.empty() && *id_col < 0) {
    return Status::NotFound("id column '" + options.id_column +
                            "' not present in CSV header");
  }
  return Status::Ok();
}

Entity CsvRowToEntity(const std::vector<std::string>& row,
                      const CsvDatasetOptions& options, int id_col,
                      const std::vector<int>& prop_of_col, size_t row_index) {
  std::string id = id_col >= 0 && static_cast<size_t>(id_col) < row.size()
                       ? row[id_col]
                       : "row" + std::to_string(row_index);
  Entity entity(std::move(id));
  for (size_t c = 0; c < row.size() && c < prop_of_col.size(); ++c) {
    if (prop_of_col[c] < 0) continue;
    const std::string& cell = row[c];
    if (cell.empty()) continue;
    if (!options.missing_marker.empty() && cell == options.missing_marker) {
      continue;
    }
    PropertyId pid = static_cast<PropertyId>(prop_of_col[c]);
    if (options.value_separator != '\0') {
      for (auto& value : Split(cell, options.value_separator)) {
        if (!value.empty()) entity.AddValue(pid, std::move(value));
      }
    } else {
      entity.AddValue(pid, cell);
    }
  }
  return entity;
}

}  // namespace

Result<Dataset> ReadCsvDataset(std::string_view text, std::string name,
                               const CsvDatasetOptions& options) {
  auto rows = ParseCsv(text, options.separator);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return Status::ParseError("CSV input has no header row");

  Dataset dataset(std::move(name));
  int id_col = -1;
  std::vector<int> prop_of_col;
  GENLINK_RETURN_IF_ERROR(MapCsvHeader((*rows)[0], options, dataset.schema(),
                                       &id_col, &prop_of_col));
  for (size_t r = 1; r < rows->size(); ++r) {
    GENLINK_RETURN_IF_ERROR(dataset.AddEntity(
        CsvRowToEntity((*rows)[r], options, id_col, prop_of_col, r - 1)));
  }
  return dataset;
}

CsvEntityStream::CsvEntityStream(std::istream& in,
                                 const CsvDatasetOptions& options)
    : in_(&in), options_(options) {
  std::string record;
  if (!ReadRecord(&record)) {
    status_ = Status::ParseError("CSV input has no header row");
    return;
  }
  auto rows = ParseCsv(record, options_.separator);
  if (!rows.ok()) {
    status_ = rows.status();
    return;
  }
  if (rows->empty()) {
    status_ = Status::ParseError("CSV input has no header row");
    return;
  }
  status_ = MapCsvHeader((*rows)[0], options_, schema_, &id_col_, &prop_of_col_);
}

namespace {

/// True when `text` ends inside an open quoted field, under exactly
/// ParseCsv's quoting rules: a quote only OPENS a field when it is the
/// field's first character (a literal '"' later in an unquoted field —
/// `5" nail` — stays literal), and '""' inside quotes is an escape.
bool EndsInsideQuotedField(std::string_view text, char separator) {
  bool in_quotes = false;
  bool at_field_start = true;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          ++i;  // escaped quote
        } else {
          in_quotes = false;
          at_field_start = false;  // a closed quote never reopens
        }
      }
      continue;
    }
    if (c == '"' && at_field_start) {
      in_quotes = true;
      at_field_start = false;
    } else if (c == separator || c == '\n' || c == '\r') {
      at_field_start = true;
    } else {
      at_field_start = false;
    }
  }
  return in_quotes;
}

}  // namespace

bool CsvEntityStream::ReadRecord(std::string* record) {
  std::string line;
  if (!std::getline(*in_, line)) return false;
  *record = std::move(line);
  // A record continues across lines while a quoted field is open; the
  // accumulated record is rescanned with ParseCsv's own quoting rules
  // (records are short, so the rescan is cheap).
  while (EndsInsideQuotedField(*record, options_.separator) &&
         std::getline(*in_, line)) {
    *record += '\n';
    *record += line;
  }
  return true;
}

bool CsvEntityStream::Next(Entity* out) {
  if (!status_.ok()) return false;
  // Serve any rows left over from the previous record first: a single
  // input line can parse to several rows (a bare '\r' is a row
  // terminator to ParseCsv) and none may be dropped.
  while (pending_.empty()) {
    std::string record;
    if (!ReadRecord(&record)) return false;
    if (TrimView(record).empty()) continue;  // blank line between records
    auto rows = ParseCsv(record, options_.separator);
    if (!rows.ok()) {
      status_ = rows.status();
      return false;
    }
    for (auto& row : *rows) pending_.push_back(std::move(row));
  }
  *out = CsvRowToEntity(pending_.front(), options_, id_col_, prop_of_col_,
                        row_index_++);
  pending_.pop_front();
  return true;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("error reading file: " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open file for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IoError("error writing file: " + path);
  return Status::Ok();
}

}  // namespace genlink
