#include "io/atomic_write.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace genlink {
namespace {

std::string ErrnoMessage(const char* what, const std::string& path, int err) {
  return std::string(what) + " '" + path + "': " + std::strerror(err);
}

/// Full write with EINTR/short-write handling.
Status WriteAll(int fd, const char* data, size_t size, const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("cannot write", path, errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Best-effort directory fsync so the rename survives a crash; failure
/// (e.g. a filesystem that refuses O_DIRECTORY fsync) is not an error —
/// the data file itself is already durable.
void SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Result<AtomicFileWriter> AtomicFileWriter::Create(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("atomic write: empty path");
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  const int fd =
      ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot create temp file", temp, errno));
  }
  return AtomicFileWriter(path, temp, fd);
}

AtomicFileWriter::AtomicFileWriter(AtomicFileWriter&& other) noexcept
    : path_(std::move(other.path_)),
      temp_path_(std::move(other.temp_path_)),
      fd_(other.fd_),
      bytes_(other.bytes_) {
  other.fd_ = -1;
}

AtomicFileWriter& AtomicFileWriter::operator=(AtomicFileWriter&& other) noexcept {
  if (this != &other) {
    Abort();
    path_ = std::move(other.path_);
    temp_path_ = std::move(other.temp_path_);
    fd_ = other.fd_;
    bytes_ = other.bytes_;
    other.fd_ = -1;
  }
  return *this;
}

AtomicFileWriter::~AtomicFileWriter() { Abort(); }

Status AtomicFileWriter::Append(std::string_view bytes) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("atomic write: writer already finished");
  }
  int injected = 0;
  if (GENLINK_FAILPOINT_E("io.write_error", &injected)) {
    return Status::IoError(
        ErrnoMessage("cannot write", temp_path_,
                     injected != 0 ? injected : ENOSPC));
  }
  GENLINK_RETURN_IF_ERROR(WriteAll(fd_, bytes.data(), bytes.size(), temp_path_));
  bytes_ += bytes.size();
  return Status::Ok();
}

Status AtomicFileWriter::PatchAt(uint64_t offset, std::string_view bytes) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("atomic write: writer already finished");
  }
  if (offset + bytes.size() > bytes_) {
    return Status::OutOfRange("atomic write: patch beyond written bytes");
  }
  int injected = 0;
  if (GENLINK_FAILPOINT_E("io.write_error", &injected)) {
    return Status::IoError(
        ErrnoMessage("cannot write", temp_path_,
                     injected != 0 ? injected : ENOSPC));
  }
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::pwrite(fd_, bytes.data() + done, bytes.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("cannot write", temp_path_, errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status AtomicFileWriter::Commit() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("atomic write: writer already finished");
  }
  int injected = 0;
  if (GENLINK_FAILPOINT_E("io.write_error", &injected)) {
    Abort();
    return Status::IoError(
        ErrnoMessage("cannot sync", temp_path_, injected != 0 ? injected : EIO));
  }
  if (::fsync(fd_) != 0) {
    const int err = errno;
    Abort();
    return Status::IoError(ErrnoMessage("cannot sync", temp_path_, err));
  }
  if (::close(fd_) != 0) {
    const int err = errno;
    fd_ = -1;
    ::unlink(temp_path_.c_str());
    return Status::IoError(ErrnoMessage("cannot close", temp_path_, err));
  }
  fd_ = -1;
  if (::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    const int err = errno;
    ::unlink(temp_path_.c_str());
    return Status::IoError(
        ErrnoMessage("cannot publish temp file to", path_, err));
  }
  SyncParentDirectory(path_);
  return Status::Ok();
}

void AtomicFileWriter::Abort() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  ::unlink(temp_path_.c_str());
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  auto writer = AtomicFileWriter::Create(path);
  if (!writer.ok()) return writer.status();
  GENLINK_RETURN_IF_ERROR(writer->Append(content));
  return writer->Commit();
}

}  // namespace genlink
