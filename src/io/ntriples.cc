#include "io/ntriples.h"

#include <unordered_map>

#include "common/string_util.h"

namespace genlink {
namespace {

Status Malformed(std::string_view line, std::string_view why) {
  return Status::ParseError("malformed N-Triples line (" + std::string(why) +
                            "): " + std::string(line.substr(0, 120)));
}

/// Decodes the \-escapes permitted in N-Triples literals.
std::string UnescapeLiteral(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c != '\\' || i + 1 >= text.size()) {
      out.push_back(c);
      continue;
    }
    char next = text[++i];
    switch (next) {
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      default:
        out.push_back('\\');
        out.push_back(next);
    }
  }
  return out;
}

}  // namespace

Result<Triple> ParseNTriplesLine(std::string_view line) {
  std::string_view t = TrimView(line);
  if (t.empty() || t[0] == '#') {
    return Status::NotFound("blank or comment line");
  }

  Triple triple;

  // Subject.
  if (t[0] != '<') return Malformed(line, "subject must be an IRI");
  size_t end = t.find('>');
  if (end == std::string_view::npos) return Malformed(line, "unterminated subject");
  triple.subject = std::string(t.substr(1, end - 1));
  t = TrimView(t.substr(end + 1));

  // Predicate.
  if (t.empty() || t[0] != '<') return Malformed(line, "predicate must be an IRI");
  end = t.find('>');
  if (end == std::string_view::npos) {
    return Malformed(line, "unterminated predicate");
  }
  triple.predicate = std::string(t.substr(1, end - 1));
  t = TrimView(t.substr(end + 1));

  // Object: IRI or literal.
  if (t.empty()) return Malformed(line, "missing object");
  if (t[0] == '<') {
    end = t.find('>');
    if (end == std::string_view::npos) return Malformed(line, "unterminated object");
    triple.object = std::string(t.substr(1, end - 1));
    triple.object_is_iri = true;
    t = TrimView(t.substr(end + 1));
  } else if (t[0] == '"') {
    // Find the closing unescaped quote.
    size_t i = 1;
    while (i < t.size()) {
      if (t[i] == '\\') {
        i += 2;
        continue;
      }
      if (t[i] == '"') break;
      ++i;
    }
    if (i >= t.size()) return Malformed(line, "unterminated literal");
    triple.object = UnescapeLiteral(t.substr(1, i - 1));
    t = TrimView(t.substr(i + 1));
    // Skip optional language tag or datatype annotation.
    if (!t.empty() && t[0] == '@') {
      size_t sp = t.find_first_of(" \t");
      t = sp == std::string_view::npos ? std::string_view{} : TrimView(t.substr(sp));
    } else if (StartsWith(t, "^^")) {
      size_t sp = t.find_first_of(" \t");
      t = sp == std::string_view::npos ? std::string_view{} : TrimView(t.substr(sp));
    }
  } else {
    return Malformed(line, "object must be an IRI or literal");
  }

  if (t.empty() || t[0] != '.') return Malformed(line, "missing final dot");
  return triple;
}

std::string IriLocalName(std::string_view iri) {
  size_t hash = iri.rfind('#');
  if (hash != std::string_view::npos && hash + 1 < iri.size()) {
    return std::string(iri.substr(hash + 1));
  }
  size_t slash = iri.rfind('/');
  if (slash != std::string_view::npos && slash + 1 < iri.size()) {
    return std::string(iri.substr(slash + 1));
  }
  return std::string(iri);
}

Result<Dataset> ReadNTriplesDataset(std::string_view text, std::string name,
                                    const NTriplesOptions& options) {
  Dataset dataset(std::move(name));
  std::unordered_map<std::string, size_t> entity_index;
  std::vector<Entity> entities;

  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    auto triple = ParseNTriplesLine(line);
    if (!triple.ok()) {
      if (triple.status().code() == StatusCode::kNotFound) continue;  // blank
      return triple.status();
    }
    if (options.literals_only && triple->object_is_iri) continue;

    std::string property = options.use_local_names
                               ? IriLocalName(triple->predicate)
                               : triple->predicate;
    PropertyId pid = dataset.schema().AddProperty(property);

    auto [it, inserted] = entity_index.emplace(triple->subject, entities.size());
    if (inserted) entities.emplace_back(triple->subject);
    entities[it->second].AddValue(pid, std::move(triple->object));
  }

  for (auto& entity : entities) {
    GENLINK_RETURN_IF_ERROR(dataset.AddEntity(std::move(entity)));
  }
  return dataset;
}

}  // namespace genlink
