// Reading/writing reference links: CSV (id_a,id_b,label) and N-Triples
// owl:sameAs dumps.

#ifndef GENLINK_IO_LINK_IO_H_
#define GENLINK_IO_LINK_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "model/reference_links.h"

namespace genlink {

/// Reads links from CSV with columns id_a, id_b and optionally a label
/// column ("1"/"true"/"+" = positive, anything else negative; links
/// without a label column are all positive). A header row is expected.
Result<ReferenceLinkSet> ReadLinksCsv(std::string_view text, char separator = ',');

/// Serializes links to CSV with header "id_a,id_b,label".
std::string WriteLinksCsv(const ReferenceLinkSet& links, char separator = ',');

/// Reads positive links from N-Triples owl:sameAs statements
/// (<a> <http://www.w3.org/2002/07/owl#sameAs> <b> .).
Result<ReferenceLinkSet> ReadSameAsLinks(std::string_view text);

/// Serializes positive links as owl:sameAs N-Triples.
std::string WriteSameAsLinks(const ReferenceLinkSet& links);

}  // namespace genlink

#endif  // GENLINK_IO_LINK_IO_H_
