#include "io/corpus_artifact.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <deque>
#include <map>
#include <type_traits>
#include <unordered_map>

#include "common/hash.h"
#include "io/atomic_write.h"
#include "rule/rule_hash.h"
#include "text/case_fold.h"
#include "text/tokenizer.h"

namespace genlink {
namespace {

// The layout is defined in little-endian terms; the zero-copy reader
// would need byte-swapping shims on a big-endian host.
static_assert(std::endian::native == std::endian::little,
              "corpus artifact v2 assumes a little-endian host");

constexpr char kMagic[8] = {'G', 'L', 'C', 'O', 'R', 'P', '2', '\n'};
constexpr uint32_t kVersion = 2;
constexpr uint64_t kFlagHasBlocking = 1;
/// The v1 rule-artifact magic (io/artifact.cc), special-cased for a
/// precise error when someone points --index at a rule file.
constexpr std::string_view kV1TextMagic = "genlink-artifact";

/// Section order in the file; the header stores (offset, bytes) per
/// entry so readers never infer offsets.
enum Section : size_t {
  kStringOffsets = 0,
  kStringBlob,
  kEntityIds,
  kSchemaProps,
  kBlockingProps,
  kPlanDirectory,
  kPlanOffsets,
  kPlanValues,
  kPlanSortedOffsets,
  kPlanSortedIds,
  kPlanSortedCounts,
  kTokenIds,
  kPostingOffsets,
  kPostings,
  kNumSections,
};

struct Header {
  char magic[8];
  uint32_t version;
  uint32_t header_bytes;
  uint64_t file_bytes;
  /// StreamingHash64 over the WHOLE file — this header first with this
  /// field zeroed, then bytes [header_bytes, file_bytes) — so header
  /// corruption is detected too, not only payload corruption.
  uint64_t payload_hash;
  uint64_t flags;
  uint64_t num_entities;
  uint64_t num_strings;
  uint64_t num_plans;
  uint64_t num_properties;
  uint64_t num_blocking_properties;
  uint64_t num_tokens;
  uint64_t num_postings;
  uint64_t blocking_max_tokens;
  uint64_t blocking_min_token_df;
  uint64_t blocking_shards;
  uint64_t rule_hash;
  uint64_t section_offset[kNumSections];
  uint64_t section_bytes[kNumSections];
};
static_assert(std::is_trivially_copyable_v<Header>);
static_assert(sizeof(Header) % 8 == 0);

/// One plan directory entry as laid out in the file (matches
/// MappedCorpus::PlanDir).
struct PlanDirEntry {
  uint64_t hash;
  uint64_t values_begin;
  uint64_t sorted_begin;
};
static_assert(sizeof(PlanDirEntry) == 24);

/// Order-sensitive streaming checksum: 8 input bytes per HashCombine
/// step (common/hash.h), with the total length folded in at the end so
/// trailing zeros cannot be appended for free. Not cryptographic —
/// this detects truncation, bit rot and torn writes, not adversaries.
class StreamingHash64 {
 public:
  void Update(std::string_view bytes) {
    const char* p = bytes.data();
    size_t left = bytes.size();
    total_ += left;
    // Top up a partial word first.
    while (fill_ > 0 && fill_ < 8 && left > 0) {
      word_ |= static_cast<uint64_t>(static_cast<unsigned char>(*p++))
               << (8 * fill_++);
      --left;
    }
    if (fill_ == 8) {
      hash_ = HashCombine(hash_, word_);
      word_ = 0;
      fill_ = 0;
    }
    while (left >= 8) {
      uint64_t w;
      std::memcpy(&w, p, 8);
      hash_ = HashCombine(hash_, w);
      p += 8;
      left -= 8;
    }
    while (left > 0) {
      word_ |= static_cast<uint64_t>(static_cast<unsigned char>(*p++))
               << (8 * fill_++);
      --left;
    }
  }

  uint64_t Finish() const {
    uint64_t h = hash_;
    if (fill_ > 0) h = HashCombine(h, word_);
    return HashCombine(h, total_);
  }

 private:
  uint64_t hash_ = 0x9e3779b97f4a7c15ull;  // arbitrary non-zero seed
  uint64_t word_ = 0;
  size_t fill_ = 0;
  uint64_t total_ = 0;
};

template <typename T>
std::string_view PodView(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::string_view(reinterpret_cast<const char*>(v.data()),
                          v.size() * sizeof(T));
}

uint64_t AlignUp8(uint64_t offset) { return (offset + 7) & ~uint64_t{7}; }

/// Inter-section zero padding (at most 7 bytes per section).
constexpr char kZeros[8] = {0};

std::string InPath(const std::string& path) { return "'" + path + "'"; }

/// Thread-local epoch-stamped membership scratch for posting
/// deduplication — same contract and rationale as blocking.cc's
/// StampScratch (O(1) clear, never shared across threads); a separate
/// TLS variable, so mapped and in-memory indexes on one thread don't
/// interleave epochs within a call.
struct ProbeScratch {
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;

  void Begin(size_t n) {
    if (stamp.size() < n) stamp.resize(n, 0);
    if (++epoch == 0) {
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
  }

  bool Insert(size_t j) {
    if (stamp[j] == epoch) return false;
    stamp[j] = epoch;
    return true;
  }
};

ProbeScratch& TlsProbeScratch() {
  thread_local ProbeScratch scratch;
  return scratch;
}

}  // namespace

// --------------------------------------------------- MappedBlockingIndex

/// The mapped postings behind the BlockingIndex interface: candidate
/// sets are bit-identical to a TokenBlockingIndex (or, per shard, a
/// ShardedTokenBlockingIndex) built over the same corpus with the same
/// options — probing replaces the hash-map lookup with a binary search
/// in the byte-sorted token table, which changes nothing observable
/// because Candidates() output is sorted and AppendShardCandidates'
/// contract is order-free within a shard.
class MappedBlockingIndex final : public BlockingIndex {
 public:
  explicit MappedBlockingIndex(const MappedCorpus* corpus) : corpus_(corpus) {
    const size_t shards = corpus_->blocking_shards_;
    if (shards > 1) {
      shard_stats_.resize(shards);
      for (size_t t = 0; t < corpus_->num_tokens_; ++t) {
        BlockingShardStats& s =
            shard_stats_[BlockingTokenShard(TokenView(t), shards)];
        ++s.tokens;
        s.postings += corpus_->posting_offsets_[t + 1] -
                      corpus_->posting_offsets_[t];
      }
    }
  }

  std::vector<size_t> Candidates(const Entity& entity,
                                 const Schema& schema) const override {
    std::vector<size_t> out;
    Probe(entity, schema, [](std::string_view) { return true; }, out);
    std::sort(out.begin(), out.end());
    return out;
  }

  void AppendShardCandidates(size_t shard, const Entity& entity,
                             const Schema& schema,
                             std::vector<size_t>& out) const override {
    const size_t shards = corpus_->blocking_shards_;
    if (shards <= 1) {
      Probe(entity, schema, [](std::string_view) { return true; }, out);
      return;
    }
    Probe(
        entity, schema,
        [&](std::string_view token) {
          return BlockingTokenShard(token, shards) == shard;
        },
        out);
  }

  size_t NumShards() const override { return corpus_->blocking_shards_; }
  size_t NumTokens() const override { return corpus_->num_tokens_; }
  size_t NumPostings() const override { return corpus_->num_postings_; }

  BlockingShardStats ShardStats(size_t shard) const override {
    if (shard_stats_.empty()) {
      return BlockingShardStats{corpus_->num_tokens_, corpus_->num_postings_};
    }
    return shard_stats_[shard];
  }

 private:
  std::string_view TokenView(size_t t) const {
    return corpus_->View(corpus_->token_ids_[t]);
  }

  /// Binary search in the byte-sorted token table.
  std::optional<size_t> FindToken(std::string_view token) const {
    size_t lo = 0, hi = corpus_->num_tokens_;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (TokenView(mid) < token) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == corpus_->num_tokens_ || TokenView(lo) != token) {
      return std::nullopt;
    }
    return lo;
  }

  template <typename AcceptToken>
  void Probe(const Entity& entity, const Schema& schema,
             const AcceptToken& accept_token, std::vector<size_t>& out) const {
    ProbeScratch& scratch = TlsProbeScratch();
    scratch.Begin(corpus_->num_entities_);
    // As in blocking.cc ProbePostings: every property of the query
    // schema probes (query schemata generally differ from the corpus).
    for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
      for (const auto& value : entity.Values(p)) {
        for (auto& token : TokenizeAlnum(ToLowerAscii(value))) {
          if (!accept_token(token)) continue;
          const auto t = FindToken(token);
          if (!t.has_value()) continue;
          const uint64_t begin = corpus_->posting_offsets_[*t];
          const uint64_t end = corpus_->posting_offsets_[*t + 1];
          for (uint64_t k = begin; k < end; ++k) {
            const size_t j = corpus_->postings_[k];
            if (scratch.Insert(j)) out.push_back(j);
          }
        }
      }
    }
  }

  const MappedCorpus* corpus_;
  /// Precomputed per-shard counters (only when shards > 1).
  std::vector<BlockingShardStats> shard_stats_;
};

// --------------------------------------------------------------- Writer

Status WriteCorpusArtifact(const std::string& path, const Dataset& target,
                           const LinkageRule& rule, const MatchOptions& options,
                           ThreadPool* pool, CorpusArtifactStats* stats) {
  if (rule.empty()) {
    return Status::InvalidArgument(
        "corpus artifact: cannot index an empty rule (no value plans)");
  }
  if (!options.use_value_store) {
    return Status::InvalidArgument(
        "corpus artifact: use_value_store=false has nothing to persist");
  }

  // Serving-shape value store, exactly as MatcherIndex::Build(target,
  // rule, options) constructs it: empty source side, CompiledRule
  // registration order. This fixes every ValueId and every interning
  // order to those of a fresh serving build — the root of the
  // bit-identity guarantee (including accumulation order inside
  // measures like cosine).
  std::vector<const Entity*> target_pointers;
  target_pointers.reserve(target.size());
  for (const Entity& entity : target.entities()) {
    target_pointers.push_back(&entity);
  }
  ValueStore store(std::span<const Entity* const>{}, target.schema(),
                   std::span<const Entity* const>(target_pointers),
                   target.schema());
  CompiledRule compiled(rule, store, pool);

  const uint64_t n = target.size();
  const uint64_t num_plans = store.NumPlans(ValueStore::Side::kTarget);

  // Plan directory hashes, recovered from the rule's target subtrees
  // (every plan was registered by at least one of them). The store is
  // keyed by the in-process ValueOperatorHash; the file stores the
  // cross-process-stable hash — the one a later `--index` consumer can
  // recompute from a freshly parsed rule.
  std::vector<uint64_t> plan_hash(num_plans, 0);
  RuleHashInfo info = AnalyzeRule(rule);
  for (const ComparisonSite& site : info.comparisons) {
    const uint64_t live = ValueOperatorHash(*site.op->target());
    const auto plan = store.FindPlan(ValueStore::Side::kTarget, live);
    if (plan.has_value()) {
      plan_hash[*plan] = StableValueOperatorHash(*site.op->target());
    }
  }

  // String table: the store pool verbatim (ids [0, NumStrings()) must
  // keep their meaning for the plan arrays), then every string the
  // artifact needs beyond it — entity ids, property names, blocking
  // tokens — deduplicated against the pool and each other.
  std::vector<std::string_view> strings;
  strings.reserve(store.NumStrings());
  std::unordered_map<std::string_view, uint32_t> id_by_string;
  id_by_string.reserve(store.NumStrings());
  for (size_t id = 0; id < store.NumStrings(); ++id) {
    strings.push_back(store.View(static_cast<ValueId>(id)));
    id_by_string.emplace(strings.back(), static_cast<uint32_t>(id));
  }
  std::deque<std::string> extra_storage;  // stable addresses for the views
  auto intern = [&](std::string_view s) -> uint32_t {
    const auto it = id_by_string.find(s);
    if (it != id_by_string.end()) return it->second;
    extra_storage.emplace_back(s);
    const uint32_t id = static_cast<uint32_t>(strings.size());
    strings.push_back(extra_storage.back());
    id_by_string.emplace(extra_storage.back(), id);
    return id;
  };

  std::vector<uint32_t> entity_ids(n);
  for (uint64_t i = 0; i < n; ++i) {
    entity_ids[i] = intern(target.entity(i).id());
  }
  std::vector<uint32_t> schema_props;
  schema_props.reserve(target.schema().NumProperties());
  for (const std::string& name : target.schema().property_names()) {
    schema_props.push_back(intern(name));
  }

  // Blocking postings for the rule's (sorted) target properties under
  // the options' knobs — the same keys both in-memory index classes
  // build from. The byte-ordered map fixes the token table order the
  // mapped index binary-searches.
  const bool has_blocking = options.use_blocking;
  const uint64_t shards =
      has_blocking ? std::max<size_t>(1, options.blocking_shards) : 1;
  std::vector<std::string> blocking_properties;
  std::vector<uint32_t> blocking_prop_ids;
  std::vector<uint32_t> token_ids;
  std::vector<uint64_t> posting_offsets;
  std::vector<uint32_t> postings;
  if (has_blocking) {
    blocking_properties = TargetProperties(rule);
    for (const std::string& name : blocking_properties) {
      blocking_prop_ids.push_back(intern(name));
    }
    TokenBlockingOptions blocking_options;
    blocking_options.max_tokens_per_entity = options.blocking_max_tokens;
    blocking_options.min_token_df = options.blocking_min_token_df;
    std::map<std::string, std::vector<uint32_t>> postings_map;
    const auto keys =
        ComputeBlockingKeys(target, blocking_properties, blocking_options);
    for (uint64_t i = 0; i < keys.size(); ++i) {
      for (const std::string& token : keys[i]) {
        postings_map[token].push_back(static_cast<uint32_t>(i));
      }
    }
    token_ids.reserve(postings_map.size());
    posting_offsets.reserve(postings_map.size() + 1);
    posting_offsets.push_back(0);
    for (const auto& [token, list] : postings_map) {
      token_ids.push_back(intern(token));
      postings.insert(postings.end(), list.begin(), list.end());
      posting_offsets.push_back(postings.size());
    }
  }

  if (strings.size() > UINT32_MAX) {
    return Status::InvalidArgument(
        "corpus artifact: string table exceeds 2^32 entries");
  }

  // Flat plan arrays: per-plan offset tables (relative to the plan's
  // begin, exactly like the in-memory Plan) over shared value arrays.
  std::vector<PlanDirEntry> dir(num_plans);
  std::vector<uint32_t> plan_offsets(num_plans * (n + 1));
  std::vector<uint32_t> plan_sorted_offsets(num_plans * (n + 1));
  std::vector<uint32_t> plan_values;
  std::vector<uint32_t> plan_sorted_ids;
  std::vector<uint32_t> plan_sorted_counts;
  for (uint64_t p = 0; p < num_plans; ++p) {
    const uint64_t base = p * (n + 1);
    dir[p] = {plan_hash[p], plan_values.size(), plan_sorted_ids.size()};
    plan_offsets[base] = 0;
    plan_sorted_offsets[base] = 0;
    for (uint64_t e = 0; e < n; ++e) {
      const auto values =
          store.Values(ValueStore::Side::kTarget, static_cast<PlanId>(p), e);
      plan_values.insert(plan_values.end(), values.begin(), values.end());
      const uint64_t value_count = plan_values.size() - dir[p].values_begin;
      const auto sorted =
          store.SortedIds(ValueStore::Side::kTarget, static_cast<PlanId>(p), e);
      const auto counts = store.SortedCounts(ValueStore::Side::kTarget,
                                             static_cast<PlanId>(p), e);
      plan_sorted_ids.insert(plan_sorted_ids.end(), sorted.begin(),
                             sorted.end());
      plan_sorted_counts.insert(plan_sorted_counts.end(), counts.begin(),
                                counts.end());
      const uint64_t sorted_count = plan_sorted_ids.size() - dir[p].sorted_begin;
      if (value_count > UINT32_MAX || sorted_count > UINT32_MAX) {
        return Status::InvalidArgument(
            "corpus artifact: a plan exceeds 2^32 values");
      }
      plan_offsets[base + e + 1] = static_cast<uint32_t>(value_count);
      plan_sorted_offsets[base + e + 1] = static_cast<uint32_t>(sorted_count);
    }
  }

  // String offsets + blob.
  std::vector<uint64_t> string_offsets(strings.size() + 1);
  uint64_t blob_bytes = 0;
  for (size_t i = 0; i < strings.size(); ++i) {
    string_offsets[i] = blob_bytes;
    blob_bytes += strings[i].size();
  }
  string_offsets[strings.size()] = blob_bytes;
  std::string blob;
  blob.reserve(blob_bytes);
  for (const std::string_view s : strings) blob.append(s);

  // Assemble the section table and the header.
  Header header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.header_bytes = sizeof(Header);
  header.flags = has_blocking ? kFlagHasBlocking : 0;
  header.num_entities = n;
  header.num_strings = strings.size();
  header.num_plans = num_plans;
  header.num_properties = schema_props.size();
  header.num_blocking_properties = blocking_prop_ids.size();
  header.num_tokens = token_ids.size();
  header.num_postings = postings.size();
  header.blocking_max_tokens = has_blocking ? options.blocking_max_tokens : 0;
  header.blocking_min_token_df =
      has_blocking ? options.blocking_min_token_df : 1;
  header.blocking_shards = shards;
  header.rule_hash = StableRuleHash(rule);

  std::string_view sections[kNumSections];
  sections[kStringOffsets] = PodView(string_offsets);
  sections[kStringBlob] = blob;
  sections[kEntityIds] = PodView(entity_ids);
  sections[kSchemaProps] = PodView(schema_props);
  sections[kBlockingProps] = PodView(blocking_prop_ids);
  sections[kPlanDirectory] = PodView(dir);
  sections[kPlanOffsets] = PodView(plan_offsets);
  sections[kPlanValues] = PodView(plan_values);
  sections[kPlanSortedOffsets] = PodView(plan_sorted_offsets);
  sections[kPlanSortedIds] = PodView(plan_sorted_ids);
  sections[kPlanSortedCounts] = PodView(plan_sorted_counts);
  sections[kTokenIds] = PodView(token_ids);
  sections[kPostingOffsets] = has_blocking ? PodView(posting_offsets)
                                           : std::string_view{};
  sections[kPostings] = PodView(postings);

  uint64_t offset = sizeof(Header);
  for (size_t s = 0; s < kNumSections; ++s) {
    offset = AlignUp8(offset);
    header.section_offset[s] = offset;
    header.section_bytes[s] = sections[s].size();
    offset += sections[s].size();
  }
  header.file_bytes = offset;

  // One payload walk for the checksum, a second for the write — both
  // emit the identical byte stream (zero padding up to each section's
  // aligned offset, then the section).
  const auto walk_payload = [&](auto&& sink) -> Status {
    uint64_t at = sizeof(Header);
    for (size_t s = 0; s < kNumSections; ++s) {
      const uint64_t aligned = AlignUp8(at);
      if (aligned > at) {
        GENLINK_RETURN_IF_ERROR(sink(std::string_view(kZeros, aligned - at)));
      }
      GENLINK_RETURN_IF_ERROR(sink(sections[s]));
      at = aligned + sections[s].size();
    }
    return Status::Ok();
  };

  // The checksum covers the whole file — header first, with its own
  // payload_hash field still zero (exactly how readers re-hash it), so
  // a single flipped bit anywhere, header included, is detected.
  StreamingHash64 checksum;
  checksum.Update(
      std::string_view(reinterpret_cast<const char*>(&header), sizeof(Header)));
  Status hashed = walk_payload([&](std::string_view bytes) {
    checksum.Update(bytes);
    return Status::Ok();
  });
  if (!hashed.ok()) return hashed;
  header.payload_hash = checksum.Finish();

  auto writer = AtomicFileWriter::Create(path);
  if (!writer.ok()) return writer.status();
  GENLINK_RETURN_IF_ERROR(writer->Append(
      std::string_view(reinterpret_cast<const char*>(&header), sizeof(Header))));
  GENLINK_RETURN_IF_ERROR(
      walk_payload([&](std::string_view bytes) { return writer->Append(bytes); }));
  GENLINK_RETURN_IF_ERROR(writer->Commit());

  if (stats != nullptr) {
    stats->file_bytes = header.file_bytes;
    stats->num_entities = n;
    stats->num_strings = strings.size();
    stats->num_plans = num_plans;
    stats->num_tokens = token_ids.size();
    stats->num_postings = postings.size();
  }
  return Status::Ok();
}

// --------------------------------------------------------------- Loader

namespace {

Status TruncatedError(const std::string& path, const std::string& detail) {
  return Status::ParseError("corpus artifact " + InPath(path) +
                            " is truncated or corrupt: " + detail);
}

}  // namespace

MappedCorpus::~MappedCorpus() = default;

const BlockingIndex* MappedCorpus::blocking() const { return blocking_.get(); }

std::span<const ValueId> MappedCorpus::Values(Side side, PlanId plan,
                                              size_t entity_index) const {
  if (side != Side::kTarget) return {};
  const uint32_t* offsets = plan_offsets_ + plan * (num_entities_ + 1);
  return std::span<const ValueId>(
      plan_values_ + plans_[plan].values_begin + offsets[entity_index],
      offsets[entity_index + 1] - offsets[entity_index]);
}

std::span<const ValueId> MappedCorpus::SortedIds(Side side, PlanId plan,
                                                 size_t entity_index) const {
  if (side != Side::kTarget) return {};
  const uint32_t* offsets = plan_sorted_offsets_ + plan * (num_entities_ + 1);
  return std::span<const ValueId>(
      plan_sorted_ids_ + plans_[plan].sorted_begin + offsets[entity_index],
      offsets[entity_index + 1] - offsets[entity_index]);
}

std::span<const uint32_t> MappedCorpus::SortedCounts(Side side, PlanId plan,
                                                     size_t entity_index) const {
  if (side != Side::kTarget) return {};
  const uint32_t* offsets = plan_sorted_offsets_ + plan * (num_entities_ + 1);
  return std::span<const uint32_t>(
      plan_sorted_counts_ + plans_[plan].sorted_begin + offsets[entity_index],
      offsets[entity_index + 1] - offsets[entity_index]);
}

std::optional<PlanId> MappedCorpus::FindPlan(Side side, uint64_t hash) const {
  if (side != Side::kTarget) return std::nullopt;
  // Plan counts are small (one per distinct value subtree of a rule);
  // a linear scan beats any index.
  for (uint64_t p = 0; p < num_plans_; ++p) {
    if (plans_[p].hash == hash) return static_cast<PlanId>(p);
  }
  return std::nullopt;
}

Result<std::shared_ptr<const MappedCorpus>> MappedCorpus::Load(
    const std::string& path, const MappedCorpusOptions& options) {
  auto mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();

  std::shared_ptr<MappedCorpus> corpus(new MappedCorpus());
  corpus->file_ = std::move(*mapped);
  const std::string_view bytes = corpus->file_.view();

  if (bytes.substr(0, kV1TextMagic.size()) == kV1TextMagic) {
    return Status::ParseError(
        InPath(path) + " is a v1 text rule artifact, not a v2 corpus "
        "artifact — run `genlink index` to build one");
  }
  if (bytes.size() < sizeof(Header)) {
    return TruncatedError(path, std::to_string(bytes.size()) +
                                    " bytes cannot hold a v2 header (" +
                                    std::to_string(sizeof(Header)) + " bytes)");
  }
  Header h;
  std::memcpy(&h, bytes.data(), sizeof(Header));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError(InPath(path) +
                              " is not a corpus artifact (bad magic)");
  }
  if (h.version != kVersion) {
    if (h.version == __builtin_bswap32(kVersion)) {
      return Status::ParseError(
          "corpus artifact " + InPath(path) +
          " has a byte-swapped version: written on a different-endian "
          "machine; re-run `genlink index` on this host");
    }
    return Status::ParseError("corpus artifact " + InPath(path) +
                              " has unsupported version " +
                              std::to_string(h.version) +
                              " (this build reads " + std::to_string(kVersion) +
                              ")");
  }
  if (h.header_bytes != sizeof(Header)) {
    return TruncatedError(path, "header size mismatch");
  }
  if (h.file_bytes != bytes.size()) {
    return TruncatedError(path, "header records " +
                                    std::to_string(h.file_bytes) +
                                    " bytes, file has " +
                                    std::to_string(bytes.size()));
  }

  // Count sanity before any size arithmetic (overflow guards). The
  // shard bound matters even with the checksum off: the shard count
  // sizes the per-shard stats allocation.
  if (h.num_strings > UINT32_MAX || h.num_entities > UINT32_MAX ||
      h.num_tokens > UINT32_MAX || h.num_plans > (uint64_t{1} << 20) ||
      h.blocking_shards > (uint64_t{1} << 20)) {
    return TruncatedError(path, "implausible table counts");
  }
  const bool has_blocking = (h.flags & kFlagHasBlocking) != 0;
  if (!has_blocking && (h.num_tokens != 0 || h.num_postings != 0 ||
                        h.num_blocking_properties != 0)) {
    return TruncatedError(path, "blocking tables present without the flag");
  }
  if (has_blocking && h.blocking_shards == 0) {
    return TruncatedError(path, "blocking_shards is zero");
  }

  // Section table: alignment and bounds, then exact expected sizes.
  for (size_t s = 0; s < kNumSections; ++s) {
    const uint64_t off = h.section_offset[s];
    const uint64_t size = h.section_bytes[s];
    if (off % 8 != 0 || off < sizeof(Header) || off > h.file_bytes ||
        size > h.file_bytes - off) {
      return TruncatedError(path, "section " + std::to_string(s) +
                                      " out of bounds");
    }
  }
  const uint64_t plan_offset_entries = h.num_plans * (h.num_entities + 1);
  const uint64_t expected[kNumSections] = {
      (h.num_strings + 1) * 8,                     // kStringOffsets
      h.section_bytes[kStringBlob],                // validated below
      h.num_entities * 4,                          // kEntityIds
      h.num_properties * 4,                        // kSchemaProps
      h.num_blocking_properties * 4,               // kBlockingProps
      h.num_plans * sizeof(PlanDirEntry),          // kPlanDirectory
      plan_offset_entries * 4,                     // kPlanOffsets
      h.section_bytes[kPlanValues],                // free, validated below
      plan_offset_entries * 4,                     // kPlanSortedOffsets
      h.section_bytes[kPlanSortedIds],             // free, validated below
      h.section_bytes[kPlanSortedIds],             // counts parallel sorted ids
      h.num_tokens * 4,                            // kTokenIds
      has_blocking ? (h.num_tokens + 1) * 8 : 0,   // kPostingOffsets
      h.num_postings * 4,                          // kPostings
  };
  for (size_t s = 0; s < kNumSections; ++s) {
    if (h.section_bytes[s] != expected[s]) {
      return TruncatedError(path, "section " + std::to_string(s) +
                                      " has unexpected size");
    }
  }
  if (h.section_bytes[kPlanValues] % 4 != 0 ||
      h.section_bytes[kPlanSortedIds] % 4 != 0) {
    return TruncatedError(path, "misaligned plan value tables");
  }

  if (options.verify_checksum) {
    // Re-hash the header with its hash field zeroed (as the writer
    // hashed it), then the payload: every bit of the file is covered.
    StreamingHash64 checksum;
    Header unhashed = h;
    unhashed.payload_hash = 0;
    checksum.Update(std::string_view(
        reinterpret_cast<const char*>(&unhashed), sizeof(Header)));
    checksum.Update(bytes.substr(sizeof(Header)));
    if (checksum.Finish() != h.payload_hash) {
      return TruncatedError(path,
                            "checksum mismatch (bit flip or torn write)");
    }
  }

  const char* base = bytes.data();
  corpus->string_offsets_ =
      reinterpret_cast<const uint64_t*>(base + h.section_offset[kStringOffsets]);
  corpus->string_blob_ = base + h.section_offset[kStringBlob];
  corpus->entity_ids_ =
      reinterpret_cast<const uint32_t*>(base + h.section_offset[kEntityIds]);
  corpus->plans_ =
      reinterpret_cast<const PlanDir*>(base + h.section_offset[kPlanDirectory]);
  corpus->plan_offsets_ =
      reinterpret_cast<const uint32_t*>(base + h.section_offset[kPlanOffsets]);
  corpus->plan_values_ =
      reinterpret_cast<const uint32_t*>(base + h.section_offset[kPlanValues]);
  corpus->plan_sorted_offsets_ = reinterpret_cast<const uint32_t*>(
      base + h.section_offset[kPlanSortedOffsets]);
  corpus->plan_sorted_ids_ = reinterpret_cast<const uint32_t*>(
      base + h.section_offset[kPlanSortedIds]);
  corpus->plan_sorted_counts_ = reinterpret_cast<const uint32_t*>(
      base + h.section_offset[kPlanSortedCounts]);
  corpus->token_ids_ =
      reinterpret_cast<const uint32_t*>(base + h.section_offset[kTokenIds]);
  corpus->posting_offsets_ = reinterpret_cast<const uint64_t*>(
      base + h.section_offset[kPostingOffsets]);
  corpus->postings_ =
      reinterpret_cast<const uint32_t*>(base + h.section_offset[kPostings]);
  corpus->num_entities_ = h.num_entities;
  corpus->num_strings_ = h.num_strings;
  corpus->num_plans_ = h.num_plans;
  corpus->num_tokens_ = h.num_tokens;
  corpus->num_postings_ = h.num_postings;
  corpus->blocking_max_tokens_ = h.blocking_max_tokens;
  corpus->blocking_min_token_df_ = h.blocking_min_token_df;
  corpus->blocking_shards_ = has_blocking ? h.blocking_shards : 1;
  corpus->rule_hash_ = h.rule_hash;

  // Semantic validation: every offset monotone and in range, every id
  // in range — after this, no read through the accessors can leave the
  // mapping. All passes are linear in the table they check.
  const uint64_t blob_bytes = h.section_bytes[kStringBlob];
  if (corpus->string_offsets_[0] != 0 ||
      corpus->string_offsets_[h.num_strings] != blob_bytes) {
    return TruncatedError(path, "string offsets do not span the blob");
  }
  for (uint64_t i = 0; i < h.num_strings; ++i) {
    if (corpus->string_offsets_[i] > corpus->string_offsets_[i + 1]) {
      return TruncatedError(path, "string offsets not monotone");
    }
  }
  const auto ids_in_range = [&](const uint32_t* ids, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      if (ids[i] >= h.num_strings) return false;
    }
    return true;
  };
  const uint32_t* schema_ids =
      reinterpret_cast<const uint32_t*>(base + h.section_offset[kSchemaProps]);
  const uint32_t* blocking_prop_ids = reinterpret_cast<const uint32_t*>(
      base + h.section_offset[kBlockingProps]);
  if (!ids_in_range(corpus->entity_ids_, h.num_entities) ||
      !ids_in_range(schema_ids, h.num_properties) ||
      !ids_in_range(blocking_prop_ids, h.num_blocking_properties) ||
      !ids_in_range(corpus->plan_values_, h.section_bytes[kPlanValues] / 4) ||
      !ids_in_range(corpus->plan_sorted_ids_,
                    h.section_bytes[kPlanSortedIds] / 4) ||
      !ids_in_range(corpus->token_ids_, h.num_tokens)) {
    return TruncatedError(path, "string id out of range");
  }
  const uint64_t total_values = h.section_bytes[kPlanValues] / 4;
  const uint64_t total_sorted = h.section_bytes[kPlanSortedIds] / 4;
  for (uint64_t p = 0; p < h.num_plans; ++p) {
    const uint64_t base_entry = p * (h.num_entities + 1);
    if (corpus->plans_[p].values_begin > total_values ||
        corpus->plans_[p].sorted_begin > total_sorted ||
        corpus->plan_offsets_[base_entry] != 0 ||
        corpus->plan_sorted_offsets_[base_entry] != 0) {
      return TruncatedError(path, "plan directory out of range");
    }
    for (uint64_t e = 0; e < h.num_entities; ++e) {
      if (corpus->plan_offsets_[base_entry + e] >
              corpus->plan_offsets_[base_entry + e + 1] ||
          corpus->plan_sorted_offsets_[base_entry + e] >
              corpus->plan_sorted_offsets_[base_entry + e + 1]) {
        return TruncatedError(path, "plan offsets not monotone");
      }
    }
    if (corpus->plans_[p].values_begin +
                corpus->plan_offsets_[base_entry + h.num_entities] >
            total_values ||
        corpus->plans_[p].sorted_begin +
                corpus->plan_sorted_offsets_[base_entry + h.num_entities] >
            total_sorted) {
      return TruncatedError(path, "plan values out of range");
    }
  }
  if (has_blocking) {
    for (uint64_t t = 1; t < h.num_tokens; ++t) {
      if (!(corpus->View(corpus->token_ids_[t - 1]) <
            corpus->View(corpus->token_ids_[t]))) {
        return TruncatedError(path, "token table not sorted");
      }
    }
    if (corpus->posting_offsets_[0] != 0 ||
        corpus->posting_offsets_[h.num_tokens] != h.num_postings) {
      return TruncatedError(path, "posting offsets do not span the postings");
    }
    for (uint64_t t = 0; t < h.num_tokens; ++t) {
      if (corpus->posting_offsets_[t] > corpus->posting_offsets_[t + 1]) {
        return TruncatedError(path, "posting offsets not monotone");
      }
    }
    for (uint64_t k = 0; k < h.num_postings; ++k) {
      if (corpus->postings_[k] >= h.num_entities) {
        return TruncatedError(path, "posting entity index out of range");
      }
    }
  }

  // Materialize the small derived objects (schema, blocking property
  // names, the mapped blocking index).
  std::vector<std::string> property_names;
  property_names.reserve(h.num_properties);
  for (uint64_t p = 0; p < h.num_properties; ++p) {
    property_names.emplace_back(corpus->View(schema_ids[p]));
  }
  corpus->schema_ = Schema(property_names);
  corpus->blocking_properties_.reserve(h.num_blocking_properties);
  for (uint64_t p = 0; p < h.num_blocking_properties; ++p) {
    corpus->blocking_properties_.emplace_back(corpus->View(blocking_prop_ids[p]));
  }
  if (has_blocking) {
    corpus->blocking_ = std::make_unique<MappedBlockingIndex>(corpus.get());
  }
  return std::shared_ptr<const MappedCorpus>(std::move(corpus));
}

}  // namespace genlink
