// Read-only memory-mapped files: the zero-copy substrate of the v2
// corpus artifact (io/corpus_artifact.h). A MappedFile owns one
// private read-only mapping of a whole file; N processes mapping the
// same artifact share one page-cache copy, and nothing is parsed or
// copied at open time — cold start is bounded by page faults, not by
// file size.

#ifndef GENLINK_IO_MMAP_FILE_H_
#define GENLINK_IO_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace genlink {

/// A read-only mapping of an entire file. Move-only; the mapping (and
/// every view into it) lives until destruction.
class MappedFile {
 public:
  /// Maps `path` read-only. Fails with a named IoError when the file
  /// cannot be opened, stat'd or mapped. An empty file maps to an
  /// empty view (no mapping is created).
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }
  std::string_view view() const { return std::string_view(data(), size_); }
  const std::string& path() const { return path_; }

 private:
  MappedFile(std::string path, void* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  void Reset();

  std::string path_;
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace genlink

#endif  // GENLINK_IO_MMAP_FILE_H_
