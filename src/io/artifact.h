// Rule deployment artifacts: a learned linkage rule bundled with the
// match options it was validated under, in a versioned text format, so
// a rule can travel from the learner to a serving process (or another
// host) and be deployed against a MatcherIndex without re-running the
// pipeline.
//
// Format (line-oriented, UTF-8):
//
//   genlink-artifact v1
//   name: restaurant-dedup            (optional free-text label)
//   threshold: 0.5
//   use-blocking: 1
//   use-value-store: 1
//   best-match-only: 0
//   rule-format: xml                  (or: sexpr)
//   ---
//   <LinkageRule> ... </LinkageRule>
//
// Header keys may appear in any order; unknown keys and unknown
// versions are errors (the version line is how v2 gets room to grow).
// The rule payload after the `---` separator reuses the existing rule
// serializations verbatim: Silk-style XML (rule/xml.h) or the
// s-expression form (rule/serialize.h, rule/parse.h). num_threads is
// deliberately NOT serialized — worker count is a property of the
// serving host, not of the learned rule.
//
// The CLI surface is `genlink learn --save-artifact` (produce) and
// `genlink query --artifact` (serve); tests/api_test.cc round-trips
// save -> load -> query bit-identically.

#ifndef GENLINK_IO_ARTIFACT_H_
#define GENLINK_IO_ARTIFACT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "matcher/matcher.h"
#include "rule/linkage_rule.h"

namespace genlink {

/// A deployable rule bundle. Move-only (it owns the rule).
struct RuleArtifact {
  /// Free-text label ("restaurant-dedup-2026-07"); may be empty. Must
  /// not contain newlines.
  std::string name;
  LinkageRule rule;
  /// The options the rule should be executed with. num_threads is not
  /// serialized and loads as the default (0 = hardware concurrency).
  MatchOptions options;
};

/// Payload serialization for the rule inside an artifact.
enum class ArtifactRuleFormat {
  kXml,    // Silk-style XML (rule/xml.h) — the default
  kSexpr,  // s-expression (rule/serialize.h)
};

/// Renders the artifact in the versioned text format.
std::string WriteRuleArtifact(const RuleArtifact& artifact,
                              ArtifactRuleFormat format = ArtifactRuleFormat::kXml);

/// Parses an artifact; fails with a descriptive status on version
/// mismatch, unknown header keys, malformed values or a rule payload
/// that does not parse.
Result<RuleArtifact> ReadRuleArtifact(std::string_view text);

/// WriteRuleArtifact straight to a file.
Status SaveArtifact(const std::string& path, const RuleArtifact& artifact,
                    ArtifactRuleFormat format = ArtifactRuleFormat::kXml);

/// ReadRuleArtifact straight from a file.
Result<RuleArtifact> LoadArtifact(const std::string& path);

}  // namespace genlink

#endif  // GENLINK_IO_ARTIFACT_H_
