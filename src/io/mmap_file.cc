#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace genlink {
namespace {

std::string ErrnoMessage(const char* what, const std::string& path, int err) {
  return std::string(what) + " '" + path + "': " + std::strerror(err);
}

}  // namespace

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open", path, errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(ErrnoMessage("cannot stat", path, err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("cannot map '" + path + "': not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(path, nullptr, 0);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping keeps its own reference
  if (data == MAP_FAILED) {
    return Status::IoError(ErrnoMessage("cannot map", path, map_err));
  }
  return MappedFile(path, data, size);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)), data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() { Reset(); }

void MappedFile::Reset() {
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace genlink
