// A reader for a practical subset of the N-Triples RDF serialization,
// sufficient for Linked Data dumps:
//
//   <subject> <predicate> "literal" .
//   <subject> <predicate> <object> .
//
// Triples are grouped by subject into entities; the property name is the
// local name (fragment or last path segment) of the predicate IRI.

#ifndef GENLINK_IO_NTRIPLES_H_
#define GENLINK_IO_NTRIPLES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "model/dataset.h"

namespace genlink {

/// One parsed triple.
struct Triple {
  std::string subject;    // IRI (without angle brackets)
  std::string predicate;  // IRI
  std::string object;     // literal value or IRI
  bool object_is_iri = false;
};

/// Parses a single N-Triples line. Returns NotFound for blank/comment
/// lines (callers skip those) and ParseError for malformed input.
Result<Triple> ParseNTriplesLine(std::string_view line);

/// Returns the local name of an IRI: the fragment after '#' if present,
/// else the last path segment.
std::string IriLocalName(std::string_view iri);

/// Options for ReadNTriplesDataset.
struct NTriplesOptions {
  /// Use the predicate's local name as the property name (default);
  /// otherwise the full IRI is used.
  bool use_local_names = true;
  /// Skip triples whose object is an IRI (keep literals only) when true.
  bool literals_only = false;
};

/// Loads all triples of `text` into a dataset (one entity per subject).
Result<Dataset> ReadNTriplesDataset(std::string_view text, std::string name,
                                    const NTriplesOptions& options = {});

}  // namespace genlink

#endif  // GENLINK_IO_NTRIPLES_H_
