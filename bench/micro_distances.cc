// Microbenchmarks for the distance-measure library (not a paper table;
// characterizes the substrate that dominates GP fitness evaluation).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "datasets/noise.h"
#include "distance/registry.h"

namespace genlink {
namespace {

ValueSet MakeValues(size_t count, size_t length, uint64_t seed) {
  Rng rng(seed);
  ValueSet values;
  for (size_t i = 0; i < count; ++i) {
    values.push_back(RandomWord(length, rng));
  }
  return values;
}

void BM_Levenshtein(benchmark::State& state) {
  const DistanceMeasure* m = DistanceRegistry::Default().Find("levenshtein");
  ValueSet a = MakeValues(1, static_cast<size_t>(state.range(0)), 1);
  ValueSet b = MakeValues(1, static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->Distance(a, b));
  }
}
BENCHMARK(BM_Levenshtein)->Arg(8)->Arg(32)->Arg(128);

void BM_Jaro(benchmark::State& state) {
  const DistanceMeasure* m = DistanceRegistry::Default().Find("jaro");
  ValueSet a = MakeValues(1, static_cast<size_t>(state.range(0)), 3);
  ValueSet b = MakeValues(1, static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->Distance(a, b));
  }
}
BENCHMARK(BM_Jaro)->Arg(8)->Arg(32);

void BM_JaccardTokens(benchmark::State& state) {
  const DistanceMeasure* m = DistanceRegistry::Default().Find("jaccard");
  ValueSet a = MakeValues(static_cast<size_t>(state.range(0)), 6, 5);
  ValueSet b = MakeValues(static_cast<size_t>(state.range(0)), 6, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->Distance(a, b));
  }
}
BENCHMARK(BM_JaccardTokens)->Arg(4)->Arg(16)->Arg(64);

void BM_Geographic(benchmark::State& state) {
  const DistanceMeasure* m = DistanceRegistry::Default().Find("geographic");
  ValueSet a{"52.5200 13.4050"};
  ValueSet b{"48.8566 2.3522"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->Distance(a, b));
  }
}
BENCHMARK(BM_Geographic);

void BM_Date(benchmark::State& state) {
  const DistanceMeasure* m = DistanceRegistry::Default().Find("date");
  ValueSet a{"1997-11-05"};
  ValueSet b{"2003-02-17"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->Distance(a, b));
  }
}
BENCHMARK(BM_Date);

// Multi-valued lift: min over value pairs.
void BM_SetLift(benchmark::State& state) {
  const DistanceMeasure* m = DistanceRegistry::Default().Find("levenshtein");
  ValueSet a = MakeValues(static_cast<size_t>(state.range(0)), 10, 7);
  ValueSet b = MakeValues(static_cast<size_t>(state.range(0)), 10, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->Distance(a, b));
  }
}
BENCHMARK(BM_SetLift)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
}  // namespace genlink
