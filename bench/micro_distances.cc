// Microbenchmarks for the distance-measure library (not a paper table;
// characterizes the substrate that dominates GP fitness evaluation).
//
// The string kernels come in old/new pairs across length buckets
// (8/32/64/256 chars): *Ref runs the reference implementation
// (two-row DP Levenshtein, heap-flag Jaro, hash-set token Jaccard) and
// the unsuffixed bench runs the production kernel (Myers bit-parallel,
// mask/stack-flag Jaro, sorted token-id merge). items_per_second is set
// on all of them so BENCH_micro_distances.json exposes the ratio to
// tools/compare_bench_json.py.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "datasets/noise.h"
#include "distance/registry.h"
#include "distance/string_distances.h"
#include "distance/token_distances.h"
#include "eval/value_store.h"

namespace genlink {
namespace {

ValueSet MakeValues(size_t count, size_t length, uint64_t seed) {
  Rng rng(seed);
  ValueSet values;
  for (size_t i = 0; i < count; ++i) {
    values.push_back(RandomWord(length, rng));
  }
  return values;
}

void SetPairRate(benchmark::State& state) {
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// ------------------------------------------------- Levenshtein old/new

void BM_LevenshteinRef(benchmark::State& state) {
  ValueSet a = MakeValues(1, static_cast<size_t>(state.range(0)), 1);
  ValueSet b = MakeValues(1, static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinEditDistanceReference(a[0], b[0]));
  }
  SetPairRate(state);
}
BENCHMARK(BM_LevenshteinRef)->Arg(8)->Arg(32)->Arg(64)->Arg(256);

void BM_Levenshtein(benchmark::State& state) {
  ValueSet a = MakeValues(1, static_cast<size_t>(state.range(0)), 1);
  ValueSet b = MakeValues(1, static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinEditDistance(a[0], b[0]));
  }
  SetPairRate(state);
}
BENCHMARK(BM_Levenshtein)->Arg(8)->Arg(32)->Arg(64)->Arg(256);

// The banded kernel at the measure's default threshold range.
void BM_LevenshteinBounded(benchmark::State& state) {
  ValueSet a = MakeValues(1, static_cast<size_t>(state.range(0)), 1);
  ValueSet b = MakeValues(1, static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundedLevenshteinEditDistance(a[0], b[0], 5));
  }
  SetPairRate(state);
}
BENCHMARK(BM_LevenshteinBounded)->Arg(8)->Arg(32)->Arg(64)->Arg(256);

// ------------------------------------------------------- Jaro old/new

void BM_JaroRef(benchmark::State& state) {
  ValueSet a = MakeValues(1, static_cast<size_t>(state.range(0)), 3);
  ValueSet b = MakeValues(1, static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaroSimilarityReference(a[0], b[0]));
  }
  SetPairRate(state);
}
BENCHMARK(BM_JaroRef)->Arg(8)->Arg(32)->Arg(64)->Arg(256);

void BM_Jaro(benchmark::State& state) {
  ValueSet a = MakeValues(1, static_cast<size_t>(state.range(0)), 3);
  ValueSet b = MakeValues(1, static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaroSimilarity(a[0], b[0]));
  }
  SetPairRate(state);
}
BENCHMARK(BM_Jaro)->Arg(8)->Arg(32)->Arg(64)->Arg(256);

// ----------------------------------------------- token Jaccard old/new

// Old: hash-set construction + probing per call over owning strings.
void BM_JaccardTokensRef(benchmark::State& state) {
  const DistanceMeasure* m = DistanceRegistry::Default().Find("jaccard");
  ValueSet a = MakeValues(static_cast<size_t>(state.range(0)), 6, 5);
  ValueSet b = MakeValues(static_cast<size_t>(state.range(0)), 6, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->Distance(a, b));
  }
  SetPairRate(state);
}
BENCHMARK(BM_JaccardTokensRef)->Arg(4)->Arg(16)->Arg(64);

// New: merge over pre-interned sorted token-id spans (what the value
// store hands the engine and the matcher).
void BM_JaccardTokenIds(benchmark::State& state) {
  const DistanceMeasure* m = DistanceRegistry::Default().Find("jaccard");
  ValueSet a = MakeValues(static_cast<size_t>(state.range(0)), 6, 5);
  ValueSet b = MakeValues(static_cast<size_t>(state.range(0)), 6, 6);
  StringPool pool;
  auto intern_sorted = [&pool](const ValueSet& values,
                               std::vector<uint32_t>& ids,
                               std::vector<uint32_t>& counts) {
    std::vector<uint32_t> raw;
    for (const auto& v : values) raw.push_back(pool.Intern(v));
    std::sort(raw.begin(), raw.end());
    for (size_t i = 0; i < raw.size();) {
      size_t j = i + 1;
      while (j < raw.size() && raw[j] == raw[i]) ++j;
      ids.push_back(raw[i]);
      counts.push_back(static_cast<uint32_t>(j - i));
      i = j;
    }
  };
  std::vector<uint32_t> ids_a, counts_a, ids_b, counts_b;
  intern_sorted(a, ids_a, counts_a);
  intern_sorted(b, ids_b, counts_b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->TokenIdDistance(ids_a, counts_a, ids_b, counts_b));
  }
  SetPairRate(state);
}
BENCHMARK(BM_JaccardTokenIds)->Arg(4)->Arg(16)->Arg(64);

// ------------------------------------------------------- other measures

void BM_Geographic(benchmark::State& state) {
  const DistanceMeasure* m = DistanceRegistry::Default().Find("geographic");
  ValueSet a{"52.5200 13.4050"};
  ValueSet b{"48.8566 2.3522"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->Distance(a, b));
  }
  SetPairRate(state);
}
BENCHMARK(BM_Geographic);

void BM_Date(benchmark::State& state) {
  const DistanceMeasure* m = DistanceRegistry::Default().Find("date");
  ValueSet a{"1997-11-05"};
  ValueSet b{"2003-02-17"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->Distance(a, b));
  }
  SetPairRate(state);
}
BENCHMARK(BM_Date);

// Multi-valued lift: min over value pairs.
void BM_SetLift(benchmark::State& state) {
  const DistanceMeasure* m = DistanceRegistry::Default().Find("levenshtein");
  ValueSet a = MakeValues(static_cast<size_t>(state.range(0)), 10, 7);
  ValueSet b = MakeValues(static_cast<size_t>(state.range(0)), 10, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->Distance(a, b));
  }
  SetPairRate(state);
}
BENCHMARK(BM_SetLift)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
}  // namespace genlink
