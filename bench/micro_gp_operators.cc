// Microbenchmarks for the genetic machinery: random rule generation,
// each crossover operator, cloning, hashing and serialization.

#include <benchmark/benchmark.h>

#include "gp/crossover.h"
#include "gp/rule_generator.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

RuleGenerator& Generator() {
  static RuleGenerator* generator = [] {
    std::vector<CompatiblePair> pairs;
    const auto& reg = DistanceRegistry::Default();
    pairs.push_back({"title", "name", reg.Find("levenshtein"), 5});
    pairs.push_back({"date", "released", reg.Find("date"), 3});
    pairs.push_back({"pos", "coord", reg.Find("geographic"), 2});
    return new RuleGenerator(pairs, {"title", "date", "pos"},
                             {"name", "released", "coord"});
  }();
  return *generator;
}

void BM_RandomRuleGeneration(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Generator().RandomRule(rng));
  }
}
BENCHMARK(BM_RandomRuleGeneration);

void BM_RuleClone(benchmark::State& state) {
  Rng rng(2);
  LinkageRule rule = Generator().RandomRule(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule.Clone());
  }
}
BENCHMARK(BM_RuleClone);

void BM_StructuralHash(benchmark::State& state) {
  Rng rng(3);
  LinkageRule rule = Generator().RandomRule(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule.StructuralHash());
  }
}
BENCHMARK(BM_StructuralHash);

void BM_Serialize(benchmark::State& state) {
  Rng rng(4);
  LinkageRule rule = Generator().RandomRule(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ToSexpr(rule));
  }
}
BENCHMARK(BM_Serialize);

template <typename Operator>
void RunCrossoverBench(benchmark::State& state) {
  Rng rng(5);
  Operator op;
  std::vector<LinkageRule> pool;
  for (int i = 0; i < 16; ++i) pool.push_back(Generator().RandomRule(rng));
  size_t i = 0;
  for (auto _ : state) {
    const LinkageRule& r1 = pool[i % pool.size()];
    const LinkageRule& r2 = pool[(i + 7) % pool.size()];
    ++i;
    benchmark::DoNotOptimize(op.Cross(r1, r2, rng));
  }
}

void BM_FunctionCrossover(benchmark::State& state) {
  RunCrossoverBench<FunctionCrossover>(state);
}
BENCHMARK(BM_FunctionCrossover);

void BM_OperatorsCrossover(benchmark::State& state) {
  RunCrossoverBench<OperatorsCrossover>(state);
}
BENCHMARK(BM_OperatorsCrossover);

void BM_AggregationCrossover(benchmark::State& state) {
  RunCrossoverBench<AggregationCrossover>(state);
}
BENCHMARK(BM_AggregationCrossover);

void BM_TransformationCrossover(benchmark::State& state) {
  RunCrossoverBench<TransformationCrossover>(state);
}
BENCHMARK(BM_TransformationCrossover);

void BM_ThresholdCrossover(benchmark::State& state) {
  RunCrossoverBench<ThresholdCrossover>(state);
}
BENCHMARK(BM_ThresholdCrossover);

void BM_SubtreeCrossover(benchmark::State& state) {
  RunCrossoverBench<SubtreeCrossover>(state);
}
BENCHMARK(BM_SubtreeCrossover);

}  // namespace
}  // namespace genlink
