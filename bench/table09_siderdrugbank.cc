// Table 9 of the paper: learning trajectory on the Sider-DrugBank
// interlinking task (OAEI 2010), with the OAEI participants as
// unsupervised reference baselines.

#include <cstdio>

#include "datasets/sider_drugbank.h"
#include "harness.h"

using namespace genlink;
using namespace genlink::bench;

int main() {
  BenchScale scale = GetBenchScale();

  SiderDrugbankConfig data;
  data.scale = scale.data_scale;
  MatchingTask task = GenerateSiderDrugbank(data);
  std::printf("sider: %zu drugs, drugbank: %zu drugs, %zu/%zu links\n",
              task.a.size(), task.b.size(), task.links.positives().size(),
              task.links.negatives().size());

  GenLinkConfig config = MakeGenLinkConfig(scale);
  CrossValidationResult result =
      RunGenLinkCv(task, config, scale.runs, /*seed=*/9001);
  PrintTrajectoryTable(
      "Table 9 - SiderDrugBank (GenLink)", result,
      StandardCheckpoints(scale.iterations),
      {{0, 0.840, 0.837}, {10, 0.943, 0.939}, {20, 0.970, 0.969},
       {30, 0.972, 0.970}, {40, 0.972, 0.970}, {50, 0.972, 0.970}});

  std::printf("\nOAEI reference systems (unsupervised, from the paper):\n");
  PrintReferenceLine("ObjectCoref", 0.464);
  PrintReferenceLine("RiMOM", 0.504);

  std::printf("\nexample learned rule:\n%s\n", result.example_rule_sexpr.c_str());

  WriteBenchJson("table09_siderdrugbank", scale,
                 {MakeBenchRecord("sider-drugbank", "genlink", scale, result)});
  return 0;
}
