// Table 12 of the paper: learning trajectory on the DBpedia-DrugBank
// task, whose human-written rule uses 13 comparisons and 33
// transformations. The bench additionally reports the learned rule
// sizes, reproducing the paper's observation that parsimony pressure
// keeps the learned rules at a fraction of the hand-written size
// (~5.6 comparisons / ~3.2 transformations from iteration 30 on).

#include <cstdio>

#include "datasets/dbpedia_drugbank.h"
#include "harness.h"
#include "rule/parse.h"

using namespace genlink;
using namespace genlink::bench;

int main() {
  BenchScale scale = GetBenchScale();

  DbpediaDrugbankConfig data;
  data.scale = scale.data_scale;
  MatchingTask task = GenerateDbpediaDrugbank(data);
  std::printf("dbpedia: %zu drugs, drugbank: %zu drugs, %zu/%zu links\n",
              task.a.size(), task.b.size(), task.links.positives().size(),
              task.links.negatives().size());

  GenLinkConfig config = MakeGenLinkConfig(scale);
  CrossValidationResult result =
      RunGenLinkCv(task, config, scale.runs, /*seed=*/12001);
  PrintTrajectoryTable(
      "Table 12 - DBpediaDrugBank (GenLink)", result,
      StandardCheckpoints(scale.iterations),
      {{1, 0.929, 0.928}, {10, 0.994, 0.991}, {20, 0.996, 0.988},
       {30, 0.997, 0.985}, {40, 0.998, 0.994}, {50, 0.998, 0.994}});

  // Rule-size trajectory (bloat control, Section 6.2).
  std::printf("\nrule size over iterations (best rule operators, mean over runs):\n");
  for (const auto& row : result.iterations) {
    if (row.iteration % 5 == 0) {
      std::printf("  iter %2zu: best %.1f ops, population mean %.1f ops\n",
                  row.iteration, row.best_operators.mean,
                  row.mean_operators.mean);
    }
  }

  // Composition of the final rule vs the human-written rule.
  auto parsed = ParseRule(result.example_rule_sexpr);
  if (parsed.ok()) {
    size_t comparisons = CollectComparisons(*parsed).size();
    size_t transforms = CollectTransforms(*parsed).size();
    std::printf(
        "\nfinal rule: %zu comparisons, %zu transformations\n"
        "(human-written rule: 13 comparisons, 33 transformations;\n"
        " paper's learned rules: ~5.6 comparisons, ~3.2 transformations)\n",
        comparisons, transforms);
  }
  std::printf("\nexample learned rule:\n%s\n", result.example_rule_sexpr.c_str());

  WriteBenchJson(
      "table12_dbpediadrugbank", scale,
      {MakeBenchRecord("dbpedia-drugbank", "genlink", scale, result)});
  return 0;
}
