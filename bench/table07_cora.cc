// Table 7 of the paper: cross-validation learning trajectory on the
// Cora citation data set, with the Carvalho et al. baseline as the
// reference row. Also prints the best learned rule with and without
// transformations (Figures 7 and 8) and the no-transformation ablation
// the paper uses to explain the gap to the baseline.

#include <cstdio>

#include "datasets/cora.h"
#include "harness.h"

using namespace genlink;
using namespace genlink::bench;

int main() {
  BenchScale scale = GetBenchScale();

  CoraConfig data;
  data.scale = scale.data_scale;
  MatchingTask task = GenerateCora(data);
  std::printf("cora: %zu citations, %zu/%zu reference links\n", task.a.size(),
              task.links.positives().size(), task.links.negatives().size());

  // --- GenLink (full representation).
  GenLinkConfig config = MakeGenLinkConfig(scale);
  CrossValidationResult genlink_result =
      RunGenLinkCv(task, config, scale.runs, /*seed=*/7001);
  PrintTrajectoryTable(
      "Table 7 - Cora (GenLink)", genlink_result,
      StandardCheckpoints(scale.iterations),
      {{0, 0.880, 0.877}, {10, 0.949, 0.945}, {20, 0.965, 0.962},
       {30, 0.968, 0.965}, {40, 0.968, 0.965}, {50, 0.969, 0.966}});

  // --- GenLink without transformations (the paper's explanation of the
  // gap: restricted, it approximately matches Carvalho et al.).
  GenLinkConfig no_transform = config;
  no_transform.mode = RepresentationMode::kNonlinear;
  CrossValidationResult restricted =
      RunGenLinkCv(task, no_transform, scale.runs, 7002);
  PrintTrajectoryTable("Cora without transformations (paper: 0.912/0.905)",
                       restricted, {scale.iterations}, {});

  // --- Carvalho et al. baseline (paper reference row: 0.900/0.910).
  CarvalhoConfig baseline;
  baseline.population_size = scale.population;
  baseline.max_generations = scale.iterations;
  CrossValidationResult carvalho =
      RunCarvalhoCv(task, baseline, scale.runs, 7003);
  PrintTrajectoryTable("Carvalho et al. baseline (paper ref: 0.900/0.910)",
                       carvalho, {scale.iterations}, {});

  // --- Figure 7: an example learned rule.
  std::printf("\nexample learned rule (cf. paper Figure 7):\n%s\n",
              genlink_result.example_rule_sexpr.c_str());
  std::printf("\nexample learned rule without transformations (cf. Figure 8):\n%s\n",
              restricted.example_rule_sexpr.c_str());

  WriteBenchJson(
      "table07_cora", scale,
      {MakeBenchRecord("cora", "genlink", scale, genlink_result),
       MakeBenchRecord("cora", "genlink/no-transform", scale, restricted),
       MakeBenchRecord("cora", "carvalho", scale, carvalho)});
  return 0;
}
