// main() for the Google Benchmark micro benches. Identical to
// BENCHMARK_MAIN() except that, unless the caller already passed
// --benchmark_out, results are also written to BENCH_<name>.json in
// the current directory (Benchmark's own JSON format), matching the
// machine-readable records the table benches emit via the harness.
//
// <name> comes from the GENLINK_BENCH_NAME compile definition set per
// target in bench/CMakeLists.txt.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#ifndef GENLINK_BENCH_NAME
#define GENLINK_BENCH_NAME "micro"
#endif

int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Exactly --benchmark_out[=...]; must not match --benchmark_out_format.
    if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
        std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      has_out = true;
    }
  }

  std::string out_flag =
      "--benchmark_out=BENCH_" GENLINK_BENCH_NAME ".json";
  std::string format_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }

  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
