// Table 15 of the paper: the crossover ablation. For each data set, the
// learner runs once with plain subtree crossover and once with the
// specialized crossover-operator set of Section 5.3; validation
// F-measure is reported after 10 and after 25 iterations. The paper's
// claim: the specialized operators match or beat subtree crossover
// everywhere.

#include <cstdio>

#include "harness.h"

using namespace genlink;
using namespace genlink::bench;

namespace {

struct PaperTable15Row {
  const char* dataset;
  double subtree_10, ours_10, subtree_25, ours_25;
};
constexpr PaperTable15Row kPaper[] = {
    {"cora", 0.943, 0.951, 0.959, 0.967},
    {"restaurant", 0.997, 0.997, 0.997, 0.997},
    {"sider-drugbank", 0.919, 0.963, 0.974, 0.987},
    {"nyt", 0.814, 0.834, 0.814, 0.916},
    {"linkedmdb", 0.985, 0.991, 0.996, 0.998},
    {"dbpedia-drugbank", 0.992, 0.994, 0.994, 0.997},
};

}  // namespace

int main() {
  BenchScale scale = GetBenchScale();
  size_t iter10 = std::min<size_t>(10, scale.iterations);
  size_t iter25 = std::min<size_t>(25, scale.iterations);

  std::printf("\nTable 15 - Crossover: subtree vs specialized operators\n");
  std::printf("%-18s | @%zu: %8s %8s | @%zu: %8s %8s   [paper @10, @25]\n",
              "dataset", iter10, "subtree", "ours", iter25, "subtree", "ours");

  std::vector<BenchRecord> records;
  std::vector<MatchingTask> tasks = AllTasks(scale);
  for (size_t t = 0; t < tasks.size(); ++t) {
    const MatchingTask& task = tasks[t];
    double cells[2][2];  // [subtree?][checkpoint]
    for (int subtree = 0; subtree <= 1; ++subtree) {
      GenLinkConfig config = MakeGenLinkConfig(scale);
      config.subtree_crossover_only = subtree == 1;
      config.max_iterations = iter25;
      CrossValidationResult result =
          RunGenLinkCv(task, config, scale.runs, 15000 + 10 * t + subtree);
      const AggregatedIteration* row10 = result.FindIteration(iter10);
      const AggregatedIteration* row25 = result.FindIteration(iter25);
      cells[subtree][0] = row10 != nullptr ? row10->val_f1.mean : 0.0;
      cells[subtree][1] = row25 != nullptr ? row25->val_f1.mean : 0.0;
      records.push_back(MakeBenchRecord(
          task.name,
          subtree == 1 ? "genlink/subtree-crossover"
                       : "genlink/specialized-crossover",
          scale, result));
    }
    std::printf(
        "%-18s |      %8.3f %8.3f |      %8.3f %8.3f   "
        "[%.3f/%.3f, %.3f/%.3f]\n",
        task.name.c_str(), cells[1][0], cells[0][0], cells[1][1], cells[0][1],
        kPaper[t].subtree_10, kPaper[t].ours_10, kPaper[t].subtree_25,
        kPaper[t].ours_25);
  }
  WriteBenchJson("table15_crossover", scale, records);
  return 0;
}
