// Table 10 of the paper: learning trajectory on the NYT-DBpedia
// location interlinking task (OAEI 2011), with the OAEI participants as
// reference baselines. The paper's hardest data set: wide sparse
// schemata, URI-encoded labels and jittered coordinates.

#include <cstdio>

#include "datasets/nyt.h"
#include "harness.h"

using namespace genlink;
using namespace genlink::bench;

int main() {
  BenchScale scale = GetBenchScale();

  NytConfig data;
  data.scale = scale.data_scale;
  MatchingTask task = GenerateNyt(data);
  std::printf("nyt: %zu locations, dbpedia: %zu locations, %zu/%zu links\n",
              task.a.size(), task.b.size(), task.links.positives().size(),
              task.links.negatives().size());

  GenLinkConfig config = MakeGenLinkConfig(scale);
  CrossValidationResult result =
      RunGenLinkCv(task, config, scale.runs, /*seed=*/10001);
  PrintTrajectoryTable(
      "Table 10 - NYT (GenLink)", result, StandardCheckpoints(scale.iterations),
      {{0, 0.703, 0.709}, {1, 0.803, 0.803}, {5, 0.844, 0.846},
       {10, 0.854, 0.854}, {20, 0.907, 0.906}, {30, 0.927, 0.928},
       {40, 0.965, 0.963}, {50, 0.977, 0.974}});

  std::printf("\nOAEI reference systems (unsupervised, from the paper):\n");
  PrintReferenceLine("AgreementMaker", 0.69);
  PrintReferenceLine("SEREMI", 0.68);
  PrintReferenceLine("Zhishi.links", 0.92);

  std::printf("\nexample learned rule:\n%s\n", result.example_rule_sexpr.c_str());

  WriteBenchJson("table10_nyt", scale,
                 {MakeBenchRecord("nyt", "genlink", scale, result)});
  return 0;
}
