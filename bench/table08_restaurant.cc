// Table 8 of the paper: learning trajectory on the Restaurant
// (Fodor's/Zagat's) data set with the Carvalho et al. reference row.

#include <cstdio>

#include "datasets/restaurant.h"
#include "harness.h"

using namespace genlink;
using namespace genlink::bench;

int main() {
  BenchScale scale = GetBenchScale();

  RestaurantConfig data;
  // Restaurant is already small (864 records); only shrink for smoke.
  data.scale = scale.name == "smoke" ? 0.3 : 1.0;
  MatchingTask task = GenerateRestaurant(data);
  std::printf("restaurant: %zu records, %zu/%zu reference links\n",
              task.a.size(), task.links.positives().size(),
              task.links.negatives().size());

  GenLinkConfig config = MakeGenLinkConfig(scale);
  CrossValidationResult result =
      RunGenLinkCv(task, config, scale.runs, /*seed=*/8001);
  PrintTrajectoryTable(
      "Table 8 - Restaurant (GenLink)", result,
      StandardCheckpoints(scale.iterations),
      {{0, 0.953, 0.951}, {10, 0.996, 0.992}, {20, 0.996, 0.993},
       {30, 0.996, 0.993}, {40, 0.996, 0.993}, {50, 0.996, 0.993}});

  CarvalhoConfig baseline;
  baseline.population_size = scale.population;
  baseline.max_generations = scale.iterations;
  CrossValidationResult carvalho = RunCarvalhoCv(task, baseline, scale.runs, 8002);
  PrintTrajectoryTable("Carvalho et al. baseline (paper ref: 1.000/0.980)",
                       carvalho, {scale.iterations}, {});

  std::printf("\nexample learned rule:\n%s\n", result.example_rule_sexpr.c_str());

  WriteBenchJson("table08_restaurant", scale,
                 {MakeBenchRecord("restaurant", "genlink", scale, result),
                  MakeBenchRecord("restaurant", "carvalho", scale, carvalho)});
  return 0;
}
