// Table 14 of the paper: the seeding ablation. For each data set, the
// mean F-measure of the rules in the *initial* population is compared
// between fully random generation and generation seeded with the
// compatible property pairs of Algorithm 2. The paper's claim: seeding
// matters little for narrow schemata (Cora, Restaurant) and matters a
// lot for wide ones (NYT: 0.178 random vs 0.701 seeded).

#include <cstdio>

#include "eval/cross_validation.h"
#include "harness.h"

using namespace genlink;
using namespace genlink::bench;

namespace {

struct PaperTable14Row {
  const char* dataset;
  double random_f1, seeded_f1;
};
constexpr PaperTable14Row kPaper[] = {
    {"cora", 0.849, 0.865},
    {"restaurant", 0.963, 0.985},
    {"sider-drugbank", 0.624, 0.848},
    {"nyt", 0.178, 0.701},
    {"linkedmdb", 0.719, 0.975},
    {"dbpedia-drugbank", 0.702, 0.957},
};

// Mean and stddev of the best-of-initial-population F1 over runs.
// The paper reports the initial F-measure per configuration; we measure
// the best rule of the initial population on the training fold (its
// iteration-0 row), matching the Table 7-12 iteration-0 semantics, and
// also the population mean via LearnResult.
struct SeedingCell {
  Moments best;
  Moments population_mean;
};

SeedingCell MeasureInitial(const MatchingTask& task, bool seeded, size_t runs,
                           size_t population, uint64_t seed) {
  GenLinkConfig config;
  config.population_size = population;
  config.max_iterations = 0;  // initial population only
  config.seeded_population = seeded;
  GenLink learner(task.Source(), task.Target(), config);

  std::vector<double> best, mean;
  Rng master(seed);
  for (size_t run = 0; run < runs; ++run) {
    Rng rng = master.Fork();
    auto folds = task.links.SplitFolds(2, rng);
    auto result = learner.Learn(folds[0], nullptr, rng);
    if (!result.ok()) continue;
    best.push_back(result->trajectory.iterations.front().train_f1);
    mean.push_back(result->initial_population_mean_f1);
  }
  return {ComputeMoments(best), ComputeMoments(mean)};
}

}  // namespace

int main() {
  BenchScale scale = GetBenchScale();

  std::printf("\nTable 14 - Seeding: initial-population F-measure\n");
  std::printf("%-18s %19s %19s   [paper rnd/seeded]\n", "dataset",
              "Random best (s)", "Seeded best (s)");

  std::vector<BenchRecord> records;
  std::vector<MatchingTask> tasks = AllTasks(scale);
  for (size_t t = 0; t < tasks.size(); ++t) {
    const MatchingTask& task = tasks[t];
    SeedingCell random_cell =
        MeasureInitial(task, false, scale.runs, scale.population, 14000 + t);
    SeedingCell seeded_cell =
        MeasureInitial(task, true, scale.runs, scale.population, 14100 + t);
    std::printf("%-18s %11.3f (%4.3f) %11.3f (%4.3f)   [%.3f/%.3f]\n",
                task.name.c_str(), random_cell.best.mean,
                random_cell.best.stddev, seeded_cell.best.mean,
                seeded_cell.best.stddev, kPaper[t].random_f1,
                kPaper[t].seeded_f1);
    // Initial-population measurement: train_f1 is the best-of-initial
    // F1; no trajectory, so iterations is 0 by construction.
    for (bool seeded : {false, true}) {
      BenchRecord record;
      record.dataset = task.name;
      record.system = seeded ? "genlink/seeded-init" : "genlink/random-init";
      record.data_scale = scale.data_scale;
      record.population = scale.population;
      record.iterations = 0;
      record.runs = scale.runs;
      record.train_f1 = (seeded ? seeded_cell : random_cell).best;
      records.push_back(record);
    }
  }
  WriteBenchJson("table14_seeding", scale, records);
  std::printf(
      "\n(The paper's cells are the initial F-measure; larger schemata show\n"
      "larger gains from seeding - the shape to check, not absolute values.)\n");
  return 0;
}
