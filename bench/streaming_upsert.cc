// Streaming-mutation cost of the LiveCorpus layer (live/live_corpus.h):
// what a serving process pays for making its corpus mutable, measured
// on the synthetic person directory with the deterministic delta
// stream (datasets/synthetic.h, GenerateSyntheticDeltas).
//
// Measures:
//   * immutable baseline — per-query MatchEntity p50 on a plain
//     MatcherIndex over the base corpus (what `serve --target` pays
//     per request today);
//   * mutation throughput — ops/s streaming the whole delta batch
//     through ApplyBatch in `genlink apply`-sized chunks;
//   * query p50 under mutation — a query thread races a writer thread
//     that upserts/removes one entity at a time (one snapshot publish
//     per op, the worst-case churn), p50 over the queries issued while
//     the writer runs;
//   * compaction pause — wall time of Compact() folding the full delta
//     log back into the base, while readers would keep serving the
//     previous snapshot.
//
// Doubles as a CI gate, exiting non-zero when either fails:
//   * bit-identity — after the whole stream (and again after
//     compaction) the live corpus must answer a query sample exactly
//     as a fresh MatcherIndex::Build over the materialized logical
//     corpus (ids, scores, order): extra.links_identical, held at 1.0;
//   * bounded slowdown — query p50 under concurrent mutation must stay
//     <= 2x the immutable baseline (extra.p50_within_gate, held at
//     1.0; the measured ratio rides along as extra.slowdown_p50).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/matcher_index.h"
#include "datasets/synthetic.h"
#include "harness.h"
#include "live/live_corpus.h"
#include "matcher/matcher.h"
#include "rule/builder.h"

using namespace genlink;
using namespace genlink::bench;

namespace {

LinkageRule PersonRule() {
  auto rule = RuleBuilder()
                  .Aggregate("max")
                  .Compare("levenshtein", 2.0, Prop("name").Lower(),
                           Prop("name").Lower())
                  .Compare("levenshtein", 1.0, Prop("phone"), Prop("phone"))
                  .End()
                  .Build();
  if (!rule.ok()) {
    std::fprintf(stderr, "rule construction failed: %s\n",
                 rule.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(rule).value();
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// p-th percentile (0..1) of `samples`, by sorting a copy.
double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = lo + 1 < samples.size() ? lo + 1 : lo;
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

bool SameLinks(const std::vector<GeneratedLink>& x,
               const std::vector<GeneratedLink>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].id_a != y[i].id_a || x[i].id_b != y[i].id_b ||
        x[i].score != y[i].score) {
      return false;
    }
  }
  return true;
}

BenchRecord MakeRecord(const char* system, double data_scale, size_t reps,
                       double seconds,
                       std::vector<std::pair<std::string, double>> extra) {
  BenchRecord record;
  record.dataset = "synthetic-person";
  record.system = system;
  record.data_scale = data_scale;
  record.runs = reps;
  record.seconds = {seconds, 0.0};
  record.extra = std::move(extra);
  return record;
}

}  // namespace

int main() {
  const BenchScale scale = GetBenchScale();
  const bool smoke = scale.name == "smoke";
  const double max_slowdown = 2.0;

  SyntheticConfig config;
  config.num_entities = smoke ? 2000 : 20000;
  config.num_threads = 0;
  SyntheticDeltaConfig delta_config;
  delta_config.base = config;
  delta_config.num_deltas = smoke ? 800 : 5000;
  const MatchingTask task = GenerateSynthetic(config);
  const SyntheticDeltas deltas = GenerateSyntheticDeltas(delta_config);
  const LinkageRule rule = PersonRule();

  MatchOptions options;
  options.num_threads = 1;

  std::vector<LiveOp> ops;
  ops.reserve(deltas.ops.size());
  for (const SyntheticDelta& delta : deltas.ops) {
    LiveOp op;
    if (delta.remove) {
      op.kind = LiveOp::Kind::kRemove;
      op.id = delta.entity.id();
    } else {
      op.entity = delta.entity;
    }
    ops.push_back(std::move(op));
  }

  const size_t sample = smoke ? 200 : 400;
  std::vector<Entity> queries(task.a.entities().begin(),
                              task.a.entities().begin() + sample);

  // Immutable baseline: per-query p50 against a frozen MatcherIndex
  // over the base corpus.
  const auto baseline_index = MatcherIndex::Build(task.b, rule, options);
  std::vector<double> baseline_us;
  baseline_us.reserve(queries.size());
  for (const Entity& query : queries) {
    const auto start = std::chrono::steady_clock::now();
    baseline_index->MatchEntity(query, task.a.schema());
    baseline_us.push_back(Seconds(start) * 1e6);
  }
  const double p50_immutable_us = Percentile(baseline_us, 0.5);
  std::printf("streaming: %zu entities, immutable query p50 %.1fus\n",
              task.b.size(), p50_immutable_us);

  // Mutation throughput: the full delta stream through ApplyBatch in
  // `genlink apply`-sized chunks (one snapshot publish per batch).
  auto live = LiveCorpus::Create(task.b, rule, options);
  if (!live.ok()) {
    std::fprintf(stderr, "LiveCorpus::Create failed: %s\n",
                 live.status().ToString().c_str());
    return 1;
  }
  const size_t batch_size = 100;
  size_t batches = 0;
  const auto apply_start = std::chrono::steady_clock::now();
  for (size_t offset = 0; offset < ops.size(); offset += batch_size) {
    const size_t count = std::min(batch_size, ops.size() - offset);
    const Status applied = (*live)->ApplyBatch(
        std::span<const LiveOp>(ops).subspan(offset, count), deltas.schema);
    if (!applied.ok()) {
      std::fprintf(stderr, "ApplyBatch failed at offset %zu: %s\n", offset,
                   applied.ToString().c_str());
      return 1;
    }
    ++batches;
  }
  const double apply_seconds = Seconds(apply_start);
  const double ops_per_second =
      apply_seconds > 0.0 ? static_cast<double>(ops.size()) / apply_seconds
                          : 0.0;
  const LiveCorpusStats applied_stats = (*live)->stats();
  std::printf(
      "streaming: %zu ops in %zu batches, %.3fs (%.0f ops/s), epoch %llu, "
      "%zu live entities\n",
      ops.size(), batches, apply_seconds, ops_per_second,
      static_cast<unsigned long long>(applied_stats.epoch),
      applied_stats.live_entities);

  // Bit-identity after the whole stream: the live view must answer the
  // sample exactly as a fresh build over the materialized logical
  // corpus.
  auto logical = (*live)->MaterializeLogical();
  if (!logical.ok()) {
    std::fprintf(stderr, "MaterializeLogical failed: %s\n",
                 logical.status().ToString().c_str());
    return 1;
  }
  const auto fresh_index = MatcherIndex::Build(*logical, rule, options);
  const auto fresh_links = fresh_index->MatchBatch(queries, task.a.schema());
  const auto live_links = (*live)->MatchBatch(queries, task.a.schema());
  const bool identical_streamed = SameLinks(fresh_links, live_links);

  // Compaction pause: fold the full delta log back into the base.
  const size_t compacted_entries = applied_stats.delta_log_entries;
  const auto compact_start = std::chrono::steady_clock::now();
  const Status compacted = (*live)->Compact();
  const double compact_seconds = Seconds(compact_start);
  if (!compacted.ok()) {
    std::fprintf(stderr, "Compact failed: %s\n",
                 compacted.ToString().c_str());
    return 1;
  }
  const auto compacted_links = (*live)->MatchBatch(queries, task.a.schema());
  const bool identical_compacted = SameLinks(fresh_links, compacted_links);
  const bool identical = identical_streamed && identical_compacted;
  std::printf(
      "streaming: %zu sample queries -> %zu links, identical=%d "
      "(streamed=%d compacted=%d), compaction %.4fs over %zu log entries\n",
      sample, fresh_links.size(), identical ? 1 : 0, identical_streamed ? 1 : 0,
      identical_compacted ? 1 : 0, compact_seconds, compacted_entries);

  // Query p50 under mutation: a fresh live corpus, a writer thread
  // replaying the stream one op at a time (one publish per op — the
  // worst-case snapshot churn), and the query thread measuring only
  // while the writer runs.
  auto racing = LiveCorpus::Create(task.b, rule, options);
  if (!racing.ok()) {
    std::fprintf(stderr, "LiveCorpus::Create (racing) failed: %s\n",
                 racing.status().ToString().c_str());
    return 1;
  }
  std::atomic<bool> writer_done{false};
  std::atomic<bool> writer_failed{false};
  std::thread writer([&] {
    for (const LiveOp& op : ops) {
      const Status status = op.kind == LiveOp::Kind::kRemove
                                ? (*racing)->Remove(op.id)
                                : (*racing)->Upsert(op.entity, deltas.schema);
      if (!status.ok()) {
        std::fprintf(stderr, "writer failed: %s\n", status.ToString().c_str());
        writer_failed.store(true);
        break;
      }
    }
    writer_done.store(true);
  });
  std::vector<double> racing_us;
  const size_t min_racing_queries = 100;
  size_t next_query = 0;
  while (!writer_done.load() || racing_us.size() < min_racing_queries) {
    const Entity& query = queries[next_query];
    next_query = (next_query + 1) % queries.size();
    const auto start = std::chrono::steady_clock::now();
    (*racing)->MatchEntity(query, task.a.schema());
    racing_us.push_back(Seconds(start) * 1e6);
  }
  writer.join();
  if (writer_failed.load()) return 1;
  const double p50_live_us = Percentile(racing_us, 0.5);
  const double slowdown =
      p50_immutable_us > 0.0 ? p50_live_us / p50_immutable_us : 0.0;
  const bool within_gate = slowdown <= max_slowdown;
  std::printf(
      "streaming: %zu queries under mutation, p50 %.1fus (%.2fx immutable, "
      "gate %.1fx)\n",
      racing_us.size(), p50_live_us, slowdown, max_slowdown);

  std::vector<BenchRecord> records;
  records.push_back(MakeRecord(
      "streaming/immutable-baseline", config.num_entities, 1,
      p50_immutable_us * 1e-6,
      {{"entities", static_cast<double>(task.b.size())},
       {"sample_queries", static_cast<double>(queries.size())},
       {"p50_us", p50_immutable_us}}));
  records.push_back(MakeRecord(
      "streaming/apply-batch", config.num_entities, 1, apply_seconds,
      {{"ops_per_second", ops_per_second},
       {"deltas", static_cast<double>(ops.size())},
       {"batches", static_cast<double>(batches)},
       {"live_entities", static_cast<double>(applied_stats.live_entities)}}));
  records.push_back(MakeRecord(
      "streaming/query-under-mutation", config.num_entities, 1,
      p50_live_us * 1e-6,
      {{"p50_us", p50_live_us},
       {"slowdown_p50", slowdown},
       {"p50_within_gate", within_gate ? 1.0 : 0.0},
       {"queries_measured", static_cast<double>(racing_us.size())}}));
  records.push_back(MakeRecord(
      "streaming/compaction", config.num_entities, 1, compact_seconds,
      {{"compacted_log_entries", static_cast<double>(compacted_entries)},
       {"links_identical", identical ? 1.0 : 0.0},
       {"sample_links", static_cast<double>(fresh_links.size())}}));
  WriteBenchJson("streaming_upsert", scale, records);

  int exit_code = 0;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: live corpus diverged from a fresh build of the "
                 "logical corpus (streamed=%d compacted=%d)\n",
                 identical_streamed ? 1 : 0, identical_compacted ? 1 : 0);
    exit_code = 1;
  }
  if (fresh_links.empty()) {
    std::fprintf(stderr, "FAIL: query sample produced no links\n");
    exit_code = 1;
  }
  if (!within_gate) {
    std::fprintf(stderr,
                 "FAIL: query p50 under mutation %.2fx immutable, above the "
                 "%.1fx gate\n",
                 slowdown, max_slowdown);
    exit_code = 1;
  }
  return exit_code;
}
