#include "harness.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "datasets/cora.h"
#include "datasets/dbpedia_drugbank.h"
#include "datasets/linkedmdb.h"
#include "datasets/nyt.h"
#include "datasets/restaurant.h"
#include "datasets/sider_drugbank.h"
#include "io/csv.h"

namespace genlink {
namespace bench {

BenchScale GetBenchScale() {
  const char* env = std::getenv("GENLINK_BENCH_SCALE");
  BenchScale scale;
  if (env != nullptr && std::strcmp(env, "paper") == 0) {
    scale = {"paper", 1.0, 500, 50, 10};
  } else if (env != nullptr && std::strcmp(env, "smoke") == 0) {
    scale = {"smoke", 0.1, 50, 5, 1};
  } else {
    scale = {"default", 0.25, 150, 25, 3};
  }
  std::printf("bench scale: %s (data x%.2f, population %zu, %zu iterations, "
              "%zu runs)\n",
              scale.name.c_str(), scale.data_scale, scale.population,
              scale.iterations, scale.runs);
  return scale;
}

GenLinkConfig MakeGenLinkConfig(const BenchScale& scale) {
  GenLinkConfig config;
  config.population_size = scale.population;
  config.max_iterations = scale.iterations;
  return config;
}

CrossValidationResult RunGenLinkCv(const MatchingTask& task,
                                   const GenLinkConfig& config, size_t runs,
                                   uint64_t seed) {
  GenLink learner(task.Source(), task.Target(), config);
  CrossValidationConfig cv;
  cv.num_runs = runs;
  cv.seed = seed;
  return RunCrossValidation(
      task.links, cv,
      [&](const ReferenceLinkSet& train, const ReferenceLinkSet& val,
          Rng& rng) -> RunTrajectory {
        auto result = learner.Learn(train, &val, rng);
        if (!result.ok()) {
          std::fprintf(stderr, "learn failed: %s\n",
                       result.status().ToString().c_str());
          return {};
        }
        return std::move(result->trajectory);
      });
}

CrossValidationResult RunCarvalhoCv(const MatchingTask& task,
                                    const CarvalhoConfig& config, size_t runs,
                                    uint64_t seed) {
  CarvalhoGP learner(task.Source(), task.Target(), config);
  CrossValidationConfig cv;
  cv.num_runs = runs;
  cv.seed = seed;
  return RunCrossValidation(
      task.links, cv,
      [&](const ReferenceLinkSet& train, const ReferenceLinkSet& val,
          Rng& rng) -> RunTrajectory {
        auto result = learner.Learn(train, &val, rng);
        if (!result.ok()) {
          std::fprintf(stderr, "baseline failed: %s\n",
                       result.status().ToString().c_str());
          return {};
        }
        return std::move(result->trajectory);
      });
}

void PrintTrajectoryTable(const std::string& title,
                          const CrossValidationResult& result,
                          const std::vector<size_t>& checkpoints,
                          const std::vector<PaperRow>& paper_rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%5s  %16s  %16s  %16s", "Iter.", "Time in s (s)",
              "Train. F1 (s)", "Val. F1 (s)");
  if (!paper_rows.empty()) std::printf("  %13s  %13s", "[paper train]", "[paper val]");
  std::printf("\n");

  for (size_t checkpoint : checkpoints) {
    if (result.iterations.empty()) break;
    size_t max_iter = result.iterations.back().iteration;
    if (checkpoint > max_iter && checkpoint != checkpoints.front()) {
      // Converged runs: the final row already covers this checkpoint.
      continue;
    }
    const AggregatedIteration* row = result.FindIteration(checkpoint);
    if (row == nullptr) continue;
    std::printf("%5zu  %8.1f (%5.1f)  %8.3f (%5.3f)  %8.3f (%5.3f)",
                checkpoint, row->seconds.mean, row->seconds.stddev,
                row->train_f1.mean, row->train_f1.stddev, row->val_f1.mean,
                row->val_f1.stddev);
    for (const PaperRow& paper : paper_rows) {
      if (paper.iteration == checkpoint) {
        std::printf("  %13.3f  %13.3f", paper.train_f1, paper.val_f1);
      }
    }
    std::printf("\n");
  }
}

void PrintReferenceLine(const std::string& system, double f1) {
  std::printf("%-24s F1 = %.3f\n", system.c_str(), f1);
}

std::vector<size_t> StandardCheckpoints(size_t max_iterations) {
  std::vector<size_t> checkpoints;
  for (size_t i : {0UL, 1UL, 5UL, 10UL, 20UL, 25UL, 30UL, 40UL, 50UL}) {
    if (i <= max_iterations) checkpoints.push_back(i);
  }
  return checkpoints;
}

namespace {

// JSON helpers: minimal, but NaN/Inf-safe (JSON has no literals for
// them; they become null) and string-escaping for names.

void AppendJsonNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out += buffer;
}

void AppendJsonString(std::string& out, const std::string& value) {
  out += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out += c;
  }
  out += '"';
}

void AppendJsonMoments(std::string& out, const char* key,
                       const Moments& moments) {
  out += '"';
  out += key;
  out += "\": {\"mean\": ";
  AppendJsonNumber(out, moments.mean);
  out += ", \"stddev\": ";
  AppendJsonNumber(out, moments.stddev);
  out += '}';
}

}  // namespace

BenchRecord MakeBenchRecord(std::string dataset, std::string system,
                            const BenchScale& scale,
                            const CrossValidationResult& result) {
  BenchRecord record;
  record.dataset = std::move(dataset);
  record.system = std::move(system);
  record.data_scale = scale.data_scale;
  record.population = scale.population;
  record.iterations = scale.iterations;
  record.runs = scale.runs;
  if (!result.iterations.empty()) {
    const AggregatedIteration& last = result.iterations.back();
    record.iterations = last.iteration;  // actual, may be < scale.iterations
    record.train_f1 = last.train_f1;
    record.val_f1 = last.val_f1;
    record.seconds = last.seconds;
  }
  return record;
}

bool WriteBenchJson(const std::string& name, const BenchScale& scale,
                    const std::vector<BenchRecord>& records) {
  std::string json = "{\n  \"bench\": ";
  AppendJsonString(json, name);
  json += ",\n  \"scale\": ";
  AppendJsonString(json, scale.name);
  json += ",\n  \"records\": [";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& record = records[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\"dataset\": ";
    AppendJsonString(json, record.dataset);
    json += ", \"system\": ";
    AppendJsonString(json, record.system);
    json += ",\n     \"config\": {\"data_scale\": ";
    AppendJsonNumber(json, record.data_scale);
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  ", \"population\": %zu, \"iterations\": %zu, \"runs\": %zu}",
                  record.population, record.iterations, record.runs);
    json += buffer;
    json += ",\n     ";
    AppendJsonMoments(json, "train_f1", record.train_f1);
    json += ", ";
    AppendJsonMoments(json, "val_f1", record.val_f1);
    json += ", ";
    AppendJsonMoments(json, "seconds", record.seconds);
    if (!record.extra.empty()) {
      json += ",\n     \"extra\": {";
      for (size_t e = 0; e < record.extra.size(); ++e) {
        if (e > 0) json += ", ";
        AppendJsonString(json, record.extra[e].first);
        json += ": ";
        AppendJsonNumber(json, record.extra[e].second);
      }
      json += '}';
    }
    json += '}';
  }
  json += "\n  ]\n}\n";

  const std::string path = "BENCH_" + name + ".json";
  Status status = WriteStringToFile(path, json);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: cannot write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return false;
  }
  std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());
  return true;
}

std::vector<MatchingTask> AllTasks(const BenchScale& scale) {
  double small_scale = scale.name == "smoke" ? 0.4 : 1.0;
  std::vector<MatchingTask> tasks;
  {
    CoraConfig config;
    config.scale = scale.data_scale;
    tasks.push_back(GenerateCora(config));
  }
  {
    RestaurantConfig config;
    config.scale = small_scale;
    tasks.push_back(GenerateRestaurant(config));
  }
  {
    SiderDrugbankConfig config;
    config.scale = scale.data_scale;
    tasks.push_back(GenerateSiderDrugbank(config));
  }
  {
    NytConfig config;
    config.scale = scale.data_scale;
    tasks.push_back(GenerateNyt(config));
  }
  {
    LinkedMdbConfig config;
    config.scale = small_scale;
    tasks.push_back(GenerateLinkedMdb(config));
  }
  {
    DbpediaDrugbankConfig config;
    config.scale = scale.data_scale;
    tasks.push_back(GenerateDbpediaDrugbank(config));
  }
  return tasks;
}

}  // namespace bench
}  // namespace genlink
