// Cold-start latency: serving a corpus from the mmap-able v2 artifact
// (io/corpus_artifact.h) against re-parsing CSV and rebuilding the
// execution artifacts from scratch — the cost `genlink serve --index`
// removes from every process start and every horizontal-scale-out.
//
// Measures, on the synthetic person-directory corpus (100k entities at
// default scale, 5k in smoke):
//   * fresh path: read + parse CSV, MatcherIndex::Build (value-store
//     plans, token-blocking postings) — what `serve --target` pays;
//   * one-time `genlink index` cost: WriteCorpusArtifact wall time and
//     artifact size;
//   * mapped path: MappedCorpus::Load (with checksum verification) +
//     MatcherIndex::Build over the mapping — what `serve --index` pays.
//
// Doubles as a CI gate, exiting non-zero when either fails:
//   * bit-identity — the mapped index must answer a query sample
//     exactly as the freshly built one (ids, scores, order), pinning
//     the artifact's value ids/interning order to a fresh build
//     (extra.links_identical, held at 1.0);
//   * cold-start speedup — the mapped path must stay >= 20x faster
//     than the fresh path (>= 5x in smoke, where the corpus is small
//     enough that constant costs dominate); the measured ratio is
//     tracked machine-independently as extra.coldstart_speedup in
//     BENCH_coldstart.json.

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/matcher_index.h"
#include "datasets/synthetic.h"
#include "harness.h"
#include "io/corpus_artifact.h"
#include "io/csv.h"
#include "matcher/matcher.h"
#include "rule/builder.h"

using namespace genlink;
using namespace genlink::bench;

namespace {

LinkageRule PersonRule() {
  auto rule = RuleBuilder()
                  .Aggregate("max")
                  .Compare("levenshtein", 2.0, Prop("name").Lower(),
                           Prop("name").Lower())
                  .Compare("levenshtein", 1.0, Prop("phone"), Prop("phone"))
                  .End()
                  .Build();
  if (!rule.ok()) {
    std::fprintf(stderr, "rule construction failed: %s\n",
                 rule.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(rule).value();
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string DatasetToCsv(const Dataset& dataset) {
  const Schema& schema = dataset.schema();
  std::vector<std::string> row;
  row.push_back("id");
  for (const std::string& name : schema.property_names()) row.push_back(name);
  std::string csv = WriteCsv({row});
  for (const Entity& entity : dataset.entities()) {
    row.clear();
    row.push_back(entity.id());
    for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
      const ValueSet& values = entity.Values(p);
      row.push_back(values.empty() ? std::string() : values.front());
    }
    csv += WriteCsv({row});
  }
  return csv;
}

bool SameLinks(const std::vector<GeneratedLink>& x,
               const std::vector<GeneratedLink>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].id_a != y[i].id_a || x[i].id_b != y[i].id_b ||
        x[i].score != y[i].score) {
      return false;
    }
  }
  return true;
}

BenchRecord MakeRecord(const char* system, double data_scale, size_t reps,
                       double seconds,
                       std::vector<std::pair<std::string, double>> extra) {
  BenchRecord record;
  record.dataset = "synthetic-person";
  record.system = system;
  record.data_scale = data_scale;
  record.runs = reps;
  record.seconds = {seconds, 0.0};
  record.extra = std::move(extra);
  return record;
}

}  // namespace

int main() {
  const BenchScale scale = GetBenchScale();
  const bool smoke = scale.name == "smoke";
  const double required_speedup = smoke ? 5.0 : 20.0;
  SyntheticConfig config;
  config.num_entities = smoke ? 5000 : 100000;
  config.num_threads = 0;
  const MatchingTask task = GenerateSynthetic(config);
  const LinkageRule rule = PersonRule();
  const size_t reps = 3;

  MatchOptions options;
  options.num_threads = 1;

  // The corpus as `serve --target` would read it, staged on disk.
  const std::string csv_path = "coldstart_corpus.csv";
  const std::string index_path = "coldstart_corpus.glidx";
  {
    const Status staged = WriteStringToFile(csv_path, DatasetToCsv(task.b));
    if (!staged.ok()) {
      std::fprintf(stderr, "cannot stage corpus: %s\n",
                   staged.ToString().c_str());
      return 1;
    }
  }

  // Fresh path: parse + build, everything from bytes. Best of reps.
  // The last rep's corpus outlives the loop: the bit-identity sample
  // below queries an index built over it.
  double fresh_seconds = 0.0;
  std::optional<Dataset> kept;
  std::shared_ptr<const MatcherIndex> fresh_index;
  for (size_t r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    auto content = ReadFileToString(csv_path);
    if (!content.ok()) {
      std::fprintf(stderr, "read failed: %s\n",
                   content.status().ToString().c_str());
      return 1;
    }
    CsvDatasetOptions csv_options;
    csv_options.id_column = "id";
    auto corpus = ReadCsvDataset(*content, "corpus", csv_options);
    if (!corpus.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   corpus.status().ToString().c_str());
      return 1;
    }
    fresh_index.reset();
    kept.emplace(std::move(*corpus));
    fresh_index = MatcherIndex::Build(*kept, rule, options);
    const double elapsed = Seconds(start);
    if (r == 0 || elapsed < fresh_seconds) fresh_seconds = elapsed;
  }
  std::printf("coldstart: %zu entities, fresh parse+build %.4fs\n",
              task.b.size(), fresh_seconds);

  // One-time index cost (`genlink index`). Indexes the CSV-parsed
  // corpus — the exact dataset the fresh path serves — so the
  // bit-identity gate compares like with like.
  CorpusArtifactStats stats;
  const auto write_start = std::chrono::steady_clock::now();
  const Status written =
      WriteCorpusArtifact(index_path, *kept, rule, options, nullptr, &stats);
  const double write_seconds = Seconds(write_start);
  if (!written.ok()) {
    std::fprintf(stderr, "index write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  std::printf("coldstart: index written in %.4fs (%.1f MiB, %llu tokens)\n",
              write_seconds,
              static_cast<double>(stats.file_bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(stats.num_tokens));

  // Mapped path: load (checksum verified) + build. Best of reps.
  double mapped_seconds = 0.0;
  std::shared_ptr<const MatcherIndex> mapped_index;
  for (size_t r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    auto mapped = MappedCorpus::Load(index_path);
    if (!mapped.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   mapped.status().ToString().c_str());
      return 1;
    }
    auto index = MatcherIndex::Build(*mapped, rule, options);
    if (!index.ok()) {
      std::fprintf(stderr, "mapped build failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    const double elapsed = Seconds(start);
    if (r == 0 || elapsed < mapped_seconds) mapped_seconds = elapsed;
    mapped_index = std::move(*index);
  }
  const double speedup =
      mapped_seconds > 0.0 ? fresh_seconds / mapped_seconds : 0.0;
  std::printf("coldstart: mapped load+build %.4fs (%.1fx faster)\n",
              mapped_seconds, speedup);

  // Bit-identity over a query sample: every source entity in the
  // sample must get exactly the same links from both indexes.
  const size_t sample =
      task.a.size() < size_t{500} ? task.a.size() : size_t{500};
  std::vector<Entity> queries(task.a.entities().begin(),
                              task.a.entities().begin() + sample);
  const auto fresh_links = fresh_index->MatchBatch(queries, task.a.schema());
  const auto mapped_links = mapped_index->MatchBatch(queries, task.a.schema());
  const bool identical = SameLinks(fresh_links, mapped_links);
  std::printf("coldstart: %zu sample queries -> %zu links, identical=%d\n",
              sample, fresh_links.size(), identical ? 1 : 0);

  std::vector<BenchRecord> records;
  records.push_back(MakeRecord(
      "coldstart/fresh-parse-build", config.num_entities, reps, fresh_seconds,
      {{"entities", static_cast<double>(task.b.size())}}));
  records.push_back(MakeRecord(
      "coldstart/index-write", config.num_entities, 1, write_seconds,
      {{"file_mib", static_cast<double>(stats.file_bytes) / (1024.0 * 1024.0)},
       {"tokens", static_cast<double>(stats.num_tokens)}}));
  records.push_back(MakeRecord(
      "coldstart/mapped-load-build", config.num_entities, reps, mapped_seconds,
      {{"coldstart_speedup", speedup},
       {"links_identical", identical ? 1.0 : 0.0},
       {"sample_links", static_cast<double>(fresh_links.size())}}));
  WriteBenchJson("coldstart", scale, records);

  std::remove(csv_path.c_str());
  std::remove(index_path.c_str());

  int exit_code = 0;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: mapped index diverged from the fresh build on the "
                 "query sample\n");
    exit_code = 1;
  }
  if (fresh_links.empty()) {
    std::fprintf(stderr, "FAIL: query sample produced no links\n");
    exit_code = 1;
  }
  if (speedup < required_speedup) {
    std::fprintf(stderr,
                 "FAIL: cold-start speedup %.1fx below the %.0fx gate\n",
                 speedup, required_speedup);
    exit_code = 1;
  }
  return exit_code;
}
