// Ablation for the one documented deviation from the paper's text: the
// parsimony constant. The paper prints fitness = MCC - 0.05*operators;
// this bench measures learning on Cora under 0.05 (literal), 0.005 (our
// default) and 0 (no pressure), reporting final validation F1 and rule
// sizes. Expected shape (DESIGN.md §3): the literal constant collapses
// rules to single comparisons and caps F1; 0.005 reaches the paper's
// quality with compact rules; 0 reaches similar F1 with visibly larger
// rules (bloat).

#include <cstdio>

#include "datasets/cora.h"
#include "harness.h"

using namespace genlink;
using namespace genlink::bench;

int main() {
  BenchScale scale = GetBenchScale();

  CoraConfig data;
  data.scale = scale.data_scale;
  MatchingTask task = GenerateCora(data);
  std::printf("cora: %zu citations, %zu/%zu links\n", task.a.size(),
              task.links.positives().size(), task.links.negatives().size());

  std::printf("\nParsimony ablation (fitness = MCC - w * operators)\n");
  std::printf("%10s  %14s  %14s  %16s\n", "w", "train F1 (s)", "val F1 (s)",
              "best-rule ops (s)");

  std::vector<BenchRecord> records;
  for (double weight : {0.05, 0.005, 0.0}) {
    GenLinkConfig config = MakeGenLinkConfig(scale);
    config.fitness.parsimony_weight = weight;
    CrossValidationResult result = RunGenLinkCv(
        task, config, scale.runs, /*seed=*/16001 + static_cast<uint64_t>(weight * 1000));
    const AggregatedIteration& last = result.iterations.back();
    std::printf("%10.3f  %6.3f (%5.3f)  %6.3f (%5.3f)  %8.1f (%5.1f)\n", weight,
                last.train_f1.mean, last.train_f1.stddev, last.val_f1.mean,
                last.val_f1.stddev, last.best_operators.mean,
                last.best_operators.stddev);
    char system[32];
    std::snprintf(system, sizeof(system), "genlink/w=%.3f", weight);
    records.push_back(MakeBenchRecord("cora", system, scale, result));
  }
  WriteBenchJson("ablation_parsimony", scale, records);
  std::printf(
      "\n(0.05 is the paper's printed constant; 0.005 is this library's\n"
      "default - see DESIGN.md §3 for why the literal value cannot be what\n"
      "the original implementation used.)\n");
  return 0;
}
