// Thread-scaling of the evaluation engine (eval/engine.h): one
// Restaurant learning run per thread count, identical seed, measuring
// wall time and asserting that the learned rule and F1 do not depend on
// the thread count (the engine's determinism invariant).
//
// Emits BENCH_scaling_threads.json with one record per thread count;
// `extra` carries the thread count, the measured speedup vs the
// single-thread run, and whether the learned rule matched the 1-thread
// rule bit for bit. Exit status is non-zero when determinism is
// violated, so CI's bench-smoke step doubles as a regression gate.
//
// Interpreting the speedup requires knowing the hardware: the engine
// parallelizes over individuals and distance rows with no serial
// reduction, so on an N-core machine the speedup approaches
// min(threads, N). `extra.hardware_concurrency` records what the
// machine offered; on a single-core container all speedups are ~1.

#include <chrono>
#include <cstdio>
#include <thread>

#include "datasets/restaurant.h"
#include "harness.h"
#include "rule/rule_hash.h"
#include "rule/serialize.h"

using namespace genlink;
using namespace genlink::bench;

namespace {

struct RunMeasurement {
  size_t threads = 0;
  bool cached = true;
  bool ok = false;
  double seconds = 0.0;
  double train_f1 = 0.0;
  double val_f1 = 0.0;
  uint64_t rule_hash = 0;
  std::string rule_sexpr;
};

RunMeasurement RunOnce(const MatchingTask& task, const BenchScale& scale,
                       size_t threads, bool cached) {
  GenLinkConfig config = MakeGenLinkConfig(scale);
  config.num_threads = threads;
  config.cache_fitness = cached;
  config.cache_distances = cached;
  // Disable early stopping: Restaurant reaches full training F1 within
  // a couple of generations, which would leave nothing to measure. A
  // scaling bench needs fixed work per configuration.
  config.stop_f_measure = 1.1;

  // Same seed for every thread count: fold split and evolution draw
  // from the same stream, so any divergence comes from evaluation.
  Rng rng(/*seed=*/8003);
  auto folds = task.links.SplitFolds(2, rng);
  GenLink learner(task.Source(), task.Target(), config);

  auto start = std::chrono::steady_clock::now();
  auto result = learner.Learn(folds[0], &folds[1], rng);
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();

  RunMeasurement m;
  m.threads = threads;
  m.cached = cached;
  m.seconds = elapsed;
  if (!result.ok()) {
    std::fprintf(stderr, "learn failed at %zu threads: %s\n", threads,
                 result.status().ToString().c_str());
    return m;
  }
  m.ok = true;
  const IterationStats& last = result->trajectory.iterations.back();
  m.train_f1 = last.train_f1;
  m.val_f1 = last.val_f1;
  m.rule_hash = CanonicalRuleHash(result->best_rule);
  m.rule_sexpr = ToSexpr(result->best_rule);
  std::printf(
      "%-8s threads=%zu  %6.2fs  train F1 %.3f  val F1 %.3f  "
      "fitness-hit %4.1f%%  distance-row-hit %4.1f%%\n",
      cached ? "cached" : "nocache", threads, elapsed, m.train_f1, m.val_f1,
      100.0 * result->eval_stats.FitnessHitRate(),
      100.0 * result->eval_stats.DistanceRowHitRate());
  return m;
}

}  // namespace

int main() {
  BenchScale scale = GetBenchScale();

  RestaurantConfig data;
  // Restaurant is already small (864 records); only shrink for smoke.
  data.scale = scale.name == "smoke" ? 0.3 : 1.0;
  MatchingTask task = GenerateRestaurant(data);
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("restaurant: %zu records, %zu/%zu reference links, "
              "%u hardware threads\n",
              task.a.size(), task.links.positives().size(),
              task.links.negatives().size(), hardware);

  // Warm-up run so first-touch costs (page faults, allocator growth) do
  // not bias the 1-thread measurement.
  RunOnce(task, scale, 1, /*cached=*/true);

  // Two families: the engine with its caches (the production path) and
  // with caching disabled (every string distance recomputed — the
  // paper's implied cost model, and the workload whose thread-scaling
  // is purest since it is compute-bound).
  std::vector<RunMeasurement> runs;
  for (bool cached : {true, false}) {
    for (size_t threads : {1, 2, 4, 8}) {
      runs.push_back(RunOnce(task, scale, threads, cached));
    }
  }

  auto family_t1_seconds = [&](bool cached) {
    for (const RunMeasurement& m : runs) {
      if (m.cached == cached && m.threads == 1) return m.seconds;
    }
    return 0.0;
  };

  bool deterministic = true;
  std::vector<BenchRecord> records;
  for (const RunMeasurement& m : runs) {
    // Determinism must hold across thread counts AND cache settings:
    // the caches are exact, so every run learns the same rule. A failed
    // run fails the gate too — all-zero measurements must not pass it
    // vacuously.
    bool identical = m.ok && runs.front().ok &&
                     m.rule_hash == runs.front().rule_hash &&
                     m.train_f1 == runs.front().train_f1 &&
                     m.val_f1 == runs.front().val_f1;
    deterministic = deterministic && identical;
    if (!identical && m.ok && runs.front().ok) {
      std::fprintf(stderr,
                   "divergent rule at %s threads=%zu:\n  t1:  %s\n  now: %s\n",
                   m.cached ? "cached" : "nocache", m.threads,
                   runs.front().rule_sexpr.c_str(), m.rule_sexpr.c_str());
    }
    double t1 = family_t1_seconds(m.cached);
    BenchRecord record;
    record.dataset = "restaurant";
    record.system = std::string("genlink/") + (m.cached ? "" : "nocache/") +
                    "threads=" + std::to_string(m.threads);
    record.data_scale = data.scale;
    record.population = scale.population;
    record.iterations = scale.iterations;
    record.runs = 1;
    record.train_f1 = {m.train_f1, 0.0};
    record.val_f1 = {m.val_f1, 0.0};
    record.seconds = {m.seconds, 0.0};
    record.extra = {
        {"threads", static_cast<double>(m.threads)},
        {"cached", m.cached ? 1.0 : 0.0},
        {"speedup_vs_t1", m.seconds > 0.0 ? t1 / m.seconds : 0.0},
        {"rule_identical_to_t1", identical ? 1.0 : 0.0},
        {"hardware_concurrency", static_cast<double>(hardware)},
    };
    records.push_back(std::move(record));
  }

  for (bool cached : {true, false}) {
    std::printf("\n%s speedup vs its 1-thread run:",
                cached ? "cached" : "nocache");
    double t1 = family_t1_seconds(cached);
    for (const RunMeasurement& m : runs) {
      if (m.cached != cached) continue;
      std::printf("  t%zu: %.2fx", m.threads,
                  m.seconds > 0.0 ? t1 / m.seconds : 0.0);
    }
  }
  double cache_win = family_t1_seconds(true) > 0.0
                         ? family_t1_seconds(false) / family_t1_seconds(true)
                         : 0.0;
  std::printf("\ncache speedup at 1 thread: %.2fx\n", cache_win);

  if (!deterministic) {
    std::fprintf(stderr,
                 "ERROR: a run failed or the learned rule/F1 differs across "
                 "thread counts\n");
  } else {
    std::printf("learned rule identical across all thread counts\n");
  }

  WriteBenchJson("scaling_threads", scale, records);
  return deterministic ? 0 : 1;
}
