// Shared infrastructure for the table benches: scale selection (via the
// GENLINK_BENCH_SCALE environment variable), cross-validated learning
// runs, and table printing in the paper's format.
//
// Scales:
//   smoke   - seconds-long sanity run (scale 0.1, pop 50, 5 iterations,
//             1 run)
//   default - minutes-long run preserving the paper's shapes (scale
//             0.25, pop 150, 25 iterations, 3 runs)
//   paper   - the full experimental protocol of Section 6.1 (scale 1.0,
//             pop 500, 50 iterations, 10 runs x 2-fold CV); hours-long
//             on a small machine.

#ifndef GENLINK_BENCH_HARNESS_H_
#define GENLINK_BENCH_HARNESS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "baseline/carvalho_gp.h"
#include "datasets/matching_task.h"
#include "eval/cross_validation.h"
#include "gp/genlink.h"

namespace genlink {
namespace bench {

/// Benchmark scale parameters.
struct BenchScale {
  std::string name;
  double data_scale = 0.25;
  size_t population = 150;
  size_t iterations = 25;
  size_t runs = 3;
};

/// Reads GENLINK_BENCH_SCALE (smoke|default|paper); default when unset.
BenchScale GetBenchScale();

/// Builds a GenLink config from a scale (population/iterations set;
/// other fields at library defaults).
GenLinkConfig MakeGenLinkConfig(const BenchScale& scale);

/// Runs the paper's protocol: `runs` independent 2-fold splits, training
/// GenLink on fold 0 and validating on fold 1.
CrossValidationResult RunGenLinkCv(const MatchingTask& task,
                                   const GenLinkConfig& config, size_t runs,
                                   uint64_t seed);

/// Same protocol for the Carvalho et al. baseline.
CrossValidationResult RunCarvalhoCv(const MatchingTask& task,
                                    const CarvalhoConfig& config, size_t runs,
                                    uint64_t seed);

/// A reference row from the paper for side-by-side printing.
struct PaperRow {
  size_t iteration;
  double train_f1;
  double val_f1;
};

/// Prints the per-iteration table in the paper's format:
///   Iter.  Time in s (σ)  Train. F1 (σ)  Val. F1 (σ)  [paper columns]
/// `checkpoints` selects the iterations to print (missing ones are
/// skipped); `paper_rows` may be empty.
void PrintTrajectoryTable(const std::string& title,
                          const CrossValidationResult& result,
                          const std::vector<size_t>& checkpoints,
                          const std::vector<PaperRow>& paper_rows);

/// Prints a one-line reference entry (e.g. the OAEI baselines).
void PrintReferenceLine(const std::string& system, double f1);

/// The paper's standard checkpoints for Tables 7-12.
std::vector<size_t> StandardCheckpoints(size_t max_iterations);

/// Generates all six evaluation tasks at the bench scale (the small
/// data sets Restaurant and LinkedMDB stay at full size except in smoke
/// mode), in the paper's order: cora, restaurant, sider-drugbank, nyt,
/// linkedmdb, dbpedia-drugbank.
std::vector<MatchingTask> AllTasks(const BenchScale& scale);

// ------------------------------------------------------------------
// Machine-readable records. Every table bench writes a
// BENCH_<name>.json file next to the tables it prints so later PRs
// have a baseline to compare against (and CI can archive them).

/// One measured configuration: a (dataset, system) pair with its
/// config knobs and final quality/latency numbers.
struct BenchRecord {
  std::string dataset;   // e.g. "restaurant"
  std::string system;    // e.g. "genlink", "carvalho", "genlink/boolean"
  double data_scale = 1.0;
  size_t population = 0;
  size_t iterations = 0;
  size_t runs = 0;
  Moments train_f1;
  Moments val_f1;
  Moments seconds;       // cumulative wall time at the final iteration
  /// Bench-specific numeric fields, serialized under "extra" (omitted
  /// when empty). E.g. scaling_threads records threads and speedups.
  std::vector<std::pair<std::string, double>> extra;
};

/// Builds a record from the final aggregated iteration of `result`
/// (zeros when the result is empty).
BenchRecord MakeBenchRecord(std::string dataset, std::string system,
                            const BenchScale& scale,
                            const CrossValidationResult& result);

/// Serializes `records` (with the scale echoed for reproducibility) and
/// writes BENCH_<name>.json into the current working directory.
/// Returns false and warns on stderr if the file cannot be written.
bool WriteBenchJson(const std::string& name, const BenchScale& scale,
                    const std::vector<BenchRecord>& records);

}  // namespace bench
}  // namespace genlink

#endif  // GENLINK_BENCH_HARNESS_H_
