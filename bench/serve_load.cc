// Closed-loop load generator for the serve daemon (serve/server.h):
// real sockets against a live ServeDaemon on 127.0.0.1, driven in two
// phases, doubling as a CI gate (exits non-zero when any gate fails):
//
//   * capacity — as many closed-loop clients as worker threads; every
//     request must succeed (200) with the exact bytes a direct
//     MatchBatch produces.
//   * 2x overload — twice the daemon's maximum in-flight capacity
//     (workers + queue slots) in closed-loop clients. Admission
//     control MUST shed (503 + Retry-After; clients back off and
//     retry), no accepted request may fail, and the p99 of successful
//     requests must stay inside the request deadline — the daemon
//     degrades by turning traffic away, never by serving garbage or
//     letting latency run away.
//
// After the load, the daemon is drained (the SIGTERM path) and the
// drain must be clean: no in-flight request aborted.
//
// Writes BENCH_serve_load.json. The gate metrics (accepted_ok,
// shed_happened, p99_within_deadline, links_identical, drain_clean)
// are 0/1 and machine-independent, so tools/compare_bench_json.py can
// hold them at ratio 1.0 across hosts; absolute throughput and
// latency are recorded alongside for the curious.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness.h"
#include "io/artifact.h"
#include "io/csv.h"
#include "io/link_io.h"
#include "model/dataset.h"
#include "rule/builder.h"
#include "serve/http.h"
#include "serve/server.h"
#include "serve/serving_state.h"

using namespace genlink;
using namespace genlink::bench;

namespace {

Dataset MakeCorpus(size_t n) {
  Dataset dataset("corpus");
  PropertyId name = dataset.schema().AddProperty("name");
  PropertyId city = dataset.schema().AddProperty("city");
  const char* cities[] = {"berlin", "mannheim", "leipzig", "hamburg"};
  for (size_t i = 0; i < n; ++i) {
    Entity entity("e" + std::to_string(i));
    entity.AddValue(name, "record number " + std::to_string(i / 2));
    entity.AddValue(city, cities[i % 4]);
    if (!dataset.AddEntity(std::move(entity)).ok()) std::abort();
  }
  return dataset;
}

LinkageRule ServeRule() {
  auto rule = RuleBuilder()
                  .Compare("jaccard", 0.5, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Build();
  if (!rule.ok()) {
    std::fprintf(stderr, "rule construction failed: %s\n",
                 rule.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(rule).value();
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct PhaseResult {
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  uint64_t mismatched = 0;
  double wall_seconds = 0.0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Runs `clients` closed-loop client threads against the daemon until
/// `attempts` requests have been attempted. A 503 is counted as shed
/// and retried after a short backoff; anything other than 200/503 (or
/// a transport error) is a failure. Every 200 body is compared against
/// its precomputed expected bytes.
PhaseResult RunPhase(uint16_t port, size_t clients, uint64_t attempts,
                     const std::vector<std::string>& queries,
                     const std::vector<std::string>& expected) {
  PhaseResult result;
  // Signed so the post-zero fetch_subs of racing clients go negative
  // instead of wrapping to a huge budget.
  std::atomic<int64_t> budget{static_cast<int64_t>(attempts)};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> mismatched{0};
  std::vector<std::vector<double>> latencies(clients);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      size_t i = c;  // deterministic per-client query rotation
      while (budget.fetch_sub(1, std::memory_order_relaxed) > 0) {
        const size_t q = i++ % queries.size();
        const auto request_start = std::chrono::steady_clock::now();
        auto response = HttpCall(port, "POST", "/match", queries[q]);
        if (!response.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (response->status == 503) {
          shed.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
        if (response->status != 200) {
          failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        latencies[c].push_back(Seconds(request_start));
        ok.fetch_add(1, std::memory_order_relaxed);
        if (response->body != expected[q]) {
          mismatched.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  result.wall_seconds = Seconds(start);
  result.ok = ok.load();
  result.shed = shed.load();
  result.failed = failed.load();
  result.mismatched = mismatched.load();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    result.p50_seconds = all[all.size() / 2];
    result.p99_seconds = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  return result;
}

BenchRecord MakeRecord(const char* system, double seconds,
                       std::vector<std::pair<std::string, double>> extra) {
  BenchRecord record;
  record.dataset = "synthetic";
  record.system = system;
  record.seconds = {seconds, 0.0};
  record.extra = std::move(extra);
  return record;
}

}  // namespace

int main() {
  const BenchScale scale = GetBenchScale();
  const bool smoke = scale.name == "smoke";
  const size_t corpus_size = smoke ? 120 : 400;
  const uint64_t capacity_attempts = smoke ? 80 : 400;
  const uint64_t overload_attempts = smoke ? 160 : 800;

  ServeOptions options;
  options.num_workers = 2;
  options.max_queue = 4;
  options.request_deadline = std::chrono::milliseconds(2000);

  const Dataset corpus = MakeCorpus(corpus_size);
  ServingState state(corpus, options.num_workers);
  {
    RuleArtifact artifact;
    artifact.name = "serve-load";
    artifact.rule = ServeRule();
    if (!state.Deploy(artifact).ok()) {
      std::fprintf(stderr, "ERROR: initial deploy failed\n");
      return 1;
    }
  }
  ServeDaemon daemon(state, options);
  if (const Status status = daemon.Start(); !status.ok()) {
    std::fprintf(stderr, "ERROR: %s\n", status.ToString().c_str());
    return 1;
  }

  // A small rotation of query bodies with precomputed expected bytes:
  // the load is also a continuous correctness check.
  std::vector<std::string> queries;
  std::vector<std::string> expected;
  for (size_t q = 0; q < 4; ++q) {
    std::string body = "name,city\n";
    body += "record number " + std::to_string(q * 7) + ",berlin\n";
    body += "record number " + std::to_string(q * 7 + 3) + ",leipzig\n";
    std::istringstream in{body};
    CsvEntityStream stream(in, CsvDatasetOptions{});
    std::vector<Entity> entities;
    Entity entity;
    while (stream.Next(&entity)) entities.push_back(std::move(entity));
    if (!stream.status().ok()) std::abort();
    std::string answer{kGeneratedLinksCsvHeader};
    for (const GeneratedLink& link :
         state.index()->MatchBatch(entities, stream.schema())) {
      answer += GeneratedLinkCsvRow(link);
    }
    queries.push_back(std::move(body));
    expected.push_back(std::move(answer));
  }

  // --- Phase 1: capacity. One closed-loop client per worker; nothing
  // should shed and nothing may fail.
  const size_t capacity_clients = options.num_workers;
  const PhaseResult capacity = RunPhase(daemon.port(), capacity_clients,
                                        capacity_attempts, queries, expected);
  std::printf("capacity: %zu clients, %llu ok, %llu shed, %llu failed, "
              "%.0f req/s, p50 %.1fms p99 %.1fms\n",
              capacity_clients, (unsigned long long)capacity.ok,
              (unsigned long long)capacity.shed,
              (unsigned long long)capacity.failed,
              capacity.wall_seconds > 0.0 ? capacity.ok / capacity.wall_seconds
                                          : 0.0,
              capacity.p50_seconds * 1e3, capacity.p99_seconds * 1e3);

  // --- Phase 2: 2x overload. Twice the daemon's maximum in-flight
  // capacity in clients; admission control must shed, accepted
  // requests must all succeed within the deadline.
  const size_t overload_clients =
      2 * (options.num_workers + options.max_queue);
  const PhaseResult overload = RunPhase(daemon.port(), overload_clients,
                                        overload_attempts, queries, expected);
  std::printf("overload: %zu clients, %llu ok, %llu shed, %llu failed, "
              "%.0f req/s, p50 %.1fms p99 %.1fms\n",
              overload_clients, (unsigned long long)overload.ok,
              (unsigned long long)overload.shed,
              (unsigned long long)overload.failed,
              overload.wall_seconds > 0.0 ? overload.ok / overload.wall_seconds
                                          : 0.0,
              overload.p50_seconds * 1e3, overload.p99_seconds * 1e3);

  // --- Drain: the SIGTERM path must finish cleanly with zero aborts.
  daemon.RequestShutdown();
  const bool drain_clean = daemon.WaitForDrain();
  std::printf("drain: %s (aborts %llu, total shed %llu)\n",
              drain_clean ? "clean" : "ABORTED IN-FLIGHT WORK",
              (unsigned long long)daemon.counters().drain_aborts.load(),
              (unsigned long long)daemon.counters().shed.load());

  // --- Gates.
  const double deadline_seconds =
      std::chrono::duration<double>(options.request_deadline).count();
  const bool accepted_ok = capacity.failed == 0 && overload.failed == 0 &&
                           capacity.ok > 0 && overload.ok > 0;
  const bool links_identical =
      capacity.mismatched == 0 && overload.mismatched == 0;
  const bool shed_happened = overload.shed > 0;
  const bool p99_within_deadline =
      capacity.p99_seconds < deadline_seconds &&
      overload.p99_seconds < deadline_seconds;
  if (!accepted_ok) {
    std::fprintf(stderr, "ERROR: requests failed (capacity %llu, overload "
                         "%llu) or no request succeeded\n",
                 (unsigned long long)capacity.failed,
                 (unsigned long long)overload.failed);
  }
  if (!links_identical) {
    std::fprintf(stderr, "ERROR: %llu responses differed from direct "
                         "MatchBatch bytes\n",
                 (unsigned long long)(capacity.mismatched +
                                      overload.mismatched));
  }
  if (!shed_happened) {
    std::fprintf(stderr, "ERROR: 2x overload produced no 503 sheds — "
                         "admission control did not engage\n");
  }
  if (!p99_within_deadline) {
    std::fprintf(stderr, "ERROR: p99 %.3fs exceeded the %.3fs request "
                         "deadline — latency not bounded under overload\n",
                 std::max(capacity.p99_seconds, overload.p99_seconds),
                 deadline_seconds);
  }

  auto phase_extra = [&](const PhaseResult& phase, size_t clients) {
    std::vector<std::pair<std::string, double>> extra = {
        {"clients", static_cast<double>(clients)},
        {"ok", static_cast<double>(phase.ok)},
        {"shed", static_cast<double>(phase.shed)},
        {"failed", static_cast<double>(phase.failed)},
        {"requests_per_second",
         phase.wall_seconds > 0.0 ? phase.ok / phase.wall_seconds : 0.0},
        {"p50_seconds", phase.p50_seconds},
        {"p99_seconds", phase.p99_seconds},
        {"accepted_ok", accepted_ok ? 1.0 : 0.0},
        {"links_identical", links_identical ? 1.0 : 0.0},
    };
    return extra;
  };
  std::vector<BenchRecord> records;
  records.push_back(MakeRecord("serve/capacity", capacity.wall_seconds,
                               phase_extra(capacity, capacity_clients)));
  {
    auto extra = phase_extra(overload, overload_clients);
    extra.emplace_back("shed_happened", shed_happened ? 1.0 : 0.0);
    extra.emplace_back("p99_within_deadline", p99_within_deadline ? 1.0 : 0.0);
    extra.emplace_back("drain_clean", drain_clean ? 1.0 : 0.0);
    records.push_back(
        MakeRecord("serve/overload", overload.wall_seconds, std::move(extra)));
  }
  WriteBenchJson("serve_load", scale, records);

  return accepted_ok && links_identical && shed_happened &&
                 p99_within_deadline && drain_clean
             ? 0
             : 1;
}
