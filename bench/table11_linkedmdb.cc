// Table 11 of the paper: learning trajectory on the LinkedMDB movie
// interlinking task — the comparison against a manually written linkage
// rule. The reference links contain same-title/different-year remake
// corner cases; the learner must discover the title+date rule the human
// expert wrote.

#include <cstdio>

#include "datasets/linkedmdb.h"
#include "harness.h"

using namespace genlink;
using namespace genlink::bench;

int main() {
  BenchScale scale = GetBenchScale();

  LinkedMdbConfig data;
  // Already tiny (199/174 entities); only shrink for smoke.
  data.scale = scale.name == "smoke" ? 0.5 : 1.0;
  MatchingTask task = GenerateLinkedMdb(data);
  std::printf("linkedmdb: %zu movies, dbpedia: %zu movies, %zu/%zu links\n",
              task.a.size(), task.b.size(), task.links.positives().size(),
              task.links.negatives().size());

  GenLinkConfig config = MakeGenLinkConfig(scale);
  CrossValidationResult result =
      RunGenLinkCv(task, config, scale.runs, /*seed=*/11001);
  PrintTrajectoryTable(
      "Table 11 - LinkedMDB (GenLink)", result,
      StandardCheckpoints(scale.iterations),
      {{1, 0.981, 0.959}, {10, 0.998, 0.921}, {20, 1.000, 0.974},
       {30, 1.000, 0.999}, {40, 1.000, 0.999}, {50, 1.000, 0.999}});

  std::printf(
      "\npaper: the learned rules compare title and release date, as the\n"
      "human-written rule does. example learned rule:\n%s\n",
      result.example_rule_sexpr.c_str());

  WriteBenchJson("table11_linkedmdb", scale,
                 {MakeBenchRecord("linkedmdb", "genlink", scale, result)});
  return 0;
}
