// Query-serving latency on Restaurant: the session API
// (api/matcher_index.h) against the one-shot GenerateLinks baseline.
//
// Measures, at one worker thread:
//   * fresh GenerateLinks wall time (the pre-session cost of answering
//     ANY question: rebuild blocking index + value store, full join);
//   * MatcherIndex::Build time (paid once per deployment);
//   * single-entity MatchEntity latency over every corpus entity (p50
//     -> lookups/s), the request-serving path;
//   * MatchBatch throughput over the whole corpus;
//   * the index-build amortization curve: amortized seconds/query at
//     Q = 1, 10, 100, 1000 queries against the built index.
//
// Doubles as a CI gate, exiting non-zero when either fails:
//   * bit-identity — MatchDataset AND the MatchBatch reconstruction
//     must reproduce GenerateLinks' links exactly (ids, scores,
//     order), which pins the query scorer to the compiled-store path;
//   * amortization — serving one entity from the prebuilt index must
//     be >= 10x faster than the per-entity rate of answering it with a
//     fresh GenerateLinks call (extra.speedup_vs_fresh in
//     BENCH_query_latency.json; tools/compare_bench_json.py tracks it
//     as a machine-independent ratio).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "api/matcher_index.h"
#include "datasets/restaurant.h"
#include "harness.h"
#include "matcher/matcher.h"
#include "rule/builder.h"

using namespace genlink;
using namespace genlink::bench;

namespace {

constexpr double kRequiredSpeedup = 10.0;

// The representative learned rule matcher_throughput also uses.
LinkageRule MatchRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.8, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Compare("levenshtein", 3.0, Prop("address").Lower(),
                           Prop("address").Lower())
                  .End()
                  .Build();
  if (!rule.ok()) {
    std::fprintf(stderr, "rule construction failed: %s\n",
                 rule.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(rule).value();
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

bool SameLinks(const std::vector<GeneratedLink>& x,
               const std::vector<GeneratedLink>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].id_a != y[i].id_a || x[i].id_b != y[i].id_b ||
        x[i].score != y[i].score) {
      return false;
    }
  }
  return true;
}

BenchRecord MakeRecord(const char* system, double data_scale, size_t reps,
                       double seconds,
                       std::vector<std::pair<std::string, double>> extra) {
  BenchRecord record;
  record.dataset = "restaurant";
  record.system = system;
  record.data_scale = data_scale;
  record.runs = reps;
  record.seconds = {seconds, 0.0};
  record.extra = std::move(extra);
  return record;
}

}  // namespace

int main() {
  BenchScale scale = GetBenchScale();
  RestaurantConfig data;
  data.scale = scale.name == "smoke" ? 0.3 : 1.0;
  MatchingTask task = GenerateRestaurant(data);
  LinkageRule rule = MatchRule();
  const size_t n = task.a.size();
  // Best-of-3 at every scale: the fresh-call baseline is milliseconds
  // long and single samples wobble too much for the CI ratio gate.
  const size_t reps = 3;

  MatchOptions options;
  options.num_threads = 1;

  // Baseline: the one-shot pipeline, everything rebuilt per call.
  double fresh_seconds = 0.0;
  std::vector<GeneratedLink> fresh_links;
  for (size_t r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    auto links = GenerateLinks(rule, task.a, task.a, options);
    const double elapsed = Seconds(start);
    if (r == 0 || elapsed < fresh_seconds) fresh_seconds = elapsed;
    fresh_links = std::move(links);
  }
  std::printf("restaurant: %zu records, fresh GenerateLinks %.4fs "
              "(%zu links)\n",
              n, fresh_seconds, fresh_links.size());

  // Session: build once...
  const auto build_start = std::chrono::steady_clock::now();
  auto index = MatcherIndex::Build(task.a, task.a, rule, options);
  const double build_seconds = Seconds(build_start);

  // ...then serve. Warm up, then time every corpus entity as a single
  // query; best p50/mean over `reps` passes (transient machine load
  // would otherwise wobble the CI gate).
  for (size_t i = 0; i < std::min<size_t>(n, 32); ++i) {
    index->MatchEntity(task.a.entity(i));
  }
  double p50 = 0.0;
  double mean = 0.0;
  size_t entity_links = 0;
  std::vector<double> latencies(n);
  for (size_t r = 0; r < reps; ++r) {
    entity_links = 0;
    for (size_t i = 0; i < n; ++i) {
      const auto start = std::chrono::steady_clock::now();
      auto links = index->MatchEntity(task.a.entity(i));
      latencies[i] = Seconds(start);
      entity_links += links.size();
    }
    std::sort(latencies.begin(), latencies.end());
    const double pass_p50 = latencies[latencies.size() / 2];
    double latency_sum = 0.0;
    for (double latency : latencies) latency_sum += latency;
    const double pass_mean = latency_sum / static_cast<double>(latencies.size());
    if (r == 0 || pass_p50 < p50) p50 = pass_p50;
    if (r == 0 || pass_mean < mean) mean = pass_mean;
  }

  // Batch serving over the whole corpus; reconstruct the full join for
  // the bit-identity gate (the self-join keeps only id_a < id_b).
  const auto batch_start = std::chrono::steady_clock::now();
  auto batch_links = index->MatchBatch(task.a.entities());
  const double batch_seconds = Seconds(batch_start);
  std::vector<GeneratedLink> reconstructed;
  for (auto& link : batch_links) {
    if (link.id_a < link.id_b) reconstructed.push_back(std::move(link));
  }
  std::sort(reconstructed.begin(), reconstructed.end(),
            [](const auto& x, const auto& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.id_a != y.id_a) return x.id_a < y.id_a;
              return x.id_b < y.id_b;
            });

  // The legacy surface on the prebuilt index.
  const auto dataset_start = std::chrono::steady_clock::now();
  auto dataset_links = index->MatchDataset();
  const double dataset_seconds = Seconds(dataset_start);

  const bool identical = SameLinks(dataset_links, fresh_links) &&
                         SameLinks(reconstructed, fresh_links) &&
                         !fresh_links.empty();
  if (!identical) {
    std::fprintf(stderr,
                 "ERROR: prebuilt-index links differ from fresh "
                 "GenerateLinks links (or no links were generated)\n");
  }

  // Serving one entity the pre-session way costs a whole fresh call;
  // the session serves it in p50. This ratio is the amortization win
  // and must clear 10x.
  const double speedup_vs_fresh = p50 > 0.0 ? fresh_seconds / p50 : 0.0;
  const bool fast_enough = speedup_vs_fresh >= kRequiredSpeedup;
  if (!fast_enough) {
    std::fprintf(stderr,
                 "ERROR: MatchEntity p50 %.6fs is only %.1fx a fresh "
                 "GenerateLinks call (%.4fs); require >= %.0fx\n",
                 p50, speedup_vs_fresh, fresh_seconds, kRequiredSpeedup);
  }

  std::printf("build once:      %.4fs\n", build_seconds);
  std::printf("MatchEntity:     p50 %.1fus, mean %.1fus  (%.0f lookups/s, "
              "%.0fx vs fresh call)\n",
              p50 * 1e6, mean * 1e6, p50 > 0.0 ? 1.0 / p50 : 0.0,
              speedup_vs_fresh);
  std::printf("MatchBatch:      %.4fs for %zu entities (%.0f entities/s)\n",
              batch_seconds, n,
              batch_seconds > 0.0 ? n / batch_seconds : 0.0);
  std::printf("MatchDataset:    %.4fs (fresh %.4fs)\n", dataset_seconds,
              fresh_seconds);
  std::printf("amortization (build + Q * p50) / Q:\n");
  std::vector<std::pair<std::string, double>> amortized;
  for (size_t q : {size_t{1}, size_t{10}, size_t{100}, size_t{1000}}) {
    const double per_query = (build_seconds + q * p50) / static_cast<double>(q);
    std::printf("  Q=%-5zu %.1fus/query (fresh call: %.1fus)\n", q,
                per_query * 1e6, fresh_seconds * 1e6);
    amortized.emplace_back("amortized_q" + std::to_string(q), per_query);
  }

  std::vector<BenchRecord> records;
  records.push_back(MakeRecord(
      "matcher/fresh-generate-links", data.scale, reps, fresh_seconds,
      {{"threads", 1.0},
       {"links", static_cast<double>(fresh_links.size())},
       {"fresh_calls_per_second",
        fresh_seconds > 0.0 ? 1.0 / fresh_seconds : 0.0},
       {"entities_per_second", fresh_seconds > 0.0 ? n / fresh_seconds : 0.0}}));
  {
    std::vector<std::pair<std::string, double>> extra = {
        {"threads", 1.0},
        {"build_seconds", build_seconds},
        {"links_identical", identical ? 1.0 : 0.0},
    };
    extra.insert(extra.end(), amortized.begin(), amortized.end());
    records.push_back(MakeRecord("api/build", data.scale, 1, build_seconds,
                                 std::move(extra)));
  }
  records.push_back(MakeRecord(
      "api/match-entity", data.scale, 1, p50,
      {{"threads", 1.0},
       {"lookups_per_second", p50 > 0.0 ? 1.0 / p50 : 0.0},
       {"lookups_per_second_mean", mean > 0.0 ? 1.0 / mean : 0.0},
       {"links", static_cast<double>(entity_links)},
       {"speedup_vs_fresh", speedup_vs_fresh},
       {"links_identical", identical ? 1.0 : 0.0}}));
  records.push_back(MakeRecord(
      "api/match-batch", data.scale, 1, batch_seconds,
      {{"threads", 1.0},
       {"entities_per_second", batch_seconds > 0.0 ? n / batch_seconds : 0.0},
       {"links_identical", identical ? 1.0 : 0.0}}));
  // No speedup ratio on this record: MatchDataset does the same work
  // as a fresh call minus the build, so the ratio hovers at ~1 and
  // would make a noisy CI gate (matcher_throughput already tracks the
  // full-join path).
  records.push_back(MakeRecord(
      "api/match-dataset", data.scale, 1, dataset_seconds,
      {{"threads", 1.0},
       {"links_identical", identical ? 1.0 : 0.0}}));
  WriteBenchJson("query_latency", scale, records);

  return identical && fast_enough ? 0 : 1;
}
