// Full-dataset matching throughput on Restaurant (the CLI `match` /
// `learn --match` scenario): the per-pair operator-tree path vs the
// value-store compiled path (eval/value_store.h), with token blocking
// and over the exhaustive cross product, at one worker thread.
//
// Doubles as a CI gate: the two paths must produce bit-identical link
// sets (ids, scores and order); any divergence exits non-zero.
//
// Emits BENCH_matcher_throughput.json; `extra.pairs_per_second` is the
// regression metric tools/compare_bench_json.py tracks, and
// `extra.speedup_vs_operator_tree` the machine-independent ratio the
// tentpole is judged by (>= 5x at 1 thread on the blocking config).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "datasets/restaurant.h"
#include "harness.h"
#include "matcher/blocking.h"
#include "matcher/matcher.h"
#include "rule/builder.h"

using namespace genlink;
using namespace genlink::bench;

namespace {

struct PathMeasurement {
  std::string system;
  bool use_blocking = true;
  bool use_value_store = true;
  double seconds = 0.0;
  size_t pairs = 0;
  std::vector<GeneratedLink> links;
};

// A representative learned rule: transform chains on both comparisons
// (tokenize feeds a set measure, lowercase feeds an edit distance), so
// the operator-tree path pays per-pair transformation costs the way a
// real learned rule does.
LinkageRule MatchRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.8, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Compare("levenshtein", 3.0, Prop("address").Lower(),
                           Prop("address").Lower())
                  .End()
                  .Build();
  if (!rule.ok()) {
    std::fprintf(stderr, "rule construction failed: %s\n",
                 rule.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(rule).value();
}

bool SameLinks(const std::vector<GeneratedLink>& x,
               const std::vector<GeneratedLink>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].id_a != y[i].id_a || x[i].id_b != y[i].id_b ||
        x[i].score != y[i].score) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  BenchScale scale = GetBenchScale();
  RestaurantConfig data;
  data.scale = scale.name == "smoke" ? 0.3 : 1.0;
  MatchingTask task = GenerateRestaurant(data);
  LinkageRule rule = MatchRule();

  // Candidate-pair counts per family, for the throughput metric: the
  // blocked paths evaluate the blocking candidates, the exhaustive
  // paths the full (deduplicated) self cross product.
  TokenBlockingIndex index(task.a, TargetProperties(rule));
  size_t blocked_pairs = 0;
  for (size_t i = 0; i < task.a.size(); ++i) {
    blocked_pairs += index.Candidates(task.a.entity(i), task.a.schema()).size();
  }
  const size_t cross_pairs = task.a.size() * task.a.size();
  std::printf("restaurant: %zu records, %zu blocked / %zu cross candidate "
              "pairs\n",
              task.a.size(), blocked_pairs, cross_pairs);

  // Best-of-3 even at smoke scale: single-sample wall times on a
  // millisecond-long join are too noisy for the CI ratio gate.
  const size_t reps = 3;
  std::vector<PathMeasurement> runs = {
      {"matcher/operator-tree/blocking", true, false},
      {"matcher/value-store/blocking", true, true},
      {"matcher/operator-tree/cross", false, false},
      {"matcher/value-store/cross", false, true},
  };
  for (PathMeasurement& run : runs) {
    MatchOptions options;
    options.use_blocking = run.use_blocking;
    options.use_value_store = run.use_value_store;
    options.num_threads = 1;
    run.pairs = run.use_blocking ? blocked_pairs : cross_pairs;
    double best = 0.0;
    for (size_t r = 0; r < reps; ++r) {
      auto start = std::chrono::steady_clock::now();
      auto links = GenerateLinks(rule, task.a, task.a, options);
      double elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      if (r == 0 || elapsed < best) best = elapsed;
      run.links = std::move(links);
    }
    run.seconds = best;
    std::printf("%-34s %8.3fs  %10.0f pairs/s  %zu links\n",
                run.system.c_str(), run.seconds,
                run.seconds > 0.0 ? run.pairs / run.seconds : 0.0,
                run.links.size());
  }

  // Bit-identity gate: value-store links == operator-tree links, per
  // blocking family.
  bool identical = SameLinks(runs[0].links, runs[1].links) &&
                   SameLinks(runs[2].links, runs[3].links) &&
                   !runs[1].links.empty();
  if (!identical) {
    std::fprintf(stderr,
                 "ERROR: value-store links differ from operator-tree links "
                 "(or no links were generated)\n");
  }

  auto operator_tree_seconds = [&](bool use_blocking) {
    for (const PathMeasurement& run : runs) {
      if (run.use_blocking == use_blocking && !run.use_value_store) {
        return run.seconds;
      }
    }
    return 0.0;
  };

  std::vector<BenchRecord> records;
  for (const PathMeasurement& run : runs) {
    BenchRecord record;
    record.dataset = "restaurant";
    record.system = run.system;
    record.data_scale = data.scale;
    record.runs = reps;
    record.seconds = {run.seconds, 0.0};
    const double baseline = operator_tree_seconds(run.use_blocking);
    record.extra = {
        {"threads", 1.0},
        {"pairs", static_cast<double>(run.pairs)},
        {"links", static_cast<double>(run.links.size())},
        {"pairs_per_second",
         run.seconds > 0.0 ? static_cast<double>(run.pairs) / run.seconds : 0.0},
        {"speedup_vs_operator_tree",
         run.seconds > 0.0 ? baseline / run.seconds : 0.0},
        {"links_identical", identical ? 1.0 : 0.0},
    };
    records.push_back(std::move(record));
  }
  WriteBenchJson("matcher_throughput", scale, records);

  for (bool blocking : {true, false}) {
    for (const PathMeasurement& run : runs) {
      if (run.use_blocking == blocking && run.use_value_store &&
          run.seconds > 0.0) {
        std::printf("value-store speedup (%s): %.2fx\n",
                    blocking ? "blocking" : "cross",
                    operator_tree_seconds(blocking) / run.seconds);
      }
    }
  }
  return identical ? 0 : 1;
}
