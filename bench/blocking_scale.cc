// Blocking at scale on the synthetic person corpus: pairs completeness
// vs candidate volume vs index-build throughput for the unweighted
// token index, the rare-token weighted index (k = 6) and the sharded
// weighted index (4 shards), at 10k (smoke), 100k (default) and 1M
// (paper) entities.
//
// Doubles as a CI gate, exiting non-zero when
//   * weighted pairs completeness drops below 0.98 at any scale,
//   * the weighted index stops buying >= 5x candidate reduction over
//     the unweighted index at >= 100k entities, or
//   * the sharded index diverges from the single-shard index on any
//     probed candidate set (bit-identity).
//
// Emits BENCH_blocking_scale.json; `extra.pairs_completeness` and
// `extra.reduction_vs_unweighted` are the regression metrics
// tools/compare_bench_json.py tracks.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "datasets/synthetic.h"
#include "eval/blocking_stats.h"
#include "harness.h"
#include "matcher/blocking.h"

using namespace genlink;
using namespace genlink::bench;

namespace {

constexpr size_t kWeightedTopTokens = 6;
constexpr size_t kShards = 4;
constexpr double kRecallFloor = 0.98;
constexpr double kReductionFloor = 5.0;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct ConfigMeasurement {
  std::string system;
  double build_seconds = 0.0;
  double probe_seconds = 0.0;
  BlockingQuality quality;
};

ConfigMeasurement Measure(const std::string& system,
                          std::unique_ptr<const BlockingIndex> index,
                          double build_seconds, const MatchingTask& task,
                          size_t sample_every, ThreadPool& pool) {
  ConfigMeasurement m;
  m.system = system;
  m.build_seconds = build_seconds;
  const auto start = std::chrono::steady_clock::now();
  m.quality = MeasureBlockingQuality(*index, task.Source(), task.Target(),
                                     task.links, sample_every, &pool);
  m.probe_seconds = Seconds(start);
  return m;
}

}  // namespace

int main() {
  const BenchScale scale = GetBenchScale();
  std::vector<size_t> sizes = {10000};
  if (scale.name != "smoke") sizes.push_back(100000);
  if (scale.name == "paper") sizes.push_back(1000000);

  ThreadPool pool(0);
  std::vector<BenchRecord> records;
  bool gates_pass = true;

  for (const size_t n : sizes) {
    SyntheticConfig config;
    config.num_entities = n;
    config.num_threads = 0;
    auto start = std::chrono::steady_clock::now();
    const MatchingTask task = GenerateSynthetic(config);
    const double gen_seconds = Seconds(start);
    // Probe a query sample that keeps the unweighted measurement
    // tractable at every scale; pairs completeness always checks every
    // positive link regardless of sampling.
    const size_t sample_every = n <= 10000 ? 1 : (n <= 100000 ? 25 : 250);
    std::printf(
        "\nsynthetic n=%zu (generated in %.2fs, %zu positive links, "
        "1-in-%zu query sample)\n",
        n, gen_seconds, task.links.positives().size(), sample_every);

    TokenBlockingOptions weighted_options;
    weighted_options.max_tokens_per_entity = kWeightedTopTokens;
    TokenBlockingOptions sharded_options = weighted_options;
    sharded_options.num_shards = kShards;
    sharded_options.build_pool = &pool;

    std::vector<ConfigMeasurement> measured;
    start = std::chrono::steady_clock::now();
    auto unweighted =
        std::make_unique<const TokenBlockingIndex>(task.Target());
    measured.push_back(Measure("blocking/unweighted", std::move(unweighted),
                               Seconds(start), task, sample_every, pool));

    start = std::chrono::steady_clock::now();
    auto weighted = std::make_unique<const TokenBlockingIndex>(
        task.Target(), std::vector<std::string>{}, weighted_options);
    measured.push_back(Measure("blocking/weighted", std::move(weighted),
                               Seconds(start), task, sample_every, pool));

    start = std::chrono::steady_clock::now();
    auto sharded = std::make_unique<const ShardedTokenBlockingIndex>(
        task.Target(), std::vector<std::string>{}, sharded_options);

    // Bit-identity: the sharded index must reproduce the single-shard
    // weighted candidates exactly on every sampled query.
    const double sharded_build = Seconds(start);
    const TokenBlockingIndex weighted_reference(
        task.Target(), std::vector<std::string>{}, weighted_options);
    size_t divergences = 0;
    for (size_t i = 0; i < task.Source().size(); i += sample_every) {
      const Entity& entity = task.Source().entity(i);
      if (sharded->Candidates(entity, task.Source().schema()) !=
          weighted_reference.Candidates(entity, task.Source().schema())) {
        ++divergences;
      }
    }
    measured.push_back(Measure("blocking/weighted-sharded",
                               std::move(sharded), sharded_build, task,
                               sample_every, pool));

    const double unweighted_cpq = measured[0].quality.candidates_per_query;
    std::printf("%-28s %10s %12s %10s %10s %9s\n", "system", "build_s",
                "cand/query", "reduction", "PC", "probe_s");
    for (const ConfigMeasurement& m : measured) {
      const double reduction =
          m.quality.candidates_per_query > 0.0
              ? unweighted_cpq / m.quality.candidates_per_query
              : 0.0;
      std::printf("%-28s %10.2f %12.1f %9.2fx %10.4f %9.2f\n",
                  m.system.c_str(), m.build_seconds,
                  m.quality.candidates_per_query, reduction,
                  m.quality.pairs_completeness, m.probe_seconds);

      BenchRecord record;
      record.dataset = "synthetic" + std::to_string(n / 1000) + "k";
      record.system = m.system;
      record.data_scale = static_cast<double>(n);
      record.runs = 1;
      record.seconds = {m.build_seconds + m.probe_seconds, 0.0};
      record.extra = {
          {"entities", static_cast<double>(n)},
          {"pairs_completeness", m.quality.pairs_completeness},
          {"candidates_per_query", m.quality.candidates_per_query},
          {"reduction_ratio", m.quality.reduction_ratio},
          {"reduction_vs_unweighted", reduction},
          {"build_seconds", m.build_seconds},
          {"entities_per_second",
           m.build_seconds > 0.0 ? static_cast<double>(n) / m.build_seconds
                                 : 0.0},
          {"shard_identity", divergences == 0 ? 1.0 : 0.0},
      };
      records.push_back(std::move(record));

      const bool is_weighted = m.system != "blocking/unweighted";
      if (is_weighted && m.quality.pairs_completeness < kRecallFloor) {
        std::fprintf(stderr,
                     "ERROR: %s pairs completeness %.4f < %.2f at n=%zu\n",
                     m.system.c_str(), m.quality.pairs_completeness,
                     kRecallFloor, n);
        gates_pass = false;
      }
      if (is_weighted && n >= 100000 && reduction < kReductionFloor) {
        std::fprintf(stderr,
                     "ERROR: %s candidate reduction %.2fx < %.1fx at n=%zu\n",
                     m.system.c_str(), reduction, kReductionFloor, n);
        gates_pass = false;
      }
    }
    if (divergences > 0) {
      std::fprintf(stderr,
                   "ERROR: sharded index diverged from single-shard on %zu "
                   "probed queries at n=%zu\n",
                   divergences, n);
      gates_pass = false;
    }
  }

  WriteBenchJson("blocking_scale", scale, records);
  if (!gates_pass) {
    std::fprintf(stderr, "blocking_scale: gates FAILED\n");
    return 1;
  }
  std::printf("\nblocking_scale: all gates passed\n");
  return 0;
}
