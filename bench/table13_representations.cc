// Table 13 of the paper: the representation ablation. For each of the
// six data sets, the learner is run with four representations -
// boolean, linear, non-linear (each without transformations) and the
// full model - and the validation F-measure at iteration 25 is
// reported. The paper's claims: transformations matter on the noisy
// record-linkage sets (Cora, Restaurant); non-linearity matters on the
// Linked Data sets; the full representation wins everywhere.

#include <cstdio>

#include "harness.h"

using namespace genlink;
using namespace genlink::bench;

namespace {

// Validation F1 at iteration 25 from the paper's Table 13.
struct PaperTable13Row {
  const char* dataset;
  double boolean_f1, linear_f1, nonlinear_f1, full_f1;
};
constexpr PaperTable13Row kPaper[] = {
    {"cora", 0.900, 0.896, 0.898, 0.965},
    {"restaurant", 0.954, 0.959, 0.951, 0.992},
    {"sider-drugbank", 0.931, 0.956, 0.966, 0.970},
    {"nyt", 0.714, 0.716, 0.724, 0.916},
    {"linkedmdb", 0.973, 0.986, 0.987, 0.997},
    {"dbpedia-drugbank", 0.990, 0.981, 0.991, 0.993},
};

}  // namespace

int main() {
  BenchScale scale = GetBenchScale();
  size_t report_iter = std::min<size_t>(25, scale.iterations);

  std::printf("\nTable 13 - F-measure (validation) in round %zu\n", report_iter);
  std::printf("%-18s %9s %9s %9s %9s   [paper: bool/lin/nonlin/full]\n",
              "dataset", "Boolean", "Linear", "Nonlin.", "Full");

  std::vector<BenchRecord> records;
  std::vector<MatchingTask> tasks = AllTasks(scale);
  for (size_t t = 0; t < tasks.size(); ++t) {
    const MatchingTask& task = tasks[t];
    double measured[4] = {0, 0, 0, 0};
    RepresentationMode modes[4] = {
        RepresentationMode::kBoolean, RepresentationMode::kLinear,
        RepresentationMode::kNonlinear, RepresentationMode::kFull};
    const char* mode_names[4] = {"boolean", "linear", "nonlinear", "full"};
    for (int m = 0; m < 4; ++m) {
      GenLinkConfig config = MakeGenLinkConfig(scale);
      config.mode = modes[m];
      config.max_iterations = report_iter;
      CrossValidationResult result =
          RunGenLinkCv(task, config, scale.runs, 13000 + 10 * t + m);
      const AggregatedIteration* row = result.FindIteration(report_iter);
      measured[m] = row != nullptr ? row->val_f1.mean : 0.0;
      records.push_back(MakeBenchRecord(
          task.name, std::string("genlink/") + mode_names[m], scale, result));
    }
    std::printf("%-18s %9.3f %9.3f %9.3f %9.3f   [%.3f/%.3f/%.3f/%.3f]\n",
                task.name.c_str(), measured[0], measured[1], measured[2],
                measured[3], kPaper[t].boolean_f1, kPaper[t].linear_f1,
                kPaper[t].nonlinear_f1, kPaper[t].full_f1);
  }
  WriteBenchJson("table13_representations", scale, records);
  return 0;
}
