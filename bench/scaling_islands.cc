// Island-count scaling of the GenLink search (gp/islands.h): one
// learning run per island count on Restaurant and Cora at the SAME
// total evaluation budget — the base population is split evenly across
// the islands, so every configuration breeds and scores the same number
// of rules per generation — measuring wall time and gating two
// invariants:
//
//   1. num_islands = 1 must reproduce the legacy single-population
//      trajectory (LearnSinglePopulation) bit for bit: same best rule,
//      same per-iteration train/validation F1. A divergence makes the
//      bench exit non-zero, so CI's bench-smoke step doubles as the
//      island refactor's regression gate.
//   2. Results must not depend on the thread count (checked for the
//      4-island configuration at 1 vs hardware threads).
//
// Emits BENCH_scaling_islands.json; `extra` carries the island count,
// the per-island population, the speedup vs the 1-island run and the
// gate outcomes. Wall-clock speedup comes from breeding in parallel
// (one task per island) and from the cross-island fitness memo, so it
// needs real cores: `extra.hardware_concurrency` records what the
// machine offered — on a 1-core container all speedups are ~1.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "datasets/cora.h"
#include "datasets/restaurant.h"
#include "gp/islands.h"
#include "harness.h"
#include "rule/serialize.h"

using namespace genlink;
using namespace genlink::bench;

namespace {

constexpr uint64_t kSeed = 8017;

// The deterministic outcome of one learning run: everything that must
// be identical between the 1-island configuration and the legacy loop.
struct RunMeasurement {
  bool ok = false;
  double seconds = 0.0;
  double train_f1 = 0.0;
  double val_f1 = 0.0;
  uint64_t rule_hash = 0;
  std::string rule_sexpr;
  std::vector<double> trajectory;  // train_f1, val_f1 per iteration
};

RunMeasurement Measure(const Result<LearnResult>& result, double seconds) {
  RunMeasurement m;
  m.seconds = seconds;
  if (!result.ok()) {
    std::fprintf(stderr, "learn failed: %s\n",
                 result.status().ToString().c_str());
    return m;
  }
  m.ok = true;
  const IterationStats& last = result->trajectory.iterations.back();
  m.train_f1 = last.train_f1;
  m.val_f1 = last.val_f1;
  m.rule_hash = result->best_rule.StructuralHash();
  m.rule_sexpr = ToSexpr(result->best_rule);
  for (const IterationStats& stats : result->trajectory.iterations) {
    m.trajectory.push_back(stats.train_f1);
    m.trajectory.push_back(stats.val_f1);
  }
  return m;
}

GenLinkConfig MakeConfig(const BenchScale& scale, size_t base_population,
                         size_t num_islands, size_t threads) {
  GenLinkConfig config = MakeGenLinkConfig(scale);
  config.num_islands = num_islands;
  // Same total budget for every island count: splitting the base
  // population keeps rules-bred-per-generation constant.
  config.population_size = base_population / num_islands;
  config.num_threads = threads;
  // Disable early stopping: Restaurant reaches full training F1 within
  // a couple of generations, which would leave nothing to measure.
  config.stop_f_measure = 1.1;
  return config;
}

// Same seed for every configuration: fold split and evolution draw from
// the same master stream, so any divergence comes from the search
// organization itself.
RunMeasurement RunIslands(const MatchingTask& task, const GenLinkConfig& config) {
  Rng rng(kSeed);
  auto folds = task.links.SplitFolds(2, rng);
  GenLink learner(task.Source(), task.Target(), config);
  auto start = std::chrono::steady_clock::now();
  auto result = learner.Learn(folds[0], &folds[1], rng);
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return Measure(result, seconds);
}

RunMeasurement RunLegacy(const MatchingTask& task, const GenLinkConfig& config) {
  Rng rng(kSeed);
  auto folds = task.links.SplitFolds(2, rng);
  auto start = std::chrono::steady_clock::now();
  auto result = LearnSinglePopulation(task.Source(), task.Target(), config,
                                      folds[0], &folds[1], rng);
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return Measure(result, seconds);
}

bool Identical(const RunMeasurement& a, const RunMeasurement& b) {
  return a.ok && b.ok && a.rule_hash == b.rule_hash &&
         a.rule_sexpr == b.rule_sexpr && a.trajectory == b.trajectory;
}

}  // namespace

int main() {
  BenchScale scale = GetBenchScale();
  const unsigned hardware = std::thread::hardware_concurrency();
  // Round the base population up to a multiple of 8 so it splits evenly
  // across every island count.
  const size_t base_population = ((scale.population + 7) / 8) * 8;

  RestaurantConfig restaurant_config;
  restaurant_config.scale = scale.name == "smoke" ? 0.3 : 1.0;
  CoraConfig cora_config;
  cora_config.scale = scale.name == "smoke" ? 0.05 : scale.data_scale;

  std::vector<MatchingTask> tasks;
  tasks.push_back(GenerateRestaurant(restaurant_config));
  tasks.push_back(GenerateCora(cora_config));
  const double data_scales[] = {restaurant_config.scale, cora_config.scale};

  std::printf("base population %zu, %zu iterations, %u hardware threads\n",
              base_population, scale.iterations, hardware);

  bool gates_pass = true;
  std::vector<BenchRecord> records;
  for (size_t t = 0; t < tasks.size(); ++t) {
    const MatchingTask& task = tasks[t];
    std::printf("\n%s: %zu source records, %zu/%zu reference links\n",
                task.name.c_str(), task.a.size(),
                task.links.positives().size(),
                task.links.negatives().size());

    // The reference: the legacy single-population loop at the full base
    // population. Warm-up first so first-touch costs do not bias it.
    GenLinkConfig legacy_config = MakeConfig(scale, base_population, 1, 0);
    RunLegacy(task, legacy_config);
    RunMeasurement legacy = RunLegacy(task, legacy_config);
    std::printf("  legacy      %6.2fs  train F1 %.3f  val F1 %.3f\n",
                legacy.seconds, legacy.train_f1, legacy.val_f1);

    double island1_seconds = 0.0;
    for (size_t num_islands : {1, 2, 4, 8}) {
      GenLinkConfig config =
          MakeConfig(scale, base_population, num_islands, 0);
      RunMeasurement m = RunIslands(task, config);
      if (num_islands == 1) island1_seconds = m.seconds;

      // Gate 1: one island == the legacy loop, bit for bit.
      bool identical_to_legacy = num_islands != 1 || Identical(m, legacy);
      if (!identical_to_legacy) {
        gates_pass = false;
        std::fprintf(stderr,
                     "ERROR: 1-island run diverged from the legacy "
                     "single-population trajectory on %s:\n  legacy: %s\n"
                     "  islands: %s\n",
                     task.name.c_str(), legacy.rule_sexpr.c_str(),
                     m.rule_sexpr.c_str());
      }
      // Gate 2: thread-count invariance of the migrating configuration.
      bool thread_invariant = true;
      if (num_islands == 4 && hardware > 1) {
        GenLinkConfig serial = config;
        serial.num_threads = 1;
        thread_invariant = Identical(RunIslands(task, serial), m);
        if (!thread_invariant) {
          gates_pass = false;
          std::fprintf(stderr,
                       "ERROR: 4-island result depends on the thread count "
                       "on %s\n",
                       task.name.c_str());
        }
      }

      double speedup = m.seconds > 0.0 ? island1_seconds / m.seconds : 0.0;
      std::printf(
          "  islands=%zu   %6.2fs  train F1 %.3f  val F1 %.3f  "
          "speedup vs 1 island %.2fx%s\n",
          num_islands, m.seconds, m.train_f1, m.val_f1, speedup,
          num_islands == 1 ? (Identical(m, legacy) ? "  [== legacy]" : "")
                           : "");

      BenchRecord record;
      record.dataset = task.name;
      record.system = "genlink/islands=" + std::to_string(num_islands);
      record.data_scale = data_scales[t];
      record.population = config.population_size;
      record.iterations = scale.iterations;
      record.runs = 1;
      record.train_f1 = {m.train_f1, 0.0};
      record.val_f1 = {m.val_f1, 0.0};
      record.seconds = {m.seconds, 0.0};
      record.extra = {
          {"num_islands", static_cast<double>(num_islands)},
          {"per_island_population",
           static_cast<double>(config.population_size)},
          {"speedup_vs_i1", speedup},
          {"identical_to_legacy", identical_to_legacy ? 1.0 : 0.0},
          {"thread_invariant", thread_invariant ? 1.0 : 0.0},
          {"hardware_concurrency", static_cast<double>(hardware)},
      };
      records.push_back(std::move(record));
    }
  }

  WriteBenchJson("scaling_islands", scale, records);
  if (!gates_pass) {
    std::fprintf(stderr, "ERROR: island gates failed (see above)\n");
    return 1;
  }
  std::printf("\nisland gates passed: 1 island == legacy, results "
              "thread-invariant\n");
  return 0;
}
