// Microbenchmarks for linkage-rule evaluation: the inner loop of GP
// fitness computation (rule x labelled pair), at several rule sizes.

#include <benchmark/benchmark.h>

#include "datasets/cora.h"
#include "eval/engine.h"
#include "eval/fitness.h"
#include "rule/builder.h"

namespace genlink {
namespace {

const MatchingTask& CoraTask() {
  static MatchingTask* task = [] {
    CoraConfig config;
    config.scale = 0.1;
    return new MatchingTask(GenerateCora(config));
  }();
  return *task;
}

LinkageRule SmallRule() {
  return std::move(RuleBuilder()
                       .Compare("levenshtein", 2.0, Prop("title"), Prop("title"))
                       .Build())
      .value();
}

LinkageRule MediumRule() {
  return std::move(
             RuleBuilder()
                 .Aggregate("min")
                 .Compare("levenshtein", 2.0, Prop("title").Lower(),
                          Prop("title").Lower())
                 .Compare("date", 365.0, Prop("date"), Prop("date"))
                 .End()
                 .Build())
      .value();
}

LinkageRule LargeRule() {
  return std::move(
             RuleBuilder()
                 .Aggregate("max")
                 .Aggregate("min")
                 .Compare("jaccard", 0.8, Prop("title").Lower().Tokenize(),
                          Prop("title").Lower().Tokenize())
                 .Compare("date", 365.0, Prop("date"), Prop("date"))
                 .End()
                 .Aggregate("wmean")
                 .Compare("levenshtein", 3.0, Prop("author"), Prop("author"), 2.0)
                 .Compare("levenshtein", 2.0, Prop("venue").Lower(),
                          Prop("venue").Lower(), 1.0)
                 .End()
                 .End()
                 .Build())
      .value();
}

void RunRuleBench(benchmark::State& state, const LinkageRule& rule) {
  const MatchingTask& task = CoraTask();
  auto pairs = task.links.Resolve(task.Source(), task.Target());
  size_t i = 0;
  for (auto _ : state) {
    const LabeledPair& pair = (*pairs)[i++ % pairs->size()];
    benchmark::DoNotOptimize(rule.Evaluate(*pair.a, *pair.b,
                                           task.Source().schema(),
                                           task.Target().schema()));
  }
}

void BM_RuleEvalSmall(benchmark::State& state) {
  RunRuleBench(state, SmallRule());
}
BENCHMARK(BM_RuleEvalSmall);

void BM_RuleEvalMedium(benchmark::State& state) {
  RunRuleBench(state, MediumRule());
}
BENCHMARK(BM_RuleEvalMedium);

void BM_RuleEvalLarge(benchmark::State& state) {
  RunRuleBench(state, LargeRule());
}
BENCHMARK(BM_RuleEvalLarge);

// Whole-fitness evaluation (one rule against all training pairs).
void BM_FitnessEvaluation(benchmark::State& state) {
  const MatchingTask& task = CoraTask();
  auto pairs = task.links.Resolve(task.Source(), task.Target());
  FitnessEvaluator evaluator(*pairs, task.Source().schema(),
                             task.Target().schema());
  LinkageRule rule = MediumRule();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(rule));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pairs->size()));
}
BENCHMARK(BM_FitnessEvaluation);

// Same evaluation through the engine with a warm distance cache: no
// string distance is computed, only thresholding and aggregation.
// The fitness memo is disabled so every iteration does the full
// per-pair pass (otherwise the bench would measure a hash lookup).
void BM_EngineFitnessEvaluationWarm(benchmark::State& state) {
  const MatchingTask& task = CoraTask();
  auto pairs = task.links.Resolve(task.Source(), task.Target());
  EngineConfig config;
  config.num_threads = 1;
  config.cache_fitness = false;
  EvaluationEngine engine(*pairs, task.Source().schema(),
                          task.Target().schema(), {}, config);
  LinkageRule rule = MediumRule();
  engine.Evaluate(rule);  // warm the distance rows
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Evaluate(rule));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pairs->size()));
}
BENCHMARK(BM_EngineFitnessEvaluationWarm);

}  // namespace
}  // namespace genlink
