// Integration tests: GenLink end-to-end on scaled-down versions of the
// paper's six (synthetic) evaluation data sets, plus learner-vs-baseline
// and representation-restriction sanity checks. These mirror - at small
// scale - the shapes of the paper's Tables 7-13.

#include <set>

#include <gtest/gtest.h>

#include "baseline/carvalho_gp.h"
#include "datasets/cora.h"
#include "datasets/dbpedia_drugbank.h"
#include "datasets/linkedmdb.h"
#include "datasets/nyt.h"
#include "datasets/restaurant.h"
#include "datasets/sider_drugbank.h"
#include "gp/genlink.h"
#include "matcher/matcher.h"
#include "rule/parse.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

GenLinkConfig FastConfig() {
  GenLinkConfig config;
  config.population_size = 60;
  config.max_iterations = 12;
  config.num_threads = 1;
  return config;
}

// Trains on one fold, validates on the other; returns final val F1.
double LearnAndValidate(const MatchingTask& task, const GenLinkConfig& config,
                        uint64_t seed, std::string* rule_out = nullptr) {
  Rng rng(seed);
  auto folds = task.links.SplitFolds(2, rng);
  GenLink learner(task.Source(), task.Target(), config);
  auto result = learner.Learn(folds[0], &folds[1], rng);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return 0.0;
  if (rule_out != nullptr) *rule_out = ToPrettySexpr(result->best_rule);
  return result->trajectory.iterations.back().val_f1;
}

TEST(IntegrationTest, LearnsCoraLike) {
  CoraConfig config;
  config.scale = 0.08;
  MatchingTask task = GenerateCora(config);
  EXPECT_GT(LearnAndValidate(task, FastConfig(), 101), 0.8);
}

TEST(IntegrationTest, LearnsRestaurantLike) {
  RestaurantConfig config;
  config.scale = 0.5;
  MatchingTask task = GenerateRestaurant(config);
  EXPECT_GT(LearnAndValidate(task, FastConfig(), 102), 0.85);
}

TEST(IntegrationTest, LearnsSiderDrugbankLike) {
  SiderDrugbankConfig config;
  config.scale = 0.06;
  MatchingTask task = GenerateSiderDrugbank(config);
  EXPECT_GT(LearnAndValidate(task, FastConfig(), 103), 0.8);
}

TEST(IntegrationTest, LearnsNytLike) {
  // NYT is the paper's hardest task (homonym places, URI labels,
  // jittered coordinates); give the learner a bigger budget.
  NytConfig config;
  config.scale = 0.1;
  MatchingTask task = GenerateNyt(config);
  GenLinkConfig learn = FastConfig();
  learn.population_size = 120;
  learn.max_iterations = 25;
  EXPECT_GT(LearnAndValidate(task, learn, 104), 0.65);
}

TEST(IntegrationTest, LearnsLinkedMdbLike) {
  LinkedMdbConfig config;
  config.scale = 1.0;  // already small (199/174 entities)
  MatchingTask task = GenerateLinkedMdb(config);
  EXPECT_GT(LearnAndValidate(task, FastConfig(), 105), 0.85);
}

TEST(IntegrationTest, LearnsDbpediaDrugbankLike) {
  DbpediaDrugbankConfig config;
  config.scale = 0.04;
  MatchingTask task = GenerateDbpediaDrugbank(config);
  EXPECT_GT(LearnAndValidate(task, FastConfig(), 106), 0.8);
}

// The Table 7/8 shape: GenLink's validation F1 is at least as good as
// the Carvalho baseline's on the noisy citation data (where GenLink's
// transformations matter).
TEST(IntegrationTest, GenLinkBeatsOrMatchesBaselineOnCora) {
  CoraConfig config;
  config.scale = 0.25;  // enough links that 2-fold validation is stable
  MatchingTask task = GenerateCora(config);

  Rng rng(201);
  auto folds = task.links.SplitFolds(2, rng);

  GenLinkConfig gl_config = FastConfig();
  gl_config.population_size = 120;
  gl_config.max_iterations = 25;
  GenLink genlink(task.Source(), task.Target(), gl_config);
  Rng gl_rng(7);
  auto gl = genlink.Learn(folds[0], &folds[1], gl_rng);
  ASSERT_TRUE(gl.ok());

  CarvalhoConfig cv_config;
  cv_config.population_size = 60;
  cv_config.max_generations = 12;
  CarvalhoGP baseline(task.Source(), task.Target(), cv_config);
  Rng cv_rng(7);
  auto cv = baseline.Learn(folds[0], &folds[1], cv_rng);
  ASSERT_TRUE(cv.ok());

  EXPECT_GE(gl->trajectory.iterations.back().val_f1 + 0.08,
            cv->trajectory.iterations.back().val_f1);
}

// The Table 13 shape on NYT-like data: the full representation beats the
// boolean representation (transformations + non-linearity matter).
TEST(IntegrationTest, FullRepresentationBeatsBooleanOnNyt) {
  NytConfig config;
  config.scale = 0.04;
  MatchingTask task = GenerateNyt(config);

  GenLinkConfig full = FastConfig();
  full.max_iterations = 15;
  full.mode = RepresentationMode::kFull;
  GenLinkConfig boolean = full;
  boolean.mode = RepresentationMode::kBoolean;

  double f_full = 0.0, f_bool = 0.0;
  for (uint64_t seed : {301, 302, 303}) {
    f_full += LearnAndValidate(task, full, seed);
    f_bool += LearnAndValidate(task, boolean, seed);
  }
  EXPECT_GT(f_full, f_bool - 0.05);  // full wins or ties within noise
}

// The learned rule is executable on the full datasets through the
// matcher and finds most reference links.
TEST(IntegrationTest, LearnedRuleExecutesViaMatcher) {
  LinkedMdbConfig config;
  MatchingTask task = GenerateLinkedMdb(config);
  GenLinkConfig learn = FastConfig();
  GenLink learner(task.Source(), task.Target(), learn);
  Rng rng(401);
  auto result = learner.Learn(task.links, nullptr, rng);
  ASSERT_TRUE(result.ok());

  auto links = GenerateLinks(result->best_rule, task.a, task.b);
  std::set<std::pair<std::string, std::string>> found;
  for (const auto& link : links) found.insert({link.id_a, link.id_b});
  size_t hit = 0;
  for (const auto& ref : task.links.positives()) {
    if (found.count({ref.id_a, ref.id_b})) ++hit;
  }
  EXPECT_GT(static_cast<double>(hit) /
                static_cast<double>(task.links.positives().size()),
            0.8);
}

// Serialized learned rules parse back (the Figure 7/8 path).
TEST(IntegrationTest, LearnedRuleRoundTripsThroughSexpr) {
  CoraConfig config;
  config.scale = 0.05;
  MatchingTask task = GenerateCora(config);
  std::string sexpr;
  LearnAndValidate(task, FastConfig(), 501, &sexpr);
  ASSERT_FALSE(sexpr.empty());
  auto parsed = ParseRule(sexpr);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << sexpr;
  EXPECT_TRUE(parsed->Validate().ok());
}

}  // namespace
}  // namespace genlink
