// Tests for the v2 corpus artifact (io/corpus_artifact.h): mapped
// query results must be bit-identical to a fresh in-memory
// MatcherIndex::Build on the paper's evaluation data, and Load must
// degrade every corruption — truncation at any byte, a flipped bit, a
// wrong-endian writer, a v1 text artifact — to a named Status, never
// UB (this suite is what the ASan/UBSan CI leg exercises).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/matcher_index.h"
#include "datasets/cora.h"
#include "datasets/restaurant.h"
#include "io/artifact.h"
#include "io/corpus_artifact.h"
#include "io/csv.h"
#include "matcher/matcher.h"
#include "rule/builder.h"
#include "serve/serving_state.h"

namespace genlink {
namespace {

LinkageRule RestaurantRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.8, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Compare("levenshtein", 3.0, Prop("address").Lower(),
                           Prop("address").Lower())
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

LinkageRule CoraRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.7, Prop("title").Lower().Tokenize(),
                           Prop("title").Lower().Tokenize())
                  .Compare("dice", 0.8, Prop("author").Lower().Tokenize(),
                           Prop("author").Lower().Tokenize())
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

/// A rule over a property the artifacts above never precompute.
LinkageRule UnrelatedRule() {
  auto rule = RuleBuilder()
                  .Compare("levenshtein", 2.0, Prop("city").Lower(),
                           Prop("city").Lower())
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "corpus_artifact_" + name;
}

std::string ReadAll(const std::string& path) {
  auto content = ReadFileToString(path);
  EXPECT_TRUE(content.ok()) << path;
  return std::move(content).value_or(std::string());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void ExpectSameLinks(const std::vector<GeneratedLink>& actual,
                     const std::vector<GeneratedLink>& expected,
                     const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].id_a, expected[i].id_a) << label << " link " << i;
    EXPECT_EQ(actual[i].id_b, expected[i].id_b) << label << " link " << i;
    // Bit-identical doubles, not just nearly equal.
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " link " << i;
  }
}

/// Writes the artifact for (target, rule, options), loads it back, and
/// asserts the mapped index answers every source entity bit-identically
/// to a fresh in-memory serving build.
void CheckBitIdentity(const MatchingTask& task, const LinkageRule& rule,
                      const MatchOptions& options, const std::string& name) {
  const std::string path = TempPath(name);
  CorpusArtifactStats stats;
  ASSERT_TRUE(
      WriteCorpusArtifact(path, task.a, rule, options, nullptr, &stats).ok());
  EXPECT_EQ(stats.num_entities, task.a.size());
  EXPECT_GT(stats.num_plans, 0u);
  EXPECT_GT(stats.file_bytes, 0u);

  auto mapped = MappedCorpus::Load(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->size(), task.a.size());
  EXPECT_EQ((*mapped)->file_bytes(), stats.file_bytes);

  auto from_map = MatcherIndex::Build(*mapped, rule, options);
  ASSERT_TRUE(from_map.ok()) << from_map.status().ToString();
  EXPECT_TRUE((*from_map)->is_mapped());
  auto fresh = MatcherIndex::Build(task.a, rule, options);
  ASSERT_FALSE(fresh->is_mapped());

  ExpectSameLinks((*from_map)->MatchBatch(task.a.entities(), task.a.schema()),
                  fresh->MatchBatch(task.a.entities(), task.a.schema()),
                  name + " batch");
  for (size_t i = 0; i < std::min<size_t>(task.a.size(), 25); ++i) {
    ExpectSameLinks(
        (*from_map)->MatchEntity(task.a.entity(i), task.a.schema()),
        fresh->MatchEntity(task.a.entity(i), task.a.schema()),
        name + " entity " + std::to_string(i));
  }
  std::remove(path.c_str());
}

TEST(CorpusArtifactTest, MappedBitIdenticalRestaurant) {
  RestaurantConfig config;
  config.scale = 0.4;
  MatchingTask task = GenerateRestaurant(config);
  for (const bool use_blocking : {true, false}) {
    MatchOptions options;
    options.use_blocking = use_blocking;
    CheckBitIdentity(task, RestaurantRule(), options,
                     "restaurant_blocking" + std::to_string(use_blocking));
  }
}

TEST(CorpusArtifactTest, MappedBitIdenticalCora) {
  CoraConfig config;
  config.scale = 0.15;
  MatchingTask task = GenerateCora(config);
  MatchOptions options;
  CheckBitIdentity(task, CoraRule(), options, "cora");
}

TEST(CorpusArtifactTest, MappedBitIdenticalWeightedShardedBlocking) {
  RestaurantConfig config;
  config.scale = 0.3;
  MatchingTask task = GenerateRestaurant(config);
  MatchOptions options;
  options.blocking_max_tokens = 4;
  options.blocking_min_token_df = 2;
  options.blocking_shards = 3;
  CheckBitIdentity(task, RestaurantRule(), options, "restaurant_weighted");
}

TEST(CorpusArtifactTest, WriterRejectsEmptyRuleAndNoValueStore) {
  RestaurantConfig config;
  config.scale = 0.1;
  MatchingTask task = GenerateRestaurant(config);
  const std::string path = TempPath("rejects");
  EXPECT_FALSE(
      WriteCorpusArtifact(path, task.a, LinkageRule(), MatchOptions()).ok());
  MatchOptions no_store;
  no_store.use_value_store = false;
  EXPECT_FALSE(
      WriteCorpusArtifact(path, task.a, RestaurantRule(), no_store).ok());
}

class MappedServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RestaurantConfig config;
    config.scale = 0.2;
    task_ = GenerateRestaurant(config);
    path_ = TempPath("serving.glidx");
    ASSERT_TRUE(
        WriteCorpusArtifact(path_, task_.a, RestaurantRule(), options_).ok());
    auto mapped = MappedCorpus::Load(path_);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    mapped_ = std::move(mapped).value();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  MatchingTask task_;
  MatchOptions options_;
  std::string path_;
  std::shared_ptr<const MappedCorpus> mapped_;
};

TEST_F(MappedServingTest, MissingPlanIsNamedFailedPrecondition) {
  auto built = MatcherIndex::Build(mapped_, UnrelatedRule(), options_);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(built.status().message().find("genlink index"), std::string::npos);
}

TEST_F(MappedServingTest, BlockingKnobMismatchIsNamedFailedPrecondition) {
  MatchOptions mismatched = options_;
  mismatched.blocking_max_tokens = 7;
  auto built = MatcherIndex::Build(mapped_, RestaurantRule(), mismatched);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(built.status().message().find(path_), std::string::npos);
}

TEST_F(MappedServingTest, EmptyRuleAndNullCorpusRejected) {
  EXPECT_FALSE(MatcherIndex::Build(mapped_, LinkageRule(), options_).ok());
  EXPECT_FALSE(MatcherIndex::Build(std::shared_ptr<const MappedCorpus>(),
                                   RestaurantRule(), options_)
                   .ok());
}

TEST_F(MappedServingTest, TryWithRuleHotSwapsAndSurfacesPlanMisses) {
  auto index = MatcherIndex::Build(mapped_, RestaurantRule(), options_);
  ASSERT_TRUE(index.ok());
  // Same rule, fresh compile: serves identically.
  auto swapped = (*index)->TryWithRule(RestaurantRule(), options_);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  ExpectSameLinks(
      (*swapped)->MatchBatch(task_.a.entities(), task_.a.schema()),
      (*index)->MatchBatch(task_.a.entities(), task_.a.schema()), "swap");
  // A rule the artifact has no plans for fails without touching *index.
  auto miss = (*index)->TryWithRule(UnrelatedRule(), options_);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*index)->WithRule(UnrelatedRule(), options_), nullptr);
}

TEST_F(MappedServingTest, ServingStateDegradesGracefullyOnPlanMiss) {
  ServingState state(mapped_);
  RuleArtifact good;
  good.name = "good";
  good.rule = RestaurantRule();
  good.options = options_;
  ASSERT_TRUE(state.Deploy(good).ok());
  const auto live = state.index();
  ASSERT_NE(live, nullptr);
  const auto before = live->MatchBatch(task_.a.entities(), task_.a.schema());

  RuleArtifact bad;
  bad.name = "bad";
  bad.rule = UnrelatedRule();
  bad.options = options_;
  const Status status = state.Deploy(bad);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  // The previous deployment keeps serving, bit-identically; the state
  // reports stale.
  const ServingState::Snapshot snapshot = state.snapshot();
  EXPECT_EQ(snapshot.generation, 1u);
  EXPECT_EQ(snapshot.failed_reloads, 1u);
  EXPECT_TRUE(snapshot.stale);
  EXPECT_NE(snapshot.last_error.find("bad"), std::string::npos);
  ASSERT_EQ(state.index(), live);
  ExpectSameLinks(
      state.index()->MatchBatch(task_.a.entities(), task_.a.schema()), before,
      "after failed deploy");
}

TEST_F(MappedServingTest, ChecksumSkipLoadsAndServes) {
  MappedCorpusOptions load_options;
  load_options.verify_checksum = false;
  auto mapped = MappedCorpus::Load(path_, load_options);
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(MatcherIndex::Build(*mapped, RestaurantRule(), options_).ok());
}

TEST_F(MappedServingTest, NoBlockingArtifactRefusesBlockingOptions) {
  const std::string path = TempPath("noblocking.glidx");
  MatchOptions no_blocking = options_;
  no_blocking.use_blocking = false;
  ASSERT_TRUE(
      WriteCorpusArtifact(path, task_.a, RestaurantRule(), no_blocking).ok());
  auto mapped = MappedCorpus::Load(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_FALSE((*mapped)->has_blocking());
  EXPECT_TRUE(MatcherIndex::Build(*mapped, RestaurantRule(), no_blocking).ok());
  auto with_blocking = MatcherIndex::Build(*mapped, RestaurantRule(), options_);
  ASSERT_FALSE(with_blocking.ok());
  EXPECT_EQ(with_blocking.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// ---- Corruption fuzzing. A tiny corpus keeps the artifact a few KB so
// truncating at EVERY byte boundary stays fast.

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dataset = ReadCsvDataset(
        "id,name,address,city\n"
        "e0,alpha beta,12 main st,lisbon\n"
        "e1,beta gamma,34 side st,porto\n"
        "e2,gamma delta,56 hill rd,faro\n"
        "e3,delta alpha,78 lake ave,braga\n",
        "tiny", {});
    ASSERT_TRUE(dataset.ok());
    path_ = TempPath("fuzz.glidx");
    ASSERT_TRUE(
        WriteCorpusArtifact(path_, *dataset, RestaurantRule(), MatchOptions())
            .ok());
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), 0u);
    corrupt_path_ = TempPath("fuzz_corrupt.glidx");
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(corrupt_path_.c_str());
  }

  std::string path_;
  std::string bytes_;
  std::string corrupt_path_;
};

TEST_F(CorruptionTest, TruncationAtEveryByteIsANamedError) {
  for (size_t len = 0; len < bytes_.size(); ++len) {
    WriteAll(corrupt_path_, bytes_.substr(0, len));
    auto loaded = MappedCorpus::Load(corrupt_path_);
    ASSERT_FALSE(loaded.ok()) << "truncated to " << len << " bytes loaded";
    ASSERT_FALSE(loaded.status().message().empty()) << "at " << len;
  }
}

TEST_F(CorruptionTest, SingleBitFlipsAreDetected) {
  // Every byte would be slow under sanitizers; a stride covers the
  // header and every section with hundreds of positions.
  const size_t stride = std::max<size_t>(1, bytes_.size() / 512);
  for (size_t pos = 0; pos < bytes_.size(); pos += stride) {
    std::string corrupted = bytes_;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x10);
    WriteAll(corrupt_path_, corrupted);
    auto loaded = MappedCorpus::Load(corrupt_path_);
    EXPECT_FALSE(loaded.ok()) << "bit flip at byte " << pos << " loaded";
  }
}

TEST_F(CorruptionTest, WrongEndianVersionIsNamed) {
  std::string swapped = bytes_;
  // The u32 version at offset 8, byte-swapped as a big-endian writer
  // would have laid it out.
  std::swap(swapped[8], swapped[11]);
  std::swap(swapped[9], swapped[10]);
  WriteAll(corrupt_path_, swapped);
  auto loaded = MappedCorpus::Load(corrupt_path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("endian"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(CorruptionTest, V1TextArtifactIsNamed) {
  RuleArtifact artifact;
  artifact.name = "v1";
  artifact.rule = RestaurantRule();
  ASSERT_TRUE(SaveArtifact(corrupt_path_, artifact).ok());
  auto loaded = MappedCorpus::Load(corrupt_path_);
  ASSERT_FALSE(loaded.ok());
  // The error must say "this is a rule artifact", not a generic magic
  // mismatch — pointing --index at the --artifact file is the likely
  // operator slip.
  EXPECT_NE(loaded.status().message().find("rule artifact"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(CorruptionTest, GarbageAndEmptyFilesAreNamedErrors) {
  WriteAll(corrupt_path_, "");
  EXPECT_FALSE(MappedCorpus::Load(corrupt_path_).ok());
  WriteAll(corrupt_path_, "not an artifact at all, just text\n");
  EXPECT_FALSE(MappedCorpus::Load(corrupt_path_).ok());
  EXPECT_FALSE(
      MappedCorpus::Load(TempPath("never_written.glidx")).ok());
}

TEST_F(CorruptionTest, VersionFromTheFutureIsRejected) {
  std::string future = bytes_;
  future[8] = 99;  // version u32 little-endian low byte
  WriteAll(corrupt_path_, future);
  auto loaded = MappedCorpus::Load(corrupt_path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

}  // namespace
}  // namespace genlink
