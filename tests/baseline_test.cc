// Tests for the Carvalho et al. GP baseline: arithmetic tree evaluation,
// generation, and end-to-end learning of a separable toy task.

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/carvalho_gp.h"

namespace genlink {
namespace {

std::unique_ptr<MathNode> Leaf(double c) {
  auto node = std::make_unique<MathNode>();
  node->type = MathNodeType::kConstant;
  node->constant = c;
  return node;
}

std::unique_ptr<MathNode> Feature(size_t index) {
  auto node = std::make_unique<MathNode>();
  node->type = MathNodeType::kFeature;
  node->feature_index = index;
  return node;
}

std::unique_ptr<MathNode> Binary(MathNodeType type, std::unique_ptr<MathNode> l,
                                 std::unique_ptr<MathNode> r) {
  auto node = std::make_unique<MathNode>();
  node->type = type;
  node->left = std::move(l);
  node->right = std::move(r);
  return node;
}

TEST(MathTreeTest, ArithmeticEvaluation) {
  // (f0 + 2) * f1
  auto tree = Binary(MathNodeType::kMul,
                     Binary(MathNodeType::kAdd, Feature(0), Leaf(2.0)), Feature(1));
  std::vector<double> features{1.0, 3.0};
  EXPECT_DOUBLE_EQ(tree->Evaluate(features), 9.0);
  EXPECT_EQ(tree->Count(), 5u);
}

TEST(MathTreeTest, ProtectedDivision) {
  auto tree = Binary(MathNodeType::kDiv, Leaf(5.0), Leaf(0.0));
  EXPECT_DOUBLE_EQ(tree->Evaluate({}), 1.0);
  auto normal = Binary(MathNodeType::kDiv, Leaf(6.0), Leaf(2.0));
  EXPECT_DOUBLE_EQ(normal->Evaluate({}), 3.0);
}

TEST(MathTreeTest, ExpIsClampedAgainstOverflow) {
  auto inner = Binary(MathNodeType::kMul, Leaf(1000.0), Leaf(1000.0));
  auto tree = std::make_unique<MathNode>();
  tree->type = MathNodeType::kExp;
  tree->left = std::move(inner);
  double v = tree->Evaluate({});
  EXPECT_TRUE(std::isfinite(v));
}

TEST(MathTreeTest, MissingFeatureIsZero) {
  auto tree = Feature(99);
  std::vector<double> features{1.0};
  EXPECT_DOUBLE_EQ(tree->Evaluate(features), 0.0);
}

TEST(MathTreeTest, CloneIsDeep) {
  auto tree = Binary(MathNodeType::kSub, Feature(0), Leaf(1.0));
  auto clone = tree->Clone();
  tree->left->feature_index = 5;
  EXPECT_EQ(clone->left->feature_index, 0u);
}

TEST(MathTreeTest, ToStringRendersInfix) {
  auto tree = Binary(MathNodeType::kAdd, Feature(0), Leaf(2.0));
  EXPECT_EQ(tree->ToString({"sim(name)"}), "(sim(name) + 2)");
}

TEST(MathTreeTest, RandomTreesRespectDepthBounds) {
  Rng rng(3);
  MathTreeGenConfig config;
  config.num_features = 4;
  config.min_depth = 1;
  config.max_depth = 3;
  for (int i = 0; i < 100; ++i) {
    auto tree = RandomMathTree(config, rng, i % 2 == 0);
    // Depth 3 binary tree has at most 2^4 - 1 = 15 nodes.
    EXPECT_LE(tree->Count(), 15u);
    EXPECT_GE(tree->Count(), 1u);
  }
}

TEST(MathTreeTest, CollectSlotsFindsAllNodes) {
  auto tree = Binary(MathNodeType::kAdd, Feature(0),
                     Binary(MathNodeType::kMul, Leaf(1.0), Feature(1)));
  auto slots = CollectMathSlots(tree);
  EXPECT_EQ(slots.size(), 5u);
}

// ------------------------------------------------------------- end-to-end

class CarvalhoToyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Same-schema record linkage setting (their paper's scenario).
    PropertyId a_name = a_.schema().AddProperty("name");
    PropertyId b_name = b_.schema().AddProperty("name");
    const char* names[] = {"alpha", "bravo", "charlie", "delta", "echo",
                           "foxtrot", "golf", "hotel", "india", "juliet",
                           "kilo", "lima", "mike", "november", "oscar",
                           "papa", "quebec", "romeo", "sierra", "tango"};
    for (int i = 0; i < 20; ++i) {
      Entity ea("a" + std::to_string(i));
      ea.AddValue(a_name, names[i]);
      ASSERT_TRUE(a_.AddEntity(std::move(ea)).ok());
      Entity eb("b" + std::to_string(i));
      eb.AddValue(b_name, names[i]);
      ASSERT_TRUE(b_.AddEntity(std::move(eb)).ok());
      links_.AddPositive("a" + std::to_string(i), "b" + std::to_string(i));
    }
    Rng rng(31);
    links_.GenerateNegativesFromPositives(rng);
  }

  Dataset a_{"a"}, b_{"b"};
  ReferenceLinkSet links_;
};

TEST_F(CarvalhoToyTest, LearnsSeparableTask) {
  CarvalhoConfig config;
  config.population_size = 50;
  config.max_generations = 20;
  CarvalhoGP learner(a_, b_, config);
  Rng rng(1);
  auto result = learner.Learn(links_, nullptr, rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->trajectory.iterations.empty());
  EXPECT_GT(result->trajectory.iterations.back().train_f1, 0.95);
  EXPECT_NE(result->best_tree, nullptr);
  // Features were presupplied from the shared "name" property.
  ASSERT_FALSE(result->features.empty());
  EXPECT_EQ(result->features[0].property_a, "name");
}

TEST_F(CarvalhoToyTest, DeterministicForSameSeed) {
  CarvalhoConfig config;
  config.population_size = 30;
  config.max_generations = 5;
  CarvalhoGP learner(a_, b_, config);
  Rng rng1(5), rng2(5);
  auto r1 = learner.Learn(links_, nullptr, rng1);
  auto r2 = learner.Learn(links_, nullptr, rng2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->trajectory.iterations.size(), r2->trajectory.iterations.size());
  for (size_t i = 0; i < r1->trajectory.iterations.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1->trajectory.iterations[i].train_f1,
                     r2->trajectory.iterations[i].train_f1);
  }
}

TEST_F(CarvalhoToyTest, RecordsValidationScores) {
  Rng split_rng(7);
  auto folds = links_.SplitFolds(2, split_rng);
  CarvalhoConfig config;
  config.population_size = 50;
  config.max_generations = 15;
  CarvalhoGP learner(a_, b_, config);
  Rng rng(9);
  auto result = learner.Learn(folds[0], &folds[1], rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->trajectory.iterations.back().val_f1, 0.7);
}

}  // namespace
}  // namespace genlink
