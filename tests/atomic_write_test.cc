// Tests for crash-safe file replacement (io/atomic_write.h): the
// published path must hold either the complete old content or the
// complete new content, never a torn mix — including when every write
// syscall fails (driven by the `io.write_error` failpoint) — and a
// failed or abandoned writer must not leak its temp file. Also covers
// the artifact header strictness that rides on the same PR: duplicate
// header keys are a ParseError, not a silent override.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <string>

#include "common/failpoint.h"
#include "io/artifact.h"
#include "io/atomic_write.h"
#include "io/csv.h"
#include "rule/builder.h"

namespace genlink {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "atomic_write_" + name;
}

std::string ReadAll(const std::string& path) {
  auto content = ReadFileToString(path);
  EXPECT_TRUE(content.ok()) << path;
  return std::move(content).value_or(std::string());
}

bool Exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

/// The writer's temp file for `path` in this process.
std::string TempFileOf(const std::string& path) {
  return path + ".tmp." + std::to_string(::getpid());
}

class AtomicWriteTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().DisarmAll(); }
};

TEST_F(AtomicWriteTest, WriteFileAtomicCreatesAndReplaces) {
  const std::string path = TempPath("replace.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "first\n").ok());
  EXPECT_EQ(ReadAll(path), "first\n");
  ASSERT_TRUE(WriteFileAtomic(path, "second, longer content\n").ok());
  EXPECT_EQ(ReadAll(path), "second, longer content\n");
  EXPECT_FALSE(Exists(TempFileOf(path)));
  std::remove(path.c_str());
}

TEST_F(AtomicWriteTest, StreamingAppendPatchCommit) {
  const std::string path = TempPath("stream.bin");
  auto writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("????header").ok());
  ASSERT_TRUE(writer->Append("payload").ok());
  EXPECT_EQ(writer->bytes_written(), 17u);
  // The header-checksum idiom: patch earlier bytes after the payload.
  ASSERT_TRUE(writer->PatchAt(0, "GOOD").ok());
  EXPECT_EQ(writer->bytes_written(), 17u);
  // Nothing is visible at the destination before Commit.
  EXPECT_FALSE(Exists(path));
  ASSERT_TRUE(writer->Commit().ok());
  EXPECT_EQ(ReadAll(path), "GOODheaderpayload");
  EXPECT_FALSE(Exists(TempFileOf(path)));
  std::remove(path.c_str());
}

TEST_F(AtomicWriteTest, PatchBeyondEndFails) {
  const std::string path = TempPath("patch_oob.bin");
  auto writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append("short").ok());
  EXPECT_FALSE(writer->PatchAt(3, "xyz").ok());
  writer->Abort();
  EXPECT_FALSE(Exists(TempFileOf(path)));
}

TEST_F(AtomicWriteTest, AbortAndDropLeaveNoTrace) {
  const std::string path = TempPath("abandoned.bin");
  {
    auto writer = AtomicFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("doomed").ok());
    EXPECT_TRUE(Exists(TempFileOf(path)));
    // Destroyed without Commit: the temp file goes with it.
  }
  EXPECT_FALSE(Exists(path));
  EXPECT_FALSE(Exists(TempFileOf(path)));
}

TEST_F(AtomicWriteTest, InjectedWriteErrorPreservesOldContent) {
  const std::string path = TempPath("survives.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "the old artifact\n").ok());

  Failpoints::Instance().Arm("io.write_error", {.error_code = ENOSPC});
  const Status status = WriteFileAtomic(path, "half-written new content\n");
  ASSERT_FALSE(status.ok());
  EXPECT_GT(Failpoints::Instance().Hits("io.write_error"), 0u);
  Failpoints::Instance().DisarmAll();

  // The crash-safety contract: the old bytes survive INTACT and the
  // temp file is gone.
  EXPECT_EQ(ReadAll(path), "the old artifact\n");
  EXPECT_FALSE(Exists(TempFileOf(path)));

  // Disarmed, the same replacement succeeds.
  ASSERT_TRUE(WriteFileAtomic(path, "new content\n").ok());
  EXPECT_EQ(ReadAll(path), "new content\n");
  std::remove(path.c_str());
}

TEST_F(AtomicWriteTest, InjectedErrorAtEveryWriteSiteKeepsDestination) {
  const std::string path = TempPath("every_site.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "seed\n").ok());
  // Fire one failure at the k-th write-site hit, for every k the
  // successful path performs, so Append, the fsync flush and the
  // Commit leg each get their turn to fail.
  for (uint64_t skip = 0; skip < 4; ++skip) {
    Failpoints::Instance().Arm("io.write_error",
                               {.skip = skip, .count = 1, .error_code = EIO});
    Status status;
    {
      auto writer = AtomicFileWriter::Create(path);
      ASSERT_TRUE(writer.ok());
      status = writer->Append("partial ");
      if (status.ok()) status = writer->Append("content\n");
      if (status.ok()) status = writer->Commit();
      // The writer leaves scope here: a failed one must take its temp
      // file with it.
    }
    Failpoints::Instance().DisarmAll();
    if (!status.ok()) {
      EXPECT_EQ(ReadAll(path), "seed\n") << "skip=" << skip;
    } else {
      // The window fell past the sites this sequence hits.
      EXPECT_EQ(ReadAll(path), "partial content\n") << "skip=" << skip;
      ASSERT_TRUE(WriteFileAtomic(path, "seed\n").ok());
    }
    EXPECT_FALSE(Exists(TempFileOf(path))) << "skip=" << skip;
  }
  std::remove(path.c_str());
}

TEST_F(AtomicWriteTest, SaveArtifactFailureKeepsDeployableOldFile) {
  const std::string path = TempPath("artifact.gla");
  auto rule = RuleBuilder()
                  .Compare("levenshtein", 2.0, Prop("name"), Prop("name"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  RuleArtifact artifact;
  artifact.name = "original";
  artifact.rule = std::move(rule).value();
  ASSERT_TRUE(SaveArtifact(path, artifact).ok());

  RuleArtifact replacement;
  replacement.name = "replacement";
  replacement.rule = artifact.rule.Clone();
  Failpoints::Instance().Arm("io.write_error", {.error_code = ENOSPC});
  ASSERT_FALSE(SaveArtifact(path, replacement).ok());
  Failpoints::Instance().DisarmAll();

  // The old artifact still parses and still deploys — exactly what a
  // serve daemon's reload would read after a failed re-index.
  auto loaded = LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, "original");
  std::remove(path.c_str());
}

TEST_F(AtomicWriteTest, DuplicateArtifactHeaderKeyIsParseError) {
  auto rule = RuleBuilder()
                  .Compare("levenshtein", 2.0, Prop("name"), Prop("name"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  RuleArtifact artifact;
  artifact.name = "dup-check";
  artifact.options.threshold = 0.75;
  artifact.rule = std::move(rule).value();
  const std::string text = WriteRuleArtifact(artifact);

  // The clean round trip first: what Write emits, Read accepts.
  auto round_trip = ReadRuleArtifact(text);
  ASSERT_TRUE(round_trip.ok()) << round_trip.status().ToString();
  EXPECT_EQ(round_trip->name, "dup-check");
  EXPECT_EQ(round_trip->options.threshold, 0.75);

  // A second `threshold:` before the separator must be rejected, not
  // last-one-wins: a silently overridden option would deploy a rule
  // under options nobody reviewed.
  const size_t separator = text.find("---");
  ASSERT_NE(separator, std::string::npos);
  std::string duplicated = text;
  duplicated.insert(separator, "threshold: 0.1\n");
  auto rejected = ReadRuleArtifact(duplicated);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kParseError);
  EXPECT_NE(rejected.status().message().find("duplicate"), std::string::npos);
  EXPECT_NE(rejected.status().message().find("threshold"), std::string::npos);
}

}  // namespace
}  // namespace genlink
