// Concurrency stress of the live corpus (live/live_corpus.h), written
// for the TSan CI leg: one writer hammers Upsert/Remove/ApplyBatch/
// Compact/DeployRule while reader threads query MatchEntity/MatchBatch
// and poll stats() — readers must never block on the writer (they read
// the published snapshot) and every access must be TSan-clean. The
// test asserts liveness invariants (non-empty snapshots, monotone
// epochs, internally consistent links) rather than exact links; the
// bit-identity gate is tests/live_corpus_test.cc.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datasets/restaurant.h"
#include "live/live_corpus.h"
#include "rule/builder.h"

namespace genlink {
namespace {

LinkageRule NameAddressRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.8, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Compare("levenshtein", 3.0, Prop("address").Lower(),
                           Prop("address").Lower())
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

TEST(LiveStressTsanTest, ReadersNeverBlockWhileWriterMutates) {
  const MatchingTask task = GenerateRestaurant({.num_entities = 200});
  const LinkageRule rule = NameAddressRule();
  MatchOptions options;
  options.num_threads = 2;
  LiveCorpusOptions live_options;
  live_options.compact_delta_threshold = 32;  // exercise auto-compaction
  auto created = LiveCorpus::Create(task.Target(), rule, options, live_options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  LiveCorpus& live = **created;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> mutations{0};

  // Writer: random upserts/removes/batches with periodic explicit
  // compactions and one mid-run rule redeploy.
  std::thread writer([&] {
    Rng rng(99);
    size_t fresh = 0;
    std::vector<std::string> removable;
    for (int i = 0; i < 400; ++i) {
      const double dice = rng.Uniform01();
      if (dice < 0.5) {
        Entity entity = task.Target().entity(rng.PickIndex(task.Target().size()));
        entity.set_id("stress_" + std::to_string(fresh++));
        ASSERT_TRUE(live.Upsert(entity, live.schema()).ok());
        removable.push_back(entity.id());
      } else if (dice < 0.75 && !removable.empty()) {
        const size_t pick = rng.PickIndex(removable.size());
        ASSERT_TRUE(live.Remove(removable[pick]).ok());
        removable.erase(removable.begin() + pick);
      } else if (dice < 0.9) {
        std::vector<LiveOp> batch(2);
        batch[0].kind = LiveOp::Kind::kUpsert;
        batch[0].entity =
            task.Target().entity(rng.PickIndex(task.Target().size()));
        batch[0].entity.set_id("stress_" + std::to_string(fresh++));
        batch[1].kind = LiveOp::Kind::kRemove;
        batch[1].id = batch[0].entity.id();
        ASSERT_TRUE(live.ApplyBatch(batch, live.schema()).ok());
      } else {
        ASSERT_TRUE(live.Compact().ok());
      }
      ++mutations;
      if (i == 200) {
        auto next = RuleBuilder()
                        .Compare("levenshtein", 2.0, Prop("name").Lower(),
                                 Prop("name").Lower())
                        .Build();
        ASSERT_TRUE(next.ok());
        MatchOptions next_options = options;
        next_options.threshold = 0.6;
        ASSERT_TRUE(live.DeployRule(*next, next_options).ok());
      }
    }
    stop.store(true, std::memory_order_release);
  });

  // Readers: single queries, batches and stats polls against whatever
  // snapshot is current; epochs observed must be monotone per reader.
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + r);
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t epoch = live.epoch();
        EXPECT_GE(epoch, last_epoch);
        last_epoch = epoch;
        const Entity& query =
            task.Target().entity(rng.PickIndex(task.Target().size()));
        const auto links = live.MatchEntity(query, task.Target().schema());
        for (const auto& link : links) EXPECT_NE(link.id_b, query.id());
        if (rng.Bernoulli(0.2)) {
          std::vector<Entity> batch;
          for (int q = 0; q < 4; ++q) {
            batch.push_back(
                task.Target().entity(rng.PickIndex(task.Target().size())));
          }
          const auto batch_links =
              live.MatchBatch(std::span<const Entity>(batch),
                              task.Target().schema());
          (void)batch_links;
        }
        if (rng.Bernoulli(0.1)) {
          const LiveCorpusStats stats = live.stats();
          EXPECT_GE(stats.live_entities, 1u);
        }
        ++queries;
      }
    });
  }

  writer.join();
  for (auto& reader : readers) reader.join();
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(mutations.load(), 400u);
  EXPECT_GT(live.stats().compactions, 0u);

  // The end state still answers and materializes coherently.
  auto logical = live.MaterializeLogical();
  ASSERT_TRUE(logical.ok());
  EXPECT_EQ(logical->size(), live.stats().live_entities);
}

}  // namespace
}  // namespace genlink
