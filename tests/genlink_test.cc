// End-to-end tests of the GenLink learner (Algorithm 1): learning a
// separable toy task perfectly, monotone best-fitness under elitism,
// determinism, early stopping, restriction modes and the population /
// selection building blocks.

#include <gtest/gtest.h>

#include "gp/genlink.h"
#include "gp/selection.h"
#include "rule/builder.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

// A toy matching task that is perfectly separable by comparing the
// "name" properties: positives share the name, negatives do not.
class GenLinkToyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyId a_name = a_.schema().AddProperty("name");
    PropertyId a_extra = a_.schema().AddProperty("extra");
    PropertyId b_name = b_.schema().AddProperty("title");  // different schema
    PropertyId b_extra = b_.schema().AddProperty("other");

    const char* names[] = {"alpha", "bravo",  "charlie", "delta", "echo",
                           "foxtrot", "golf", "hotel",   "india", "juliet",
                           "kilo",  "lima",   "mike",    "november", "oscar",
                           "papa",  "quebec", "romeo",   "sierra", "tango"};
    for (int i = 0; i < 20; ++i) {
      Entity ea("a" + std::to_string(i));
      ea.AddValue(a_name, names[i]);
      ea.AddValue(a_extra, "x" + std::to_string(i % 3));
      ASSERT_TRUE(a_.AddEntity(std::move(ea)).ok());

      Entity eb("b" + std::to_string(i));
      eb.AddValue(b_name, names[i]);
      eb.AddValue(b_extra, "y" + std::to_string(i % 5));
      ASSERT_TRUE(b_.AddEntity(std::move(eb)).ok());

      links_.AddPositive("a" + std::to_string(i), "b" + std::to_string(i));
    }
    Rng rng(17);
    links_.GenerateNegativesFromPositives(rng);
  }

  GenLinkConfig SmallConfig() {
    GenLinkConfig config;
    config.population_size = 40;
    config.max_iterations = 15;
    config.num_threads = 1;
    return config;
  }

  Dataset a_{"a"}, b_{"b"};
  ReferenceLinkSet links_;
};

TEST_F(GenLinkToyTest, LearnsSeparableTaskToFullFMeasure) {
  GenLink learner(a_, b_, SmallConfig());
  Rng rng(1);
  auto result = learner.Learn(links_, nullptr, rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->trajectory.iterations.empty());
  EXPECT_DOUBLE_EQ(result->trajectory.iterations.back().train_f1, 1.0);
  EXPECT_TRUE(result->best_rule.Validate().ok());
}

TEST_F(GenLinkToyTest, EarlyStopOnFullFMeasure) {
  GenLinkConfig config = SmallConfig();
  config.max_iterations = 50;
  GenLink learner(a_, b_, config);
  Rng rng(2);
  auto result = learner.Learn(links_, nullptr, rng);
  ASSERT_TRUE(result.ok());
  // The toy task is learned long before 50 iterations; the stop
  // condition must have fired.
  EXPECT_LT(result->trajectory.iterations.size(), 51u);
  EXPECT_DOUBLE_EQ(result->trajectory.iterations.back().train_f1, 1.0);
}

TEST_F(GenLinkToyTest, ElitismKeepsBestFitnessMonotone) {
  GenLink learner(a_, b_, SmallConfig());
  Rng rng(3);
  auto result = learner.Learn(links_, nullptr, rng);
  ASSERT_TRUE(result.ok());
  double previous = -1.0;
  for (const auto& stats : result->trajectory.iterations) {
    EXPECT_GE(stats.train_f1 + 1e-9, previous);
    previous = stats.train_f1;
  }
}

TEST_F(GenLinkToyTest, DeterministicForSameSeed) {
  GenLink learner(a_, b_, SmallConfig());
  Rng rng1(42), rng2(42);
  auto r1 = learner.Learn(links_, nullptr, rng1);
  auto r2 = learner.Learn(links_, nullptr, rng2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->best_rule.StructuralHash(), r2->best_rule.StructuralHash());
  ASSERT_EQ(r1->trajectory.iterations.size(), r2->trajectory.iterations.size());
  for (size_t i = 0; i < r1->trajectory.iterations.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1->trajectory.iterations[i].train_f1,
                     r2->trajectory.iterations[i].train_f1);
  }
}

TEST_F(GenLinkToyTest, ValidationScoresAreRecorded) {
  Rng split_rng(5);
  auto folds = links_.SplitFolds(2, split_rng);
  GenLink learner(a_, b_, SmallConfig());
  Rng rng(7);
  auto result = learner.Learn(folds[0], &folds[1], rng);
  ASSERT_TRUE(result.ok());
  // Validation F1 must be populated and high for this separable task.
  EXPECT_GT(result->trajectory.iterations.back().val_f1, 0.8);
}

TEST_F(GenLinkToyTest, SeedingFindsTheCrossSchemaPair) {
  GenLink learner(a_, b_, SmallConfig());
  Rng rng(9);
  auto result = learner.Learn(links_, nullptr, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->compatible_pairs.empty());
  EXPECT_EQ(result->compatible_pairs[0].property_a, "name");
  EXPECT_EQ(result->compatible_pairs[0].property_b, "title");
}

TEST_F(GenLinkToyTest, AllRepresentationModesLearnTheToyTask) {
  for (RepresentationMode mode :
       {RepresentationMode::kBoolean, RepresentationMode::kLinear,
        RepresentationMode::kNonlinear, RepresentationMode::kFull}) {
    GenLinkConfig config = SmallConfig();
    config.mode = mode;
    GenLink learner(a_, b_, config);
    Rng rng(11);
    auto result = learner.Learn(links_, nullptr, rng);
    ASSERT_TRUE(result.ok()) << RepresentationModeName(mode);
    EXPECT_GT(result->trajectory.iterations.back().train_f1, 0.9)
        << RepresentationModeName(mode);
    // Restricted modes must respect their representation.
    if (mode != RepresentationMode::kFull) {
      EXPECT_TRUE(CollectTransforms(result->best_rule).empty())
          << RepresentationModeName(mode);
    }
  }
}

TEST_F(GenLinkToyTest, SubtreeCrossoverOnlyAlsoLearns) {
  GenLinkConfig config = SmallConfig();
  config.subtree_crossover_only = true;
  GenLink learner(a_, b_, config);
  Rng rng(13);
  auto result = learner.Learn(links_, nullptr, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->trajectory.iterations.back().train_f1, 0.9);
}

TEST_F(GenLinkToyTest, UnseededPopulationAlsoRuns) {
  GenLinkConfig config = SmallConfig();
  config.seeded_population = false;
  GenLink learner(a_, b_, config);
  Rng rng(15);
  auto result = learner.Learn(links_, nullptr, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->compatible_pairs.empty());
  EXPECT_GE(result->initial_population_mean_f1, 0.0);
}

TEST_F(GenLinkToyTest, MaxOperatorBoundIsRespected) {
  GenLinkConfig config = SmallConfig();
  config.max_operators = 12;
  GenLink learner(a_, b_, config);
  Rng rng(19);
  IterationCallback callback = [&](const IterationStats&,
                                   const Population& population) {
    for (const auto& individual : population.individuals()) {
      EXPECT_LE(individual.rule.OperatorCount(), 12u);
    }
  };
  ASSERT_TRUE(learner.Learn(links_, nullptr, rng, callback).ok());
}

TEST_F(GenLinkToyTest, LearnFailsCleanlyOnUnresolvableLinks) {
  ReferenceLinkSet bad;
  bad.AddPositive("a0", "no-such-entity");
  GenLink learner(a_, b_, SmallConfig());
  Rng rng(1);
  auto result = learner.Learn(bad, nullptr, rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------- population + selection

TEST(PopulationTest, BestIndexByFitness) {
  Population population;
  for (int i = 0; i < 5; ++i) {
    Individual ind;
    ind.fitness.fitness = 0.1 * i;
    ind.fitness.f_measure = 1.0 - 0.1 * i;
    ind.evaluated = true;
    population.Add(std::move(ind));
  }
  EXPECT_EQ(population.BestIndex(), 4u);
  EXPECT_EQ(population.BestByFMeasureIndex(), 0u);
}

TEST(SelectionTest, TournamentPrefersFitter) {
  Population population;
  for (int i = 0; i < 50; ++i) {
    Individual ind;
    ind.fitness.fitness = (i == 42) ? 1.0 : 0.0;
    ind.evaluated = true;
    population.Add(std::move(ind));
  }
  Rng rng(23);
  // With tournament size 50 the single best is practically always found.
  size_t wins = 0;
  for (int i = 0; i < 50; ++i) {
    if (TournamentSelect(population, 50, rng) == 42) ++wins;
  }
  EXPECT_GT(wins, 30u);
}

TEST(SelectionTest, TournamentSizeOneIsUniform) {
  Population population;
  for (int i = 0; i < 10; ++i) {
    Individual ind;
    ind.fitness.fitness = i;
    ind.evaluated = true;
    population.Add(std::move(ind));
  }
  Rng rng(29);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 2000; ++i) {
    ++histogram[TournamentSelect(population, 1, rng)];
  }
  for (int count : histogram) EXPECT_GT(count, 100);
}

}  // namespace
}  // namespace genlink
